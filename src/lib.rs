//! Umbrella crate for the SRLR reproduction examples and integration tests.
//!
//! Re-exports the workspace crates so examples and tests can use one import
//! root. See the individual crates for the actual functionality:
//!
//! * [`units`] — physical-quantity newtypes,
//! * [`tech`] — 45nm-SOI-like device/wire/variation models,
//! * [`circuit`] — transient circuit simulator,
//! * [`core`] — the self-resetting logic repeater,
//! * [`link`] — SRLR links, BER harness, baselines,
//! * [`noc`] — the cycle-accurate mesh NoC substrate.

#![forbid(unsafe_code)]

pub use srlr_circuit as circuit;
pub use srlr_core as core;
pub use srlr_link as link;
pub use srlr_noc as noc;
pub use srlr_tech as tech;
pub use srlr_units as units;
