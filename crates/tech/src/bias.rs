//! On-chip bias generation for the adaptive swing-voltage scheme.
//!
//! Sec. III-C of the paper: an Oguey-style CMOS current reference (whose
//! output current is first-order free of threshold-voltage terms, hence
//! process/temperature tolerant) feeds a generator whose output `Vref`
//! tracks the threshold voltage of the SRLR input device M1. When a die
//! comes out with low-Vth (strong) input devices, the delivered swing is
//! reduced to save energy; a high-Vth die gets extra swing to preserve the
//! input sensitivity margin.

use crate::technology::Technology;
use crate::variation::GlobalVariation;
use srlr_units::{Current, Power, Voltage};

/// An Oguey-style resistorless CMOS current reference.
///
/// Its defining property for this work is *what it does not depend on*:
/// the output current contains no threshold-voltage term to first order,
/// so the downstream `Vref` is set by M1's threshold alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OgueyReference {
    /// Nominal output current.
    pub nominal: Current,
    /// Residual (second-order) sensitivity of the output current to
    /// drive-strength variation, as a fraction per unit multiplier change.
    // srlr-lint: allow(raw-f64-api, reason = "dimensionless fractional sensitivity")
    pub residual_sensitivity: f64,
    /// Static power drawn by the reference core and its mirrors.
    pub power: Power,
}

impl OgueyReference {
    /// The test chip's bias generator: 587 uW total, shareable by all
    /// parallel links of a router.
    pub fn paper_default() -> Self {
        Self {
            nominal: Current::from_microamperes(20.0),
            residual_sensitivity: 0.05,
            power: Power::from_microwatts(587.0),
        }
    }

    /// Output current on a die with the given global variation.
    ///
    /// Only the (small) residual drive sensitivity appears — no Vth term,
    /// which is the whole point of the Oguey topology.
    pub fn output_current(&self, var: &GlobalVariation) -> Current {
        let drift = 1.0 + self.residual_sensitivity * (var.drive_mult_n - 1.0);
        self.nominal * drift
    }
}

/// The adaptive swing-voltage generator: produces the target swing for the
/// NMOS-based drivers, tracking M1's threshold voltage.
///
/// # Examples
///
/// ```
/// use srlr_tech::{AdaptiveSwingBias, Technology, GlobalVariation};
/// use srlr_units::Voltage;
///
/// let tech = Technology::soi45();
/// let bias = AdaptiveSwingBias::paper_default(&tech);
/// let nominal = bias.target_swing(&GlobalVariation::nominal());
/// assert!((nominal.millivolts() - 350.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSwingBias {
    reference: OgueyReference,
    /// Swing delivered on a typical die.
    nominal_swing: Voltage,
    /// Fraction of M1's threshold shift that is added to the swing
    /// (1.0 = perfect tracking; silicon implementations are slightly under).
    tracking_gain: f64,
    /// Hard floor below which the generator will not regulate.
    min_swing: Voltage,
    /// Hard ceiling (cannot exceed what the NMOS pull-up can deliver).
    max_swing: Voltage,
}

impl AdaptiveSwingBias {
    /// The paper's design point: 350 mV nominal swing with near-unity
    /// tracking of M1's threshold.
    pub fn paper_default(tech: &Technology) -> Self {
        let min_swing = Voltage::from_millivolts(150.0);
        Self {
            reference: OgueyReference::paper_default(),
            nominal_swing: tech.nominal_swing,
            tracking_gain: 0.9,
            min_swing,
            // Deeply scaled rails leave no headroom; the regulator floor
            // then coincides with its ceiling (and the link simply fails
            // to signal, which the sweep reports honestly).
            max_swing: (tech.vdd - Voltage::from_millivolts(200.0)).max(min_swing),
        }
    }

    /// Creates a generator with an explicit nominal swing (used for the
    /// Fig. 6 swing sweep).
    ///
    /// # Panics
    ///
    /// Panics if `nominal_swing` is not strictly positive.
    pub fn with_nominal_swing(tech: &Technology, nominal_swing: Voltage) -> Self {
        assert!(
            nominal_swing.volts() > 0.0,
            "nominal swing must be positive"
        );
        Self {
            nominal_swing,
            ..Self::paper_default(tech)
        }
    }

    /// The underlying current reference.
    pub fn reference(&self) -> &OgueyReference {
        &self.reference
    }

    /// Nominal (typical-die) swing.
    pub fn nominal_swing(&self) -> Voltage {
        self.nominal_swing
    }

    /// Target swing on a die with the given global variation: the nominal
    /// swing plus (tracked) M1 threshold shift, clamped to the regulator's
    /// range.
    ///
    /// High-Vth die → larger swing (sensitivity preserved); low-Vth die →
    /// smaller swing (energy saved). This is the Sec. III-C behaviour.
    pub fn target_swing(&self, var: &GlobalVariation) -> Voltage {
        let tracked = self.nominal_swing + var.dvth_n * self.tracking_gain;
        tracked.clamp(self.min_swing, self.max_swing)
    }

    /// Static power of the bias generator (shared across a router's links).
    pub fn power(&self) -> Power {
        self.reference.power
    }

    /// The bias power as a fraction of a total link-power budget —
    /// the paper quotes 0.6 % for a 64-bit 10 mm link.
    ///
    /// # Panics
    ///
    /// Panics if `total` is not strictly positive.
    // srlr-lint: allow(raw-f64-api, reason = "a power fraction is dimensionless")
    pub fn power_fraction_of(&self, total: Power) -> f64 {
        assert!(total.watts() > 0.0, "total power must be positive");
        self.reference.power.watts() / total.watts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bias() -> AdaptiveSwingBias {
        AdaptiveSwingBias::paper_default(&Technology::soi45())
    }

    #[test]
    fn nominal_die_gets_nominal_swing() {
        let b = bias();
        assert_eq!(
            b.target_swing(&GlobalVariation::nominal()),
            b.nominal_swing()
        );
    }

    #[test]
    fn high_vth_die_gets_more_swing() {
        let b = bias();
        let slow = GlobalVariation {
            dvth_n: Voltage::from_millivolts(60.0),
            ..GlobalVariation::nominal()
        };
        let swing = b.target_swing(&slow);
        assert!(swing > b.nominal_swing());
        // 90 % tracking of a 60 mV shift = +54 mV.
        assert!((swing.millivolts() - 404.0).abs() < 1.0);
    }

    #[test]
    fn low_vth_die_gets_less_swing() {
        let b = bias();
        let fast = GlobalVariation {
            dvth_n: Voltage::from_millivolts(-60.0),
            ..GlobalVariation::nominal()
        };
        assert!(b.target_swing(&fast) < b.nominal_swing());
    }

    #[test]
    fn swing_is_clamped_to_regulator_range() {
        let b = bias();
        let extreme = GlobalVariation {
            dvth_n: Voltage::from_volts(-3.0),
            ..GlobalVariation::nominal()
        };
        assert_eq!(b.target_swing(&extreme), Voltage::from_millivolts(150.0));
        let extreme_hi = GlobalVariation {
            dvth_n: Voltage::from_volts(3.0),
            ..GlobalVariation::nominal()
        };
        assert_eq!(
            b.target_swing(&extreme_hi),
            Voltage::from_volts(0.8) - Voltage::from_millivolts(200.0)
        );
    }

    #[test]
    fn reference_current_ignores_vth_shifts() {
        let r = OgueyReference::paper_default();
        let vth_only = GlobalVariation {
            dvth_n: Voltage::from_millivolts(90.0),
            dvth_p: Voltage::from_millivolts(-90.0),
            ..GlobalVariation::nominal()
        };
        assert_eq!(r.output_current(&vth_only), r.nominal);
    }

    #[test]
    fn reference_current_has_small_drive_sensitivity() {
        let r = OgueyReference::paper_default();
        let strong = GlobalVariation {
            drive_mult_n: 1.2,
            ..GlobalVariation::nominal()
        };
        let i = r.output_current(&strong);
        let rel = (i / r.nominal - 1.0).abs();
        assert!(rel < 0.02, "residual sensitivity too large: {rel}");
        assert!(rel > 0.0);
    }

    #[test]
    fn paper_bias_power_fraction() {
        // 64-bit 10 mm link at 1.66 mW per bit-lane ~ 106 mW; 587 uW is ~0.6 %.
        let b = bias();
        let total = Power::from_milliwatts(1.66) * 64.0;
        let frac = b.power_fraction_of(total);
        assert!((frac - 0.0055).abs() < 0.001, "fraction = {frac}");
    }

    #[test]
    #[should_panic(expected = "total power must be positive")]
    fn power_fraction_rejects_zero_total() {
        let _ = bias().power_fraction_of(Power::zero());
    }

    #[test]
    #[should_panic(expected = "swing must be positive")]
    fn zero_nominal_swing_rejected() {
        let _ = AdaptiveSwingBias::with_nominal_swing(&Technology::soi45(), Voltage::zero());
    }
}
