//! Classical (Bakoglu) repeater-insertion theory for full-swing wires.
//!
//! The SRLR's 1 mm insertion length is chosen to match the mesh's
//! router-to-router distance — but it is no accident that this works:
//! 1 mm is also near the *delay-optimal* repeater spacing of a full-swing
//! wire in this technology, which is why a single SRLR design covers the
//! whole fabric without the layout penalty of off-pitch repeaters. This
//! module computes the classical optima so that claim can be checked
//! rather than asserted:
//!
//! ```text
//! L_opt = sqrt(2 R0 (Cin + Cp) / (r c))      optimal segment length
//! h_opt = sqrt(R0 c / (r Cin))               optimal repeater size
//! ```
//!
//! with `R0`, `Cin`, `Cp` the unit inverter's resistance and input/output
//! capacitance, and `r`, `c` the wire's per-length resistance and
//! capacitance.

use crate::device::{Device, MosKind};
use crate::technology::Technology;
use crate::wire::WireGeometry;
use srlr_units::{Capacitance, DelayPerLength, Length, Resistance, TimeInterval};

/// The delay-optimal repeated-wire design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeaterInsertion {
    /// Optimal repeater spacing.
    pub segment_length: Length,
    /// Optimal repeater size (in unit-inverter multiples).
    // srlr-lint: allow(raw-f64-api, reason = "repeater size is a dimensionless unit-inverter multiple")
    pub size_multiple: f64,
    /// Resulting delay per unit length.
    pub delay_per_length: DelayPerLength,
}

impl RepeaterInsertion {
    /// Computes the classical optimum for the given wire geometry.
    pub fn optimal(tech: &Technology, wire: WireGeometry) -> Self {
        let (r0, cin, cp) = Self::unit_inverter(tech);
        let r = wire.resistance_per_length().ohms_per_meter();
        let c = wire.capacitance_per_length().farads_per_meter();

        let l_opt = (2.0 * r0.ohms() * (cin + cp).farads() / (r * c)).sqrt();
        let h_opt = (r0.ohms() * c / (r * cin.farads())).sqrt();
        // Bakoglu: the optimally repeated wire's delay per length is
        // ~2.5 sqrt(R0 (Cin+Cp) r c) for the 0.7RC metric.
        let delay_per_meter = 2.5 * (r0.ohms() * (cin + cp).farads() * r * c).sqrt();

        Self {
            segment_length: Length::from_meters(l_opt),
            size_multiple: h_opt,
            delay_per_length: DelayPerLength::from_seconds_per_meter(delay_per_meter),
        }
    }

    /// Delay of a wire of `length` at this design point.
    pub fn delay(&self, length: Length) -> TimeInterval {
        self.delay_per_length * length
    }

    /// Relative delay penalty of repeating at `spacing` instead of the
    /// optimum: `T(L)/T(L_opt) = (L/L_opt + L_opt/L)/2`. The curve is
    /// famously flat — which is why practical designs stretch the spacing
    /// well past the optimum to save repeater count and energy.
    ///
    /// # Panics
    ///
    /// Panics if `spacing` is not strictly positive.
    // srlr-lint: allow(raw-f64-api, reason = "relative delay penalty is a dimensionless ratio")
    pub fn delay_penalty_at(&self, spacing: Length) -> f64 {
        assert!(spacing.meters() > 0.0, "spacing must be positive");
        let x = spacing.meters() / self.segment_length.meters();
        0.5 * (x + 1.0 / x)
    }

    /// The unit inverter's `(R0, Cin, Cparasitic)` in this technology:
    /// a 1 um NMOS with a 2 um PMOS.
    fn unit_inverter(tech: &Technology) -> (Resistance, Capacitance, Capacitance) {
        let n = Device::new(
            MosKind::Nmos,
            tech.nmos,
            Length::from_micrometers(1.0),
            tech.min_length,
        );
        let p = Device::new(
            MosKind::Pmos,
            tech.pmos,
            Length::from_micrometers(2.0),
            tech.min_length,
        );
        // Switching resistance: the weaker (PMOS) edge dominates the
        // average; take the mean of the two edges.
        let r0 = Resistance::from_ohms(
            0.5 * (n.effective_resistance(tech.vdd).ohms()
                + p.effective_resistance(tech.vdd).ohms()),
        );
        let cin = n.gate_capacitance() + p.gate_capacitance();
        let cp = n.drain_capacitance() + p.drain_capacitance();
        (r0, cin, cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimum() -> RepeaterInsertion {
        let tech = Technology::soi45();
        RepeaterInsertion::optimal(&tech, tech.wire)
    }

    #[test]
    fn optimal_spacing_is_sub_millimetre_as_expected_at_45nm() {
        // The textbook delay optimum at 45 nm sits a few hundred um —
        // repeating *every* 0.3 mm is what nobody does in practice.
        let l = optimum().segment_length.millimeters();
        assert!(
            (0.1..=0.7).contains(&l),
            "optimal spacing {l} mm outside the 45 nm textbook band"
        );
    }

    #[test]
    fn one_millimetre_spacing_pays_a_modest_flat_curve_penalty() {
        // The delay-vs-spacing curve is flat: stretching from the ~0.3 mm
        // optimum to the router-pitch 1 mm costs ~2x wire delay — cheap
        // against one router cycle per hop, while cutting repeater count
        // (and energy, and layout complexity) by >3x. This is the
        // quantitative backing for the paper's 1 mm insertion choice.
        let opt = optimum();
        let penalty = opt.delay_penalty_at(Length::from_millimeters(1.0));
        assert!(penalty > 1.2, "1 mm should be off-optimum: {penalty}");
        assert!(penalty < 2.6, "1 mm must stay affordable: {penalty}");
        // And the curve really is flat near the optimum.
        assert!((opt.delay_penalty_at(opt.segment_length) - 1.0).abs() < 1e-9);
        assert!(opt.delay_penalty_at(opt.segment_length * 1.5) < 1.1);
    }

    #[test]
    #[should_panic(expected = "spacing must be positive")]
    fn zero_spacing_rejected() {
        let _ = optimum().delay_penalty_at(Length::zero());
    }

    #[test]
    fn optimal_size_is_tens_of_units() {
        let h = optimum().size_multiple;
        assert!((5.0..=120.0).contains(&h), "h_opt = {h}");
    }

    #[test]
    fn repeated_delay_beats_unrepeated_square_law() {
        let tech = Technology::soi45();
        let opt = optimum();
        let len = Length::from_millimeters(10.0);
        let repeated = opt.delay(len);
        // Unrepeated distributed wire: 0.38 r c L^2.
        let rc = tech.wire.extract(len);
        let unrepeated = rc.time_constant() * 0.38;
        assert!(
            repeated < unrepeated,
            "repeated {repeated} must beat unrepeated {unrepeated} over 10 mm"
        );
    }

    #[test]
    fn delay_scales_linearly_with_length() {
        let opt = optimum();
        let one = opt.delay(Length::from_millimeters(1.0));
        let ten = opt.delay(Length::from_millimeters(10.0));
        assert!((ten.seconds() / one.seconds() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn narrower_wire_wants_shorter_segments() {
        let tech = Technology::soi45();
        let narrow = WireGeometry {
            width: srlr_units::Length::from_micrometers(0.15),
            thickness: srlr_units::Length::from_micrometers(0.12),
            ..tech.wire
        };
        let opt_narrow = RepeaterInsertion::optimal(&tech, narrow);
        let opt_wide = RepeaterInsertion::optimal(&tech, tech.wire);
        assert!(opt_narrow.segment_length < opt_wide.segment_length);
    }
}
