//! Wire geometry and per-length parasitic extraction.
//!
//! The SRLR obtains its low swing "mainly through the inherent wire channel
//! attenuation" of RC-dominant minimum-pitch wires, so the wire model is a
//! first-class citizen: drawn width/space/thickness are converted to
//! per-length resistance and capacitance (ground plate + fringe + sidewall
//! coupling with a Miller factor for worst-case switching neighbours).

use srlr_units::{
    Capacitance, CapacitancePerLength, Length, Resistance, ResistancePerLength, TimeInterval,
    Voltage,
};

/// Vacuum permittivity times the SiO2-ish low-k dielectric constant (F/m).
const EPS_DIELECTRIC: f64 = 8.854e-12 * 3.3;

/// Copper resistivity including barrier/scattering penalty at narrow
/// widths (Ohm·m).
const RHO_COPPER_EFFECTIVE: f64 = 3.0e-8;

/// What the neighbouring wires are doing, which sets the Miller factor
/// applied to sidewall coupling capacitance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeighborActivity {
    /// Neighbours are grounded shields: coupling behaves as plain ground
    /// capacitance (factor 1.0) and no data-dependent noise exists.
    Shielded,
    /// Random, uncorrelated neighbour data — the time-averaged factor the
    /// energy calibration uses (1.5).
    Random,
    /// Both neighbours switching opposite to the victim every bit: the
    /// worst-case factor 2.0 on both energy and delay.
    WorstCase,
    /// Both neighbours switching *with* the victim (e.g. a bus carrying
    /// correlated data): the coupling charge vanishes (factor ≈ 0.3,
    /// keeping a floor for fringe-to-substrate return paths).
    BestCase,
}

impl NeighborActivity {
    /// The Miller factor this activity applies to sidewall coupling.
    // srlr-lint: allow(raw-f64-api, reason = "Miller factor is a dimensionless coupling multiplier")
    pub fn miller_factor(self) -> f64 {
        match self {
            Self::Shielded => 1.0,
            Self::Random => 1.5,
            Self::WorstCase => 2.0,
            Self::BestCase => 0.3,
        }
    }
}

/// A named interconnect stack layer with typical 45 nm-class geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetalLayer {
    /// Thin, dense local metal (M1/M2 class).
    Local,
    /// The intermediate layer the SRLR link wires use (M4/M5 class).
    Intermediate,
    /// Semi-global routing (M6/M7 class).
    SemiGlobal,
    /// Thick top-level metal for clocks and power (M8+ class).
    Global,
}

impl MetalLayer {
    /// Representative drawn geometry for this layer at minimum pitch.
    pub fn geometry(self) -> WireGeometry {
        let um = Length::from_micrometers;
        match self {
            Self::Local => WireGeometry {
                width: um(0.07),
                space: um(0.07),
                thickness: um(0.13),
                ild_height: um(0.12),
                miller_factor: 1.5,
            },
            Self::Intermediate => WireGeometry::paper_default(),
            Self::SemiGlobal => WireGeometry {
                width: um(0.4),
                space: um(0.4),
                thickness: um(0.4),
                ild_height: um(0.4),
                miller_factor: 1.5,
            },
            Self::Global => WireGeometry {
                width: um(1.0),
                space: um(1.0),
                thickness: um(1.2),
                ild_height: um(0.8),
                miller_factor: 1.5,
            },
        }
    }
}

/// Drawn wire geometry on one metal layer.
///
/// # Examples
///
/// ```
/// use srlr_tech::WireGeometry;
/// use srlr_units::Length;
///
/// let w = WireGeometry::paper_default();
/// assert_eq!(w.pitch(), Length::from_micrometers(0.6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireGeometry {
    /// Drawn wire width.
    pub width: Length,
    /// Spacing to each neighbouring wire.
    pub space: Length,
    /// Metal thickness.
    pub thickness: Length,
    /// Dielectric height to the plates above/below.
    pub ild_height: Length,
    /// Switching-activity Miller factor applied to sidewall coupling
    /// (1.0 = neighbours quiet, 2.0 = worst-case opposite switching).
    // srlr-lint: allow(raw-f64-api, reason = "Miller factor is a dimensionless coupling multiplier")
    pub miller_factor: f64,
}

impl WireGeometry {
    /// The paper's link wires: 0.3 um width / 0.3 um space (0.6 um pitch)
    /// on an intermediate metal layer, with an averaged Miller factor for
    /// random neighbour data.
    pub fn paper_default() -> Self {
        Self {
            width: Length::from_micrometers(0.3),
            space: Length::from_micrometers(0.3),
            thickness: Length::from_micrometers(0.22),
            ild_height: Length::from_micrometers(0.25),
            miller_factor: 1.5,
        }
    }

    /// Returns a copy with a different spacing (the Fig. 8 sweep axis:
    /// tighter spacing = higher bandwidth density but more coupling).
    ///
    /// # Panics
    ///
    /// Panics if `space` is not strictly positive.
    #[must_use]
    pub fn with_space(&self, space: Length) -> Self {
        assert!(space.meters() > 0.0, "wire space must be positive");
        Self { space, ..*self }
    }

    /// Returns a copy with the Miller factor of the given neighbour
    /// activity (crosstalk scenario).
    #[must_use]
    pub fn with_neighbors(&self, activity: NeighborActivity) -> Self {
        Self {
            miller_factor: activity.miller_factor(),
            ..*self
        }
    }

    /// Wire pitch: width + space.
    pub fn pitch(self) -> Length {
        self.width + self.space
    }

    /// Per-length resistance of the wire.
    pub fn resistance_per_length(self) -> ResistancePerLength {
        ResistancePerLength::from_ohms_per_meter(
            RHO_COPPER_EFFECTIVE / (self.width.meters() * self.thickness.meters()),
        )
    }

    /// Per-length capacitance of the wire: two plate terms to the layers
    /// above and below, a fringe term, and two sidewall coupling terms
    /// scaled by the Miller factor.
    pub fn capacitance_per_length(self) -> CapacitancePerLength {
        let plate = 2.0 * EPS_DIELECTRIC * self.width.meters() / self.ild_height.meters();
        // Empirical fringe term, weakly dependent on geometry.
        let fringe = 2.0 * EPS_DIELECTRIC * 1.1;
        let coupling = 2.0 * EPS_DIELECTRIC * self.thickness.meters() / self.space.meters()
            * self.miller_factor;
        CapacitancePerLength::from_farads_per_meter(plate + fringe + coupling)
    }

    /// Extracts the parasitics of a wire segment of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not strictly positive.
    pub fn extract(self, len: Length) -> WireRc {
        assert!(len.meters() > 0.0, "wire length must be positive");
        WireRc {
            length: len,
            resistance: self.resistance_per_length() * len,
            capacitance: self.capacitance_per_length() * len,
        }
    }
}

/// Extracted parasitics of one wire segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireRc {
    /// Physical length of the segment.
    pub length: Length,
    /// Total series resistance.
    pub resistance: Resistance,
    /// Total capacitance to ground (coupling folded in via Miller factor).
    pub capacitance: Capacitance,
}

impl WireRc {
    /// The distributed-RC time constant `R·C` of the whole segment.
    pub fn time_constant(self) -> TimeInterval {
        self.resistance * self.capacitance
    }

    /// Elmore delay of the distributed line: `0.5·R·C` (the 50 % point of
    /// a step is near `0.38·R·C`; Elmore's first moment is the standard
    /// pessimistic estimate).
    pub fn elmore_delay(self) -> TimeInterval {
        self.time_constant() * 0.5
    }

    /// Far-end voltage reached by a rectangular drive pulse of amplitude
    /// `drive` and duration `width`, using a single-pole approximation of
    /// the distributed line (pole at the Elmore time constant).
    ///
    /// This is the "channel attenuation" the SRLR exploits: pulses narrower
    /// than the line's time constant arrive with reduced swing.
    pub fn attenuated_peak(self, drive: Voltage, width: TimeInterval) -> Voltage {
        if width.seconds() <= 0.0 {
            return Voltage::zero();
        }
        let tau = self.elmore_delay().seconds().max(1e-18);
        drive * (1.0 - (-width.seconds() / tau).exp())
    }

    /// Scales R and C by global-variation multipliers.
    // srlr-lint: allow(raw-f64-api, reason = "r_mult/c_mult are dimensionless variation multipliers")
    #[must_use]
    // srlr-lint: allow(raw-f64-api, reason = "R/C multipliers are dimensionless variation factors")
    pub fn with_variation(self, r_mult: f64, c_mult: f64) -> Self {
        Self {
            length: self.length,
            resistance: self.resistance * r_mult,
            capacitance: self.capacitance * c_mult,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_segment_parasitic_magnitudes() {
        // 1 mm of the paper's wire: mid-hundreds of ohms, ~200 fF.
        let rc = WireGeometry::paper_default().extract(Length::from_millimeters(1.0));
        assert!(
            rc.resistance.ohms() > 300.0 && rc.resistance.ohms() < 1500.0,
            "R = {}",
            rc.resistance
        );
        assert!(
            rc.capacitance.femtofarads() > 120.0 && rc.capacitance.femtofarads() < 300.0,
            "C = {}",
            rc.capacitance
        );
    }

    #[test]
    fn tighter_spacing_increases_capacitance() {
        let base = WireGeometry::paper_default();
        let tight = base.with_space(Length::from_micrometers(0.15));
        assert!(tight.capacitance_per_length() > base.capacitance_per_length());
        assert!(tight.pitch() < base.pitch());
    }

    #[test]
    fn wider_wire_lowers_resistance_raises_capacitance() {
        let base = WireGeometry::paper_default();
        let wide = WireGeometry {
            width: Length::from_micrometers(0.6),
            ..base
        };
        assert!(wide.resistance_per_length() < base.resistance_per_length());
        assert!(wide.capacitance_per_length() > base.capacitance_per_length());
    }

    #[test]
    fn parasitics_scale_linearly_with_length() {
        let g = WireGeometry::paper_default();
        let one = g.extract(Length::from_millimeters(1.0));
        let ten = g.extract(Length::from_millimeters(10.0));
        assert!((ten.resistance.ohms() / one.resistance.ohms() - 10.0).abs() < 1e-9);
        assert!((ten.capacitance.farads() / one.capacitance.farads() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn attenuation_monotone_in_pulse_width() {
        let rc = WireGeometry::paper_default().extract(Length::from_millimeters(1.0));
        let drive = Voltage::from_millivolts(400.0);
        let narrow = rc.attenuated_peak(drive, TimeInterval::from_picoseconds(20.0));
        let wide = rc.attenuated_peak(drive, TimeInterval::from_picoseconds(200.0));
        assert!(narrow < wide);
        assert!(wide <= drive);
        assert!(narrow.volts() > 0.0);
    }

    #[test]
    fn zero_width_pulse_does_not_arrive() {
        let rc = WireGeometry::paper_default().extract(Length::from_millimeters(1.0));
        assert_eq!(
            rc.attenuated_peak(Voltage::from_volts(0.4), TimeInterval::zero()),
            Voltage::zero()
        );
    }

    #[test]
    fn variation_multipliers_apply() {
        let rc = WireGeometry::paper_default().extract(Length::from_millimeters(1.0));
        let v = rc.with_variation(1.1, 0.9);
        assert!((v.resistance.ohms() / rc.resistance.ohms() - 1.1).abs() < 1e-9);
        assert!((v.capacitance.farads() / rc.capacitance.farads() - 0.9).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_rejected() {
        let _ = WireGeometry::paper_default().extract(Length::zero());
    }

    #[test]
    fn neighbor_activity_orders_capacitance() {
        let g = WireGeometry::paper_default();
        let best = g
            .with_neighbors(NeighborActivity::BestCase)
            .capacitance_per_length();
        let shielded = g
            .with_neighbors(NeighborActivity::Shielded)
            .capacitance_per_length();
        let random = g
            .with_neighbors(NeighborActivity::Random)
            .capacitance_per_length();
        let worst = g
            .with_neighbors(NeighborActivity::WorstCase)
            .capacitance_per_length();
        assert!(best < shielded);
        assert!(shielded < random);
        assert!(random < worst);
        // The calibration default is the random-data factor.
        assert_eq!(random, g.capacitance_per_length());
    }

    #[test]
    fn metal_stack_orders_resistance() {
        let r = |l: MetalLayer| l.geometry().resistance_per_length();
        assert!(r(MetalLayer::Local) > r(MetalLayer::Intermediate));
        assert!(r(MetalLayer::Intermediate) > r(MetalLayer::SemiGlobal));
        assert!(r(MetalLayer::SemiGlobal) > r(MetalLayer::Global));
        // Local metal is kilohms/mm; global is tens of ohms/mm.
        assert!(r(MetalLayer::Local).ohms_per_millimeter() > 2000.0);
        assert!(r(MetalLayer::Global).ohms_per_millimeter() < 60.0);
    }

    #[test]
    fn intermediate_layer_is_the_paper_wire() {
        assert_eq!(
            MetalLayer::Intermediate.geometry(),
            WireGeometry::paper_default()
        );
    }

    #[test]
    fn time_constant_of_paper_segment() {
        // tau = R*C of 1 mm should be tens to a couple hundred ps —
        // RC-dominant at the paper's bit periods (244 ps at 4.1 Gb/s).
        let rc = WireGeometry::paper_default().extract(Length::from_millimeters(1.0));
        let tau = rc.time_constant();
        assert!(
            tau.picoseconds() > 40.0 && tau.picoseconds() < 400.0,
            "tau = {tau}"
        );
    }
}
