//! Temperature effects, expressed as equivalent process shifts.
//!
//! The paper's bias reference is chosen because it is "tolerant of
//! process and temperature variations" (footnote 3). To exercise that
//! claim, temperature is folded into the same [`GlobalVariation`]
//! machinery the corners use: thresholds drop ≈1 mV/K as the die heats
//! while carrier mobility falls as `(T/300)^-1.5`. A hot die is therefore
//! *leaky but slow*, a cold die *strong but high-threshold* — and the
//! adaptive swing scheme must track M1's threshold across both.

use crate::variation::GlobalVariation;
use srlr_units::Voltage;

/// Reference (calibration) temperature in kelvin.
pub const NOMINAL_TEMPERATURE_K: f64 = 300.0;

/// Threshold-voltage temperature coefficient (V/K, negative: hotter =
/// lower threshold).
pub const VTH_TEMPCO: f64 = -1.0e-3;

/// Mobility exponent: drive ∝ `(T/T0)^-MOBILITY_EXPONENT`.
pub const MOBILITY_EXPONENT: f64 = 1.5;

/// An operating temperature.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Temperature {
    kelvin: f64,
}

impl Temperature {
    /// Creates a temperature from kelvin.
    ///
    /// # Panics
    ///
    /// Panics outside the military-plus range 200–450 K where the
    /// first-order coefficients hold.
    // srlr-lint: allow(raw-f64-api, reason = "Temperature is itself the kelvin newtype; this is its raw-value boundary")
    pub fn from_kelvin(kelvin: f64) -> Self {
        assert!(
            (200.0..=450.0).contains(&kelvin),
            "temperature {kelvin} K outside the modelled 200-450 K range"
        );
        Self { kelvin }
    }

    /// Creates a temperature from degrees Celsius.
    // srlr-lint: allow(raw-f64-api, reason = "Temperature is itself the kelvin newtype; this is its raw-value boundary")
    pub fn from_celsius(celsius: f64) -> Self {
        Self::from_kelvin(celsius + 273.15)
    }

    /// The nominal 300 K (≈27 °C) calibration point.
    pub fn nominal() -> Self {
        Self {
            kelvin: NOMINAL_TEMPERATURE_K,
        }
    }

    /// Kelvin value.
    // srlr-lint: allow(raw-f64-api, reason = "Temperature is itself the kelvin newtype; this is its raw-value boundary")
    pub fn kelvin(self) -> f64 {
        self.kelvin
    }

    /// Degrees Celsius.
    // srlr-lint: allow(raw-f64-api, reason = "Temperature is itself the kelvin newtype; this is its raw-value boundary")
    pub fn celsius(self) -> f64 {
        self.kelvin - 273.15
    }

    /// The threshold shift this temperature applies to both flavours.
    pub fn vth_shift(self) -> Voltage {
        Voltage::from_volts(VTH_TEMPCO * (self.kelvin - NOMINAL_TEMPERATURE_K))
    }

    /// The drive (mobility) multiplier at this temperature.
    // srlr-lint: allow(raw-f64-api, reason = "dimensionless mobility multiplier")
    pub fn drive_multiplier(self) -> f64 {
        (self.kelvin / NOMINAL_TEMPERATURE_K).powf(-MOBILITY_EXPONENT)
    }

    /// This temperature as an equivalent global variation, composable
    /// with a process die: `combine` adds the thermal shifts on top.
    pub fn as_variation(self) -> GlobalVariation {
        GlobalVariation {
            dvth_n: self.vth_shift(),
            dvth_p: self.vth_shift(),
            drive_mult_n: self.drive_multiplier(),
            drive_mult_p: self.drive_multiplier(),
            // Metal resistivity rises ~0.4 %/K.
            wire_r_mult: 1.0 + 0.004 * (self.kelvin - NOMINAL_TEMPERATURE_K),
            wire_c_mult: 1.0,
        }
    }

    /// Composes a process die with this temperature: threshold shifts
    /// add, multipliers multiply.
    pub fn combine(self, process: &GlobalVariation) -> GlobalVariation {
        let t = self.as_variation();
        GlobalVariation {
            dvth_n: process.dvth_n + t.dvth_n,
            dvth_p: process.dvth_p + t.dvth_p,
            drive_mult_n: process.drive_mult_n * t.drive_mult_n,
            drive_mult_p: process.drive_mult_p * t.drive_mult_p,
            wire_r_mult: process.wire_r_mult * t.wire_r_mult,
            wire_c_mult: process.wire_c_mult * t.wire_c_mult,
        }
    }
}

impl Default for Temperature {
    fn default() -> Self {
        Self::nominal()
    }
}

impl core::fmt::Display for Temperature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.0} K ({:.0} C)", self.kelvin, self.celsius())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_identity() {
        let t = Temperature::nominal();
        assert_eq!(t.vth_shift(), Voltage::zero());
        assert!((t.drive_multiplier() - 1.0).abs() < 1e-12);
        assert_eq!(t.as_variation(), GlobalVariation::nominal());
        assert_eq!(Temperature::default(), t);
    }

    #[test]
    fn hot_die_is_leaky_but_slow() {
        let hot = Temperature::from_celsius(105.0);
        assert!(hot.vth_shift().volts() < 0.0, "Vth drops when hot");
        assert!(hot.drive_multiplier() < 1.0, "mobility drops when hot");
        assert!(hot.as_variation().wire_r_mult > 1.0, "copper heats up");
    }

    #[test]
    fn cold_die_is_strong_but_high_threshold() {
        let cold = Temperature::from_celsius(-40.0);
        assert!(cold.vth_shift().volts() > 0.0);
        assert!(cold.drive_multiplier() > 1.0);
    }

    #[test]
    fn celsius_kelvin_round_trip() {
        let t = Temperature::from_celsius(85.0);
        assert!((t.kelvin() - 358.15).abs() < 1e-9);
        assert!((t.celsius() - 85.0).abs() < 1e-9);
    }

    #[test]
    fn combine_stacks_shifts() {
        let process = GlobalVariation {
            dvth_n: Voltage::from_millivolts(30.0),
            drive_mult_n: 0.9,
            ..GlobalVariation::nominal()
        };
        let hot = Temperature::from_celsius(105.0);
        let both = hot.combine(&process);
        assert!(
            (both.dvth_n - (process.dvth_n + hot.vth_shift()))
                .abs()
                .volts()
                < 1e-12
        );
        assert!((both.drive_mult_n - 0.9 * hot.drive_multiplier()).abs() < 1e-12);
        assert!(both.is_physical());
    }

    #[test]
    fn thermal_variations_stay_physical_across_the_range() {
        for k in [220.0, 260.0, 300.0, 360.0, 420.0] {
            assert!(Temperature::from_kelvin(k).as_variation().is_physical());
        }
    }

    #[test]
    #[should_panic(expected = "outside the modelled")]
    fn cryogenic_rejected() {
        let _ = Temperature::from_kelvin(77.0);
    }

    #[test]
    fn display_has_both_units() {
        let t = Temperature::from_celsius(85.0);
        let s = t.to_string();
        assert!(s.contains('K') && s.contains('C'));
    }

    #[test]
    fn oguey_reference_is_temperature_tolerant() {
        // Footnote 3: the bias current has no Vth term, so the reference
        // barely moves across the temperature range while a raw device's
        // drive moves a lot.
        use crate::bias::OgueyReference;
        let r = OgueyReference::paper_default();
        let hot = Temperature::from_celsius(105.0).as_variation();
        let cold = Temperature::from_celsius(-40.0).as_variation();
        let spread = (r.output_current(&hot) - r.output_current(&cold))
            .abs()
            .amperes()
            / r.nominal.amperes();
        assert!(spread < 0.05, "reference spread {spread}");
        let raw_spread = (hot.drive_mult_n - cold.drive_mult_n).abs();
        assert!(raw_spread > 0.3, "raw drive spread {raw_spread}");
        assert!(spread < raw_spread / 5.0);
    }
}
