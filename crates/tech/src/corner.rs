//! Named process corners.
//!
//! Corners are deterministic, extreme instances of [`GlobalVariation`]:
//! the five classic die-to-die points the paper's Sec. III sweeps when it
//! describes the single-delay-cell failure (slow dice shrink pulses, fast
//! dice widen them) and the two inverter-driver failure modes (weak PMOS /
//! strong PMOS with weak NMOS).

use crate::technology::Technology;
use crate::variation::GlobalVariation;

/// The five classic global process corners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessCorner {
    /// Typical NMOS, typical PMOS.
    Typical,
    /// Fast NMOS, fast PMOS.
    FastFast,
    /// Slow NMOS, slow PMOS.
    SlowSlow,
    /// Fast NMOS, slow PMOS.
    FastSlow,
    /// Slow NMOS, fast PMOS.
    SlowFast,
}

impl ProcessCorner {
    /// All five corners, in conventional order.
    pub const ALL: [Self; 5] = [
        Self::Typical,
        Self::FastFast,
        Self::SlowSlow,
        Self::FastSlow,
        Self::SlowFast,
    ];

    /// The short PDK-style name (`TT`, `FF`, `SS`, `FS`, `SF`).
    pub fn short_name(self) -> &'static str {
        match self {
            Self::Typical => "TT",
            Self::FastFast => "FF",
            Self::SlowSlow => "SS",
            Self::FastSlow => "FS",
            Self::SlowFast => "SF",
        }
    }

    /// Signs of the (NMOS, PMOS) speed deviation: `+1` fast, `-1` slow.
    fn signs(self) -> (f64, f64) {
        match self {
            Self::Typical => (0.0, 0.0),
            Self::FastFast => (1.0, 1.0),
            Self::SlowSlow => (-1.0, -1.0),
            Self::FastSlow => (1.0, -1.0),
            Self::SlowFast => (-1.0, 1.0),
        }
    }

    /// Materialises the corner as a [`GlobalVariation`] using the
    /// technology's corner magnitudes (a corner sits at ±3σ of the
    /// die-to-die distribution).
    pub fn variation(self, tech: &Technology) -> GlobalVariation {
        let (sn, sp) = self.signs();
        let dvth = tech.global_sigma_vth.volts() * 3.0;
        let dmult = tech.global_sigma_drive * 3.0;
        GlobalVariation {
            // Fast = lower threshold, stronger drive.
            dvth_n: srlr_units::Voltage::from_volts(-sn * dvth),
            dvth_p: srlr_units::Voltage::from_volts(-sp * dvth),
            drive_mult_n: 1.0 + sn * dmult,
            drive_mult_p: 1.0 + sp * dmult,
            wire_r_mult: 1.0,
            wire_c_mult: 1.0,
        }
    }
}

impl core::fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_is_nominal() {
        let tech = Technology::soi45();
        assert_eq!(
            ProcessCorner::Typical.variation(&tech),
            GlobalVariation::nominal()
        );
    }

    #[test]
    fn ff_is_fast_ss_is_slow() {
        let tech = Technology::soi45();
        let ff = ProcessCorner::FastFast.variation(&tech);
        let ss = ProcessCorner::SlowSlow.variation(&tech);
        assert!(ff.speed_index() > 0.0);
        assert!(ss.speed_index() < 0.0);
        assert!(ff.dvth_n.volts() < 0.0);
        assert!(ss.dvth_n.volts() > 0.0);
    }

    #[test]
    fn skew_corners_oppose() {
        let tech = Technology::soi45();
        let fs = ProcessCorner::FastSlow.variation(&tech);
        assert!(fs.dvth_n.volts() < 0.0, "fast NMOS lowers Vth_n");
        assert!(fs.dvth_p.volts() > 0.0, "slow PMOS raises Vth_p");
        let sf = ProcessCorner::SlowFast.variation(&tech);
        assert!(sf.dvth_n.volts() > 0.0);
        assert!(sf.dvth_p.volts() < 0.0);
    }

    #[test]
    fn corners_are_physical() {
        let tech = Technology::soi45();
        for c in ProcessCorner::ALL {
            assert!(c.variation(&tech).is_physical(), "{c} not physical");
        }
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(ProcessCorner::FastSlow.to_string(), "FS");
        assert_eq!(ProcessCorner::ALL.len(), 5);
    }
}
