//! Sized device instances: a [`MosfetModel`] plus drawn geometry and any
//! per-instance (local) threshold shift.

use crate::mosfet::MosfetModel;
use srlr_units::{Capacitance, Current, Length, Resistance, Voltage};

/// Which flavour a [`Device`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosKind {
    /// N-channel device: conducts when the gate is high relative to source.
    Nmos,
    /// P-channel device: conducts when the gate is low relative to source.
    Pmos,
}

impl core::fmt::Display for MosKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Nmos => f.write_str("NMOS"),
            Self::Pmos => f.write_str("PMOS"),
        }
    }
}

/// A sized transistor instance.
///
/// The instance carries its own copy of the model so global-corner and
/// local-mismatch shifts can be applied per device.
///
/// # Examples
///
/// ```
/// use srlr_tech::{Device, MosKind, MosfetModel};
/// use srlr_units::{Length, Voltage};
///
/// let m1 = Device::new(
///     MosKind::Nmos,
///     MosfetModel::nmos_soi45(),
///     Length::from_micrometers(0.6),
///     Length::from_nanometers(45.0),
/// );
/// let i = m1.drain_current(Voltage::from_volts(0.8), Voltage::from_volts(0.4));
/// assert!(i.microamperes() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    kind: MosKind,
    model: MosfetModel,
    width: Length,
    length: Length,
}

impl Device {
    /// Creates a device with the given drawn width and length.
    ///
    /// # Panics
    ///
    /// Panics if width or length is not strictly positive and finite.
    pub fn new(kind: MosKind, model: MosfetModel, width: Length, length: Length) -> Self {
        assert!(
            width.meters() > 0.0 && width.is_finite(),
            "device width must be positive"
        );
        assert!(
            length.meters() > 0.0 && length.is_finite(),
            "device length must be positive"
        );
        Self {
            kind,
            model,
            width,
            length,
        }
    }

    /// The device flavour.
    pub fn kind(&self) -> MosKind {
        self.kind
    }

    /// The underlying model (with any variation already folded in).
    pub fn model(&self) -> &MosfetModel {
        &self.model
    }

    /// Drawn width.
    pub fn width(&self) -> Length {
        self.width
    }

    /// Drawn length.
    pub fn length(&self) -> Length {
        self.length
    }

    /// `W/L` ratio.
    // srlr-lint: allow(raw-f64-api, reason = "W/L is a dimensionless geometry ratio")
    pub fn ratio(&self) -> f64 {
        self.width / self.length
    }

    /// Effective threshold voltage (magnitude) including variation.
    pub fn vth(&self) -> Voltage {
        self.model.vth0
    }

    /// Drain current magnitude in the source frame: `vgs`/`vds` are
    /// magnitudes relative to the source terminal (for PMOS the caller maps
    /// `vsg`/`vsd` here).
    ///
    /// # Panics
    ///
    /// Panics if `vds` is negative; canonicalise terminal order first.
    pub fn drain_current(&self, vgs: Voltage, vds: Voltage) -> Current {
        self.model.drain_current_per_ratio(vgs, vds) * self.ratio()
    }

    /// Total gate capacitance.
    pub fn gate_capacitance(&self) -> Capacitance {
        self.model.gate_capacitance(self.width, self.length)
    }

    /// Drain diffusion capacitance.
    pub fn drain_capacitance(&self) -> Capacitance {
        self.model.junction_capacitance(self.width)
    }

    /// Off-state leakage (`Vgs = 0`, `Vds = VDD`) of this device.
    pub fn off_current(&self) -> Current {
        self.model.off_current_per_width * self.width
    }

    /// Effective switching resistance at full gate drive `vdd`:
    /// a secant approximation `R ≈ (vdd/2) / Id(vdd, vdd/2)` commonly used
    /// for RC delay estimation.
    ///
    /// # Panics
    ///
    /// Panics if the device conducts no current at full drive (e.g. `vdd`
    /// far below threshold), which would make the resistance unbounded.
    pub fn effective_resistance(&self, vdd: Voltage) -> Resistance {
        let half = vdd / 2.0;
        let i = self.drain_current(vdd, half);
        // Below a picoamp the device is effectively cut off and a "switch
        // resistance" is meaningless.
        assert!(
            i.amperes() > 1e-12,
            "effective_resistance: device does not conduct at vdd={vdd}"
        );
        Resistance::from_ohms(half.volts() / i.amperes())
    }

    /// Returns a copy with an extra threshold shift and drive multiplier
    /// (used to fold in global corners and local mismatch).
    // srlr-lint: allow(raw-f64-api, reason = "drive_mult is a dimensionless multiplier on the drive factor")
    #[must_use]
    // srlr-lint: allow(raw-f64-api, reason = "drive multiplier is a dimensionless variation factor")
    pub fn with_variation(&self, dvth: Voltage, drive_mult: f64) -> Self {
        Self {
            model: self.model.with_variation(dvth, drive_mult),
            ..self.clone()
        }
    }

    /// Returns a copy scaled to a different drawn width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive and finite.
    #[must_use]
    pub fn with_width(&self, width: Length) -> Self {
        assert!(
            width.meters() > 0.0 && width.is_finite(),
            "device width must be positive"
        );
        Self {
            width,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlr_units::{Length, Voltage};

    fn unit_nmos() -> Device {
        Device::new(
            MosKind::Nmos,
            MosfetModel::nmos_soi45(),
            Length::from_micrometers(1.0),
            Length::from_nanometers(45.0),
        )
    }

    #[test]
    fn current_scales_with_width() {
        let d1 = unit_nmos();
        let d2 = d1.with_width(Length::from_micrometers(2.0));
        let vg = Voltage::from_volts(0.8);
        let vd = Voltage::from_volts(0.4);
        let i1 = d1.drain_current(vg, vd);
        let i2 = d2.drain_current(vg, vd);
        assert!((i2.amperes() / i1.amperes() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn effective_resistance_is_positive_and_reasonable() {
        let r = unit_nmos().effective_resistance(Voltage::from_volts(0.8));
        // A 1 um NMOS at 45 nm should switch with hundreds of ohms to a few kOhm.
        assert!(r.ohms() > 100.0 && r.ohms() < 5000.0, "R = {r}");
    }

    #[test]
    fn wider_device_has_lower_resistance() {
        let narrow = unit_nmos();
        let wide = narrow.with_width(Length::from_micrometers(4.0));
        let vdd = Voltage::from_volts(0.8);
        assert!(wide.effective_resistance(vdd) < narrow.effective_resistance(vdd));
    }

    #[test]
    #[should_panic(expected = "does not conduct")]
    fn effective_resistance_rejects_cut_off_device() {
        // A device whose threshold is far above vdd conducts ~nothing.
        let dead = unit_nmos().with_variation(Voltage::from_volts(5.0), 1.0);
        let _ = dead.effective_resistance(Voltage::from_volts(0.8));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_is_rejected() {
        let _ = Device::new(
            MosKind::Nmos,
            MosfetModel::nmos_soi45(),
            Length::zero(),
            Length::from_nanometers(45.0),
        );
    }

    #[test]
    fn variation_raises_vth() {
        let d = unit_nmos().with_variation(Voltage::from_millivolts(30.0), 1.0);
        assert!((d.vth().millivolts() - 350.0).abs() < 1e-9);
    }

    #[test]
    fn capacitances_track_geometry() {
        let d = unit_nmos();
        assert!(d.gate_capacitance().femtofarads() > 0.3);
        assert!(d.drain_capacitance().femtofarads() > 0.3);
        let wide = d.with_width(Length::from_micrometers(2.0));
        assert!(wide.gate_capacitance() > d.gate_capacitance());
    }

    #[test]
    fn display_kind() {
        assert_eq!(MosKind::Nmos.to_string(), "NMOS");
        assert_eq!(MosKind::Pmos.to_string(), "PMOS");
    }
}
