//! The Sakurai–Newton alpha-power-law MOSFET model.
//!
//! Short-channel devices do not follow the square law; the alpha-power law
//! (`Id ∝ (Vgs − Vth)^α` with `α ≈ 1.3`) captures velocity saturation with
//! two fitted parameters and is the standard first-order model for delay and
//! drive-strength reasoning. Below threshold the current decays
//! exponentially with the usual subthreshold slope; the two regions are
//! stitched continuously so transient integration never sees a current jump.

use srlr_units::{
    Capacitance, CapacitancePerArea, CapacitancePerLength, Current, CurrentPerLength, Length,
    Voltage,
};

/// Thermal voltage kT/q at 300 K.
pub const THERMAL_VOLTAGE: Voltage = Voltage::new(0.02585);

/// Process parameters of one MOSFET flavour (NMOS or PMOS), in the source
/// frame: all voltages are magnitudes relative to the source terminal, so
/// the same equations serve both polarities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetModel {
    /// Zero-bias threshold voltage (magnitude).
    pub vth0: Voltage,
    /// Drive factor: saturation current per unit W/L ratio at 1 V overdrive.
    pub drive_factor: Current,
    /// Velocity-saturation index alpha (2.0 = long channel, ~1.2–1.4 at 45 nm).
    // srlr-lint: allow(raw-f64-api, reason = "dimensionless fitted exponent of the alpha-power law")
    pub alpha: f64,
    /// Saturation-voltage factor: `Vdsat = kv * (Vgs − Vth)^(alpha/2)`.
    // srlr-lint: allow(raw-f64-api, reason = "fitted factor with the fractional unit V^(1-alpha/2); no newtype expresses it")
    pub vdsat_factor: f64,
    /// Channel-length modulation, 1/V (`Id` grows by `lambda·Vds` in saturation).
    // srlr-lint: allow(raw-f64-api, reason = "1/V coefficient; only ever multiplies a voltage difference in volts")
    pub lambda: f64,
    /// Subthreshold slope factor n (slope = n · ln(10) · kT/q per decade).
    // srlr-lint: allow(raw-f64-api, reason = "dimensionless ideality factor")
    pub subthreshold_n: f64,
    /// Gate capacitance per unit gate area, including poly depletion.
    pub cox: CapacitancePerArea,
    /// Overlap + fringe gate capacitance per unit gate width.
    pub c_overlap_per_width: CapacitancePerLength,
    /// Drain/source junction capacitance per unit width.
    pub c_junction_per_width: CapacitancePerLength,
    /// Off-state (Vgs = 0, Vds = VDD) leakage per unit width — the
    /// datasheet `I_off` spec; the smooth subthreshold tail above is for
    /// transient continuity, not leakage-power accounting.
    pub off_current_per_width: CurrentPerLength,
}

impl MosfetModel {
    /// NMOS parameters for the 45nm-SOI-like process.
    ///
    /// Calibrated to ≈0.7 mA/um drive at Vgs = Vds = 0.8 V.
    pub fn nmos_soi45() -> Self {
        Self {
            vth0: Voltage::from_millivolts(320.0),
            drive_factor: Current::from_microamperes(82.0),
            alpha: 1.3,
            vdsat_factor: 0.9,
            lambda: 0.15,
            subthreshold_n: 1.4,
            cox: CapacitancePerArea::from_farads_per_square_meter(1.5e-2),
            c_overlap_per_width: CapacitancePerLength::from_farads_per_meter(0.35e-9),
            c_junction_per_width: CapacitancePerLength::from_farads_per_meter(0.5e-9),
            // 30 nA/um, a typical standard-Vt 45 nm spec.
            off_current_per_width: CurrentPerLength::from_nanoamperes_per_micrometer(30.0),
        }
    }

    /// PMOS parameters for the 45nm-SOI-like process (≈0.45x NMOS drive).
    pub fn pmos_soi45() -> Self {
        Self {
            vth0: Voltage::from_millivolts(340.0),
            drive_factor: Current::from_microamperes(38.0),
            alpha: 1.35,
            vdsat_factor: 1.0,
            lambda: 0.18,
            subthreshold_n: 1.45,
            cox: CapacitancePerArea::from_farads_per_square_meter(1.5e-2),
            c_overlap_per_width: CapacitancePerLength::from_farads_per_meter(0.35e-9),
            c_junction_per_width: CapacitancePerLength::from_farads_per_meter(0.55e-9),
            off_current_per_width: CurrentPerLength::from_nanoamperes_per_micrometer(20.0),
        }
    }

    /// Saturation drain-source voltage at the given overdrive.
    ///
    /// Returns zero for non-positive overdrive (the device is then in its
    /// subthreshold region and `Vdsat` is not meaningful).
    pub fn vdsat(&self, overdrive: Voltage) -> Voltage {
        if overdrive.volts() <= 0.0 {
            return Voltage::zero();
        }
        Voltage::from_volts(self.vdsat_factor * overdrive.volts().powf(self.alpha / 2.0))
    }

    /// Drain current per unit `W/L` ratio, in the source frame.
    ///
    /// `vgs` and `vds` are magnitudes (PMOS callers negate externally);
    /// `vds` must be non-negative — the caller canonicalises terminal order.
    /// The result is continuous in both arguments across the
    /// subthreshold/strong-inversion boundary and the linear/saturation
    /// boundary.
    ///
    /// # Panics
    ///
    /// Panics if `vds` is negative (callers must swap drain and source
    /// first; MOSFETs are symmetric devices).
    pub fn drain_current_per_ratio(&self, vgs: Voltage, vds: Voltage) -> Current {
        assert!(
            vds.volts() >= 0.0,
            "drain_current_per_ratio requires canonical vds >= 0"
        );
        // srlr-lint: allow(float-eq, reason = "exact-zero short circuit: zero bias means exactly zero current, not approximately")
        if vds.volts() == 0.0 {
            return Current::zero();
        }
        let overdrive = vgs - self.vth0;
        // Smoothing width around threshold: a couple of thermal voltages.
        let smooth = THERMAL_VOLTAGE.volts() * self.subthreshold_n;
        // Effective overdrive via softplus, continuous through Vth.
        let x = overdrive.volts() / smooth;
        let eff_overdrive = if x > 30.0 {
            overdrive.volts()
        } else {
            smooth * x.exp().ln_1p()
        };

        let vdsat = self.vdsat_factor * eff_overdrive.powf(self.alpha / 2.0);
        let i_sat = self.drive_factor.amperes() * eff_overdrive.powf(self.alpha);

        let vds_v = vds.volts();
        let i = if vds_v >= vdsat {
            // Saturation with channel-length modulation.
            i_sat * (1.0 + self.lambda * (vds_v - vdsat))
        } else {
            // Sakurai-Newton linear region; equals i_sat at vds = vdsat.
            let r = vds_v / vdsat;
            i_sat * r * (2.0 - r)
        };

        // Deep-subthreshold floor: scale down smoothly so currents vanish
        // as vgs drops far below threshold instead of following the
        // softplus tail alone.
        let i = if x < 0.0 {
            // At vgs == vth the softplus already halves the overdrive, so
            // only damp the exponential region below threshold.
            i * (x / self.subthreshold_n).exp().min(1.0)
        } else {
            i
        };
        Current::from_amperes(i)
    }

    /// Gate capacitance of a device with the given drawn width and length.
    pub fn gate_capacitance(&self, width: Length, length: Length) -> Capacitance {
        self.cox * (width * length) + self.c_overlap_per_width * width
    }

    /// Drain (or source) diffusion capacitance for the given drawn width.
    pub fn junction_capacitance(&self, width: Length) -> Capacitance {
        self.c_junction_per_width * width
    }

    /// Returns a copy with the threshold voltage shifted by `dvth`
    /// (process variation) and the drive factor scaled by `drive_mult`.
    /// Off-current follows the threshold shift exponentially (one
    /// subthreshold slope per `n·kT/q` of shift).
    // srlr-lint: allow(raw-f64-api, reason = "drive_mult is a dimensionless multiplier on the drive factor")
    #[must_use]
    // srlr-lint: allow(raw-f64-api, reason = "drive multiplier is a dimensionless variation factor")
    pub fn with_variation(&self, dvth: Voltage, drive_mult: f64) -> Self {
        let slope = self.subthreshold_n * THERMAL_VOLTAGE.volts();
        Self {
            vth0: self.vth0 + dvth,
            drive_factor: self.drive_factor * drive_mult,
            off_current_per_width: self.off_current_per_width * (-dvth.volts() / slope).exp(),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> MosfetModel {
        MosfetModel::nmos_soi45()
    }

    #[test]
    fn nominal_drive_current_magnitude() {
        // W = 1 um, L = 45 nm -> ratio 22.2; expect roughly 0.7 mA at full gate.
        let m = nmos();
        let per_ratio =
            m.drain_current_per_ratio(Voltage::from_volts(0.8), Voltage::from_volts(0.8));
        let id = per_ratio * (1.0e-6 / 45e-9);
        assert!(
            id.milliamperes() > 0.4 && id.milliamperes() < 1.2,
            "unrealistic drive current {id}"
        );
    }

    #[test]
    fn current_increases_with_vgs() {
        let m = nmos();
        let vds = Voltage::from_volts(0.4);
        let mut last = Current::zero();
        for mv in (100..=800).step_by(50) {
            let i = m.drain_current_per_ratio(Voltage::from_millivolts(f64::from(mv)), vds);
            assert!(i >= last, "current must be monotone in vgs");
            last = i;
        }
    }

    #[test]
    fn current_increases_with_vds_up_to_saturation() {
        let m = nmos();
        let vgs = Voltage::from_volts(0.8);
        let mut last = Current::zero();
        for mv in (0..=800).step_by(25) {
            let i = m.drain_current_per_ratio(vgs, Voltage::from_millivolts(f64::from(mv)));
            assert!(i >= last * 0.9999, "current must be ~monotone in vds");
            last = i;
        }
    }

    #[test]
    fn zero_vds_gives_zero_current() {
        let m = nmos();
        let i = m.drain_current_per_ratio(Voltage::from_volts(0.8), Voltage::zero());
        assert_eq!(i, Current::zero());
    }

    #[test]
    fn subthreshold_current_is_small_but_nonzero() {
        let m = nmos();
        let on = m.drain_current_per_ratio(Voltage::from_volts(0.8), Voltage::from_volts(0.4));
        let off = m.drain_current_per_ratio(Voltage::from_volts(0.1), Voltage::from_volts(0.4));
        assert!(off.amperes() > 0.0);
        assert!(off.amperes() < on.amperes() * 1e-3, "off {off} vs on {on}");
    }

    #[test]
    fn continuity_across_threshold() {
        // No jumps bigger than a few percent per millivolt near Vth.
        let m = nmos();
        let vds = Voltage::from_volts(0.3);
        let mut last: Option<f64> = None;
        for step in 0..200 {
            let vgs = Voltage::from_millivolts(220.0 + f64::from(step));
            let i = m.drain_current_per_ratio(vgs, vds).amperes();
            if let Some(prev) = last {
                assert!(
                    (i - prev).abs() <= prev.max(1e-12) * 0.12,
                    "current jump at vgs={vgs}: {prev} -> {i}"
                );
            }
            last = Some(i);
        }
    }

    #[test]
    fn continuity_across_vdsat() {
        let m = nmos();
        let vgs = Voltage::from_volts(0.6);
        let vdsat = m.vdsat(vgs - m.vth0);
        let eps = Voltage::from_microvolts(10.0);
        let below = m.drain_current_per_ratio(vgs, vdsat - eps).amperes();
        let above = m.drain_current_per_ratio(vgs, vdsat + eps).amperes();
        assert!((below - above).abs() < below * 1e-3);
    }

    #[test]
    #[should_panic(expected = "canonical vds")]
    fn negative_vds_is_rejected() {
        let m = nmos();
        let _ = m.drain_current_per_ratio(Voltage::from_volts(0.8), Voltage::from_volts(-0.1));
    }

    #[test]
    fn variation_shifts_threshold_and_drive() {
        let m = nmos();
        let varied = m.with_variation(Voltage::from_millivolts(50.0), 0.9);
        assert_eq!(varied.vth0, Voltage::from_millivolts(370.0));
        let base = m.drain_current_per_ratio(Voltage::from_volts(0.8), Voltage::from_volts(0.8));
        let slow =
            varied.drain_current_per_ratio(Voltage::from_volts(0.8), Voltage::from_volts(0.8));
        assert!(slow < base);
    }

    #[test]
    fn pmos_is_weaker_than_nmos() {
        let n = MosfetModel::nmos_soi45();
        let p = MosfetModel::pmos_soi45();
        let vg = Voltage::from_volts(0.8);
        let vd = Voltage::from_volts(0.8);
        assert!(p.drain_current_per_ratio(vg, vd) < n.drain_current_per_ratio(vg, vd));
    }

    #[test]
    fn gate_capacitance_scales_with_area() {
        let m = nmos();
        let small =
            m.gate_capacitance(Length::from_micrometers(0.5), Length::from_nanometers(45.0));
        let big = m.gate_capacitance(Length::from_micrometers(1.0), Length::from_nanometers(45.0));
        assert!(big.femtofarads() > small.femtofarads() * 1.9);
        // Around 1 fF/um of width including overlap.
        assert!(big.femtofarads() > 0.5 && big.femtofarads() < 2.0);
    }

    #[test]
    fn vdsat_zero_below_threshold() {
        let m = nmos();
        assert_eq!(m.vdsat(Voltage::from_volts(-0.1)), Voltage::zero());
    }
}
