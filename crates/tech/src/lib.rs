//! A 45nm-SOI-like technology model for the SRLR reproduction.
//!
//! The paper's circuits were designed against a foundry 45 nm SOI CMOS PDK.
//! That PDK is proprietary, so this crate provides the closest open
//! substitute: first-order, continuous device and wire models that preserve
//! every dependency the paper's arguments rely on —
//!
//! * drain current that grows with overdrive and weakens with threshold
//!   voltage ([`mosfet`], Sakurai–Newton alpha-power law with a smooth
//!   subthreshold tail),
//! * wire resistance/capacitance derived from drawn geometry ([`wire`]),
//!   giving the RC channel attenuation that produces the low swing,
//! * die-to-die ("global") process corners and within-die ("local")
//!   Pelgrom mismatch ([`corner`], [`variation`]), and a deterministic,
//!   seedable Monte Carlo sampler ([`montecarlo`]),
//! * an Oguey-style process-tolerant bias current reference and the adaptive
//!   swing-voltage generator built on it ([`bias`]).
//!
//! Everything is bundled by [`Technology`], whose [`Technology::soi45`]
//! constructor is calibrated so the nominal SRLR design point reproduces the
//! paper's measured numbers (4.1 Gb/s, 40.4 fJ/bit/mm at 0.8 V).
//!
//! # Examples
//!
//! ```
//! use srlr_tech::{Technology, ProcessCorner};
//! use srlr_units::Voltage;
//!
//! let tech = Technology::soi45();
//! assert_eq!(tech.vdd, Voltage::from_volts(0.8));
//!
//! // A slow corner raises thresholds and weakens drive.
//! let ss = ProcessCorner::SlowSlow.variation(&tech);
//! assert!(ss.dvth_n.volts() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Subthreshold bias generators for the adaptive low-swing driver.
pub mod bias;
/// Process-corner definitions (TT/FF/SS/FS/SF).
pub mod corner;
/// Sized device instances built on the MOSFET model.
pub mod device;
/// Deterministic Monte Carlo sampling of global and local variation.
pub mod montecarlo;
/// The continuous compact MOSFET drain-current model.
pub mod mosfet;
/// Self-resetting repeater device-level parameters.
pub mod repeater;
/// The 45nm SOI technology card.
pub mod technology;
/// Operating-temperature modelling.
pub mod temperature;
/// Global (die-to-die) and local (mismatch) variation models.
pub mod variation;
/// Wire geometry and distributed RC extraction.
pub mod wire;

pub use bias::{AdaptiveSwingBias, OgueyReference};
pub use corner::ProcessCorner;
pub use device::{Device, MosKind};
pub use montecarlo::{DieSampler, GaussianRng, MismatchSampler, MonteCarlo};
pub use mosfet::MosfetModel;
pub use technology::Technology;
pub use temperature::Temperature;
pub use variation::{GlobalVariation, LocalMismatch};
pub use wire::{WireGeometry, WireRc};
