//! Process variation: die-to-die (global) shifts and within-die (local)
//! mismatch.
//!
//! The paper's Sec. III is entirely about *global* variation: a whole die
//! comes out slow or fast, shifting every SRLR stage in the same direction,
//! which is what makes the single-delay-cell pulse-width drift accumulate
//! monotonically down the link. Local mismatch adds small per-device
//! scatter on top (Pelgrom's law: `σ(Vth) = A_vt / sqrt(W·L)`).

use srlr_units::{Length, Voltage};

/// One die's worth of global (die-to-die) process variation.
///
/// All SRLR stages on a die share one `GlobalVariation`; Monte Carlo
/// sampling draws a fresh one per simulated die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalVariation {
    /// NMOS threshold shift (positive = slower NMOS).
    pub dvth_n: Voltage,
    /// PMOS threshold shift (positive magnitude = slower PMOS).
    pub dvth_p: Voltage,
    /// NMOS drive-factor multiplier (mobility/geometry lumped).
    // srlr-lint: allow(raw-f64-api, reason = "dimensionless multiplier on the drive factor")
    pub drive_mult_n: f64,
    /// PMOS drive-factor multiplier.
    // srlr-lint: allow(raw-f64-api, reason = "dimensionless multiplier on the drive factor")
    pub drive_mult_p: f64,
    /// Wire resistance multiplier (line thinning/thickening).
    // srlr-lint: allow(raw-f64-api, reason = "dimensionless multiplier on wire resistance")
    pub wire_r_mult: f64,
    /// Wire capacitance multiplier (dielectric/spacing variation).
    // srlr-lint: allow(raw-f64-api, reason = "dimensionless multiplier on wire capacitance")
    pub wire_c_mult: f64,
}

impl GlobalVariation {
    /// The typical (no-variation) die.
    pub fn nominal() -> Self {
        Self {
            dvth_n: Voltage::zero(),
            dvth_p: Voltage::zero(),
            drive_mult_n: 1.0,
            drive_mult_p: 1.0,
            wire_r_mult: 1.0,
            wire_c_mult: 1.0,
        }
    }

    /// A scalar "speed" summary: positive means the die is faster than
    /// typical (lower thresholds / stronger drive), negative slower.
    /// Useful for sorting Monte Carlo populations in diagnostics.
    // srlr-lint: allow(raw-f64-api, reason = "dimensionless ranking score for diagnostics")
    pub fn speed_index(&self) -> f64 {
        let vth_term = -(self.dvth_n.volts() + self.dvth_p.volts()) / 0.060;
        let drive_term = (self.drive_mult_n - 1.0 + self.drive_mult_p - 1.0) / 0.10;
        vth_term + drive_term
    }

    /// Checks every field is finite and the multipliers are positive.
    pub fn is_physical(&self) -> bool {
        self.dvth_n.is_finite()
            && self.dvth_p.is_finite()
            && self.drive_mult_n > 0.0
            && self.drive_mult_p > 0.0
            && self.wire_r_mult > 0.0
            && self.wire_c_mult > 0.0
            && self.drive_mult_n.is_finite()
            && self.drive_mult_p.is_finite()
            && self.wire_r_mult.is_finite()
            && self.wire_c_mult.is_finite()
    }
}

impl Default for GlobalVariation {
    fn default() -> Self {
        Self::nominal()
    }
}

/// Pelgrom-law local mismatch parameters for one device flavour.
///
/// `σ(ΔVth)` of a device of drawn dimensions `W × L` is
/// `a_vt / sqrt(W·L)`; a matched pair differs by `sqrt(2)` of that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalMismatch {
    /// Pelgrom threshold-matching coefficient, in V·m (typ. ~2 mV·um at 45 nm).
    // srlr-lint: allow(raw-f64-api, reason = "Pelgrom coefficient in V*m; no newtype exists for this compound unit")
    pub a_vt: f64,
    /// Relative drive-factor mismatch coefficient, in √(m²) units
    /// (`σ(Δβ/β) = a_beta / sqrt(W·L)`).
    // srlr-lint: allow(raw-f64-api, reason = "Pelgrom coefficient in sqrt(m^2); no newtype exists for this compound unit")
    pub a_beta: f64,
}

impl LocalMismatch {
    /// Typical 45 nm values: `A_vt ≈ 2 mV·um`, `A_beta ≈ 1 %·um`.
    pub fn soi45() -> Self {
        Self {
            a_vt: 2.0e-3 * 1.0e-6,
            a_beta: 0.01 * 1.0e-6,
        }
    }

    /// Standard deviation of the threshold shift for a `W × L` device.
    ///
    /// # Panics
    ///
    /// Panics if the area is not strictly positive.
    pub fn sigma_vth(&self, width: Length, length: Length) -> Voltage {
        let area = (width * length).square_meters();
        assert!(area > 0.0, "device area must be positive");
        Voltage::from_volts(self.a_vt / area.sqrt())
    }

    /// Standard deviation of the relative drive mismatch for a `W × L`
    /// device.
    ///
    /// # Panics
    ///
    /// Panics if the area is not strictly positive.
    // srlr-lint: allow(raw-f64-api, reason = "relative (dimensionless) drive mismatch sigma")
    pub fn sigma_drive(&self, width: Length, length: Length) -> f64 {
        let area = (width * length).square_meters();
        assert!(area > 0.0, "device area must be positive");
        self.a_beta / area.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_identity() {
        let v = GlobalVariation::nominal();
        assert_eq!(v.dvth_n, Voltage::zero());
        assert_eq!(v.drive_mult_n, 1.0);
        assert!(v.is_physical());
        assert_eq!(v.speed_index(), 0.0);
        assert_eq!(GlobalVariation::default(), v);
    }

    #[test]
    fn speed_index_sign_convention() {
        let fast = GlobalVariation {
            dvth_n: Voltage::from_millivolts(-40.0),
            dvth_p: Voltage::from_millivolts(-40.0),
            drive_mult_n: 1.05,
            drive_mult_p: 1.05,
            ..GlobalVariation::nominal()
        };
        assert!(fast.speed_index() > 0.0);
        let slow = GlobalVariation {
            dvth_n: Voltage::from_millivolts(40.0),
            dvth_p: Voltage::from_millivolts(40.0),
            ..GlobalVariation::nominal()
        };
        assert!(slow.speed_index() < 0.0);
    }

    #[test]
    fn unphysical_multiplier_detected() {
        let broken = GlobalVariation {
            wire_r_mult: -1.0,
            ..GlobalVariation::nominal()
        };
        assert!(!broken.is_physical());
        let nan = GlobalVariation {
            dvth_n: Voltage::from_volts(f64::NAN),
            ..GlobalVariation::nominal()
        };
        assert!(!nan.is_physical());
    }

    #[test]
    fn pelgrom_sigma_shrinks_with_area() {
        let lm = LocalMismatch::soi45();
        let l45 = Length::from_nanometers(45.0);
        let small = lm.sigma_vth(Length::from_micrometers(0.2), l45);
        let big = lm.sigma_vth(Length::from_micrometers(2.0), l45);
        assert!(small > big);
        // sqrt(10) ratio for 10x area.
        assert!((small.volts() / big.volts() - 10f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn pelgrom_sigma_magnitude_is_plausible() {
        // A minimum-ish 0.2 um x 45 nm device: sigma ~ 21 mV.
        let lm = LocalMismatch::soi45();
        let sigma = lm.sigma_vth(Length::from_micrometers(0.2), Length::from_nanometers(45.0));
        assert!(
            sigma.millivolts() > 5.0 && sigma.millivolts() < 50.0,
            "{sigma}"
        );
    }

    #[test]
    #[should_panic(expected = "area must be positive")]
    fn zero_area_rejected() {
        let _ = LocalMismatch::soi45().sigma_vth(Length::zero(), Length::from_nanometers(45.0));
    }

    #[test]
    fn sigma_drive_is_small_fraction() {
        let lm = LocalMismatch::soi45();
        let s = lm.sigma_drive(Length::from_micrometers(1.0), Length::from_nanometers(45.0));
        assert!(s > 0.0 && s < 0.2);
    }
}
