//! Deterministic, seedable Monte Carlo sampling of process variation.
//!
//! The paper's Fig. 6 is built from 1000-run Monte Carlo simulations; this
//! module reproduces that experiment protocol. Gaussian variates come from
//! a built-in Box–Muller transform over [`srlr_rng`]'s xoshiro256++
//! streams, so no statistics crate is needed and every stream is fully
//! determined by its seed.
//!
//! # Counter-based trials
//!
//! Trial `N` of an experiment must not depend on trials `0..N-1`, or the
//! trial loop can never be fanned out across cores. [`MonteCarlo`]
//! therefore derives an independent random stream per trial index
//! (SplitMix64-style mix of `(seed, trial)` via
//! [`srlr_rng::stream_seed`]): [`MonteCarlo::die_rng`] exposes the raw
//! stream and [`MonteCarlo::die`] wraps it in a [`DieSampler`] that draws
//! the die's global variation followed by its per-device local mismatch.
//! The sequential API ([`MonteCarlo::sample_die`]) is a thin wrapper that
//! advances an internal trial counter, so serial and parallel callers see
//! bit-identical dice.

use crate::technology::Technology;
use crate::variation::{GlobalVariation, LocalMismatch};
use srlr_rng::{stream_seed, Xoshiro256pp};
use srlr_units::{Length, Voltage};

/// A bare deterministic Gaussian stream (Box–Muller over a seeded
/// xoshiro256++ generator) for callers that need noise without the full
/// process-variation machinery (e.g. timing jitter).
#[derive(Debug, Clone)]
pub struct GaussianRng {
    rng: Xoshiro256pp,
    spare: Option<f64>,
}

impl GaussianRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoshiro256pp::new(seed),
            spare: None,
        }
    }

    /// Creates the stream for substream `index` of `seed` — the
    /// counter-based derivation used for per-trial randomness.
    pub fn for_stream(seed: u64, index: u64) -> Self {
        Self::new(stream_seed(seed, index))
    }

    /// Draws one standard Gaussian variate (Box–Muller, cached pair).
    // srlr-lint: allow(raw-f64-api, reason = "a standard normal variate is dimensionless")
    pub fn sample(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box-Muller needs u1 in (0, 1]; next_f64() yields [0, 1).
        let u1: f64 = 1.0 - self.rng.next_f64();
        let u2: f64 = self.rng.next_f64();
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = 2.0 * core::f64::consts::PI * u2;
        self.spare = Some(radius * angle.sin());
        radius * angle.cos()
    }
}

/// A source of per-device local mismatch draws. Implemented both by the
/// sequential [`MonteCarlo`] stream and by the per-trial [`DieSampler`],
/// so chain elaboration can run against either.
pub trait MismatchSampler {
    /// Samples a local threshold shift for a device of the given drawn
    /// dimensions.
    fn sample_local_vth(&mut self, width: Length, length: Length) -> Voltage;

    /// Samples a local drive multiplier for a device of the given drawn
    /// dimensions; must stay positive.
    // srlr-lint: allow(raw-f64-api, reason = "local drive mismatch is a dimensionless multiplier")
    fn sample_local_drive(&mut self, width: Length, length: Length) -> f64;
}

/// The per-technology variation magnitudes shared by every sampler.
#[derive(Debug, Clone, Copy)]
struct VariationSigmas {
    sigma_vth: Voltage,
    sigma_drive: f64,
    sigma_wire: f64,
    mismatch: LocalMismatch,
}

impl VariationSigmas {
    fn of(tech: &Technology) -> Self {
        Self {
            sigma_vth: tech.global_sigma_vth,
            sigma_drive: tech.global_sigma_drive,
            sigma_wire: tech.global_sigma_wire,
            mismatch: tech.local_mismatch,
        }
    }
}

/// All randomness of one Monte Carlo trial: the die's global variation
/// plus every per-device local-mismatch draw, consumed in elaboration
/// order from one stream that is a pure function of `(seed, trial)`.
#[derive(Debug, Clone)]
pub struct DieSampler {
    rng: GaussianRng,
    sigmas: VariationSigmas,
}

impl DieSampler {
    /// Samples this trial's global (die-to-die) variation. Call this
    /// first: the global draws lead the stream, followed by local
    /// mismatch in elaboration order.
    pub fn global_variation(&mut self) -> GlobalVariation {
        sample_global(&mut self.rng, &self.sigmas)
    }

    /// Samples a local threshold shift for a device of the given drawn
    /// dimensions.
    pub fn local_vth(&mut self, width: Length, length: Length) -> Voltage {
        let sigma = self.sigmas.mismatch.sigma_vth(width, length);
        Voltage::from_volts(self.rng.sample() * sigma.volts())
    }

    /// Samples a local drive multiplier for a device of the given drawn
    /// dimensions; clamped to stay positive.
    // srlr-lint: allow(raw-f64-api, reason = "local drive mismatch is a dimensionless multiplier")
    pub fn local_drive(&mut self, width: Length, length: Length) -> f64 {
        let sigma = self.sigmas.mismatch.sigma_drive(width, length);
        (1.0 + self.rng.sample() * sigma).max(0.1)
    }
}

impl MismatchSampler for DieSampler {
    fn sample_local_vth(&mut self, width: Length, length: Length) -> Voltage {
        self.local_vth(width, length)
    }

    fn sample_local_drive(&mut self, width: Length, length: Length) -> f64 {
        self.local_drive(width, length)
    }
}

fn sample_global(rng: &mut GaussianRng, sigmas: &VariationSigmas) -> GlobalVariation {
    // Multipliers are clamped away from zero so extreme tails stay
    // physical; +/-4 sigma is far beyond the corners we model.
    let clamp_mult = |m: f64| m.clamp(0.5, 1.5);
    GlobalVariation {
        dvth_n: Voltage::from_volts(rng.sample() * sigmas.sigma_vth.volts()),
        dvth_p: Voltage::from_volts(rng.sample() * sigmas.sigma_vth.volts()),
        drive_mult_n: clamp_mult(1.0 + rng.sample() * sigmas.sigma_drive),
        drive_mult_p: clamp_mult(1.0 + rng.sample() * sigmas.sigma_drive),
        wire_r_mult: clamp_mult(1.0 + rng.sample() * sigmas.sigma_wire),
        wire_c_mult: clamp_mult(1.0 + rng.sample() * sigmas.sigma_wire),
    }
}

/// A deterministic Monte Carlo sampler over [`GlobalVariation`] dice, with
/// helpers for drawing per-device local mismatch.
///
/// # Examples
///
/// ```
/// use srlr_tech::{MonteCarlo, Technology};
///
/// let tech = Technology::soi45();
/// let mut mc = MonteCarlo::new(&tech, 42);
/// let dice: Vec<_> = mc.dice(1000).collect();
/// assert_eq!(dice.len(), 1000);
/// assert!(dice.iter().all(|d| d.is_physical()));
///
/// // Trial randomness is counter-based: die N is the same whether it is
/// // drawn sequentially or addressed directly.
/// assert_eq!(dice[7], MonteCarlo::new(&tech, 42).sample_die_at(7));
/// ```
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    seed: u64,
    /// The legacy sequential stream, used by the free-running draw
    /// helpers (`standard_gaussian`, `sample_local_vth`, ...).
    gauss: GaussianRng,
    sigmas: VariationSigmas,
    next_trial: u64,
}

impl MonteCarlo {
    /// Creates a sampler for the given technology, seeded deterministically.
    pub fn new(tech: &Technology, seed: u64) -> Self {
        Self {
            seed,
            gauss: GaussianRng::new(seed),
            sigmas: VariationSigmas::of(tech),
            next_trial: 0,
        }
    }

    /// The experiment seed this sampler was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The independent Gaussian stream of trial `trial` — a pure function
    /// of `(seed, trial)`, shared by no other trial.
    pub fn die_rng(&self, trial: u64) -> GaussianRng {
        GaussianRng::for_stream(self.seed, trial)
    }

    /// The full per-trial sampler: global variation first, then local
    /// mismatch in elaboration order, all from [`Self::die_rng`].
    pub fn die(&self, trial: u64) -> DieSampler {
        DieSampler {
            rng: self.die_rng(trial),
            sigmas: self.sigmas,
        }
    }

    /// Samples trial `trial`'s global variation directly — independent of
    /// every other trial, so callers may evaluate trials in any order or
    /// in parallel.
    pub fn sample_die_at(&self, trial: u64) -> GlobalVariation {
        self.die(trial).global_variation()
    }

    /// Draws one standard Gaussian variate from the sequential stream
    /// (Box–Muller, cached pair).
    // srlr-lint: allow(raw-f64-api, reason = "a standard normal variate is dimensionless")
    pub fn standard_gaussian(&mut self) -> f64 {
        self.gauss.sample()
    }

    /// Samples the next die's global variation. This is a thin wrapper
    /// over [`Self::sample_die_at`] with an internal trial counter, so
    /// the N-th call returns exactly trial N's die.
    pub fn sample_die(&mut self) -> GlobalVariation {
        let trial = self.next_trial;
        self.next_trial += 1;
        self.sample_die_at(trial)
    }

    /// An iterator over `n` sampled dice (advancing the trial counter).
    pub fn dice(&mut self, n: usize) -> impl Iterator<Item = GlobalVariation> + '_ {
        (0..n).map(move |_| self.sample_die())
    }

    /// Samples a local threshold shift for a device of the given drawn
    /// dimensions from the sequential stream.
    pub fn sample_local_vth(&mut self, width: Length, length: Length) -> Voltage {
        let sigma = self.sigmas.mismatch.sigma_vth(width, length);
        Voltage::from_volts(self.gauss.sample() * sigma.volts())
    }

    /// Samples a local drive multiplier for a device of the given drawn
    /// dimensions from the sequential stream; clamped to stay positive.
    // srlr-lint: allow(raw-f64-api, reason = "local drive mismatch is a dimensionless multiplier")
    pub fn sample_local_drive(&mut self, width: Length, length: Length) -> f64 {
        let sigma = self.sigmas.mismatch.sigma_drive(width, length);
        (1.0 + self.gauss.sample() * sigma).max(0.1)
    }
}

impl MismatchSampler for MonteCarlo {
    fn sample_local_vth(&mut self, width: Length, length: Length) -> Voltage {
        MonteCarlo::sample_local_vth(self, width, length)
    }

    fn sample_local_drive(&mut self, width: Length, length: Length) -> f64 {
        MonteCarlo::sample_local_drive(self, width, length)
    }
}

/// Summary statistics of an error-counting Monte Carlo experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorProbability {
    /// Number of failing trials.
    pub failures: usize,
    /// Total number of trials.
    pub trials: usize,
}

impl ErrorProbability {
    /// Point estimate of the failure probability.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    // srlr-lint: allow(raw-f64-api, reason = "a probability is dimensionless")
    pub fn estimate(self) -> f64 {
        assert!(
            self.trials > 0,
            "error probability needs at least one trial"
        );
        self.failures as f64 / self.trials as f64
    }

    /// Wilson-score 95 % upper bound on the failure probability — the
    /// honest number to report when zero failures were observed.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    // srlr-lint: allow(raw-f64-api, reason = "a probability is dimensionless")
    pub fn upper_bound_95(self) -> f64 {
        self.interval_95().1
    }

    /// Wilson-score 95 % lower bound on the failure probability.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    // srlr-lint: allow(raw-f64-api, reason = "a probability is dimensionless")
    pub fn lower_bound_95(self) -> f64 {
        self.interval_95().0
    }

    /// The two-sided Wilson-score 95 % confidence interval
    /// `(lower, upper)` on the failure probability, clamped to `[0, 1]`.
    /// This is the interval an exact (model-checked) probability is
    /// validated against.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    // srlr-lint: allow(raw-f64-api, reason = "a probability is dimensionless")
    pub fn interval_95(self) -> (f64, f64) {
        assert!(
            self.trials > 0,
            "error probability needs at least one trial"
        );
        let n = self.trials as f64;
        let p = self.failures as f64 / n;
        let z = 1.96_f64;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = p + z2 / (2.0 * n);
        let spread = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        (
            ((centre - spread) / denom).max(0.0),
            ((centre + spread) / denom).min(1.0),
        )
    }
}

impl core::fmt::Display for ErrorProbability {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}/{} ({:.3e})",
            self.failures,
            self.trials,
            self.estimate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler(seed: u64) -> MonteCarlo {
        MonteCarlo::new(&Technology::soi45(), seed)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<_> = sampler(7).dice(16).collect();
        let b: Vec<_> = sampler(7).dice(16).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = sampler(1).dice(8).collect();
        let b: Vec<_> = sampler(2).dice(8).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn sequential_wrapper_matches_direct_indexing() {
        let mut seq = sampler(2013);
        let direct = sampler(2013);
        for trial in 0..32u64 {
            assert_eq!(seq.sample_die(), direct.sample_die_at(trial));
        }
    }

    #[test]
    fn trial_streams_are_order_independent() {
        let mc = sampler(5);
        let forward: Vec<_> = (0..8).map(|t| mc.sample_die_at(t)).collect();
        let backward: Vec<_> = (0..8).rev().map(|t| mc.sample_die_at(t)).collect();
        for (i, die) in forward.iter().enumerate() {
            assert_eq!(*die, backward[7 - i]);
        }
    }

    #[test]
    fn adjacent_trials_give_distinct_physical_dice() {
        let mc = sampler(77);
        for trial in 0..64 {
            let a = mc.sample_die_at(trial);
            let b = mc.sample_die_at(trial + 1);
            assert_ne!(a, b, "trials {trial} and {} collide", trial + 1);
            assert!(a.is_physical());
        }
    }

    #[test]
    fn die_sampler_mismatch_is_deterministic() {
        let mc = sampler(9);
        let draw = |mut die: DieSampler| {
            let w = Length::from_micrometers(0.3);
            let l = Length::from_nanometers(45.0);
            let g = die.global_variation();
            let v = die.local_vth(w, l);
            let d = die.local_drive(w, l);
            (g, v, d)
        };
        assert_eq!(draw(mc.die(4)), draw(mc.die(4)));
        assert_ne!(draw(mc.die(4)), draw(mc.die(5)));
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut mc = sampler(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| mc.standard_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn dice_are_always_physical() {
        let mut mc = sampler(1234);
        for die in mc.dice(5000) {
            assert!(die.is_physical());
        }
    }

    #[test]
    fn vth_shifts_have_requested_spread() {
        let tech = Technology::soi45();
        let mut mc = MonteCarlo::new(&tech, 5);
        let n = 10_000;
        let shifts: Vec<f64> = (0..n).map(|_| mc.sample_die().dvth_n.volts()).collect();
        let var = shifts.iter().map(|x| x * x).sum::<f64>() / n as f64;
        let sigma = var.sqrt();
        let expect = tech.global_sigma_vth.volts();
        assert!((sigma - expect).abs() < expect * 0.1, "sigma = {sigma}");
    }

    #[test]
    fn local_mismatch_scales_with_area() {
        let mut mc = sampler(11);
        let n = 5000;
        let spread = |mc: &mut MonteCarlo, w: Length| {
            let v: Vec<f64> = (0..n)
                .map(|_| {
                    mc.sample_local_vth(w, Length::from_nanometers(45.0))
                        .volts()
                })
                .collect();
            (v.iter().map(|x| x * x).sum::<f64>() / n as f64).sqrt()
        };
        let small = spread(&mut mc, Length::from_micrometers(0.2));
        let large = spread(&mut mc, Length::from_micrometers(3.2));
        assert!(small > large * 2.0, "small {small} vs large {large}");
    }

    #[test]
    fn error_probability_estimate_and_bound() {
        let p = ErrorProbability {
            failures: 3,
            trials: 1000,
        };
        assert!((p.estimate() - 0.003).abs() < 1e-12);
        assert!(p.upper_bound_95() > p.estimate());
        assert!(p.upper_bound_95() < 0.02);

        let zero = ErrorProbability {
            failures: 0,
            trials: 1000,
        };
        assert_eq!(zero.estimate(), 0.0);
        // Rule-of-three-ish: upper bound near 3.8/n for Wilson at 95 %.
        assert!(zero.upper_bound_95() < 0.006);
        assert!(zero.upper_bound_95() > 0.001);
    }

    #[test]
    fn wilson_interval_brackets_the_estimate() {
        let p = ErrorProbability {
            failures: 30,
            trials: 1000,
        };
        let (lo, hi) = p.interval_95();
        assert_eq!(lo, p.lower_bound_95());
        assert_eq!(hi, p.upper_bound_95());
        assert!(lo < p.estimate() && p.estimate() < hi);
        assert!(lo > 0.0, "30/1000 is clearly away from zero");

        // Degenerate corners stay clamped to [0, 1].
        let zero = ErrorProbability {
            failures: 0,
            trials: 50,
        };
        assert_eq!(zero.lower_bound_95(), 0.0);
        let all = ErrorProbability {
            failures: 50,
            trials: 50,
        };
        assert_eq!(all.upper_bound_95(), 1.0);
        assert!(all.lower_bound_95() < 1.0);

        // More trials tighten the interval around the same estimate.
        let wide = ErrorProbability {
            failures: 3,
            trials: 100,
        };
        let tight = ErrorProbability {
            failures: 300,
            trials: 10_000,
        };
        let (wl, wh) = wide.interval_95();
        let (tl, th) = tight.interval_95();
        assert!(th - tl < wh - wl);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = ErrorProbability {
            failures: 0,
            trials: 0,
        }
        .estimate();
    }

    #[test]
    fn display_format() {
        let p = ErrorProbability {
            failures: 1,
            trials: 100,
        };
        assert_eq!(p.to_string(), "1/100 (1.000e-2)");
    }
}
