//! The [`Technology`] bundle: every process-level parameter in one place.

use crate::mosfet::MosfetModel;
use crate::variation::LocalMismatch;
use crate::wire::WireGeometry;
use srlr_units::{Length, Voltage};

/// A complete technology description.
///
/// The `soi45` instance is *calibrated*, not extracted from a PDK: its
/// parameters were chosen so the nominal SRLR design point lands on the
/// paper's measured numbers (see `DESIGN.md` §4). All higher-level crates
/// take a `&Technology`, so alternative processes can be explored by
/// constructing a modified copy.
///
/// # Examples
///
/// ```
/// use srlr_tech::Technology;
///
/// let tech = Technology::soi45();
/// let faster = Technology {
///     vdd: srlr_units::Voltage::from_volts(1.0),
///     ..tech
/// };
/// assert!(faster.vdd > tech.vdd);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Human-readable process name.
    pub name: &'static str,
    /// Nominal supply voltage.
    pub vdd: Voltage,
    /// Nominal low-swing target at the SRLR design point.
    pub nominal_swing: Voltage,
    /// NMOS model parameters.
    pub nmos: MosfetModel,
    /// PMOS model parameters.
    pub pmos: MosfetModel,
    /// Minimum drawn channel length.
    pub min_length: Length,
    /// Default link-wire geometry.
    pub wire: WireGeometry,
    /// Die-to-die threshold-voltage sigma (corners sit at 3 sigma).
    pub global_sigma_vth: Voltage,
    /// Die-to-die relative drive-strength sigma.
    // srlr-lint: allow(raw-f64-api, reason = "relative (dimensionless) sigma of the drive multiplier")
    pub global_sigma_drive: f64,
    /// Die-to-die relative wire R/C sigma.
    // srlr-lint: allow(raw-f64-api, reason = "relative (dimensionless) sigma of the wire R/C multipliers")
    pub global_sigma_wire: f64,
    /// Pelgrom local-mismatch coefficients.
    pub local_mismatch: LocalMismatch,
}

impl Technology {
    /// The 45nm-SOI-like process used throughout the reproduction.
    pub fn soi45() -> Self {
        Self {
            name: "soi45 (45nm SOI CMOS, calibrated first-order models)",
            vdd: Voltage::from_volts(0.8),
            nominal_swing: Voltage::from_millivolts(350.0),
            nmos: MosfetModel::nmos_soi45(),
            pmos: MosfetModel::pmos_soi45(),
            min_length: Length::from_nanometers(45.0),
            wire: WireGeometry::paper_default(),
            global_sigma_vth: Voltage::from_millivolts(20.0),
            global_sigma_drive: 0.04,
            global_sigma_wire: 0.05,
            local_mismatch: LocalMismatch::soi45(),
        }
    }
}

impl core::fmt::Display for Technology {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} @ VDD={}", self.name, self.vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soi45_core_parameters() {
        let t = Technology::soi45();
        assert_eq!(t.vdd, Voltage::from_volts(0.8));
        assert_eq!(t.min_length, Length::from_nanometers(45.0));
        assert!(t.nominal_swing < t.vdd);
        assert!(t.nmos.vth0 < t.vdd);
    }

    #[test]
    fn corner_magnitude_is_3_sigma_of_global() {
        let t = Technology::soi45();
        // 3 sigma of 20 mV = 60 mV corner shift: large enough to matter,
        // small compared to the 350 mV swing.
        let corner_shift = t.global_sigma_vth * 3.0;
        assert!(corner_shift.millivolts() > 30.0);
        assert!(corner_shift < t.nominal_swing);
    }

    #[test]
    fn display_names_process() {
        let t = Technology::soi45();
        let s = t.to_string();
        assert!(s.contains("45nm SOI"));
        assert!(s.contains("800 mV"));
    }

    #[test]
    fn struct_update_syntax_supported() {
        let t = Technology::soi45();
        let hv = Technology {
            vdd: Voltage::from_volts(1.0),
            ..t.clone()
        };
        assert_eq!(hv.nmos, t.nmos);
        assert_ne!(hv.vdd, t.vdd);
    }
}
