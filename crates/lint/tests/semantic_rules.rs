//! Seeded-violation fixtures for the semantic rule families.
//!
//! Each test builds a miniature workspace under `CARGO_TARGET_TMPDIR`
//! (inside the repository — the suite never writes outside it), plants
//! exactly one violation, and proves the rule fires, is suppressible
//! with a reasoned `// srlr-lint: allow(...)`, and rejects reason-less
//! suppressions.

use std::path::{Path, PathBuf};

use srlr_lint::rules::RuleId;
use srlr_lint::{run, write_api_locks, Config, Report};

/// A scratch workspace under the cargo target dir, wiped per test.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
        if root.exists() {
            std::fs::remove_dir_all(&root).expect("clear old fixture");
        }
        std::fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    /// Writes `content` at `rel` (creating parent dirs).
    fn write(&self, rel: &str, content: &str) -> &Self {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        std::fs::write(path, content).expect("write fixture file");
        self
    }

    fn run(&self) -> Report {
        run(&Config::new(&self.root)).expect("lint run succeeds")
    }

    /// Rules of the non-advisory fresh violations, with their paths.
    fn violations(&self) -> Vec<(RuleId, String)> {
        self.run()
            .failures()
            .map(|d| (d.rule, d.path.clone()))
            .collect()
    }
}

// -----------------------------------------------------------------
// raw-f64-api
// -----------------------------------------------------------------

#[test]
fn raw_f64_api_fires_and_is_suppressible() {
    let fx = Fixture::new("raw_f64_fires");
    fx.write(
        "crates/tech/src/lib.rs",
        "/// Swing in millivolts.\npub fn swing_mv(&self) -> f64 { 0.0 }\n",
    );
    assert_eq!(
        fx.violations(),
        [(RuleId::RawF64Api, "crates/tech/src/lib.rs".to_string())]
    );

    // A reasoned allow on the line above waves it through.
    fx.write(
        "crates/tech/src/lib.rs",
        "/// Swing in millivolts.\n\
         // srlr-lint: allow(raw-f64-api, reason = \"millivolt count for display\")\n\
         pub fn swing_mv(&self) -> f64 { 0.0 }\n",
    );
    assert!(fx.violations().is_empty(), "reasoned allow must suppress");

    // A reason-less allow is itself a violation and suppresses nothing.
    fx.write(
        "crates/tech/src/lib.rs",
        "/// Swing in millivolts.\n\
         // srlr-lint: allow(raw-f64-api)\n\
         pub fn swing_mv(&self) -> f64 { 0.0 }\n",
    );
    let rules: Vec<RuleId> = fx.violations().into_iter().map(|(r, _)| r).collect();
    assert!(rules.contains(&RuleId::BadSuppression), "{rules:?}");
    assert!(rules.contains(&RuleId::RawF64Api), "{rules:?}");
}

#[test]
fn raw_f64_api_ignores_undimensioned_crates_and_private_items() {
    let fx = Fixture::new("raw_f64_scope");
    fx.write(
        "crates/units/src/lib.rs",
        "/// Raw value.\npub fn value(&self) -> f64 { 0.0 }\n",
    );
    fx.write(
        "crates/tech/src/lib.rs",
        "fn private(x: f64) -> f64 { x }\n",
    );
    assert!(fx.violations().is_empty());
}

// -----------------------------------------------------------------
// crate-layering
// -----------------------------------------------------------------

#[test]
fn crate_layering_fires_on_upward_use_and_is_suppressible() {
    let fx = Fixture::new("layering_use");
    fx.write("crates/tech/src/lib.rs", "use srlr_noc::Network;\n");
    assert_eq!(
        fx.violations(),
        [(RuleId::CrateLayering, "crates/tech/src/lib.rs".to_string())]
    );

    fx.write(
        "crates/tech/src/lib.rs",
        "// srlr-lint: allow(crate-layering, reason = \"transitional import, tracked in #42\")\n\
         use srlr_noc::Network;\n",
    );
    assert!(fx.violations().is_empty(), "reasoned allow must suppress");

    fx.write(
        "crates/tech/src/lib.rs",
        "// srlr-lint: allow(crate-layering)\nuse srlr_noc::Network;\n",
    );
    let rules: Vec<RuleId> = fx.violations().into_iter().map(|(r, _)| r).collect();
    assert!(rules.contains(&RuleId::BadSuppression), "{rules:?}");
    assert!(rules.contains(&RuleId::CrateLayering), "{rules:?}");
}

#[test]
fn crate_layering_fires_on_manifest_dependency() {
    let fx = Fixture::new("layering_manifest");
    fx.write(
        "crates/circuit/src/lib.rs",
        "/// Simulator.\npub struct Sim;\n",
    );
    fx.write(
        "crates/circuit/Cargo.toml",
        "[package]\nname = \"srlr-circuit\"\n\n[dependencies]\nsrlr-link.workspace = true\n\n\
         [dev-dependencies]\nsrlr-noc.workspace = true\n",
    );
    // The [dependencies] entry fires; the [dev-dependencies] one is exempt.
    assert_eq!(
        fx.violations(),
        [(
            RuleId::CrateLayering,
            "crates/circuit/Cargo.toml".to_string()
        )]
    );
}

#[test]
fn crate_layering_allows_leaves_and_downward_deps() {
    let fx = Fixture::new("layering_ok");
    fx.write(
        "crates/noc/src/lib.rs",
        "use srlr_link::SrlrLink;\nuse srlr_units::Voltage;\nuse srlr_rng::Pcg;\n",
    );
    fx.write(
        "crates/noc/Cargo.toml",
        "[package]\nname = \"srlr-noc\"\n\n[dependencies]\nsrlr-link.workspace = true\n\
         srlr-telemetry.workspace = true\n",
    );
    assert!(fx.violations().is_empty());
}

// -----------------------------------------------------------------
// api-lock
// -----------------------------------------------------------------

#[test]
fn api_lock_full_cycle() {
    let fx = Fixture::new("api_lock_cycle");
    let base = "/// A device.\npub struct Device;\n\
                impl Device {\n    /// Its name.\n    pub fn name(&self) -> &str { \"d\" }\n}\n";
    fx.write("crates/tech/src/lib.rs", base);
    // No lock file yet: the crate is not locked.
    assert!(fx.violations().is_empty(), "unlocked crate must pass");

    // Snapshot the surface; the tree is now clean against its lock.
    let written = write_api_locks(&Config::new(&fx.root)).expect("write locks");
    assert_eq!(written.len(), 1);
    assert!(fx.root.join("crates/tech/api-lock.txt").exists());
    assert!(fx.violations().is_empty(), "fresh lock must match");

    // An unreviewed addition fires at the item's source line…
    fx.write(
        "crates/tech/src/lib.rs",
        &format!("{base}/// Unreviewed.\npub fn surprise() {{}}\n"),
    );
    assert_eq!(
        fx.violations(),
        [(RuleId::ApiLock, "crates/tech/src/lib.rs".to_string())]
    );

    // …and is suppressible with a reason while review is pending.
    fx.write(
        "crates/tech/src/lib.rs",
        &format!(
            "{base}/// Unreviewed.\n\
             // srlr-lint: allow(api-lock, reason = \"new helper, lock refresh in this PR\")\n\
             pub fn surprise() {{}}\n"
        ),
    );
    assert!(fx.violations().is_empty());

    // An unreviewed removal fires at the lock-file entry.
    fx.write(
        "crates/tech/src/lib.rs",
        "/// A device.\npub struct Device;\n",
    );
    let v = fx.violations();
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].0, RuleId::ApiLock);
    assert_eq!(v[0].1, "crates/tech/api-lock.txt");

    // Accepting the change with --write-api-lock clears it.
    write_api_locks(&Config::new(&fx.root)).expect("rewrite locks");
    assert!(fx.violations().is_empty());
}

#[test]
fn api_lock_ignores_binaries() {
    let fx = Fixture::new("api_lock_bins");
    fx.write("crates/cli/src/lib.rs", "pub fn run() {}\n");
    fx.write("crates/cli/src/main.rs", "fn main() {}\n");
    write_api_locks(&Config::new(&fx.root)).expect("write locks");
    let lock = std::fs::read_to_string(fx.root.join("crates/cli/api-lock.txt")).expect("read lock");
    assert!(lock.contains("fn run()"), "{lock}");
    assert!(!lock.contains("main"), "binaries are not API: {lock}");
}

// -----------------------------------------------------------------
// path portability / ordering
// -----------------------------------------------------------------

#[test]
fn diagnostics_use_forward_slashes_and_stable_order() {
    let fx = Fixture::new("path_portability");
    fx.write(
        "crates/tech/src/b.rs",
        "/// Late.\npub fn late(&self) -> f64 { 0.0 }\n",
    );
    fx.write(
        "crates/tech/src/a.rs",
        "use srlr_noc::Network;\n/// Early.\npub fn early(&self) -> f64 { 0.0 }\n",
    );
    let report = fx.run();
    let keys: Vec<(String, u32, String)> = report
        .fresh
        .iter()
        .map(|d| (d.path.clone(), d.line, d.rule.name().to_string()))
        .collect();
    for (path, _, _) in &keys {
        assert!(!path.contains('\\'), "rule keys must be portable: {path}");
        assert!(path.starts_with("crates/tech/src/"), "{path}");
    }
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "diagnostics must sort by (path, line, rule)");
    assert_eq!(keys.len(), 3, "{keys:?}");
    assert_eq!(keys[0].0, "crates/tech/src/a.rs");
    assert_eq!(keys[2].0, "crates/tech/src/b.rs");
}

// -----------------------------------------------------------------
// alloc-in-hot-path
// -----------------------------------------------------------------

#[test]
fn alloc_in_hot_path_fires_and_is_suppressible() {
    let fx = Fixture::new("alloc_hot_fires");
    fx.write(
        "lint-hotpaths.txt",
        "bit_slot srlr-core::DieBatch::advance_slot\n",
    );
    fx.write(
        "crates/core/src/batch.rs",
        "impl DieBatch {\n    /// Advance one slot.\n    pub fn advance_slot(&mut self) {\n\
         \x20       self.scratch.push(1);\n    }\n}\n",
    );
    assert_eq!(
        fx.violations(),
        [(
            RuleId::AllocInHotPath,
            "crates/core/src/batch.rs".to_string()
        )]
    );

    fx.write(
        "crates/core/src/batch.rs",
        "impl DieBatch {\n    /// Advance one slot.\n    pub fn advance_slot(&mut self) {\n\
         \x20       // srlr-lint: allow(alloc-in-hot-path, reason = \"amortised: pushes only on the rare resize trial\")\n\
         \x20       self.scratch.push(1);\n    }\n}\n",
    );
    assert!(fx.violations().is_empty(), "reasoned allow must suppress");

    fx.write(
        "crates/core/src/batch.rs",
        "impl DieBatch {\n    /// Advance one slot.\n    pub fn advance_slot(&mut self) {\n\
         \x20       // srlr-lint: allow(alloc-in-hot-path)\n\
         \x20       self.scratch.push(1);\n    }\n}\n",
    );
    let rules: Vec<RuleId> = fx.violations().into_iter().map(|(r, _)| r).collect();
    assert!(rules.contains(&RuleId::BadSuppression), "{rules:?}");
    assert!(rules.contains(&RuleId::AllocInHotPath), "{rules:?}");
}

#[test]
fn alloc_in_hot_path_follows_cross_crate_calls() {
    let fx = Fixture::new("alloc_hot_transitive");
    fx.write(
        "lint-hotpaths.txt",
        "kernel srlr-link::Lockstep::check_shared\n",
    );
    fx.write(
        "crates/link/src/lockstep.rs",
        "impl Lockstep {\n    /// Compare one slot.\n    pub fn check_shared(&self) -> u64 {\n\
         \x20       helper(1)\n    }\n}\n",
    );
    // The allocation is two edges down, in a crate the link layer may use.
    fx.write(
        "crates/core/src/kernel.rs",
        "/// Scratch helper.\npub fn helper(x: u64) -> u64 {\n    let v = vec![x];\n    v[0]\n}\n",
    );
    let v = fx.violations();
    let hot: Vec<&(RuleId, String)> = v
        .iter()
        .filter(|(r, _)| *r == RuleId::AllocInHotPath)
        .collect();
    assert_eq!(hot.len(), 1, "{v:?}");
    assert_eq!(hot[0].1, "crates/core/src/kernel.rs");
}

#[test]
fn alloc_in_hot_path_flags_bad_root_declarations() {
    let fx = Fixture::new("alloc_hot_bad_roots");
    fx.write(
        "lint-hotpaths.txt",
        "# comment lines are fine\nbit_slot srlr-core::Nope::nothing\njust-one-field\n",
    );
    fx.write("crates/core/src/lib.rs", "/// Quiet.\npub fn quiet() {}\n");
    let v = fx.violations();
    assert_eq!(v.len(), 2, "{v:?}");
    for (rule, path) in &v {
        assert_eq!(*rule, RuleId::AllocInHotPath);
        assert_eq!(path, "lint-hotpaths.txt");
    }
}

#[test]
fn alloc_in_hot_path_is_inert_without_a_hotpaths_file() {
    let fx = Fixture::new("alloc_hot_inert");
    fx.write(
        "crates/core/src/batch.rs",
        "impl DieBatch {\n    /// Advance one slot.\n    pub fn advance_slot(&mut self) {\n\
         \x20       self.scratch.push(1);\n    }\n}\n",
    );
    assert!(
        fx.violations().is_empty(),
        "no declared roots, no hot paths"
    );
}

// -----------------------------------------------------------------
// unordered-float-reduce
// -----------------------------------------------------------------

#[test]
fn unordered_float_reduce_fires_and_is_suppressible() {
    let fx = Fixture::new("float_reduce_fires");
    fx.write(
        "crates/noc/src/stats.rs",
        "/// Mean latency.\npub fn mean(v: &[f64]) -> f64 {\n\
         \x20   v.par_iter().map(|x| x * 2.0).sum::<f64>()\n}\n",
    );
    assert_eq!(
        fx.violations(),
        [(
            RuleId::UnorderedFloatReduce,
            "crates/noc/src/stats.rs".to_string()
        )]
    );

    fx.write(
        "crates/noc/src/stats.rs",
        "/// Mean latency.\npub fn mean(v: &[f64]) -> f64 {\n\
         \x20   // srlr-lint: allow(unordered-float-reduce, reason = \"diagnostic-only estimate, never in a byte-identity sink\")\n\
         \x20   v.par_iter().map(|x| x * 2.0).sum::<f64>()\n}\n",
    );
    assert!(fx.violations().is_empty(), "reasoned allow must suppress");

    fx.write(
        "crates/noc/src/stats.rs",
        "/// Mean latency.\npub fn mean(v: &[f64]) -> f64 {\n\
         \x20   // srlr-lint: allow(unordered-float-reduce)\n\
         \x20   v.par_iter().map(|x| x * 2.0).sum::<f64>()\n}\n",
    );
    let rules: Vec<RuleId> = fx.violations().into_iter().map(|(r, _)| r).collect();
    assert!(rules.contains(&RuleId::BadSuppression), "{rules:?}");
    assert!(rules.contains(&RuleId::UnorderedFloatReduce), "{rules:?}");
}

#[test]
fn unordered_float_reduce_ignores_ordered_chains() {
    let fx = Fixture::new("float_reduce_ordered");
    fx.write(
        "crates/noc/src/stats.rs",
        "/// Mean latency.\npub fn mean(v: &[f64]) -> f64 {\n\
         \x20   v.iter().map(|x| x * 2.0).sum::<f64>()\n}\n",
    );
    assert!(
        fx.violations().is_empty(),
        "index-ordered iteration is fine"
    );
}

// -----------------------------------------------------------------
// rng-stream-discipline
// -----------------------------------------------------------------

#[test]
fn rng_stream_discipline_fires_and_is_suppressible() {
    let fx = Fixture::new("rng_discipline_fires");
    fx.write(
        "crates/noc/src/lib.rs",
        "/// Ad-hoc seed.\npub fn bad_seed(seed: u64, i: u64) -> u64 {\n\
         \x20   srlr_rng::stream_seed(seed ^ 1, i)\n}\n",
    );
    assert_eq!(
        fx.violations(),
        [(
            RuleId::RngStreamDiscipline,
            "crates/noc/src/lib.rs".to_string()
        )]
    );

    fx.write(
        "crates/noc/src/lib.rs",
        "/// Ad-hoc seed.\npub fn bad_seed(seed: u64, i: u64) -> u64 {\n\
         \x20   // srlr-lint: allow(rng-stream-discipline, reason = \"migration shim, registered entry lands with the traffic rework\")\n\
         \x20   srlr_rng::stream_seed(seed ^ 1, i)\n}\n",
    );
    assert!(fx.violations().is_empty(), "reasoned allow must suppress");

    fx.write(
        "crates/noc/src/lib.rs",
        "/// Ad-hoc seed.\npub fn bad_seed(seed: u64, i: u64) -> u64 {\n\
         \x20   // srlr-lint: allow(rng-stream-discipline)\n\
         \x20   srlr_rng::stream_seed(seed ^ 1, i)\n}\n",
    );
    let rules: Vec<RuleId> = fx.violations().into_iter().map(|(r, _)| r).collect();
    assert!(rules.contains(&RuleId::BadSuppression), "{rules:?}");
    assert!(rules.contains(&RuleId::RngStreamDiscipline), "{rules:?}");
}

#[test]
fn rng_stream_discipline_exempts_the_rng_crate_and_registered_samplers() {
    let fx = Fixture::new("rng_discipline_scope");
    fx.write(
        "crates/rng/src/lib.rs",
        "/// Derive a stream seed.\npub fn stream_seed(seed: u64, i: u64) -> u64 {\n\
         \x20   splitmix64(seed ^ i)\n}\n",
    );
    fx.write(
        "crates/noc/src/fault.rs",
        "impl FaultModel {\n    /// Registered sampler entry.\n    pub fn new(seed: u64) -> Self {\n\
         \x20       Self { rng: Xoshiro256pp::for_stream(seed, 0) }\n    }\n}\n",
    );
    assert!(fx.violations().is_empty());
}

// -----------------------------------------------------------------
// lossy-cast
// -----------------------------------------------------------------

#[test]
fn lossy_cast_fires_and_is_suppressible() {
    let fx = Fixture::new("lossy_cast_fires");
    fx.write(
        "crates/noc/src/lib.rs",
        "/// Narrow an index.\npub fn narrow(x: usize) -> u16 {\n    x as u16\n}\n",
    );
    assert_eq!(
        fx.violations(),
        [(RuleId::LossyCast, "crates/noc/src/lib.rs".to_string())]
    );

    fx.write(
        "crates/noc/src/lib.rs",
        "/// Narrow an index.\npub fn narrow(x: usize) -> u16 {\n\
         \x20   // srlr-lint: allow(lossy-cast, reason = \"caller guarantees x < 65536 by mesh-size assert\")\n\
         \x20   x as u16\n}\n",
    );
    assert!(fx.violations().is_empty(), "reasoned allow must suppress");

    fx.write(
        "crates/noc/src/lib.rs",
        "/// Narrow an index.\npub fn narrow(x: usize) -> u16 {\n\
         \x20   // srlr-lint: allow(lossy-cast)\n\
         \x20   x as u16\n}\n",
    );
    let rules: Vec<RuleId> = fx.violations().into_iter().map(|(r, _)| r).collect();
    assert!(rules.contains(&RuleId::BadSuppression), "{rules:?}");
    assert!(rules.contains(&RuleId::LossyCast), "{rules:?}");
}

#[test]
fn lossy_cast_exempts_binaries_and_word_sized_targets() {
    let fx = Fixture::new("lossy_cast_scope");
    fx.write(
        "crates/cli/src/main.rs",
        "fn main() {\n    let _x = 70000usize as u16;\n}\n",
    );
    fx.write(
        "crates/noc/src/lib.rs",
        "/// Widen an index.\npub fn widen(x: u32) -> u64 {\n    x as u64\n}\n",
    );
    assert!(fx.violations().is_empty());
}
