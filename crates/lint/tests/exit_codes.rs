//! Binary-level exit-code contract for `srlr-lint`: `0` clean, `1`
//! violations, `2` usage errors — and `--format sarif` always `0`, so
//! CI receives the findings document even when it gates.

use std::path::Path;
use std::process::{Command, Output};

fn srlr_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_srlr-lint"))
        .args(args)
        .output()
        .expect("spawn srlr-lint")
}

fn dirty_fixture(name: &str) -> std::path::PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src_dir = root.join("crates/tech/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir fixture");
    std::fs::write(src_dir.join("lib.rs"), "use srlr_noc::Network;\n").expect("write fixture");
    root
}

#[test]
fn text_format_gates_on_violations() {
    let root = dirty_fixture("lint_exit_text");
    let out = srlr_lint(&["--root", root.to_str().expect("utf-8")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crate-layering"), "{stdout}");
}

#[test]
fn sarif_format_exits_zero_even_with_findings() {
    let root = dirty_fixture("lint_exit_sarif");
    let out = srlr_lint(&["--root", root.to_str().expect("utf-8"), "--format", "sarif"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    let doc = srlr_telemetry::json::parse(&stdout).expect("valid SARIF JSON");
    let srlr_telemetry::json::Json::Obj(top) = &doc else {
        panic!("SARIF root must be an object")
    };
    assert!(top.contains_key("runs"));
    assert!(
        stdout.contains("crate-layering"),
        "the finding must appear in the document: {stdout}"
    );
}

#[test]
fn usage_errors_exit_two() {
    let out = srlr_lint(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = srlr_lint(&["--format", "xml"]);
    assert_eq!(out.status.code(), Some(2));
}
