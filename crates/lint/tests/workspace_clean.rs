//! Self-enforcement: the workspace must stay lint-clean.
//!
//! This test is what makes `srlr-lint` a tier-1 invariant instead of an
//! optional tool: `cargo test` fails if anyone reintroduces a panic
//! path, a `HashMap`, a wall-clock read, a float `==`, an undocumented
//! public item in the doc-covered crates — or lets the baseline go
//! stale.

use std::path::Path;

use srlr_lint::{run, Config};

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_no_lint_violations() {
    let report = run(&Config::new(workspace_root())).expect("lint run succeeds");
    assert!(
        report.files_checked > 30,
        "walk found the workspace sources"
    );
    let rendered: String = report.failures().map(|d| d.render()).collect();
    assert!(report.is_clean(), "srlr-lint found violations:\n{rendered}");
}

#[test]
fn baseline_has_no_stale_entries() {
    let report = run(&Config::new(workspace_root())).expect("lint run succeeds");
    assert!(
        report.stale.is_empty(),
        "stale baseline entries (baseline is shrink-only, delete them): {:?}",
        report.stale
    );
}
