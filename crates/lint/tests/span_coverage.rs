//! Lexer hardening: tokenizing every workspace source file must yield
//! monotonically increasing, non-overlapping spans that cover the file
//! (every gap between tokens is whitespace-only).
//!
//! This is the property the whole lint rests on — if the lexer drops or
//! double-counts a byte on any real file (raw strings, nested block
//! comments, raw identifiers, a shebang line), every downstream rule
//! silently inspects the wrong text.

use std::path::Path;

use srlr_lint::lexer::lex;
use srlr_lint::walk::workspace_files;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Asserts the span-coverage property for one source text.
fn assert_covered(label: &str, src: &str) {
    let tokens = lex(src);
    let mut pos = 0usize;
    for (i, tok) in tokens.iter().enumerate() {
        assert!(
            tok.start >= pos,
            "{label}: token {i} starts at {} before previous end {pos}",
            tok.start
        );
        assert!(
            tok.end > tok.start,
            "{label}: token {i} has an empty or inverted span {}..{}",
            tok.start,
            tok.end
        );
        let gap = &src[pos..tok.start];
        assert!(
            gap.chars().all(char::is_whitespace),
            "{label}: non-whitespace gap {pos}..{} before token {i}: {gap:?}",
            tok.start
        );
        pos = tok.end;
    }
    assert!(
        pos <= src.len(),
        "{label}: final token ends at {pos}, past {} bytes",
        src.len()
    );
    let tail = &src[pos..];
    assert!(
        tail.chars().all(char::is_whitespace),
        "{label}: non-whitespace tail after last token: {tail:?}"
    );
}

#[test]
fn every_workspace_file_is_covered_by_disjoint_spans() {
    let files = workspace_files(&workspace_root()).expect("walk workspace");
    assert!(files.len() > 30, "walk found the workspace sources");
    for file in &files {
        let src = std::fs::read_to_string(&file.abs).expect("read source");
        assert_covered(&file.rel, &src);
    }
}

#[test]
fn edge_cases_are_covered() {
    for (label, src) in [
        ("empty", ""),
        ("whitespace only", "  \n\t \n"),
        ("shebang", "#!/usr/bin/env run-cargo-script\nfn main() {}\n"),
        ("inner attribute", "#![forbid(unsafe_code)]\nfn main() {}\n"),
        ("raw identifier", "fn r#type(r#fn: u8) -> u8 { r#fn }\n"),
        ("raw string", "const S: &str = r#\"quote \" inside\"#;\n"),
        (
            "nested block comment",
            "/* outer /* inner */ tail */ fn f() {}\n",
        ),
        (
            "lifetime vs char",
            "fn f<'a>(x: &'a char) -> char { 'x' }\n",
        ),
        ("unterminated string", "const S: &str = \"no end"),
        ("unterminated comment", "/* never closed"),
        ("shift generics", "type M = Vec<Vec<f64>>;\n"),
        // Multi-character operators the expression walker leans on:
        // each must lex as one token, not a prefix plus stragglers.
        (
            "inclusive range",
            "fn f() -> u8 { let mut n = 0; for i in 0..=9 { n += i } n }\n",
        ),
        (
            "range vs float dots",
            "const R: core::ops::RangeInclusive<f64> = 0.5..=1.5;\n",
        ),
        ("thin arrow", "fn g(f: fn(u8) -> u8) -> u8 { f(0) }\n"),
        (
            "shift assignment",
            "fn h(mut x: u64) -> u64 { x <<= 3; x >>= 1; x }\n",
        ),
        (
            "shift assign vs nested generics",
            "fn k(v: &mut Vec<Vec<u64>>) { v[0][0] <<= 1; }\n",
        ),
        (
            "operator soup",
            "fn m(mut a: u32) -> bool { a <<= 1; a >>= 2; (0..=a).len() > 0 }\n",
        ),
        (
            "unicode",
            "// héllo wörld 🦀\nfn f() { let _ = \"日本語\"; }\n",
        ),
    ] {
        assert_covered(label, src);
    }
}

#[test]
fn multi_char_operators_lex_as_single_tokens() {
    let src = "fn f(x: u8) -> u8 { let mut y = x; y <<= 1; y >>= 2; for _ in 0..=3 {} y }\n";
    let texts: Vec<&str> = lex(src).iter().map(|t| &src[t.start..t.end]).collect();
    for op in ["->", "<<=", ">>=", "..="] {
        assert!(
            texts.contains(&op),
            "`{op}` must survive as one token: {texts:?}"
        );
    }
    // No orphaned prefixes: a split `<<=` would leave a bare `<<` or `=`
    // in the stream where none belongs.
    assert!(!texts.contains(&"<<"), "{texts:?}");
    assert!(!texts.contains(&">>"), "{texts:?}");
    assert!(!texts.contains(&".."), "{texts:?}");
}
