//! Lexer hardening: tokenizing every workspace source file must yield
//! monotonically increasing, non-overlapping spans that cover the file
//! (every gap between tokens is whitespace-only).
//!
//! This is the property the whole lint rests on — if the lexer drops or
//! double-counts a byte on any real file (raw strings, nested block
//! comments, raw identifiers, a shebang line), every downstream rule
//! silently inspects the wrong text.

use std::path::Path;

use srlr_lint::lexer::lex;
use srlr_lint::walk::workspace_files;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Asserts the span-coverage property for one source text.
fn assert_covered(label: &str, src: &str) {
    let tokens = lex(src);
    let mut pos = 0usize;
    for (i, tok) in tokens.iter().enumerate() {
        assert!(
            tok.start >= pos,
            "{label}: token {i} starts at {} before previous end {pos}",
            tok.start
        );
        assert!(
            tok.end > tok.start,
            "{label}: token {i} has an empty or inverted span {}..{}",
            tok.start,
            tok.end
        );
        let gap = &src[pos..tok.start];
        assert!(
            gap.chars().all(char::is_whitespace),
            "{label}: non-whitespace gap {pos}..{} before token {i}: {gap:?}",
            tok.start
        );
        pos = tok.end;
    }
    assert!(
        pos <= src.len(),
        "{label}: final token ends at {pos}, past {} bytes",
        src.len()
    );
    let tail = &src[pos..];
    assert!(
        tail.chars().all(char::is_whitespace),
        "{label}: non-whitespace tail after last token: {tail:?}"
    );
}

#[test]
fn every_workspace_file_is_covered_by_disjoint_spans() {
    let files = workspace_files(&workspace_root()).expect("walk workspace");
    assert!(files.len() > 30, "walk found the workspace sources");
    for file in &files {
        let src = std::fs::read_to_string(&file.abs).expect("read source");
        assert_covered(&file.rel, &src);
    }
}

#[test]
fn edge_cases_are_covered() {
    for (label, src) in [
        ("empty", ""),
        ("whitespace only", "  \n\t \n"),
        ("shebang", "#!/usr/bin/env run-cargo-script\nfn main() {}\n"),
        ("inner attribute", "#![forbid(unsafe_code)]\nfn main() {}\n"),
        ("raw identifier", "fn r#type(r#fn: u8) -> u8 { r#fn }\n"),
        ("raw string", "const S: &str = r#\"quote \" inside\"#;\n"),
        (
            "nested block comment",
            "/* outer /* inner */ tail */ fn f() {}\n",
        ),
        (
            "lifetime vs char",
            "fn f<'a>(x: &'a char) -> char { 'x' }\n",
        ),
        ("unterminated string", "const S: &str = \"no end"),
        ("unterminated comment", "/* never closed"),
        ("shift generics", "type M = Vec<Vec<f64>>;\n"),
        (
            "unicode",
            "// héllo wörld 🦀\nfn f() { let _ = \"日本語\"; }\n",
        ),
    ] {
        assert_covered(label, src);
    }
}
