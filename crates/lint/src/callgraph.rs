//! Workspace call graph over the [`crate::exprs`] function definitions.
//!
//! Resolution is name-based (there is no type inference): a method call
//! `.name(…)` may reach every workspace method named `name`; a path call
//! `Qualifier::name(…)` reaches methods of the type `Qualifier`, falling
//! back to free functions named `name` when the qualifier is a module
//! path segment (`kernel::wire_energy_joules`); a bare call reaches free
//! functions. This over-approximates reachability, which is the safe
//! direction for `alloc-in-hot-path`: a function the graph *might* reach
//! from a hot root must stay allocation-free.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::exprs::{CallKind, FnDef};

/// One function definition, located in the workspace.
#[derive(Debug, Clone)]
pub struct Node {
    /// Crate name (`srlr-core`), empty for root `src/` files.
    pub crate_name: String,
    /// File module path (`kernel` for `crates/core/src/kernel.rs`).
    pub module: String,
    /// Index of the file in the caller's file list.
    pub file: usize,
    /// Index of the definition in that file's `FnDef` list.
    pub def: usize,
    /// Enclosing impl/trait type, if any.
    pub owner: Option<String>,
    /// Function name.
    pub name: String,
}

impl Node {
    /// `crate::Owner::name` (owner segment omitted for free functions in
    /// the crate root module).
    pub fn display(&self) -> String {
        let mid = match (&self.owner, self.module.as_str()) {
            (Some(o), _) => format!("{o}::"),
            (None, "") => String::new(),
            (None, m) => format!("{m}::"),
        };
        format!("{}::{mid}{}", self.crate_name, self.name)
    }
}

/// The workspace call graph: nodes are function definitions, edges are
/// name-resolved call sites.
pub struct CallGraph {
    nodes: Vec<Node>,
    /// Adjacency: callee node ids per node.
    edges: Vec<Vec<usize>>,
}

/// One file's definitions with their workspace location, as input to
/// [`CallGraph::build`].
pub struct FileFns<'a> {
    /// Crate name (`srlr-core`), empty for root `src/` files.
    pub crate_name: String,
    /// File module path (`kernel` for `crates/core/src/kernel.rs`).
    pub module: String,
    /// The file's parsed function definitions.
    pub defs: &'a [FnDef],
}

impl CallGraph {
    /// Builds the graph from every file's parsed definitions.
    ///
    /// `allows(caller_crate, callee_crate)` prunes edges the workspace
    /// dependency DAG forbids (directory names as in `crate_of`: `link`
    /// cannot call into `noc`, so a method named `step` in `noc` is not
    /// a candidate callee for `link` code).
    pub fn build(files: &[FileFns<'_>], allows: impl Fn(&str, &str) -> bool) -> CallGraph {
        let mut nodes = Vec::new();
        for (file, f) in files.iter().enumerate() {
            for (def, d) in f.defs.iter().enumerate() {
                nodes.push(Node {
                    crate_name: f.crate_name.clone(),
                    module: f.module.clone(),
                    file,
                    def,
                    owner: d.owner.clone(),
                    name: d.name.clone(),
                });
            }
        }
        // Name-resolution indexes.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut owned: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            match &n.owner {
                Some(o) => {
                    methods.entry(&n.name).or_default().push(id);
                    owned.entry((o, &n.name)).or_default().push(id);
                }
                None => free.entry(&n.name).or_default().push(id),
            }
        }
        let mut edges = vec![Vec::new(); nodes.len()];
        for (id, n) in nodes.iter().enumerate() {
            let def = &files[n.file].defs[n.def];
            let mut out = Vec::new();
            for call in &def.calls {
                let targets: Option<&Vec<usize>> = match call.kind {
                    CallKind::Method => methods.get(call.name.as_str()),
                    CallKind::Path => match &call.qualifier {
                        Some(q) => owned
                            .get(&(q.as_str(), call.name.as_str()))
                            .or_else(|| free.get(call.name.as_str())),
                        None => free.get(call.name.as_str()),
                    },
                    CallKind::Bare => free.get(call.name.as_str()),
                    CallKind::Macro => None,
                };
                if let Some(targets) = targets {
                    out.extend(
                        targets
                            .iter()
                            .copied()
                            .filter(|&t| allows(&n.crate_name, &nodes[t].crate_name)),
                    );
                }
            }
            out.sort_unstable();
            out.dedup();
            edges[id] = out;
        }
        CallGraph { nodes, edges }
    }

    /// All nodes, indexable by node id.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Resolves a hot-root pattern to node ids.
    ///
    /// Accepted shapes (crate names as in `Cargo.toml`, e.g. `srlr-core`):
    /// * `crate::Owner::fn` — a method (the middle segment also matches a
    ///   file module, so `crate::module::fn` finds free functions),
    /// * `crate::fn` — a free function in any module of the crate,
    /// * `crate::Owner::*` / `crate::module::*` — every function of a
    ///   type or file module.
    pub fn resolve_pattern(&self, pattern: &str) -> Vec<usize> {
        let parts: Vec<&str> = pattern.split("::").collect();
        let matches = |id: usize| -> bool {
            let n = &self.nodes[id];
            match parts.as_slice() {
                [krate, name] => n.crate_name == *krate && n.owner.is_none() && n.name == *name,
                [krate, mid, name] => {
                    n.crate_name == *krate
                        && (n.owner.as_deref() == Some(*mid)
                            || (n.owner.is_none() && n.module == *mid))
                        && (*name == "*" || n.name == *name)
                }
                _ => false,
            }
        };
        (0..self.nodes.len()).filter(|&id| matches(id)).collect()
    }

    /// BFS reachability from the given roots. Returns, per node, the
    /// root node id that reaches it (`None` when unreachable). Roots
    /// reach themselves.
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut reached: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue = VecDeque::new();
        for &r in roots {
            if r < self.nodes.len() && reached[r].is_none() {
                reached[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            let root = reached[id];
            for &next in &self.edges[id] {
                if reached[next].is_none() {
                    reached[next] = root;
                    queue.push_back(next);
                }
            }
        }
        reached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exprs::parse_fns;

    fn graph(defs: &[Vec<FnDef>], meta: &[(&str, &str)]) -> CallGraph {
        let files: Vec<FileFns<'_>> = defs
            .iter()
            .zip(meta)
            .map(|(d, (krate, module))| FileFns {
                crate_name: krate.to_string(),
                module: module.to_string(),
                defs: d,
            })
            .collect();
        CallGraph::build(&files, |_, _| true)
    }

    #[test]
    fn path_calls_reach_methods_and_free_fns() {
        let a = parse_fns("a.rs", "pub fn top() { Dev::make(); helper::leaf(); }");
        let b = parse_fns(
            "b.rs",
            "struct Dev; impl Dev { fn make() -> Dev { Dev } }\npub fn leaf() {}",
        );
        let g = graph(&[a, b], &[("srlr-x", ""), ("srlr-y", "helper")]);
        let roots = g.resolve_pattern("srlr-x::top");
        assert_eq!(roots.len(), 1);
        let reached = g.reachable_from(&roots);
        let hit: Vec<&str> = g
            .nodes()
            .iter()
            .enumerate()
            .filter(|(id, _)| reached[*id].is_some())
            .map(|(_, n)| n.name.as_str())
            .collect();
        assert_eq!(hit, ["top", "make", "leaf"]);
    }

    #[test]
    fn method_calls_resolve_by_name_over_approximately() {
        let a = parse_fns("a.rs", "pub fn go(d: Dev) { d.fire(); }");
        let b = parse_fns(
            "b.rs",
            "impl Dev { fn fire(&self) {} } impl Other { fn fire(&self) {} }",
        );
        let g = graph(&[a, b], &[("srlr-x", ""), ("srlr-y", "dev")]);
        let reached = g.reachable_from(&g.resolve_pattern("srlr-x::go"));
        let hits = reached.iter().flatten().count();
        assert_eq!(hits, 3, "both `fire` methods are reachable");
    }

    #[test]
    fn wildcard_pattern_matches_modules_and_owners() {
        let a = parse_fns("a.rs", "pub fn one() {} pub fn two() {}");
        let b = parse_fns("b.rs", "impl Dev { fn m(&self) {} }");
        let g = graph(&[a, b], &[("srlr-x", "kernel"), ("srlr-x", "dev")]);
        assert_eq!(g.resolve_pattern("srlr-x::kernel::*").len(), 2);
        assert_eq!(g.resolve_pattern("srlr-x::Dev::*").len(), 1);
        assert_eq!(g.resolve_pattern("srlr-x::Dev::m").len(), 1);
        assert!(g.resolve_pattern("srlr-x::nope::*").is_empty());
    }

    #[test]
    fn layering_filter_prunes_cross_crate_edges() {
        let a = parse_fns("a.rs", "pub fn go(d: Dev) { d.fire(); }");
        let b = parse_fns("b.rs", "impl Dev { fn fire(&self) {} }");
        let files: Vec<FileFns<'_>> = [("srlr-low", &a), ("srlr-high", &b)]
            .into_iter()
            .map(|(krate, defs)| FileFns {
                crate_name: krate.to_string(),
                module: String::new(),
                defs,
            })
            .collect();
        let g = CallGraph::build(&files, |from, to| {
            !(from == "srlr-low" && to == "srlr-high")
        });
        let reached = g.reachable_from(&g.resolve_pattern("srlr-low::go"));
        assert_eq!(reached.iter().flatten().count(), 1, "only the root itself");
    }

    #[test]
    fn reachability_reports_the_reaching_root() {
        let a = parse_fns(
            "a.rs",
            "pub fn r1() { shared(); } pub fn r2() {} pub fn shared() {}",
        );
        let g = graph(&[a], &[("srlr-x", "")]);
        let r1 = g.resolve_pattern("srlr-x::r1");
        let r2 = g.resolve_pattern("srlr-x::r2");
        let roots: Vec<usize> = r1.iter().chain(&r2).copied().collect();
        let reached = g.reachable_from(&roots);
        let shared = g.nodes().iter().position(|n| n.name == "shared").unwrap();
        assert_eq!(reached[shared], Some(r1[0]), "shared is reached via r1");
    }
}
