//! `srlr-lint`: dependency-free static analysis for the SRLR workspace.
//!
//! The reproduction's headline guarantees — bit-identical Monte Carlo
//! results at any thread count, and sweep runs that degrade instead of
//! aborting — are invariants no compiler pass checks. This crate checks
//! them: it lexes every workspace `src/` file with its own Rust lexer
//! (raw strings, nested block comments, char-vs-lifetime — see
//! [`lexer`]) and enforces the rule catalog in [`rules`]:
//!
//! * `no-panic` — no `unwrap`/`expect`/`panic!` family in library code,
//! * `det-map` — no `HashMap`/`HashSet` (iteration order leaks),
//! * `det-time` — no wall-clock reads outside `crates/criterion`,
//! * `det-spawn` — no threads outside `srlr-parallel`,
//! * `float-eq` — no `==`/`!=` against float literals,
//! * `no-print` — no `println!` family in library code (binaries and
//!   `crates/bench` may print),
//! * `missing-doc` — public items in `srlr-tech`/`srlr-circuit`/
//!   `srlr-units` carry doc comments,
//! * `indexing` — advisory, opt-in (`--warn-indexing`).
//!
//! On top of the token scan, [`items`] parses each file into an item
//! tree (modules, `use` declarations, public fns/structs/impls with
//! signatures — no expression parsing) feeding three cross-file rules
//! in [`semantic`]:
//!
//! * `raw-f64-api` — public fns/fields in the dimensioned crates
//!   (`tech`/`circuit`/`core`/`link`) use `srlr-units` newtypes, not
//!   bare `f64`,
//! * `crate-layering` — imports and `Cargo.toml` dependencies follow
//!   the DAG `units → tech → circuit → core → link → noc` with
//!   `rng`/`parallel`/`telemetry` as shared leaves,
//! * `api-lock` — each crate's public surface matches its committed
//!   `api-lock.txt` snapshot (`--write-api-lock` accepts changes).
//!
//! A third layer ([`exprs`]) walks every function body into call, cast
//! and float-reduction events, and [`callgraph`] resolves them into a
//! workspace call graph (name-based, pruned by the layering DAG),
//! feeding four dataflow rules:
//!
//! * `alloc-in-hot-path` — no heap-allocating call in any function
//!   reachable from the hot roots declared in `lint-hotpaths.txt`
//!   (span names cross-checked against the profiler's `--profile-out`
//!   output),
//! * `unordered-float-reduce` — no float accumulation over iteration
//!   whose order is not provably index-ordered,
//! * `rng-stream-discipline` — RNG construction only inside `srlr-rng`
//!   and the registered sampler entry points,
//! * `lossy-cast` — no `as` casts to sub-word integer types in library
//!   code.
//!
//! Violations are waved through only by an inline
//! `// srlr-lint: allow(rule, reason = "…")` with a mandatory reason, or
//! by an entry in the shrink-only `lint-baseline.txt`. Reports render as
//! rustc-style text or SARIF 2.1.0 ([`sarif`], `--format sarif`).

pub mod analyze;
pub mod baseline;
pub mod callgraph;
pub mod diagnostics;
pub mod exprs;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod semantic;
pub mod walk;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::PathBuf;

use analyze::{AnalyzeOptions, Suppression};
use baseline::Baseline;
use diagnostics::Diagnostic;
use semantic::ParsedFile;

/// Path prefixes (relative, `/`-separated) whose public items must carry
/// doc comments.
const DOC_COVERED: &[&str] = &["crates/tech/", "crates/circuit/", "crates/units/"];
/// Paths allowed to read the wall clock: the criterion timing shim and
/// the telemetry `Clock` abstraction that fences `Instant` for the
/// profiler (everything else consumes time through `Clock`).
const TIME_ALLOWED: &[&str] = &["crates/criterion/", "crates/telemetry/src/clock.rs"];
/// Prefix allowed to spawn threads.
const SPAWN_ALLOWED: &[&str] = &["crates/parallel/"];
/// Prefixes allowed to print: the bench harness crate is a reporting
/// tool whose whole job is terminal output.
const PRINT_ALLOWED: &[&str] = &["crates/bench/"];

/// A lint run's configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Baseline file; defaults to `<root>/lint-baseline.txt`.
    pub baseline_path: PathBuf,
    /// Enable the advisory `indexing` rule.
    pub warn_indexing: bool,
}

impl Config {
    /// Configuration for scanning `root` with the default baseline path.
    pub fn new(root: impl Into<PathBuf>) -> Config {
        let root = root.into();
        let baseline_path = root.join("lint-baseline.txt");
        Config {
            root,
            baseline_path,
            warn_indexing: false,
        }
    }
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files_checked: usize,
    /// Violations not covered by the baseline, sorted by path/line.
    pub fresh: Vec<Diagnostic>,
    /// Violations tolerated by a baseline entry.
    pub baselined: Vec<Diagnostic>,
    /// Baseline entries that matched nothing (must be deleted).
    pub stale: Vec<String>,
}

impl Report {
    /// Fresh violations that fail the run (advisory rules never do).
    pub fn failures(&self) -> impl Iterator<Item = &Diagnostic> {
        self.fresh.iter().filter(|d| !d.rule.advisory())
    }

    /// Whether the tree is clean: no failing fresh violations.
    pub fn is_clean(&self) -> bool {
        self.failures().next().is_none()
    }

    /// Baseline keys for every current non-advisory violation (fresh and
    /// baselined) — what `--write-baseline` persists.
    pub fn all_violation_keys(&self) -> BTreeSet<String> {
        self.fresh
            .iter()
            .chain(self.baselined.iter())
            .filter(|d| !d.rule.advisory())
            .map(Diagnostic::baseline_key)
            .collect()
    }
}

/// A lint run failure (I/O, not a rule violation).
#[derive(Debug)]
pub struct Error {
    /// What the run was touching when it failed.
    pub context: String,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.context, self.source)
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> Error {
    let context = context.into();
    move |source| Error { context, source }
}

/// Derives the per-file rule toggles from a workspace-relative path.
pub fn options_for(rel: &str, warn_indexing: bool) -> AnalyzeOptions {
    AnalyzeOptions {
        check_missing_doc: DOC_COVERED.iter().any(|p| rel.starts_with(p)),
        allow_time: TIME_ALLOWED.iter().any(|p| rel.starts_with(p)),
        allow_spawn: SPAWN_ALLOWED.iter().any(|p| rel.starts_with(p)),
        allow_print: PRINT_ALLOWED.iter().any(|p| rel.starts_with(p))
            || rel == "main.rs"
            || rel.ends_with("/main.rs"),
        warn_indexing,
    }
}

/// Per-file suppression comments, keyed by workspace-relative path.
type SuppressionMap = BTreeMap<String, Vec<Suppression>>;

/// Scans and parses every workspace file; the shared front half of
/// [`run`] and [`write_api_locks`].
fn scan(config: &Config) -> Result<(Vec<ParsedFile>, SuppressionMap, Vec<Diagnostic>), Error> {
    let files = walk::workspace_files(&config.root)
        .map_err(io_err(format!("walking {}", config.root.display())))?;

    let mut parsed = Vec::new();
    let mut suppressions = BTreeMap::new();
    let mut diags = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(&file.abs)
            .map_err(io_err(format!("reading {}", file.abs.display())))?;
        let rel = file.rel.replace('\\', "/");
        let opts = options_for(&rel, config.warn_indexing);
        let analysis = analyze::analyze_file(&rel, &src, opts);
        diags.extend(analysis.diags);
        suppressions.insert(rel.clone(), analysis.suppressions);
        let tree = items::parse_items(&rel, &src);
        let fns = exprs::parse_fns(&rel, &src);
        parsed.push(ParsedFile {
            rel,
            src,
            tree,
            fns,
        });
    }
    Ok((parsed, suppressions, diags))
}

/// Scans the workspace and partitions the results against the baseline.
pub fn run(config: &Config) -> Result<Report, Error> {
    let bl = Baseline::load(&config.baseline_path).map_err(io_err(format!(
        "reading {}",
        config.baseline_path.display()
    )))?;
    let (parsed, suppressions, mut diags) = scan(config)?;

    for file in &parsed {
        diags.extend(semantic::check_raw_f64(file));
        diags.extend(semantic::check_layering_uses(file));
        diags.extend(semantic::check_unordered_float_reduce(file));
        diags.extend(semantic::check_rng_stream_discipline(file));
        diags.extend(semantic::check_lossy_cast(file));
    }
    if let Some(hot) = semantic::load_hotpaths(&config.root) {
        let graph = semantic::build_call_graph(&parsed);
        diags.extend(semantic::check_alloc_in_hot_path(&parsed, &graph, &hot));
    }
    diags.extend(
        semantic::check_layering_manifests(&config.root).map_err(io_err(format!(
            "reading manifests under {}",
            config.root.display()
        )))?,
    );
    diags.extend(semantic::check_api_lock(&parsed, &config.root));

    // Suppressions are per source file; diagnostics anchored elsewhere
    // (Cargo.toml, api-lock.txt) have no suppression scope by design.
    for d in &mut diags {
        d.path = d.path.replace('\\', "/");
    }
    diags.retain(|d| {
        !(d.rule.suppressible()
            && suppressions.get(&d.path).is_some_and(|supps| {
                supps
                    .iter()
                    .any(|s| s.rule == d.rule && (d.line == s.line || d.line == s.line + 1))
            }))
    });
    diags.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));

    let (fresh, baselined, stale) = bl.partition(diags);
    Ok(Report {
        files_checked: parsed.len(),
        fresh,
        baselined,
        stale,
    })
}

/// Regenerates every crate's `api-lock.txt` from the current public
/// surface. Returns the written paths.
pub fn write_api_locks(config: &Config) -> Result<Vec<PathBuf>, Error> {
    let (parsed, _, _) = scan(config)?;
    semantic::write_api_locks(&parsed, &config.root).map_err(io_err(format!(
        "writing api-lock files under {}",
        config.root.display()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn options_follow_path_prefixes() {
        let o = options_for("crates/tech/src/mosfet.rs", false);
        assert!(o.check_missing_doc && !o.allow_time && !o.allow_spawn && !o.allow_print);
        let o = options_for("crates/criterion/src/lib.rs", false);
        assert!(!o.check_missing_doc && o.allow_time && !o.allow_spawn);
        let o = options_for("crates/telemetry/src/clock.rs", false);
        assert!(o.allow_time, "the telemetry Clock module may use Instant");
        let o = options_for("crates/telemetry/src/profile.rs", false);
        assert!(!o.allow_time, "only clock.rs gets the carve-out");
        let o = options_for("crates/parallel/src/pool.rs", false);
        assert!(o.allow_spawn);
        let o = options_for("crates/noc/src/router.rs", true);
        assert!(!o.check_missing_doc && o.warn_indexing);
    }

    #[test]
    fn printing_is_allowed_in_binaries_and_bench_only() {
        assert!(options_for("crates/cli/src/main.rs", false).allow_print);
        assert!(options_for("crates/lint/src/main.rs", false).allow_print);
        assert!(options_for("crates/bench/src/report.rs", false).allow_print);
        assert!(!options_for("crates/cli/src/lib.rs", false).allow_print);
        assert!(!options_for("crates/noc/src/domain.rs", false).allow_print);
    }

    #[test]
    fn config_defaults_baseline_under_root() {
        let c = Config::new("/ws");
        assert_eq!(c.baseline_path, Path::new("/ws/lint-baseline.txt"));
        assert!(!c.warn_indexing);
    }
}
