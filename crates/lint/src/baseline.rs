//! The violation baseline: a checked-in, shrink-only list of known
//! violations.
//!
//! Each entry is one line of the form `rule path:line` (the
//! [`crate::diagnostics::Diagnostic::baseline_key`] format); `#` starts a
//! comment. A violation whose key appears in the baseline is reported as
//! *baselined* and does not fail the run; a baseline entry that matches
//! nothing is *stale* and must be deleted — the file may only shrink.

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

use crate::diagnostics::Diagnostic;

/// The parsed baseline file.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    keys: BTreeSet<String>,
}

impl Baseline {
    /// Parses baseline text: one `rule path:line` key per line, `#`
    /// comments and blank lines ignored.
    pub fn parse(text: &str) -> Baseline {
        let keys = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        Baseline { keys }
    }

    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Baseline::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(e),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Splits diagnostics into (fresh, baselined) and returns the stale
    /// baseline entries that matched nothing.
    pub fn partition(
        &self,
        diags: Vec<Diagnostic>,
    ) -> (Vec<Diagnostic>, Vec<Diagnostic>, Vec<String>) {
        let mut fresh = Vec::new();
        let mut baselined = Vec::new();
        let mut matched: BTreeSet<&str> = BTreeSet::new();
        for d in diags {
            let key = d.baseline_key();
            match self.keys.get(key.as_str()) {
                Some(k) => {
                    matched.insert(k.as_str());
                    baselined.push(d);
                }
                None => fresh.push(d),
            }
        }
        let stale = self
            .keys
            .iter()
            .filter(|k| !matched.contains(k.as_str()))
            .cloned()
            .collect();
        (fresh, baselined, stale)
    }

    /// Serializes a set of keys as baseline file content.
    pub fn render(keys: &BTreeSet<String>) -> String {
        let mut out = String::from(
            "# srlr-lint baseline: known violations, one `rule path:line` per line.\n\
             # This file may only shrink. Fix the violation (or add an inline\n\
             # `// srlr-lint: allow(rule, reason = \"…\")`) and delete its entry.\n",
        );
        for key in keys {
            out.push_str(key);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn diag(rule: RuleId, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            col: 1,
            rule,
            message: String::new(),
            snippet: String::new(),
            width: 1,
        }
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let b = Baseline::parse("# header\n\nno-panic a.rs:3\n  det-map b.rs:9  \n");
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn partition_separates_fresh_baselined_and_stale() {
        let b = Baseline::parse("no-panic a.rs:3\ndet-map gone.rs:1\n");
        let diags = vec![
            diag(RuleId::NoPanic, "a.rs", 3),
            diag(RuleId::DetMap, "b.rs", 9),
        ];
        let (fresh, baselined, stale) = b.partition(diags);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].path, "b.rs");
        assert_eq!(baselined.len(), 1);
        assert_eq!(stale, vec!["det-map gone.rs:1".to_string()]);
    }

    #[test]
    fn render_round_trips() {
        let keys: BTreeSet<String> = ["no-panic a.rs:3".to_string(), "det-map b.rs:9".to_string()]
            .into_iter()
            .collect();
        let b = Baseline::parse(&Baseline::render(&keys));
        assert_eq!(b.len(), 2);
        assert!(b.keys.contains("no-panic a.rs:3"));
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/lint-baseline.txt"));
        assert!(b.is_ok_and(|b| b.is_empty()));
    }
}
