//! Cross-file semantic rules built on the item tree: `raw-f64-api`,
//! `crate-layering` and `api-lock`.
//!
//! These are the rules a token scan cannot express: they need item
//! identities (who owns this signature?), crate identities (which layer
//! does this file belong to?) and workspace state (the committed
//! `api-lock.txt` snapshots and the `Cargo.toml` dependency sections).

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::diagnostics::Diagnostic;
use crate::items::{ItemKind, ItemTree, PubItem};
use crate::rules::RuleId;

/// One scanned file with its source and parsed item tree.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Full source text (for diagnostic snippets).
    pub src: String,
    /// The parsed item skeleton.
    pub tree: ItemTree,
}

/// Crates ordered along the signal-modeling stack; each may depend on
/// strictly earlier entries (plus the shared leaves).
const LAYERS: &[&str] = &[
    "units", "tech", "circuit", "core", "link", "noc", "model", "prof",
];
/// Leaf utility crates: usable from any layer, may use no `srlr` crate
/// themselves.
const LEAVES: &[&str] = &["rng", "parallel", "telemetry", "criterion"];
/// Tool/front-end crates: consumers of the whole stack, unconstrained.
const TOOLS: &[&str] = &["cli", "bench", "lint"];

/// Crates whose public fns/fields must use `srlr-units` newtypes.
const DIMENSIONED: &[&str] = &["tech", "circuit", "core", "link"];

/// The crate directory a workspace-relative path belongs to: `Some("tech")`
/// for `crates/tech/src/…`, `Some("")` for the umbrella `src/…`.
pub fn crate_of(rel: &str) -> Option<&str> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        return rest.split('/').next();
    }
    if rel.starts_with("src/") {
        return Some("");
    }
    None
}

/// Whether crate `from` may depend on crate `to` under the layering DAG.
fn layering_allows(from: &str, to: &str) -> bool {
    if from == to {
        return true;
    }
    // The umbrella facade and the tool crates consume the whole stack.
    if from.is_empty() || TOOLS.contains(&from) {
        return true;
    }
    // Leaves depend on nothing inside the workspace.
    if LEAVES.contains(&from) {
        return false;
    }
    // Unknown crates are treated as tools until they are classified.
    let Some(from_rank) = LAYERS.iter().position(|&l| l == from) else {
        return true;
    };
    if LEAVES.contains(&to) {
        return true;
    }
    match LAYERS.iter().position(|&l| l == to) {
        Some(to_rank) => to_rank < from_rank,
        None => false, // layered crates may not reach into tool crates
    }
}

/// Builds a diagnostic anchored at `(line, col)` in `file`.
fn source_diag(
    file: &ParsedFile,
    line: u32,
    col: u32,
    width: u32,
    rule: RuleId,
    message: String,
) -> Diagnostic {
    let snippet = file
        .src
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .to_string();
    Diagnostic {
        path: file.rel.clone(),
        line,
        col,
        rule,
        message,
        snippet,
        width: width.max(1),
    }
}

// ---------------------------------------------------------------------
// raw-f64-api
// ---------------------------------------------------------------------

/// Flags public fns and fields in the dimensioned crates whose signature
/// carries a bare `f64`.
pub fn check_raw_f64(file: &ParsedFile) -> Vec<Diagnostic> {
    let Some(krate) = crate_of(&file.rel) else {
        return Vec::new();
    };
    if !DIMENSIONED.contains(&krate) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for item in &file.tree.items {
        if !matches!(item.kind, ItemKind::Fn | ItemKind::Field) || item.f64_spans.is_empty() {
            continue;
        }
        let what = match item.kind {
            ItemKind::Fn => "fn",
            _ => "field",
        };
        let qualified = match &item.owner {
            Some(o) if item.kind == ItemKind::Field => format!("{o}.{}", item.name),
            Some(o) => format!("{o}::{}", item.name),
            None => item.name.clone(),
        };
        let n = item.f64_spans.len();
        let plural = if n == 1 { "" } else { "s" };
        out.push(source_diag(
            file,
            item.line,
            item.col,
            item.name.chars().count() as u32,
            RuleId::RawF64Api,
            format!(
                "public {what} `{qualified}` exposes {n} bare `f64`{plural}; use an \
                 `srlr-units` newtype, or allow with a reason naming the dimensionless \
                 quantity"
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------
// crate-layering
// ---------------------------------------------------------------------

/// Checks every `use srlr_*` declaration against the layering DAG.
pub fn check_layering_uses(file: &ParsedFile) -> Vec<Diagnostic> {
    let Some(from) = crate_of(&file.rel) else {
        return Vec::new();
    };
    let from = from.to_string();
    let mut out = Vec::new();
    for decl in &file.tree.uses {
        let Some(to) = decl.first_segment.strip_prefix("srlr_") else {
            continue;
        };
        if layering_allows(&from, to) {
            continue;
        }
        out.push(source_diag(
            file,
            decl.line,
            1,
            decl.first_segment.chars().count() as u32,
            RuleId::CrateLayering,
            format!(
                "`{}` may not use `srlr-{to}`: the crate DAG is {} with {} as shared leaves",
                display_crate(&from),
                LAYERS.join(" -> "),
                LEAVES.join("/"),
            ),
        ));
    }
    out
}

fn display_crate(dir: &str) -> String {
    if dir.is_empty() {
        "the umbrella crate".to_string()
    } else {
        format!("srlr-{dir}")
    }
}

/// Checks every `crates/*/Cargo.toml` `[dependencies]` section against the
/// layering DAG. `[dev-dependencies]` are exempt (tests may reach
/// anywhere).
pub fn check_layering_manifests(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Ok(out);
    }
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let manifest = dir.join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        let from = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let rel = format!("crates/{from}/Cargo.toml");
        let mut in_deps = false;
        for (idx, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.starts_with('[') {
                in_deps = trimmed == "[dependencies]";
                continue;
            }
            if !in_deps {
                continue;
            }
            let Some(dep) = trimmed.split(['.', ' ', '=']).next() else {
                continue;
            };
            let Some(to) = dep.strip_prefix("srlr-") else {
                continue;
            };
            if layering_allows(&from, to) {
                continue;
            }
            out.push(Diagnostic {
                path: rel.clone(),
                line: idx as u32 + 1,
                col: 1,
                rule: RuleId::CrateLayering,
                message: format!(
                    "`srlr-{from}` may not depend on `srlr-{to}`: the crate DAG is {} with \
                     {} as shared leaves",
                    LAYERS.join(" -> "),
                    LEAVES.join("/"),
                ),
                snippet: line.to_string(),
                width: dep.chars().count() as u32,
            });
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// api-lock
// ---------------------------------------------------------------------

/// The api-lock entry line for one public item.
pub fn lock_entry(item: &PubItem) -> String {
    let module = if item.module.is_empty() {
        String::new()
    } else {
        format!("{}::", item.module)
    };
    let owner = match &item.owner {
        Some(o) if item.kind == ItemKind::Field => format!("{o}."),
        Some(o) => format!("{o}::"),
        None => String::new(),
    };
    format!(
        "{} {module}{owner}{}{}",
        item.kind.keyword(),
        item.name,
        item.signature
    )
}

/// The in-file module path of `rel` within its crate (`""` for the crate
/// root `lib.rs`, `bias` for `src/bias.rs`, `a::b` for `src/a/b.rs`).
fn file_module(rel: &str) -> String {
    let after_src = rel.split_once("src/").map(|(_, tail)| tail).unwrap_or(rel);
    let mut parts: Vec<&str> = after_src.split('/').collect();
    let Some(last) = parts.pop() else {
        return String::new();
    };
    let stem = last.trim_end_matches(".rs");
    if stem != "lib" && stem != "mod" {
        parts.push(stem);
    }
    parts.join("::")
}

/// Whether a file contributes to the crate's public API surface (binary
/// entry points do not).
fn is_api_file(rel: &str) -> bool {
    !(rel.ends_with("/main.rs") || rel == "main.rs" || rel.contains("/bin/"))
}

/// The lock-file path for a crate directory (`""` = umbrella root).
pub fn lock_path(root: &Path, krate: &str) -> PathBuf {
    if krate.is_empty() {
        root.join("api-lock.txt")
    } else {
        root.join("crates").join(krate).join("api-lock.txt")
    }
}

/// The display (workspace-relative) path of a crate's lock file.
fn lock_rel(krate: &str) -> String {
    if krate.is_empty() {
        "api-lock.txt".to_string()
    } else {
        format!("crates/{krate}/api-lock.txt")
    }
}

/// Current public surface per crate: entry → (file rel, line) of the item
/// that produced it (first occurrence wins for duplicates).
fn current_surface(
    files: &[ParsedFile],
) -> BTreeMap<String, BTreeMap<String, (&ParsedFile, u32, u32)>> {
    let mut by_crate: BTreeMap<String, BTreeMap<String, (&ParsedFile, u32, u32)>> = BTreeMap::new();
    for file in files {
        let Some(krate) = crate_of(&file.rel) else {
            continue;
        };
        if !is_api_file(&file.rel) {
            continue;
        }
        let module = file_module(&file.rel);
        let entries = by_crate.entry(krate.to_string()).or_default();
        for item in &file.tree.items {
            let mut qualified = item.clone();
            qualified.module = match (&module[..], &item.module[..]) {
                ("", m) => m.to_string(),
                (f, "") => f.to_string(),
                (f, m) => format!("{f}::{m}"),
            };
            entries
                .entry(lock_entry(&qualified))
                .or_insert((file, item.line, item.col));
        }
    }
    by_crate
}

/// Compares the current public surface with each committed
/// `api-lock.txt`. Crates without a lock file are not locked.
pub fn check_api_lock(files: &[ParsedFile], root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let surface = current_surface(files);
    for (krate, entries) in &surface {
        let path = lock_path(root, krate);
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // not locked
        };
        let rel = lock_rel(krate);
        let mut locked: BTreeMap<&str, u32> = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            locked.entry(line).or_insert(idx as u32 + 1);
        }
        for (entry, (file, line, col)) in entries {
            if locked.contains_key(entry.as_str()) {
                continue;
            }
            out.push(source_diag(
                file,
                *line,
                *col,
                3,
                RuleId::ApiLock,
                format!(
                    "public API addition not in {rel}: `{entry}`; review the change and run \
                     `srlr-lint --write-api-lock` to accept it"
                ),
            ));
        }
        for (entry, line) in &locked {
            if entries.contains_key(*entry) {
                continue;
            }
            out.push(Diagnostic {
                path: rel.clone(),
                line: *line,
                col: 1,
                rule: RuleId::ApiLock,
                message: format!(
                    "locked public API entry no longer exists: `{entry}`; if the removal is \
                     intentional run `srlr-lint --write-api-lock`"
                ),
                snippet: (*entry).to_string(),
                width: entry.chars().count() as u32,
            });
        }
    }
    out
}

/// Regenerates every crate's `api-lock.txt` from the current surface.
/// Returns the written paths.
pub fn write_api_locks(files: &[ParsedFile], root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let surface = current_surface(files);
    let mut written = Vec::new();
    for (krate, entries) in &surface {
        let path = lock_path(root, krate);
        let mut content = String::from(
            "# srlr-lint api-lock: the reviewed public API surface of this crate.\n\
             # Regenerate with `srlr-lint --write-api-lock` after an intentional API change.\n",
        );
        let sorted: BTreeSet<&String> = entries.keys().collect();
        for entry in sorted {
            content.push_str(entry);
            content.push('\n');
        }
        std::fs::write(&path, content)?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;

    fn parsed(rel: &str, src: &str) -> ParsedFile {
        ParsedFile {
            rel: rel.to_string(),
            src: src.to_string(),
            tree: parse_items(rel, src),
        }
    }

    #[test]
    fn raw_f64_fires_only_in_dimensioned_crates() {
        let src = "pub fn volts(&self) -> f64 { 0.0 }";
        let in_tech = parsed("crates/tech/src/device.rs", src);
        assert_eq!(check_raw_f64(&in_tech).len(), 1);
        let in_units = parsed("crates/units/src/voltage.rs", src);
        assert!(check_raw_f64(&in_units).is_empty());
        let in_noc = parsed("crates/noc/src/router.rs", src);
        assert!(check_raw_f64(&in_noc).is_empty());
    }

    #[test]
    fn raw_f64_message_names_the_item() {
        let f = parsed(
            "crates/core/src/design.rs",
            "pub struct D { pub margin: f64 }",
        );
        let d = check_raw_f64(&f);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`D.margin`"), "{}", d[0].message);
    }

    #[test]
    fn raw_f64_ignores_consts_and_private_items() {
        let f = parsed(
            "crates/tech/src/x.rs",
            "pub const K: f64 = 1.0;\nfn private(x: f64) -> f64 { x }",
        );
        assert!(check_raw_f64(&f).is_empty());
    }

    #[test]
    fn layering_dag() {
        assert!(layering_allows("tech", "units"));
        assert!(layering_allows("noc", "link"));
        assert!(layering_allows("link", "rng"));
        assert!(layering_allows("cli", "noc"));
        assert!(layering_allows("", "noc"));
        // The model checker sits atop the noc layer and shares its
        // transition semantics (srlr_noc::protocol).
        assert!(layering_allows("model", "noc"));
        assert!(layering_allows("model", "telemetry"));
        assert!(layering_allows("cli", "model"));
        // The profile toolkit only reads telemetry artifacts; nothing
        // below the tool crates may depend on it.
        assert!(layering_allows("prof", "telemetry"));
        assert!(layering_allows("cli", "prof"));
        assert!(!layering_allows("link", "prof"));
        assert!(!layering_allows("model", "prof"));
        assert!(!layering_allows("noc", "model"));
        assert!(!layering_allows("tech", "noc"));
        assert!(!layering_allows("units", "tech"));
        assert!(!layering_allows("rng", "units"));
        assert!(!layering_allows("circuit", "core"));
        assert!(!layering_allows("core", "lint"));
    }

    #[test]
    fn layering_use_violation_fires() {
        let f = parsed("crates/tech/src/bad.rs", "use srlr_noc::Network;\n");
        let d = check_layering_uses(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::CrateLayering);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn layering_allows_downward_uses() {
        let f = parsed(
            "crates/noc/src/lib.rs",
            "use srlr_link::SrlrLink;\nuse srlr_units::Voltage;\nuse std::fmt;\n",
        );
        assert!(check_layering_uses(&f).is_empty());
    }

    #[test]
    fn file_module_paths() {
        assert_eq!(file_module("crates/tech/src/lib.rs"), "");
        assert_eq!(file_module("crates/tech/src/bias.rs"), "bias");
        assert_eq!(file_module("crates/noc/src/a/b.rs"), "a::b");
        assert_eq!(file_module("crates/noc/src/a/mod.rs"), "a");
        assert_eq!(file_module("src/lib.rs"), "");
    }

    #[test]
    fn lock_entries_are_qualified_by_file_module() {
        let f = parsed(
            "crates/tech/src/bias.rs",
            "pub struct B { pub p: Power }\nimpl B { pub fn p(&self) -> Power { self.p } }",
        );
        let files = [f];
        let surface = current_surface(&files);
        let entries: Vec<&String> = surface["tech"].keys().collect();
        assert_eq!(
            entries,
            [
                "field bias::B.p: Power",
                "fn bias::B::p(&self) -> Power",
                "struct bias::B"
            ]
        );
    }

    #[test]
    fn main_rs_is_not_api() {
        let f = parsed("crates/cli/src/main.rs", "pub fn run() {}");
        assert!(current_surface(&[f]).is_empty());
    }
}
