//! Cross-file semantic rules built on the item tree and the expression
//! walker: `raw-f64-api`, `crate-layering`, `api-lock`, plus the
//! dataflow rules `alloc-in-hot-path`, `unordered-float-reduce`,
//! `rng-stream-discipline` and `lossy-cast`.
//!
//! These are the rules a token scan cannot express: they need item
//! identities (who owns this signature?), crate identities (which layer
//! does this file belong to?), function bodies reduced to call/cast/
//! reduction events ([`crate::exprs`]), the workspace call graph
//! ([`crate::callgraph`]) and workspace state (the committed
//! `api-lock.txt` snapshots, `lint-hotpaths.txt` and the `Cargo.toml`
//! dependency sections).

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::callgraph::{CallGraph, FileFns, Node};
use crate::diagnostics::{to_u32, Diagnostic};
use crate::exprs::{CallEvent, CallKind, FnDef};
use crate::items::{ItemKind, ItemTree, PubItem};
use crate::rules::RuleId;

/// One scanned file with its source and parsed item tree.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Full source text (for diagnostic snippets).
    pub src: String,
    /// The parsed item skeleton.
    pub tree: ItemTree,
    /// The file's function definitions with their body events.
    pub fns: Vec<FnDef>,
}

/// Crates ordered along the signal-modeling stack; each may depend on
/// strictly earlier entries (plus the shared leaves).
const LAYERS: &[&str] = &[
    "units", "tech", "circuit", "core", "link", "noc", "model", "prof",
];
/// Leaf utility crates: usable from any layer, may use no `srlr` crate
/// themselves.
const LEAVES: &[&str] = &["rng", "parallel", "telemetry", "criterion"];
/// Tool/front-end crates: consumers of the whole stack, unconstrained.
const TOOLS: &[&str] = &["cli", "bench", "lint"];

/// Crates whose public fns/fields must use `srlr-units` newtypes.
const DIMENSIONED: &[&str] = &["tech", "circuit", "core", "link"];

/// The crate directory a workspace-relative path belongs to: `Some("tech")`
/// for `crates/tech/src/…`, `Some("")` for the umbrella `src/…`.
pub fn crate_of(rel: &str) -> Option<&str> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        return rest.split('/').next();
    }
    if rel.starts_with("src/") {
        return Some("");
    }
    None
}

/// Whether crate `from` may depend on crate `to` under the layering DAG.
fn layering_allows(from: &str, to: &str) -> bool {
    if from == to {
        return true;
    }
    // The umbrella facade and the tool crates consume the whole stack.
    if from.is_empty() || TOOLS.contains(&from) {
        return true;
    }
    // Leaves depend on nothing inside the workspace.
    if LEAVES.contains(&from) {
        return false;
    }
    // Unknown crates are treated as tools until they are classified.
    let Some(from_rank) = LAYERS.iter().position(|&l| l == from) else {
        return true;
    };
    if LEAVES.contains(&to) {
        return true;
    }
    match LAYERS.iter().position(|&l| l == to) {
        Some(to_rank) => to_rank < from_rank,
        None => false, // layered crates may not reach into tool crates
    }
}

/// Builds a diagnostic anchored at `(line, col)` in `file`.
fn source_diag(
    file: &ParsedFile,
    line: u32,
    col: u32,
    width: u32,
    rule: RuleId,
    message: String,
) -> Diagnostic {
    let snippet = file
        .src
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .to_string();
    Diagnostic {
        path: file.rel.clone(),
        line,
        col,
        rule,
        message,
        snippet,
        width: width.max(1),
    }
}

// ---------------------------------------------------------------------
// raw-f64-api
// ---------------------------------------------------------------------

/// Flags public fns and fields in the dimensioned crates whose signature
/// carries a bare `f64`.
pub fn check_raw_f64(file: &ParsedFile) -> Vec<Diagnostic> {
    let Some(krate) = crate_of(&file.rel) else {
        return Vec::new();
    };
    if !DIMENSIONED.contains(&krate) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for item in &file.tree.items {
        if !matches!(item.kind, ItemKind::Fn | ItemKind::Field) || item.f64_spans.is_empty() {
            continue;
        }
        let what = match item.kind {
            ItemKind::Fn => "fn",
            _ => "field",
        };
        let qualified = match &item.owner {
            Some(o) if item.kind == ItemKind::Field => format!("{o}.{}", item.name),
            Some(o) => format!("{o}::{}", item.name),
            None => item.name.clone(),
        };
        let n = item.f64_spans.len();
        let plural = if n == 1 { "" } else { "s" };
        out.push(source_diag(
            file,
            item.line,
            item.col,
            to_u32(item.name.chars().count()),
            RuleId::RawF64Api,
            format!(
                "public {what} `{qualified}` exposes {n} bare `f64`{plural}; use an \
                 `srlr-units` newtype, or allow with a reason naming the dimensionless \
                 quantity"
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------
// crate-layering
// ---------------------------------------------------------------------

/// Checks every `use srlr_*` declaration against the layering DAG.
pub fn check_layering_uses(file: &ParsedFile) -> Vec<Diagnostic> {
    let Some(from) = crate_of(&file.rel) else {
        return Vec::new();
    };
    let from = from.to_string();
    let mut out = Vec::new();
    for decl in &file.tree.uses {
        let Some(to) = decl.first_segment.strip_prefix("srlr_") else {
            continue;
        };
        if layering_allows(&from, to) {
            continue;
        }
        out.push(source_diag(
            file,
            decl.line,
            1,
            to_u32(decl.first_segment.chars().count()),
            RuleId::CrateLayering,
            format!(
                "`{}` may not use `srlr-{to}`: the crate DAG is {} with {} as shared leaves",
                display_crate(&from),
                LAYERS.join(" -> "),
                LEAVES.join("/"),
            ),
        ));
    }
    out
}

fn display_crate(dir: &str) -> String {
    if dir.is_empty() {
        "the umbrella crate".to_string()
    } else {
        format!("srlr-{dir}")
    }
}

/// Checks every `crates/*/Cargo.toml` `[dependencies]` section against the
/// layering DAG. `[dev-dependencies]` are exempt (tests may reach
/// anywhere).
pub fn check_layering_manifests(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Ok(out);
    }
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let manifest = dir.join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        let from = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let rel = format!("crates/{from}/Cargo.toml");
        let mut in_deps = false;
        for (idx, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.starts_with('[') {
                in_deps = trimmed == "[dependencies]";
                continue;
            }
            if !in_deps {
                continue;
            }
            let Some(dep) = trimmed.split(['.', ' ', '=']).next() else {
                continue;
            };
            let Some(to) = dep.strip_prefix("srlr-") else {
                continue;
            };
            if layering_allows(&from, to) {
                continue;
            }
            out.push(Diagnostic {
                path: rel.clone(),
                line: to_u32(idx + 1),
                col: 1,
                rule: RuleId::CrateLayering,
                message: format!(
                    "`srlr-{from}` may not depend on `srlr-{to}`: the crate DAG is {} with \
                     {} as shared leaves",
                    LAYERS.join(" -> "),
                    LEAVES.join("/"),
                ),
                snippet: line.to_string(),
                width: to_u32(dep.chars().count()),
            });
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// api-lock
// ---------------------------------------------------------------------

/// The api-lock entry line for one public item.
pub fn lock_entry(item: &PubItem) -> String {
    let module = if item.module.is_empty() {
        String::new()
    } else {
        format!("{}::", item.module)
    };
    let owner = match &item.owner {
        Some(o) if item.kind == ItemKind::Field => format!("{o}."),
        Some(o) => format!("{o}::"),
        None => String::new(),
    };
    format!(
        "{} {module}{owner}{}{}",
        item.kind.keyword(),
        item.name,
        item.signature
    )
}

/// The in-file module path of `rel` within its crate (`""` for the crate
/// root `lib.rs`, `bias` for `src/bias.rs`, `a::b` for `src/a/b.rs`).
fn file_module(rel: &str) -> String {
    let after_src = rel.split_once("src/").map(|(_, tail)| tail).unwrap_or(rel);
    let mut parts: Vec<&str> = after_src.split('/').collect();
    let Some(last) = parts.pop() else {
        return String::new();
    };
    let stem = last.trim_end_matches(".rs");
    if stem != "lib" && stem != "mod" {
        parts.push(stem);
    }
    parts.join("::")
}

/// Whether a file contributes to the crate's public API surface (binary
/// entry points do not).
fn is_api_file(rel: &str) -> bool {
    !(rel.ends_with("/main.rs") || rel == "main.rs" || rel.contains("/bin/"))
}

/// The lock-file path for a crate directory (`""` = umbrella root).
pub fn lock_path(root: &Path, krate: &str) -> PathBuf {
    if krate.is_empty() {
        root.join("api-lock.txt")
    } else {
        root.join("crates").join(krate).join("api-lock.txt")
    }
}

/// The display (workspace-relative) path of a crate's lock file.
fn lock_rel(krate: &str) -> String {
    if krate.is_empty() {
        "api-lock.txt".to_string()
    } else {
        format!("crates/{krate}/api-lock.txt")
    }
}

/// Current public surface per crate: entry → (file rel, line) of the item
/// that produced it (first occurrence wins for duplicates).
fn current_surface(
    files: &[ParsedFile],
) -> BTreeMap<String, BTreeMap<String, (&ParsedFile, u32, u32)>> {
    let mut by_crate: BTreeMap<String, BTreeMap<String, (&ParsedFile, u32, u32)>> = BTreeMap::new();
    for file in files {
        let Some(krate) = crate_of(&file.rel) else {
            continue;
        };
        if !is_api_file(&file.rel) {
            continue;
        }
        let module = file_module(&file.rel);
        let entries = by_crate.entry(krate.to_string()).or_default();
        for item in &file.tree.items {
            let mut qualified = item.clone();
            qualified.module = match (&module[..], &item.module[..]) {
                ("", m) => m.to_string(),
                (f, "") => f.to_string(),
                (f, m) => format!("{f}::{m}"),
            };
            entries
                .entry(lock_entry(&qualified))
                .or_insert((file, item.line, item.col));
        }
    }
    by_crate
}

/// Compares the current public surface with each committed
/// `api-lock.txt`. Crates without a lock file are not locked.
pub fn check_api_lock(files: &[ParsedFile], root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let surface = current_surface(files);
    for (krate, entries) in &surface {
        let path = lock_path(root, krate);
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // not locked
        };
        let rel = lock_rel(krate);
        let mut locked: BTreeMap<&str, u32> = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            locked.entry(line).or_insert(to_u32(idx + 1));
        }
        for (entry, (file, line, col)) in entries {
            if locked.contains_key(entry.as_str()) {
                continue;
            }
            out.push(source_diag(
                file,
                *line,
                *col,
                3,
                RuleId::ApiLock,
                format!(
                    "public API addition not in {rel}: `{entry}`; review the change and run \
                     `srlr-lint --write-api-lock` to accept it"
                ),
            ));
        }
        for (entry, line) in &locked {
            if entries.contains_key(*entry) {
                continue;
            }
            out.push(Diagnostic {
                path: rel.clone(),
                line: *line,
                col: 1,
                rule: RuleId::ApiLock,
                message: format!(
                    "locked public API entry no longer exists: `{entry}`; if the removal is \
                     intentional run `srlr-lint --write-api-lock`"
                ),
                snippet: (*entry).to_string(),
                width: to_u32(entry.chars().count()),
            });
        }
    }
    out
}

/// Regenerates every crate's `api-lock.txt` from the current surface.
/// Returns the written paths.
pub fn write_api_locks(files: &[ParsedFile], root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let surface = current_surface(files);
    let mut written = Vec::new();
    for (krate, entries) in &surface {
        let path = lock_path(root, krate);
        let mut content = String::from(
            "# srlr-lint api-lock: the reviewed public API surface of this crate.\n\
             # Regenerate with `srlr-lint --write-api-lock` after an intentional API change.\n",
        );
        let sorted: BTreeSet<&String> = entries.keys().collect();
        for entry in sorted {
            content.push_str(entry);
            content.push('\n');
        }
        std::fs::write(&path, content)?;
        written.push(path);
    }
    Ok(written)
}

// ---------------------------------------------------------------------
// Dataflow rules: alloc-in-hot-path, unordered-float-reduce,
// rng-stream-discipline, lossy-cast
// ---------------------------------------------------------------------

/// The committed hot-root declaration file, relative to the workspace
/// root.
pub const HOTPATHS_FILE: &str = "lint-hotpaths.txt";

/// `Type::fn` path calls that allocate.
const ALLOC_PATH_CALLS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("Rc", "new"),
    ("Arc", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("VecDeque", "new"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
];
/// Method names that allocate (or may reallocate) their receiver.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_str",
    "collect",
    "clone",
    "to_vec",
    "to_string",
    "to_owned",
    "extend",
    "append",
    "reserve",
    "resize",
];
/// Macros whose expansion allocates its output.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Iterator adapters and sources whose yield order is not specified (or
/// not index-ordered): a float reduction downstream of one of these is
/// non-deterministic because float addition is not associative. The
/// sanctioned merge path is `srlr_parallel::par_map_indexed`, whose
/// outputs are index-ordered by construction.
const UNORDERED_ADAPTERS: &[&str] = &[
    "par_bridge",
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_map_unordered",
    "read_dir",
];

/// RNG-constructing calls: `Xoshiro256pp::{new, for_stream}` plus the
/// seed-derivation free functions.
const RNG_SEED_FNS: &[&str] = &["stream_seed", "splitmix64"];

/// The registered sampler entry points: the only functions outside
/// `srlr-rng` allowed to construct RNG state. Every entry derives its
/// stream from an experiment seed plus a stable index
/// (trial/link/packet), which is what keeps runs bit-identical at any
/// thread count. Additions to this list are API review, exactly like an
/// `api-lock.txt` change.
const REGISTERED_SAMPLERS: &[&str] = &[
    "srlr-tech::GaussianRng::new",
    "srlr-tech::GaussianRng::for_stream",
    "srlr-link::Prbs::prbs15_for_stream",
    "srlr-noc::TrafficGenerator::new",
    "srlr-noc::FaultModel::new",
    "srlr-noc::packet::flit_payload",
];

/// `as` targets the `lossy-cast` rule flags: sub-word integers, where
/// truncation and sign wrap are silent. Casts to `u64`/`u128`/`usize`
/// (lossless widening from every index type used here) and to floats
/// (dominant idiom: count → ratio) stay token-exempt.
const LOSSY_CAST_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// The Cargo package name of a crate directory (`core` → `srlr-core`,
/// the umbrella root → `srlr-repro`).
fn crate_display_name(dir: &str) -> String {
    if dir.is_empty() {
        "srlr-repro".to_string()
    } else {
        format!("srlr-{dir}")
    }
}

/// Inverse of [`crate_display_name`], for the layering filter.
fn crate_dir_of_display(name: &str) -> &str {
    if name == "srlr-repro" {
        ""
    } else {
        name.strip_prefix("srlr-").unwrap_or(name)
    }
}

/// The qualified id of a function definition, matching
/// [`Node::display`]: `srlr-tech::GaussianRng::new` for methods,
/// `srlr-noc::packet::flit_payload` for module free functions.
fn fn_id(rel: &str, def: &FnDef) -> String {
    let krate = crate_display_name(crate_of(rel).unwrap_or_default());
    let mid = match (&def.owner, file_module(rel)) {
        (Some(o), _) => format!("{o}::"),
        (None, m) if m.is_empty() => String::new(),
        (None, m) => format!("{m}::"),
    };
    format!("{krate}::{mid}{}", def.name)
}

/// Builds the workspace call graph from every file's parsed function
/// definitions, with edges pruned by the crate layering DAG (code in
/// `link` cannot call into `noc`, so a method name defined in both is
/// not resolved upward).
pub fn build_call_graph(files: &[ParsedFile]) -> CallGraph {
    let file_fns: Vec<FileFns<'_>> = files
        .iter()
        .map(|f| FileFns {
            crate_name: crate_display_name(crate_of(&f.rel).unwrap_or_default()),
            module: file_module(&f.rel),
            defs: &f.fns,
        })
        .collect();
    CallGraph::build(&file_fns, |from, to| {
        layering_allows(crate_dir_of_display(from), crate_dir_of_display(to))
    })
}

/// One hot-root declaration from `lint-hotpaths.txt`.
#[derive(Debug, Clone)]
pub struct HotRoot {
    /// The profiler span name this root is accountable to (must appear
    /// in `--profile-out` folded output; cross-checked by a CLI test).
    pub span: String,
    /// The function pattern, as accepted by
    /// [`CallGraph::resolve_pattern`].
    pub pattern: String,
    /// 1-based line in the declaration file.
    pub line: u32,
    /// The raw line text (diagnostic snippet).
    pub text: String,
}

/// The parsed `lint-hotpaths.txt`.
#[derive(Debug, Default)]
pub struct HotPaths {
    /// Well-formed declarations.
    pub roots: Vec<HotRoot>,
    /// Lines that are neither comments nor `span pattern` pairs.
    pub malformed: Vec<(u32, String)>,
}

/// Parses the hot-root declaration format: one `span-name fn-pattern`
/// pair per line, `#` comments and blank lines ignored.
pub fn parse_hotpaths(text: &str) -> HotPaths {
    let mut hot = HotPaths::default();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        match (fields.next(), fields.next(), fields.next()) {
            (Some(span), Some(pattern), None) => hot.roots.push(HotRoot {
                span: span.to_string(),
                pattern: pattern.to_string(),
                line: to_u32(idx + 1),
                text: raw.to_string(),
            }),
            _ => hot.malformed.push((to_u32(idx + 1), raw.to_string())),
        }
    }
    hot
}

/// Loads `<root>/lint-hotpaths.txt`; `None` when the workspace declares
/// no hot roots (the rule is then inert).
pub fn load_hotpaths(root: &Path) -> Option<HotPaths> {
    let text = std::fs::read_to_string(root.join(HOTPATHS_FILE)).ok()?;
    Some(parse_hotpaths(&text))
}

/// A diagnostic anchored in the hot-root declaration file itself.
fn hotpaths_diag(line: u32, text: &str, message: String) -> Diagnostic {
    Diagnostic {
        path: HOTPATHS_FILE.to_string(),
        line,
        col: 1,
        rule: RuleId::AllocInHotPath,
        message,
        snippet: text.to_string(),
        width: to_u32(text.trim().chars().count().max(1)),
    }
}

/// Whether a call event is a heap allocation.
fn allocates(call: &CallEvent) -> bool {
    match call.kind {
        CallKind::Path => call
            .qualifier
            .as_deref()
            .is_some_and(|q| ALLOC_PATH_CALLS.contains(&(q, call.name.as_str()))),
        CallKind::Method => ALLOC_METHODS.contains(&call.name.as_str()),
        CallKind::Macro => ALLOC_MACROS.contains(&call.name.as_str()),
        CallKind::Bare => false,
    }
}

/// `alloc-in-hot-path`: no heap-allocating call in any function the
/// call graph can reach from a declared hot root.
///
/// `crates/telemetry/` is exempt: the profiler's record-keeping
/// (entered frames, counters) allocates only when profiling is enabled,
/// and its zero-cost-when-disabled contract is enforced by its own
/// tests — the hot path's *disabled* cost is one branch. `crates/criterion/`
/// is exempt for the same structural reason: the bench shim wraps kernels
/// from the *outside* (timing loops allocate sample vectors between
/// measured iterations) and is never linked into the simulation hot path.
pub fn check_alloc_in_hot_path(
    files: &[ParsedFile],
    graph: &CallGraph,
    hot: &HotPaths,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (line, text) in &hot.malformed {
        out.push(hotpaths_diag(
            *line,
            text,
            format!(
                "malformed hot-root line in {HOTPATHS_FILE}: expected `span-name crate::Owner::fn`"
            ),
        ));
    }
    let mut roots: Vec<usize> = Vec::new();
    let mut root_decl: BTreeMap<usize, &HotRoot> = BTreeMap::new();
    for root in &hot.roots {
        let ids = graph.resolve_pattern(&root.pattern);
        if ids.is_empty() {
            out.push(hotpaths_diag(
                root.line,
                &root.text,
                format!(
                    "hot root `{}` matches no workspace function; fix the pattern or delete \
                     the line (shapes: crate::Owner::fn, crate::fn, crate::module::*)",
                    root.pattern
                ),
            ));
            continue;
        }
        for id in ids {
            root_decl.entry(id).or_insert(root);
            roots.push(id);
        }
    }
    let reached = graph.reachable_from(&roots);
    for (id, node) in graph.nodes().iter().enumerate() {
        let Some(root_id) = reached[id] else { continue };
        let file = &files[node.file];
        if file.rel.starts_with("crates/telemetry/") || file.rel.starts_with("crates/criterion/") {
            continue;
        }
        let def = &file.fns[node.def];
        let decl = &root_decl[&root_id];
        let via: &Node = &graph.nodes()[root_id];
        for call in &def.calls {
            if !allocates(call) {
                continue;
            }
            out.push(source_diag(
                file,
                call.line,
                call.col,
                to_u32(call.name.chars().count()),
                RuleId::AllocInHotPath,
                format!(
                    "heap allocation `{}` in hot function `{}` (reachable from `{}` root \
                     `{}` in {HOTPATHS_FILE})",
                    call.display(),
                    node.display(),
                    decl.span,
                    via.display(),
                ),
            ));
        }
    }
    out
}

/// `unordered-float-reduce`: a float reduction whose chain contains an
/// adapter with unspecified iteration order.
pub fn check_unordered_float_reduce(file: &ParsedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for def in &file.fns {
        for r in &def.reduces {
            let Some(bad) = r
                .chain
                .iter()
                .find(|c| UNORDERED_ADAPTERS.contains(&c.as_str()))
            else {
                continue;
            };
            out.push(source_diag(
                file,
                r.line,
                r.col,
                to_u32(r.terminator.chars().count()),
                RuleId::UnorderedFloatReduce,
                format!(
                    "float `{}` over order-unspecified iteration (`{bad}`): float addition \
                     is not associative; merge parallel results through \
                     `par_map_indexed`-ordered outputs",
                    r.terminator
                ),
            ));
        }
    }
    out
}

/// Whether a call event constructs RNG state.
fn constructs_rng(call: &CallEvent) -> bool {
    if call.kind == CallKind::Macro {
        return false;
    }
    if RNG_SEED_FNS.contains(&call.name.as_str()) {
        return true;
    }
    call.qualifier.as_deref() == Some("Xoshiro256pp")
        && matches!(call.name.as_str(), "new" | "for_stream")
}

/// `rng-stream-discipline`: RNG construction outside `srlr-rng` and the
/// registered sampler entry points.
pub fn check_rng_stream_discipline(file: &ParsedFile) -> Vec<Diagnostic> {
    if file.rel.starts_with("crates/rng/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for def in &file.fns {
        if REGISTERED_SAMPLERS.contains(&fn_id(&file.rel, def).as_str()) {
            continue;
        }
        for call in def.calls.iter().filter(|c| constructs_rng(c)) {
            out.push(source_diag(
                file,
                call.line,
                call.col,
                to_u32(call.name.chars().count()),
                RuleId::RngStreamDiscipline,
                format!(
                    "RNG construction `{}` in `{}`, which is not a registered sampler: derive \
                     streams through a REGISTERED_SAMPLERS entry point (srlr-lint semantic.rs) \
                     so they stay counter-derived from a trial index",
                    call.display(),
                    fn_id(&file.rel, def),
                ),
            ));
        }
    }
    out
}

/// `lossy-cast`: `as` casts to sub-word integer types in library code.
/// Binary entry points (`main.rs`) are exempt, matching `no-print`.
pub fn check_lossy_cast(file: &ParsedFile) -> Vec<Diagnostic> {
    if file.rel == "main.rs" || file.rel.ends_with("/main.rs") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for def in &file.fns {
        for cast in &def.casts {
            if !LOSSY_CAST_TARGETS.contains(&cast.target.as_str()) {
                continue;
            }
            out.push(source_diag(
                file,
                cast.line,
                cast.col,
                to_u32(cast.target.chars().count()),
                RuleId::LossyCast,
                format!(
                    "lossy `as {0}` cast: use `{0}::try_from` (or `From`), or allow with a \
                     reason proving the value fits",
                    cast.target
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;

    fn parsed(rel: &str, src: &str) -> ParsedFile {
        ParsedFile {
            rel: rel.to_string(),
            src: src.to_string(),
            tree: parse_items(rel, src),
            fns: crate::exprs::parse_fns(rel, src),
        }
    }

    #[test]
    fn raw_f64_fires_only_in_dimensioned_crates() {
        let src = "pub fn volts(&self) -> f64 { 0.0 }";
        let in_tech = parsed("crates/tech/src/device.rs", src);
        assert_eq!(check_raw_f64(&in_tech).len(), 1);
        let in_units = parsed("crates/units/src/voltage.rs", src);
        assert!(check_raw_f64(&in_units).is_empty());
        let in_noc = parsed("crates/noc/src/router.rs", src);
        assert!(check_raw_f64(&in_noc).is_empty());
    }

    #[test]
    fn raw_f64_message_names_the_item() {
        let f = parsed(
            "crates/core/src/design.rs",
            "pub struct D { pub margin: f64 }",
        );
        let d = check_raw_f64(&f);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`D.margin`"), "{}", d[0].message);
    }

    #[test]
    fn raw_f64_ignores_consts_and_private_items() {
        let f = parsed(
            "crates/tech/src/x.rs",
            "pub const K: f64 = 1.0;\nfn private(x: f64) -> f64 { x }",
        );
        assert!(check_raw_f64(&f).is_empty());
    }

    #[test]
    fn layering_dag() {
        assert!(layering_allows("tech", "units"));
        assert!(layering_allows("noc", "link"));
        assert!(layering_allows("link", "rng"));
        assert!(layering_allows("cli", "noc"));
        assert!(layering_allows("", "noc"));
        // The model checker sits atop the noc layer and shares its
        // transition semantics (srlr_noc::protocol).
        assert!(layering_allows("model", "noc"));
        assert!(layering_allows("model", "telemetry"));
        assert!(layering_allows("cli", "model"));
        // The profile toolkit only reads telemetry artifacts; nothing
        // below the tool crates may depend on it.
        assert!(layering_allows("prof", "telemetry"));
        assert!(layering_allows("cli", "prof"));
        assert!(!layering_allows("link", "prof"));
        assert!(!layering_allows("model", "prof"));
        assert!(!layering_allows("noc", "model"));
        assert!(!layering_allows("tech", "noc"));
        assert!(!layering_allows("units", "tech"));
        assert!(!layering_allows("rng", "units"));
        assert!(!layering_allows("circuit", "core"));
        assert!(!layering_allows("core", "lint"));
    }

    #[test]
    fn layering_use_violation_fires() {
        let f = parsed("crates/tech/src/bad.rs", "use srlr_noc::Network;\n");
        let d = check_layering_uses(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::CrateLayering);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn layering_allows_downward_uses() {
        let f = parsed(
            "crates/noc/src/lib.rs",
            "use srlr_link::SrlrLink;\nuse srlr_units::Voltage;\nuse std::fmt;\n",
        );
        assert!(check_layering_uses(&f).is_empty());
    }

    #[test]
    fn file_module_paths() {
        assert_eq!(file_module("crates/tech/src/lib.rs"), "");
        assert_eq!(file_module("crates/tech/src/bias.rs"), "bias");
        assert_eq!(file_module("crates/noc/src/a/b.rs"), "a::b");
        assert_eq!(file_module("crates/noc/src/a/mod.rs"), "a");
        assert_eq!(file_module("src/lib.rs"), "");
    }

    #[test]
    fn lock_entries_are_qualified_by_file_module() {
        let f = parsed(
            "crates/tech/src/bias.rs",
            "pub struct B { pub p: Power }\nimpl B { pub fn p(&self) -> Power { self.p } }",
        );
        let files = [f];
        let surface = current_surface(&files);
        let entries: Vec<&String> = surface["tech"].keys().collect();
        assert_eq!(
            entries,
            [
                "field bias::B.p: Power",
                "fn bias::B::p(&self) -> Power",
                "struct bias::B"
            ]
        );
    }

    #[test]
    fn main_rs_is_not_api() {
        let f = parsed("crates/cli/src/main.rs", "pub fn run() {}");
        assert!(current_surface(&[f]).is_empty());
    }

    #[test]
    fn hotpaths_parse_accepts_comments_and_flags_malformed() {
        let hot = parse_hotpaths(
            "# comment\n\nbit_slot srlr-core::DieBatch::advance_slot\nbroken\nspan pat extra\n",
        );
        assert_eq!(hot.roots.len(), 1);
        assert_eq!(hot.roots[0].span, "bit_slot");
        assert_eq!(hot.roots[0].line, 3);
        assert_eq!(
            hot.malformed,
            [(4, "broken".to_string()), (5, "span pat extra".to_string())]
        );
    }

    #[test]
    fn alloc_in_hot_path_fires_transitively() {
        let files = [
            parsed(
                "crates/core/src/batch.rs",
                "impl DieBatch {\n    pub fn advance_slot(&mut self) { helper(); }\n}\n\
                 fn helper() { let mut v = Vec::new(); v.push(1); }",
            ),
            parsed("crates/core/src/cold.rs", "pub fn cold() { Vec::new(); }"),
        ];
        let graph = build_call_graph(&files);
        let hot = parse_hotpaths("bit_slot srlr-core::DieBatch::advance_slot\n");
        let d = check_alloc_in_hot_path(&files, &graph, &hot);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("Vec::new"));
        assert!(d[0].message.contains("srlr-core::batch::helper"));
        assert!(d[0].message.contains("bit_slot"));
        assert!(
            d.iter().all(|x| x.path == "crates/core/src/batch.rs"),
            "cold() is unreachable from the root: {d:?}"
        );
    }

    #[test]
    fn alloc_in_hot_path_reports_unresolved_roots() {
        let files = [parsed("crates/core/src/batch.rs", "pub fn tick() {}")];
        let graph = build_call_graph(&files);
        let hot = parse_hotpaths("bit_slot srlr-core::Nope::missing\n");
        let d = check_alloc_in_hot_path(&files, &graph, &hot);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, HOTPATHS_FILE);
        assert!(d[0].message.contains("matches no workspace function"));
    }

    #[test]
    fn alloc_in_hot_path_exempts_telemetry() {
        let files = [
            parsed(
                "crates/core/src/batch.rs",
                "impl DieBatch { pub fn advance_slot(&self, p: Profiler) { p.enter(); } }",
            ),
            parsed(
                "crates/telemetry/src/profile.rs",
                "impl Profiler { pub fn enter(&mut self) { self.frames.push(1); } }",
            ),
        ];
        let graph = build_call_graph(&files);
        let hot = parse_hotpaths("bit_slot srlr-core::DieBatch::advance_slot\n");
        assert!(check_alloc_in_hot_path(&files, &graph, &hot).is_empty());
    }

    #[test]
    fn unordered_float_reduce_fires_on_unordered_chains_only() {
        let bad = parsed(
            "crates/link/src/x.rs",
            "fn merge(xs: &[f64]) -> f64 { xs.par_bridge().map(|x| x).sum::<f64>() }",
        );
        let d = check_unordered_float_reduce(&bad);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("par_bridge"), "{}", d[0].message);
        let good = parsed(
            "crates/link/src/x.rs",
            "fn merge(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }",
        );
        assert!(check_unordered_float_reduce(&good).is_empty());
    }

    #[test]
    fn rng_discipline_allows_registered_samplers_only() {
        let bad = parsed(
            "crates/noc/src/rogue.rs",
            "fn rogue(seed: u64) -> Xoshiro256pp { Xoshiro256pp::new(seed) }",
        );
        let d = check_rng_stream_discipline(&bad);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("not a registered sampler"));
        let registered = parsed(
            "crates/tech/src/montecarlo.rs",
            "impl GaussianRng {\n    pub fn new(seed: u64) -> Self { Self { rng: Xoshiro256pp::new(seed) } }\n}",
        );
        assert!(check_rng_stream_discipline(&registered).is_empty());
        let in_rng = parsed(
            "crates/rng/src/lib.rs",
            "pub fn splitmix64(x: u64) -> u64 { splitmix64(x) }",
        );
        assert!(check_rng_stream_discipline(&in_rng).is_empty());
    }

    #[test]
    fn lossy_cast_flags_subword_targets_only() {
        let f = parsed(
            "crates/noc/src/x.rs",
            "fn f(x: u64) -> u32 { let _ = x as f64; let _ = x as usize; x as u32 }",
        );
        let d = check_lossy_cast(&f);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("as u32"));
        let main = parsed("crates/cli/src/main.rs", "fn f(x: u64) -> u32 { x as u32 }");
        assert!(check_lossy_cast(&main).is_empty(), "binaries are exempt");
    }
}
