//! A lightweight recursive-descent **item-tree** parser.
//!
//! This is deliberately not a Rust parser: it walks the token stream of
//! one file and recovers only the *item skeleton* — `use` declarations,
//! inline `mod` nesting, `impl`/`trait` ownership, and the signatures of
//! `pub` functions, structs and fields. Expression bodies are skipped
//! wholesale (via the file view's `item_end`), so the parser stays robust on
//! anything rustc would accept while giving the semantic rules
//! (`raw-f64-api`, `crate-layering`, `api-lock`) real item identities to
//! anchor on instead of raw token positions.
//!
//! Conventions the rules rely on:
//!
//! * Test code (`#[cfg(test)]` / `#[test]`) and `macro_rules!` bodies are
//!   invisible, exactly as for the token-level rules.
//! * Only unrestricted `pub` items are recorded; `pub(crate)` and
//!   narrower are workspace-internal and carry no API obligations.
//! * Methods inside `impl Trait for Type` blocks are **not** recorded:
//!   the trait declaration is the source of truth for their signatures.
//! * Macro-generated items cannot be seen (the lint never expands
//!   macros); the api-lock snapshot is therefore "everything the item
//!   parser sees", applied identically when writing and when checking.

use crate::analyze::FileView;

/// What kind of public item a [`PubItem`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ItemKind {
    /// A free function, inherent method, or trait method declaration.
    Fn,
    /// A struct.
    Struct,
    /// A named or tuple struct field.
    Field,
    /// An enum (variants are not descended into).
    Enum,
    /// A trait declaration.
    Trait,
    /// A `type` alias.
    TypeAlias,
    /// A `const` item.
    Const,
    /// A `static` item.
    Static,
    /// A `union`.
    Union,
}

impl ItemKind {
    /// The keyword used in api-lock entries and diagnostics.
    pub fn keyword(self) -> &'static str {
        match self {
            ItemKind::Fn => "fn",
            ItemKind::Struct => "struct",
            ItemKind::Field => "field",
            ItemKind::Enum => "enum",
            ItemKind::Trait => "trait",
            ItemKind::TypeAlias => "type",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::Union => "union",
        }
    }
}

/// One recorded public item.
#[derive(Debug, Clone)]
pub struct PubItem {
    /// The item kind.
    pub kind: ItemKind,
    /// Inline-module path within the file (`""` at file root, `a::b` for
    /// nested `mod` blocks).
    pub module: String,
    /// Owning type or trait for methods, owning struct for fields.
    pub owner: Option<String>,
    /// Item name; tuple fields use their positional index.
    pub name: String,
    /// Normalized signature: `(params) -> ret` for fns, `: Type` for
    /// fields/consts/statics, empty otherwise.
    pub signature: String,
    /// 1-based line of the item's first token.
    pub line: u32,
    /// 1-based column of the item's first token.
    pub col: u32,
    /// Positions of every bare `f64` token in the signature.
    pub f64_spans: Vec<(u32, u32)>,
}

/// One `use` declaration (any visibility — re-exports count as
/// dependencies too).
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// The first path segment (`srlr_units`, `std`, `crate`, …).
    pub first_segment: String,
    /// 1-based line of the `use` keyword.
    pub line: u32,
}

/// The parsed item skeleton of one file.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// Every `use` declaration, in source order.
    pub uses: Vec<UseDecl>,
    /// Every recorded public item, in source order.
    pub items: Vec<PubItem>,
}

/// Parses the item tree of one source file.
pub fn parse_items(path: &str, src: &str) -> ItemTree {
    let view = FileView::new(path, src);
    let mut walker = Walker {
        view: &view,
        tree: ItemTree::default(),
    };
    walker.walk(0, view.code.len(), String::new(), Ctx::Module);
    walker.tree
}

/// What kind of block the walker is currently inside.
#[derive(Debug, Clone)]
enum Ctx {
    /// File root or an inline `mod` body.
    Module,
    /// `impl Type { … }`: `pub fn`s become methods of the owner.
    InherentImpl(String),
    /// `impl Trait for Type { … }`: nothing is recorded.
    TraitImpl,
    /// `pub trait Name { … }`: every `fn` is public API of the trait.
    TraitDecl(String),
}

/// Keywords that may precede `fn` in a declaration.
const FN_MODIFIERS: &[&str] = &["const", "unsafe", "async", "extern"];
/// Identifiers that can appear in a type path but never name the type.
const TYPE_NOISE: &[&str] = &[
    "dyn", "mut", "const", "for", "where", "as", "crate", "super",
];

struct Walker<'a, 'b> {
    view: &'b FileView<'a>,
    tree: ItemTree,
}

impl<'a, 'b> Walker<'a, 'b> {
    fn text(&self, ci: usize) -> &'a str {
        self.view.ctext(ci).unwrap_or("")
    }

    /// Walks the code-token range `[start, end)` at item position.
    fn walk(&mut self, start: usize, end: usize, module: String, ctx: Ctx) {
        let mut i = start;
        while i < end {
            if self.view.is_excluded(i) || self.view.is_in_macro(i) {
                i += 1;
                continue;
            }
            if let Some((close, _)) = self.view.parse_attr(i) {
                i = close + 1;
                continue;
            }
            // Optional visibility.
            let (is_pub, k) = self.parse_visibility(i);
            let next = match self.dispatch(i, k, end, is_pub, &module, &ctx) {
                Some(n) => n,
                None => i + 1,
            };
            i = next.max(i + 1);
        }
    }

    /// Parses `pub` / `pub(crate)` / … at `i`. Returns whether the item
    /// is unrestricted-public and the index of the token after the
    /// visibility.
    fn parse_visibility(&self, i: usize) -> (bool, usize) {
        if self.text(i) != "pub" {
            return (false, i);
        }
        if self.view.ctok(i + 1).map(|t| t.kind) == Some(crate::lexer::TokenKind::OpenParen) {
            let close = self
                .view
                .matching_close(
                    i + 1,
                    crate::lexer::TokenKind::OpenParen,
                    crate::lexer::TokenKind::CloseParen,
                )
                .unwrap_or(i + 1);
            return (false, close + 1);
        }
        (true, i + 1)
    }

    /// Handles one item starting at `i` (visibility already parsed; the
    /// keyword sits at `k`). Returns the code index just past the item.
    fn dispatch(
        &mut self,
        i: usize,
        k: usize,
        end: usize,
        is_pub: bool,
        module: &str,
        ctx: &Ctx,
    ) -> Option<usize> {
        let kw = self.text(k);
        match kw {
            "use" => {
                self.record_use(k);
                self.view.item_end(k).map(|e| e + 1)
            }
            "mod" => self.parse_mod(i, k, module),
            "impl" => self.parse_impl(i, k, module),
            "trait" => self.parse_trait(i, k, is_pub, module),
            "struct" => self.parse_struct(i, k, is_pub, module),
            "enum" | "union" => {
                if is_pub {
                    self.record_simple(
                        if kw == "enum" {
                            ItemKind::Enum
                        } else {
                            ItemKind::Union
                        },
                        i,
                        k,
                        module,
                    );
                }
                self.view.item_end(k).map(|e| e + 1)
            }
            "type" => {
                if is_pub {
                    self.record_simple(ItemKind::TypeAlias, i, k, module);
                }
                self.view.item_end(k).map(|e| e + 1)
            }
            "const" | "static" if self.text(k + 1) != "fn" => {
                if is_pub {
                    let owner = match ctx {
                        Ctx::InherentImpl(o) => Some(o.clone()),
                        _ => None,
                    };
                    self.record_const(i, k, kw, module, owner);
                }
                self.view.item_end(k).map(|e| e + 1)
            }
            _ if kw == "fn" || FN_MODIFIERS.contains(&kw) => {
                // Skip `const`/`unsafe`/`async`/`extern "ABI"` up to `fn`.
                let mut f = k;
                for _ in 0..4 {
                    if self.text(f) == "fn" {
                        break;
                    }
                    if FN_MODIFIERS.contains(&self.text(f)) {
                        f += 1;
                        // `extern "C"` carries a literal.
                        if self.view.ctok(f).map(|t| t.kind) == Some(crate::lexer::TokenKind::Str) {
                            f += 1;
                        }
                        continue;
                    }
                    break;
                }
                if self.text(f) != "fn" {
                    // `extern "C" { … }` block or stray modifier: skip item.
                    return self.view.item_end(i).map(|e| e + 1);
                }
                let record = match ctx {
                    Ctx::Module | Ctx::InherentImpl(_) => is_pub,
                    Ctx::TraitDecl(_) => true,
                    Ctx::TraitImpl => false,
                };
                if record {
                    let owner = match ctx {
                        Ctx::InherentImpl(o) | Ctx::TraitDecl(o) => Some(o.clone()),
                        _ => None,
                    };
                    self.record_fn(i, f, module, owner);
                }
                self.view.item_end(k).map(|e| e + 1)
            }
            _ => {
                // Macro invocation (`name! …;`) or anything unrecognised:
                // skip to the end of the statement/item.
                let _ = end;
                self.view.item_end(i).map(|e| e + 1)
            }
        }
    }

    /// Records the first path segment of a `use` declaration.
    fn record_use(&mut self, k: usize) {
        let line = self.view.ctok(k).map(|t| t.line).unwrap_or(0);
        let mut j = k + 1;
        if self.text(j) == "::" {
            j += 1;
        }
        let seg = self.text(j);
        if !seg.is_empty() {
            self.tree.uses.push(UseDecl {
                first_segment: seg.trim_start_matches("r#").to_string(),
                line,
            });
        }
    }

    /// `mod name { … }` (recursed into) or `mod name;` (skipped).
    fn parse_mod(&mut self, i: usize, k: usize, module: &str) -> Option<usize> {
        let name = self.text(k + 1).trim_start_matches("r#").to_string();
        let open = k + 2;
        if self.view.ctok(open).map(|t| t.kind) == Some(crate::lexer::TokenKind::OpenBrace) {
            let close = self.view.matching_close(
                open,
                crate::lexer::TokenKind::OpenBrace,
                crate::lexer::TokenKind::CloseBrace,
            )?;
            let inner = if module.is_empty() {
                name
            } else {
                format!("{module}::{name}")
            };
            self.walk(open + 1, close, inner, Ctx::Module);
            return Some(close + 1);
        }
        self.view.item_end(i).map(|e| e + 1)
    }

    /// `impl [<…>] [Trait for] Type [where …] { … }`.
    fn parse_impl(&mut self, _i: usize, k: usize, module: &str) -> Option<usize> {
        let mut j = k + 1;
        j = self.skip_generics(j);
        // Collect header tokens up to the body `{` at angle depth 0,
        // splitting at a top-level `for`.
        let mut angle = 0i32;
        let mut before_for: Vec<usize> = Vec::new();
        let mut after_for: Vec<usize> = Vec::new();
        let mut saw_for = false;
        let mut open = None;
        while j < self.view.code.len() {
            let t = self.text(j);
            match t {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "->" => {}
                "for" if angle == 0 => {
                    saw_for = true;
                    j += 1;
                    continue;
                }
                "where" if angle == 0 => {
                    // `where` ends the type; scan forward to the `{`.
                    while j < self.view.code.len()
                        && self.view.ctok(j).map(|t| t.kind)
                            != Some(crate::lexer::TokenKind::OpenBrace)
                    {
                        j += 1;
                    }
                    open = Some(j);
                    break;
                }
                _ => {}
            }
            if self.view.ctok(j).map(|t| t.kind) == Some(crate::lexer::TokenKind::OpenBrace)
                && angle <= 0
            {
                open = Some(j);
                break;
            }
            if saw_for {
                after_for.push(j);
            } else {
                before_for.push(j);
            }
            j += 1;
        }
        let open = open?;
        let close = self.view.matching_close(
            open,
            crate::lexer::TokenKind::OpenBrace,
            crate::lexer::TokenKind::CloseBrace,
        )?;
        let self_type = if saw_for { &after_for } else { &before_for };
        let owner = self.last_type_ident(self_type);
        let ctx = if saw_for {
            Ctx::TraitImpl
        } else {
            Ctx::InherentImpl(owner.unwrap_or_default())
        };
        self.walk(open + 1, close, module.to_string(), ctx);
        Some(close + 1)
    }

    /// The rightmost plain identifier at angle depth 0 in a type path —
    /// `core::fmt::Display` → `Display`, `Foo<T>` → `Foo`.
    fn last_type_ident(&self, idxs: &[usize]) -> Option<String> {
        let mut angle = 0i32;
        let mut found = None;
        for &ci in idxs {
            match self.text(ci) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                t if angle == 0
                    && self.view.ctok(ci).map(|t| t.kind)
                        == Some(crate::lexer::TokenKind::Ident)
                    && !TYPE_NOISE.contains(&t) =>
                {
                    found = Some(t.trim_start_matches("r#").to_string());
                }
                _ => {}
            }
        }
        found
    }

    /// `pub trait Name { … }`: record and descend; private traits skipped.
    fn parse_trait(&mut self, i: usize, k: usize, is_pub: bool, module: &str) -> Option<usize> {
        if !is_pub {
            return self.view.item_end(i).map(|e| e + 1);
        }
        let name = self.text(k + 1).trim_start_matches("r#").to_string();
        self.record_simple(ItemKind::Trait, i, k, module);
        // Find the body `{` (skipping generics, supertraits, where).
        let mut j = k + 2;
        let mut angle = 0i32;
        while j < self.view.code.len() {
            match self.text(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                _ => {}
            }
            if self.view.ctok(j).map(|t| t.kind) == Some(crate::lexer::TokenKind::OpenBrace)
                && angle <= 0
            {
                break;
            }
            j += 1;
        }
        let close = self.view.matching_close(
            j,
            crate::lexer::TokenKind::OpenBrace,
            crate::lexer::TokenKind::CloseBrace,
        )?;
        self.walk(j + 1, close, module.to_string(), Ctx::TraitDecl(name));
        Some(close + 1)
    }

    /// `pub struct Name …`: records the struct and its public fields.
    fn parse_struct(&mut self, i: usize, k: usize, is_pub: bool, module: &str) -> Option<usize> {
        if !is_pub {
            return self.view.item_end(i).map(|e| e + 1);
        }
        let name = self.text(k + 1).trim_start_matches("r#").to_string();
        self.record_simple(ItemKind::Struct, i, k, module);
        let mut j = self.skip_generics(k + 2);
        match self.view.ctok(j).map(|t| t.kind) {
            Some(crate::lexer::TokenKind::OpenParen) => {
                let close = self.view.matching_close(
                    j,
                    crate::lexer::TokenKind::OpenParen,
                    crate::lexer::TokenKind::CloseParen,
                )?;
                self.record_tuple_fields(j, close, module, &name);
                self.view.item_end(k).map(|e| e + 1)
            }
            Some(crate::lexer::TokenKind::OpenBrace) => {
                let close = self.view.matching_close(
                    j,
                    crate::lexer::TokenKind::OpenBrace,
                    crate::lexer::TokenKind::CloseBrace,
                )?;
                self.record_named_fields(j, close, module, &name);
                Some(close + 1)
            }
            _ => {
                // Unit struct `pub struct X;` (or a `where` clause).
                while j < self.view.code.len() && self.text(j) != ";" {
                    j += 1;
                }
                Some(j + 1)
            }
        }
    }

    /// Splits the code range `(open, close)` at top-level commas.
    fn split_fields(&self, open: usize, close: usize) -> Vec<Vec<usize>> {
        let mut chunks = Vec::new();
        let mut current = Vec::new();
        let mut depth = 0i32;
        let mut angle = 0i32;
        for ci in open + 1..close {
            let t = self.text(ci);
            match self.view.ctok(ci).map(|t| t.kind) {
                Some(
                    crate::lexer::TokenKind::OpenParen
                    | crate::lexer::TokenKind::OpenBracket
                    | crate::lexer::TokenKind::OpenBrace,
                ) => depth += 1,
                Some(
                    crate::lexer::TokenKind::CloseParen
                    | crate::lexer::TokenKind::CloseBracket
                    | crate::lexer::TokenKind::CloseBrace,
                ) => depth -= 1,
                _ => match t {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "<<" => angle += 2,
                    ">>" => angle -= 2,
                    _ => {}
                },
            }
            if t == "," && depth == 0 && angle == 0 {
                chunks.push(std::mem::take(&mut current));
            } else {
                current.push(ci);
            }
        }
        if !current.is_empty() {
            chunks.push(current);
        }
        chunks
    }

    /// Records `pub` positional fields of a tuple struct.
    fn record_tuple_fields(&mut self, open: usize, close: usize, module: &str, owner: &str) {
        for (index, chunk) in self.split_fields(open, close).into_iter().enumerate() {
            let chunk = self.strip_field_attrs(chunk);
            let Some((&first, ty)) = chunk.split_first() else {
                continue;
            };
            if self.text(first) != "pub" {
                continue;
            }
            // `pub(crate)` tuple fields are not public API.
            if ty.first().map(|&c| self.view.ctok(c).map(|t| t.kind))
                == Some(Some(crate::lexer::TokenKind::OpenParen))
            {
                continue;
            }
            let tok = self.view.ctok(first).copied();
            let Some(tok) = tok else { continue };
            self.tree.items.push(PubItem {
                kind: ItemKind::Field,
                module: module.to_string(),
                owner: Some(owner.to_string()),
                name: index.to_string(),
                signature: format!(": {}", self.join(ty)),
                line: tok.line,
                col: tok.col,
                f64_spans: self.f64_spans(ty),
            });
        }
    }

    /// Records `pub name: Type` fields of a braced struct.
    fn record_named_fields(&mut self, open: usize, close: usize, module: &str, owner: &str) {
        for chunk in self.split_fields(open, close) {
            let chunk = self.strip_field_attrs(chunk);
            let Some((&first, rest)) = chunk.split_first() else {
                continue;
            };
            if self.text(first) != "pub" {
                continue;
            }
            let Some((&name_ci, rest)) = rest.split_first() else {
                continue;
            };
            if self.view.ctok(name_ci).map(|t| t.kind) != Some(crate::lexer::TokenKind::Ident) {
                continue; // pub(crate) field or malformed
            }
            let Some((&colon, ty)) = rest.split_first() else {
                continue;
            };
            if self.text(colon) != ":" {
                continue;
            }
            let Some(tok) = self.view.ctok(name_ci).copied() else {
                continue;
            };
            self.tree.items.push(PubItem {
                kind: ItemKind::Field,
                module: module.to_string(),
                owner: Some(owner.to_string()),
                name: self.text(name_ci).trim_start_matches("r#").to_string(),
                signature: format!(": {}", self.join(ty)),
                line: tok.line,
                col: tok.col,
                f64_spans: self.f64_spans(ty),
            });
        }
    }

    /// Drops leading `#[…]` attribute tokens from a field chunk.
    fn strip_field_attrs(&self, chunk: Vec<usize>) -> Vec<usize> {
        let mut idx = 0usize;
        while idx < chunk.len() && self.text(chunk[idx]) == "#" {
            // Find the matching `]` within the chunk.
            let mut depth = 0i32;
            let mut j = idx + 1;
            while j < chunk.len() {
                match self.view.ctok(chunk[j]).map(|t| t.kind) {
                    Some(crate::lexer::TokenKind::OpenBracket) => depth += 1,
                    Some(crate::lexer::TokenKind::CloseBracket) => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            idx = j + 1;
        }
        chunk.into_iter().skip(idx).collect()
    }

    /// Records a `pub fn` / trait `fn` with its normalized signature.
    fn record_fn(&mut self, i: usize, f: usize, module: &str, owner: Option<String>) {
        let name_ci = f + 1;
        let name = self.text(name_ci).trim_start_matches("r#").to_string();
        if name.is_empty() {
            return;
        }
        let mut j = self.skip_generics(name_ci + 1);
        if self.view.ctok(j).map(|t| t.kind) != Some(crate::lexer::TokenKind::OpenParen) {
            return;
        }
        let Some(params_close) = self.view.matching_close(
            j,
            crate::lexer::TokenKind::OpenParen,
            crate::lexer::TokenKind::CloseParen,
        ) else {
            return;
        };
        let mut sig_idxs: Vec<usize> = (j..=params_close).collect();
        // Return type: `-> Type` up to `{`, `;` or `where` at depth 0.
        j = params_close + 1;
        if self.text(j) == "->" {
            sig_idxs.push(j);
            j += 1;
            let mut angle = 0i32;
            let mut depth = 0i32;
            while j < self.view.code.len() {
                let t = self.text(j);
                let kind = self.view.ctok(j).map(|t| t.kind);
                if angle <= 0
                    && depth == 0
                    && (kind == Some(crate::lexer::TokenKind::OpenBrace)
                        || t == ";"
                        || t == "where")
                {
                    break;
                }
                match kind {
                    Some(
                        crate::lexer::TokenKind::OpenParen | crate::lexer::TokenKind::OpenBracket,
                    ) => depth += 1,
                    Some(
                        crate::lexer::TokenKind::CloseParen | crate::lexer::TokenKind::CloseBracket,
                    ) => depth -= 1,
                    _ => match t {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "<<" => angle += 2,
                        ">>" => angle -= 2,
                        _ => {}
                    },
                }
                sig_idxs.push(j);
                j += 1;
            }
        }
        let Some(anchor) = self.view.ctok(i).copied() else {
            return;
        };
        self.tree.items.push(PubItem {
            kind: ItemKind::Fn,
            module: module.to_string(),
            owner,
            name,
            signature: self.join(&sig_idxs),
            line: anchor.line,
            col: anchor.col,
            f64_spans: self.f64_spans(&sig_idxs),
        });
    }

    /// Records an enum/trait/type-alias/struct header item.
    fn record_simple(&mut self, kind: ItemKind, i: usize, k: usize, module: &str) {
        let name = self.text(k + 1).trim_start_matches("r#").to_string();
        let Some(anchor) = self.view.ctok(i).copied() else {
            return;
        };
        self.tree.items.push(PubItem {
            kind,
            module: module.to_string(),
            owner: None,
            name,
            signature: String::new(),
            line: anchor.line,
            col: anchor.col,
            f64_spans: Vec::new(),
        });
    }

    /// Records a `pub const NAME: Type` / `pub static NAME: Type` item.
    fn record_const(&mut self, i: usize, k: usize, kw: &str, module: &str, owner: Option<String>) {
        let kind = if kw == "const" {
            ItemKind::Const
        } else {
            ItemKind::Static
        };
        let mut n = k + 1;
        if self.text(n) == "mut" {
            n += 1;
        }
        let name = self.text(n).trim_start_matches("r#").to_string();
        // Type: after `:` up to a top-level `=` or `;`.
        let mut ty = Vec::new();
        if self.text(n + 1) == ":" {
            let mut j = n + 2;
            let mut angle = 0i32;
            let mut depth = 0i32;
            while j < self.view.code.len() {
                let t = self.text(j);
                if angle <= 0 && depth == 0 && (t == "=" || t == ";") {
                    break;
                }
                match self.view.ctok(j).map(|t| t.kind) {
                    Some(
                        crate::lexer::TokenKind::OpenParen | crate::lexer::TokenKind::OpenBracket,
                    ) => depth += 1,
                    Some(
                        crate::lexer::TokenKind::CloseParen | crate::lexer::TokenKind::CloseBracket,
                    ) => depth -= 1,
                    _ => match t {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "<<" => angle += 2,
                        ">>" => angle -= 2,
                        _ => {}
                    },
                }
                ty.push(j);
                j += 1;
            }
        }
        let Some(anchor) = self.view.ctok(i).copied() else {
            return;
        };
        self.tree.items.push(PubItem {
            kind,
            module: module.to_string(),
            owner,
            name,
            signature: if ty.is_empty() {
                String::new()
            } else {
                format!(": {}", self.join(&ty))
            },
            line: anchor.line,
            col: anchor.col,
            f64_spans: Vec::new(),
        });
    }

    /// Skips a generic parameter list `<…>` starting at `j`, tracking
    /// `<<`/`>>` which the lexer emits as single shift tokens.
    fn skip_generics(&self, j: usize) -> usize {
        if self.text(j) != "<" {
            return j;
        }
        let mut angle = 0i32;
        let mut k = j;
        while k < self.view.code.len() {
            match self.text(k) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                _ => {}
            }
            k += 1;
            if angle <= 0 {
                break;
            }
        }
        k
    }

    /// The positions of bare `f64` identifier tokens among `idxs`.
    fn f64_spans(&self, idxs: &[usize]) -> Vec<(u32, u32)> {
        idxs.iter()
            .filter_map(|&ci| self.view.ctok(ci))
            .filter(|t| t.kind == crate::lexer::TokenKind::Ident && t.text(self.view.src) == "f64")
            .map(|t| (t.line, t.col))
            .collect()
    }

    /// Joins token texts with minimal, deterministic spacing.
    fn join(&self, idxs: &[usize]) -> String {
        const NO_SPACE_BEFORE: &[&str] = &[",", ";", ")", "]", ">", ">>", "::", ":", ".", "?", "<"];
        const NO_SPACE_AFTER: &[&str] = &["(", "[", "<", "&", "::", ".", "!", "#", "'"];
        let mut out = String::new();
        let mut prev: Option<&str> = None;
        for &ci in idxs {
            let t = self.text(ci);
            if t.is_empty() {
                continue;
            }
            let glue = match prev {
                None => false,
                Some(p) => !(NO_SPACE_BEFORE.contains(&t) || NO_SPACE_AFTER.contains(&p)),
            };
            if glue {
                out.push(' ');
            }
            out.push_str(t);
            prev = Some(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ItemTree {
        parse_items("test.rs", src)
    }

    fn entries(tree: &ItemTree) -> Vec<String> {
        tree.items
            .iter()
            .map(|i| {
                format!(
                    "{} {}{}{}{}",
                    i.kind.keyword(),
                    if i.module.is_empty() {
                        String::new()
                    } else {
                        format!("{}::", i.module)
                    },
                    i.owner
                        .as_ref()
                        .map(|o| if i.kind == ItemKind::Field {
                            format!("{o}.")
                        } else {
                            format!("{o}::")
                        })
                        .unwrap_or_default(),
                    i.name,
                    i.signature
                )
            })
            .collect()
    }

    #[test]
    fn free_fn_signature() {
        let t = parse("pub fn scale(x: f64, len: Length) -> f64 { x }");
        assert_eq!(entries(&t), ["fn scale(x: f64, len: Length) -> f64"]);
        assert_eq!(t.items[0].f64_spans.len(), 2);
    }

    #[test]
    fn private_fn_is_not_recorded() {
        assert!(parse("fn helper(x: f64) -> f64 { x }").items.is_empty());
    }

    #[test]
    fn pub_crate_is_not_recorded() {
        assert!(parse("pub(crate) fn helper(x: f64) -> f64 { x }")
            .items
            .is_empty());
        assert!(parse("pub(in crate::a) struct S;").items.is_empty());
    }

    #[test]
    fn inherent_impl_methods_get_an_owner() {
        let t = parse("struct W; impl W { pub fn volts(&self) -> f64 { 0.0 } }");
        assert_eq!(entries(&t), ["fn W::volts(&self) -> f64"]);
        assert_eq!(t.items[0].f64_spans.len(), 1);
    }

    #[test]
    fn trait_impl_methods_are_skipped() {
        let src = "pub struct W;\nimpl core::fmt::Display for W {\n    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result { Ok(()) }\n}";
        let t = parse(src);
        assert_eq!(entries(&t), ["struct W"]);
    }

    #[test]
    fn trait_decl_methods_are_recorded() {
        let t = parse("pub trait Model { fn eval(&self, v: f64) -> f64; }");
        assert_eq!(
            entries(&t),
            ["trait Model", "fn Model::eval(&self, v: f64) -> f64"]
        );
    }

    #[test]
    fn private_trait_is_invisible() {
        assert!(parse("trait Hidden { fn f(&self) -> f64; }")
            .items
            .is_empty());
    }

    #[test]
    fn struct_fields_named_and_tuple() {
        let src =
            "pub struct P { pub x: f64, y: f64, pub(crate) z: f64 }\npub struct T(pub f64, u8);";
        let t = parse(src);
        assert_eq!(
            entries(&t),
            ["struct P", "field P.x: f64", "struct T", "field T.0: f64"]
        );
    }

    #[test]
    fn inline_modules_extend_the_path() {
        let src = "pub mod outer { pub mod inner { pub fn f() {} } }";
        let t = parse(src);
        assert_eq!(entries(&t), ["fn outer::inner::f()"]);
    }

    #[test]
    fn generics_with_shift_tokens_are_skipped() {
        // `Vec<Vec<f64>>` ends with a `>>` shift token.
        let t = parse("pub fn rows(m: Vec<Vec<f64>>) -> usize { m.len() }");
        assert_eq!(entries(&t), ["fn rows(m: Vec<Vec<f64>>) -> usize"]);
        assert_eq!(t.items[0].f64_spans.len(), 1);
    }

    #[test]
    fn const_and_static_record_their_type() {
        let t = parse("pub const K: f64 = 1.0;\npub static NAME: &str = \"x\";");
        assert_eq!(entries(&t), ["const K: f64", "static NAME: &str"]);
        // Consts are not raw-f64 targets.
        assert!(t.items[0].f64_spans.is_empty());
    }

    #[test]
    fn uses_record_first_segment() {
        let src = "use srlr_units::{Length, Voltage};\nuse std::fmt;\npub use srlr_tech::Device;";
        let t = parse(src);
        let segs: Vec<&str> = t.uses.iter().map(|u| u.first_segment.as_str()).collect();
        assert_eq!(segs, ["srlr_units", "std", "srlr_tech"]);
    }

    #[test]
    fn test_code_is_invisible() {
        let src = "#[cfg(test)]\nmod tests { pub fn t(x: f64) -> f64 { x } }\npub fn real() {}";
        assert_eq!(entries(&parse(src)), ["fn real()"]);
    }

    #[test]
    fn macro_bodies_are_invisible() {
        let src =
            "macro_rules! gen { () => { pub fn hidden(x: f64) -> f64 { x } }; }\npub fn real() {}";
        assert_eq!(entries(&parse(src)), ["fn real()"]);
    }

    #[test]
    fn enum_and_type_alias_are_headers_only() {
        let t = parse("pub enum E { A(f64) }\npub type Alias = f64;");
        assert_eq!(entries(&t), ["enum E", "type Alias"]);
    }

    #[test]
    fn where_clause_ends_the_return_type() {
        let t = parse("pub fn f<T>(x: T) -> f64 where T: Into<f64> { 0.0 }");
        assert_eq!(entries(&t), ["fn f(x: T) -> f64"]);
        assert_eq!(t.items[0].f64_spans.len(), 1);
    }

    #[test]
    fn impl_with_generics_finds_the_owner() {
        let t = parse("pub struct B<T>(pub T); impl<T: Clone> B<T> { pub fn get(&self) -> T { self.0.clone() } }");
        assert!(entries(&t).contains(&"fn B::get(&self) -> T".to_string()));
    }

    #[test]
    fn raw_identifiers_are_normalized() {
        let t = parse("pub fn r#type(r#fn: f64) -> f64 { r#fn }");
        assert_eq!(t.items[0].name, "type");
    }
}
