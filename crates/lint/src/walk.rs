//! Deterministic discovery of the workspace's library sources.
//!
//! The lint scans `src/` trees only: the umbrella crate's `<root>/src`
//! and every `<root>/crates/*/src`. Integration tests (`tests/`),
//! benches and examples are intentionally out of scope — they are
//! allowed to unwrap. Files are returned sorted by their relative path
//! so diagnostics and baselines are stable across platforms and runs.

use std::io;
use std::path::{Path, PathBuf};

/// One discovered source file: workspace-relative path (forward slashes)
/// plus the absolute path to read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Absolute (or root-joined) path on disk.
    pub abs: PathBuf,
}

/// Finds every `.rs` file under the workspace's `src/` trees, sorted by
/// relative path.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut roots: Vec<PathBuf> = Vec::new();
    let top_src = root.join("src");
    if top_src.is_dir() {
        roots.push(top_src);
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }

    let mut files = Vec::new();
    for src_root in roots {
        collect_rs(&src_root, &mut files)?;
    }
    let mut out: Vec<SourceFile> = files
        .into_iter()
        .map(|abs| SourceFile {
            rel: relative_slash_path(root, &abs),
            abs,
        })
        .collect();
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`, in sorted order.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders `abs` relative to `root` with forward slashes; falls back to
/// the lossy absolute path if `abs` is not under `root`.
fn relative_slash_path(root: &Path, abs: &Path) -> String {
    let rel = abs.strip_prefix(root).unwrap_or(abs);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_crates_own_sources_in_order() {
        // crates/lint/src is three levels up from this file's crate root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_files(&root).unwrap();
        let rels: Vec<&str> = files.iter().map(|f| f.rel.as_str()).collect();
        assert!(rels.contains(&"crates/lint/src/walk.rs"));
        assert!(rels.contains(&"src/lib.rs"));
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted, "files must come back sorted");
    }

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/ws");
        let abs = Path::new("/ws/crates/x/src/lib.rs");
        assert_eq!(relative_slash_path(root, abs), "crates/x/src/lib.rs");
    }
}
