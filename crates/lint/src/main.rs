//! CLI for `srlr-lint`.
//!
//! Exit codes: `0` clean, `1` rule violations (or, with `--deny-all`,
//! stale baseline entries), `2` usage or I/O errors. `--format sarif`
//! always exits `0` once the report is produced: the document carries
//! the findings, and CI must receive it even (especially) when they
//! gate.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use srlr_lint::baseline::Baseline;
use srlr_lint::rules::ALL_RULES;
use srlr_lint::{run, sarif, write_api_locks, Config};

const USAGE: &str = "\
srlr-lint: workspace static analysis (determinism, no-panic, doc coverage)

USAGE:
    srlr-lint [OPTIONS]

OPTIONS:
    --root <DIR>        workspace root to scan (default: .)
    --baseline <FILE>   baseline file (default: <root>/lint-baseline.txt)
    --deny-all          also fail on stale baseline entries (CI mode)
    --warn-indexing     enable the advisory indexing rule
    --write-baseline    rewrite the baseline from current violations
    --write-api-lock    rewrite every api-lock.txt from the current public surface
    --format <FMT>      output format: text (default) or sarif
    --list-rules        print the rule catalog and exit
    --help              print this help
";

enum Format {
    Text,
    Sarif,
}

struct Cli {
    config: Config,
    deny_all: bool,
    write_baseline: bool,
    write_api_lock: bool,
    list_rules: bool,
    format: Format,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut deny_all = false;
    let mut warn_indexing = false;
    let mut write_baseline = false;
    let mut write_api_lock = false;
    let mut list_rules = false;
    let mut format = Format::Text;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a directory argument")?;
                root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file argument")?;
                baseline = Some(PathBuf::from(v));
            }
            "--deny-all" => deny_all = true,
            "--warn-indexing" => warn_indexing = true,
            "--write-baseline" => write_baseline = true,
            "--write-api-lock" => write_api_lock = true,
            "--format" => {
                let v = it.next().ok_or("--format needs `text` or `sarif`")?;
                format = match v.as_str() {
                    "text" => Format::Text,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}` (text|sarif)")),
                };
            }
            "--list-rules" => list_rules = true,
            "--help" | "-h" => return Err(String::new()), // usage, exit 0 path handled below
            other => return Err(format!("unknown option `{other}`")),
        }
    }

    let mut config = Config::new(root.unwrap_or_else(|| PathBuf::from(".")));
    if let Some(b) = baseline {
        config.baseline_path = b;
    }
    config.warn_indexing = warn_indexing;
    Ok(Cli {
        config,
        deny_all,
        write_baseline,
        write_api_lock,
        list_rules,
        format,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wants_help = args.iter().any(|a| a == "--help" || a == "-h");
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(_) if wants_help => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if cli.list_rules {
        for rule in ALL_RULES {
            let tag = if rule.advisory() { " (advisory)" } else { "" };
            println!("{:<16} {}{tag}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    if cli.write_api_lock {
        match write_api_locks(&cli.config) {
            Ok(paths) => {
                println!("wrote {} api-lock file(s)", paths.len());
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let report = match run(&cli.config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if cli.write_baseline {
        let keys: BTreeSet<String> = report.all_violation_keys();
        let content = Baseline::render(&keys);
        if let Err(e) = std::fs::write(&cli.config.baseline_path, content) {
            eprintln!("error: writing {}: {e}", cli.config.baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} entries to {}",
            keys.len(),
            cli.config.baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if matches!(cli.format, Format::Sarif) {
        // SARIF is an export format: CI uploads it for code-review
        // annotation and must not lose the artifact to a non-zero
        // exit. The findings are *in* the document; gating stays with
        // the text format (matching `srlr verify-noc --format sarif`).
        print!("{}", sarif::render(&report));
        return ExitCode::SUCCESS;
    }

    for d in &report.fresh {
        print!("{}", d.render());
    }
    for key in &report.stale {
        println!(
            "stale-baseline: `{key}` no longer matches any violation; delete it from {}",
            cli.config.baseline_path.display()
        );
    }

    let failures = report.failures().count();
    let advisories = report.fresh.len() - failures;
    let mut summary = format!(
        "srlr-lint: {} files checked, {failures} violation(s)",
        report.files_checked
    );
    if advisories > 0 {
        summary.push_str(&format!(", {advisories} advisory warning(s)"));
    }
    if !report.baselined.is_empty() {
        summary.push_str(&format!(", {} baselined", report.baselined.len()));
    }
    if !report.stale.is_empty() {
        summary.push_str(&format!(
            ", {} stale baseline entr(ies)",
            report.stale.len()
        ));
    }
    println!("{summary}");

    let stale_fails = cli.deny_all && !report.stale.is_empty();
    if failures > 0 || stale_fails {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
