//! Expression/statement-level analysis: function bodies as event streams.
//!
//! [`crate::items`] deliberately skips expression bodies; this module is
//! the other half. It walks the same [`FileView`] token stream, finds
//! every function *definition* (free functions, inherent and trait
//! methods, default trait bodies, functions nested in bodies) and
//! reduces each body to the events the dataflow rules consume:
//!
//! * **calls** — path calls (`Vec::new(…)`, `kernel::m1_current(…)`),
//!   method calls (`.push(…)`, `.collect::<Vec<_>>(…)` — turbofish
//!   handled), bare calls (`helper(…)`), and macro invocations
//!   (`format!(…)`),
//! * **casts** — `expr as u32` with the numeric target type,
//! * **reductions** — `.sum::<f64>()` / `.product::<f64>()` /
//!   `.fold(0.0, …)` terminators together with the method-chain
//!   adapters walked backwards to the chain head, so a rule can ask
//!   "was this float accumulation iterated in a provable order?".
//!
//! This is still not type inference: closures belong to their enclosing
//! function, a method call resolves by name, and blocks/`for`/`while`/
//! `match` bodies are scanned as flat token ranges (their structure
//! does not move an event to a different function). Test code
//! (`#[cfg(test)]` / `#[test]`) and `macro_rules!` bodies are invisible,
//! exactly as for every other rule.

use crate::analyze::FileView;
use crate::lexer::TokenKind;

/// Numeric primitive type names an `as` cast can target.
pub const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Keywords that look like `name(` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

/// How a call site spells its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `Qualifier::name(…)` — the qualifier is the segment before the
    /// final `::` (`Vec`, `kernel`, `Self` resolved to the owner).
    Path,
    /// `.name(…)` — receiver type unknown; resolved by name.
    Method,
    /// `name(…)` with no qualifier — a free function or a closure.
    Bare,
    /// `name!(…)` — a macro invocation.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallEvent {
    /// How the callee is spelled.
    pub kind: CallKind,
    /// The path segment before the final `::` for [`CallKind::Path`]
    /// (`Self` is replaced with the enclosing impl/trait owner).
    pub qualifier: Option<String>,
    /// The callee name (method, function, or macro).
    pub name: String,
    /// 1-based line of the callee token.
    pub line: u32,
    /// 1-based column of the callee token.
    pub col: u32,
}

impl CallEvent {
    /// `Qualifier::name` when qualified, bare `name` otherwise.
    pub fn display(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `as` cast to a numeric primitive.
#[derive(Debug, Clone)]
pub struct CastEvent {
    /// The target type (`u32`, `f64`, …).
    pub target: String,
    /// 1-based line of the target-type token.
    pub line: u32,
    /// 1-based column of the target-type token.
    pub col: u32,
}

/// One floating-point reduction terminator with its backwards-walked
/// method chain.
#[derive(Debug, Clone)]
pub struct ReduceEvent {
    /// `sum`, `product` or `fold`.
    pub terminator: String,
    /// Chain names walked backwards from the terminator: adapter
    /// methods first, then the head identifier if one is visible
    /// (`[iter, results]` for `results.iter().map(…).sum::<f64>()`).
    pub chain: Vec<String>,
    /// 1-based line of the terminator token.
    pub line: u32,
    /// 1-based column of the terminator token.
    pub col: u32,
}

/// One function definition with its body reduced to events.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Enclosing impl/trait type, if any.
    pub owner: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Every call site in the body, in source order.
    pub calls: Vec<CallEvent>,
    /// Every numeric `as` cast in the body.
    pub casts: Vec<CastEvent>,
    /// Every float reduction terminator in the body.
    pub reduces: Vec<ReduceEvent>,
}

impl FnDef {
    /// `Owner::name` when owned, bare `name` otherwise.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Parses every non-test function definition of one source file.
pub fn parse_fns(path: &str, src: &str) -> Vec<FnDef> {
    let view = FileView::new(path, src);
    let mut walker = ExprWalker {
        view: &view,
        defs: Vec::new(),
    };
    walker.walk(0, view.code.len(), None);
    walker.defs
}

struct ExprWalker<'a, 'b> {
    view: &'b FileView<'a>,
    defs: Vec<FnDef>,
}

impl<'a, 'b> ExprWalker<'a, 'b> {
    fn text(&self, ci: usize) -> &'a str {
        self.view.ctext(ci).unwrap_or("")
    }

    fn kind(&self, ci: usize) -> Option<TokenKind> {
        self.view.ctok(ci).map(|t| t.kind)
    }

    /// Walks the code range `[start, end)` at item position, descending
    /// into `mod`/`impl`/`trait` blocks and recording `fn` definitions.
    fn walk(&mut self, start: usize, end: usize, owner: Option<&str>) {
        let mut i = start;
        while i < end {
            if self.view.is_excluded(i) || self.view.is_in_macro(i) {
                i += 1;
                continue;
            }
            if let Some((close, _)) = self.view.parse_attr(i) {
                i = close + 1;
                continue;
            }
            match self.text(i) {
                "impl" => {
                    if let Some((impl_owner, open, close)) = self.impl_header(i) {
                        self.walk(open + 1, close, impl_owner.as_deref());
                        i = close + 1;
                        continue;
                    }
                }
                "trait" => {
                    if let Some((name, open, close)) = self.named_block(i) {
                        self.walk(open + 1, close, Some(&name));
                        i = close + 1;
                        continue;
                    }
                }
                "mod" => {
                    if let Some((_, open, close)) = self.named_block(i) {
                        self.walk(open + 1, close, owner);
                        i = close + 1;
                        continue;
                    }
                }
                "fn" => {
                    if let Some(next) = self.parse_fn(i, owner) {
                        i = next;
                        continue;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    /// Parses `impl [<…>] [Trait for] Type [where …] { … }`, returning
    /// the self-type name and the body braces.
    fn impl_header(&self, i: usize) -> Option<(Option<String>, usize, usize)> {
        let mut j = self.skip_generics(i + 1);
        let mut angle = 0i32;
        let mut saw_for = false;
        let mut before_for: Vec<usize> = Vec::new();
        let mut after_for: Vec<usize> = Vec::new();
        let mut open = None;
        while j < self.view.code.len() {
            match self.text(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "for" if angle == 0 => {
                    saw_for = true;
                    j += 1;
                    continue;
                }
                "where" if angle == 0 => {
                    while j < self.view.code.len() && self.kind(j) != Some(TokenKind::OpenBrace) {
                        j += 1;
                    }
                    open = Some(j);
                    break;
                }
                _ => {}
            }
            if self.kind(j) == Some(TokenKind::OpenBrace) && angle <= 0 {
                open = Some(j);
                break;
            }
            if saw_for {
                after_for.push(j);
            } else {
                before_for.push(j);
            }
            j += 1;
        }
        let open = open?;
        let close = self
            .view
            .matching_close(open, TokenKind::OpenBrace, TokenKind::CloseBrace)?;
        let self_type = if saw_for { &after_for } else { &before_for };
        let mut angle = 0i32;
        let mut name = None;
        for &ci in self_type {
            match self.text(ci) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                t if angle == 0
                    && self.kind(ci) == Some(TokenKind::Ident)
                    && !NON_CALL_KEYWORDS.contains(&t) =>
                {
                    name = Some(t.trim_start_matches("r#").to_string());
                }
                _ => {}
            }
        }
        Some((name, open, close))
    }

    /// `trait Name … { … }` / `mod name { … }`: the name and body braces.
    /// Returns `None` for `mod name;` declarations.
    fn named_block(&self, i: usize) -> Option<(String, usize, usize)> {
        let name = self.text(i + 1).trim_start_matches("r#").to_string();
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < self.view.code.len() {
            match self.text(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                ";" if angle <= 0 => return None,
                _ => {}
            }
            if self.kind(j) == Some(TokenKind::OpenBrace) && angle <= 0 {
                break;
            }
            j += 1;
        }
        let close = self
            .view
            .matching_close(j, TokenKind::OpenBrace, TokenKind::CloseBrace)?;
        Some((name, j, close))
    }

    /// Parses one `fn name …` definition starting at the `fn` keyword.
    /// Returns the code index just past it, or `None` if this `fn` token
    /// is not a definition (e.g. an `fn(…)` pointer type).
    fn parse_fn(&mut self, i: usize, owner: Option<&str>) -> Option<usize> {
        if self.kind(i + 1) != Some(TokenKind::Ident) {
            return None;
        }
        let name = self.text(i + 1).trim_start_matches("r#").to_string();
        if NON_CALL_KEYWORDS.contains(&name.as_str()) {
            return None;
        }
        let j = self.skip_generics(i + 2);
        if self.kind(j) != Some(TokenKind::OpenParen) {
            return None;
        }
        let params_close =
            self.view
                .matching_close(j, TokenKind::OpenParen, TokenKind::CloseParen)?;
        // Find the body `{` (or a `;` for bodiless trait declarations),
        // crossing the return type and where clause.
        let mut k = params_close + 1;
        let mut depth = 0i32;
        let mut angle = 0i32;
        let open = loop {
            let kind = self.kind(k)?;
            let t = self.text(k);
            match kind {
                TokenKind::OpenParen | TokenKind::OpenBracket => depth += 1,
                TokenKind::CloseParen | TokenKind::CloseBracket => depth -= 1,
                TokenKind::OpenBrace if depth == 0 && angle <= 0 => break k,
                _ => match t {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "<<" => angle += 2,
                    ">>" => angle -= 2,
                    "->" => {}
                    ";" if depth == 0 && angle <= 0 => {
                        // Declaration without a body (trait method).
                        self.record(owner, name, i);
                        return Some(k + 1);
                    }
                    _ => {}
                },
            }
            k += 1;
        };
        let close = self
            .view
            .matching_close(open, TokenKind::OpenBrace, TokenKind::CloseBrace)?;
        let def_index = self.record(owner, name, i);
        self.scan_body(open + 1, close, def_index, owner);
        Some(close + 1)
    }

    /// Pushes an empty definition record and returns its index.
    fn record(&mut self, owner: Option<&str>, name: String, i: usize) -> usize {
        let (line, col) = self.view.ctok(i).map(|t| (t.line, t.col)).unwrap_or((0, 0));
        self.defs.push(FnDef {
            owner: owner.map(str::to_string),
            name,
            line,
            col,
            calls: Vec::new(),
            casts: Vec::new(),
            reduces: Vec::new(),
        });
        self.defs.len() - 1
    }

    /// Scans a body range for events, recursing into nested `fn`/`impl`
    /// items so their events land on their own definitions.
    fn scan_body(&mut self, start: usize, end: usize, def: usize, owner: Option<&str>) {
        let mut i = start;
        while i < end {
            if self.view.is_excluded(i) || self.view.is_in_macro(i) {
                i += 1;
                continue;
            }
            let t = self.text(i);
            if t == "fn" {
                if let Some(next) = self.parse_fn(i, None) {
                    i = next;
                    continue;
                }
            }
            if t == "impl" && self.kind(i - 1) != Some(TokenKind::Op) {
                // A nested `impl Type { … }` item (return-position
                // `impl Trait` always follows an operator or `(`).
                if let Some((impl_owner, open, close)) = self.impl_header(i) {
                    self.walk(open + 1, close, impl_owner.as_deref());
                    i = close + 1;
                    continue;
                }
            }
            if t == "as" {
                if let Some(target) = self.cast_target(i) {
                    let tok = self.view.ctok(i + 1);
                    if let Some(tok) = tok {
                        self.defs[def].casts.push(CastEvent {
                            target,
                            line: tok.line,
                            col: tok.col,
                        });
                    }
                }
                i += 1;
                continue;
            }
            if self.kind(i) == Some(TokenKind::Ident) && !NON_CALL_KEYWORDS.contains(&t) {
                if let Some(event) = self.call_at(i, owner) {
                    if event.kind == CallKind::Method {
                        if let Some(reduce) = self.reduce_at(i) {
                            self.defs[def].reduces.push(reduce);
                        }
                    }
                    self.defs[def].calls.push(event);
                }
            }
            i += 1;
        }
    }

    /// The numeric target of an `as` cast at code index `i` (the `as`).
    fn cast_target(&self, i: usize) -> Option<String> {
        let t = self.text(i + 1);
        NUMERIC_TYPES.contains(&t).then(|| t.to_string())
    }

    /// Classifies the identifier at `i` as a call site, if it is one.
    fn call_at(&self, i: usize, owner: Option<&str>) -> Option<CallEvent> {
        let tok = self.view.ctok(i).copied()?;
        let name = self.text(i).trim_start_matches("r#").to_string();
        // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
        if self.text(i + 1) == "!"
            && matches!(
                self.kind(i + 2),
                Some(TokenKind::OpenParen | TokenKind::OpenBracket | TokenKind::OpenBrace)
            )
        {
            return Some(CallEvent {
                kind: CallKind::Macro,
                qualifier: None,
                name,
                line: tok.line,
                col: tok.col,
            });
        }
        // Call parenthesis, with an optional turbofish in between.
        let after = if self.text(i + 1) == "::" && self.text(i + 2) == "<" {
            self.skip_generics(i + 2)
        } else {
            i + 1
        };
        if self.kind(after) != Some(TokenKind::OpenParen) {
            return None;
        }
        let prev = if i > 0 { self.text(i - 1) } else { "" };
        let (kind, qualifier) = if prev == "." {
            // A bare-`self` receiver pins the callee to the enclosing
            // type: `self.step(…)` inside `impl Lockstep` is
            // `Lockstep::step`, not every `step` in the workspace.
            if i >= 2 && self.text(i - 2) == "self" && owner.is_some() {
                (CallKind::Path, owner.map(str::to_string))
            } else {
                (CallKind::Method, None)
            }
        } else if prev == "::" {
            let q = (i >= 2)
                .then(|| self.text(i - 2))
                .filter(|_| self.kind(i - 2) == Some(TokenKind::Ident))
                .map(|t| t.trim_start_matches("r#").to_string());
            let q = match (q, owner) {
                (Some(q), Some(o)) if q == "Self" => Some(o.to_string()),
                (q, _) => q,
            };
            (CallKind::Path, q)
        } else {
            (CallKind::Bare, None)
        };
        Some(CallEvent {
            kind,
            qualifier,
            name,
            line: tok.line,
            col: tok.col,
        })
    }

    /// Detects a float-reduction terminator at method-call position `i`
    /// and walks its chain backwards.
    fn reduce_at(&self, i: usize) -> Option<ReduceEvent> {
        let name = self.text(i);
        let is_float_reduce = match name {
            "sum" | "product" => {
                // `.sum::<f64>()`: the turbofish names the accumulator.
                self.text(i + 1) == "::"
                    && self.text(i + 2) == "<"
                    && (i + 2..self.skip_generics(i + 2))
                        .any(|k| matches!(self.text(k), "f64" | "f32"))
            }
            "fold" => {
                // `.fold(0.0, …)` (optionally negated seed).
                let open = i + 1;
                self.kind(open) == Some(TokenKind::OpenParen)
                    && (self.kind(open + 1) == Some(TokenKind::Float)
                        || (self.text(open + 1) == "-"
                            && self.kind(open + 2) == Some(TokenKind::Float)))
            }
            _ => false,
        };
        if !is_float_reduce {
            return None;
        }
        let tok = self.view.ctok(i).copied()?;
        Some(ReduceEvent {
            terminator: name.to_string(),
            chain: self.chain_back(i),
            line: tok.line,
            col: tok.col,
        })
    }

    /// Walks a method chain backwards from the terminator ident at `i`,
    /// collecting adapter names and, finally, the head identifier.
    fn chain_back(&self, i: usize) -> Vec<String> {
        let mut names = Vec::new();
        let mut dot = i.checked_sub(1);
        while let Some(d) = dot {
            if self.text(d) != "." {
                break;
            }
            let Some(before) = d.checked_sub(1) else {
                break;
            };
            match self.kind(before) {
                Some(TokenKind::CloseParen) => {
                    // `…adapter(…)` — find the adapter name before `(`.
                    let Some(open) =
                        self.matching_open(before, TokenKind::OpenParen, TokenKind::CloseParen)
                    else {
                        break;
                    };
                    let Some(mut name_ci) = open.checked_sub(1) else {
                        break;
                    };
                    // Cross a turbofish: `adapter::<T>(…)`.
                    if matches!(self.text(name_ci), ">" | ">>") {
                        let Some(lt) = self.matching_open_angle(name_ci) else {
                            break;
                        };
                        if lt < 2 || self.text(lt - 1) != "::" {
                            break;
                        }
                        name_ci = lt - 2;
                    }
                    if self.kind(name_ci) != Some(TokenKind::Ident) {
                        break;
                    }
                    names.push(self.text(name_ci).to_string());
                    dot = name_ci.checked_sub(1);
                    if dot.is_some_and(|k| self.text(k) != ".") {
                        // Chain head was a call: `helper().sum…` or a
                        // path call `Type::make().sum…`; the call name
                        // is already recorded.
                        break;
                    }
                }
                Some(TokenKind::Ident) => {
                    // Head identifier (or field access tail).
                    names.push(self.text(before).to_string());
                    let further = before.checked_sub(1);
                    if further.is_some_and(|k| self.text(k) == ".") {
                        dot = further;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        names
    }

    /// Finds the code index of the open delimiter matching the close
    /// delimiter at code index `close_ci`, walking backwards.
    fn matching_open(&self, close_ci: usize, open: TokenKind, close: TokenKind) -> Option<usize> {
        let mut depth = 0usize;
        for ci in (0..=close_ci).rev() {
            let kind = self.kind(ci)?;
            if kind == close {
                depth += 1;
            } else if kind == open {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(ci);
                }
            }
        }
        None
    }

    /// Finds the code index of the `<` matching the `>` at `close_ci`,
    /// walking backwards (shift tokens counted double).
    fn matching_open_angle(&self, close_ci: usize) -> Option<usize> {
        let mut depth = 0i32;
        for ci in (0..=close_ci).rev() {
            match self.text(ci) {
                ">" => depth += 1,
                ">>" => depth += 2,
                "<" => {
                    depth -= 1;
                    if depth <= 0 {
                        return Some(ci);
                    }
                }
                "<<" => {
                    depth -= 2;
                    if depth <= 0 {
                        return Some(ci);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Skips a generic list `<…>` starting at `j` (no-op otherwise).
    fn skip_generics(&self, j: usize) -> usize {
        if self.text(j) != "<" {
            return j;
        }
        let mut angle = 0i32;
        let mut k = j;
        while k < self.view.code.len() {
            match self.text(k) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                _ => {}
            }
            k += 1;
            if angle <= 0 {
                break;
            }
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defs(src: &str) -> Vec<FnDef> {
        parse_fns("test.rs", src)
    }

    fn calls_of(d: &FnDef) -> Vec<String> {
        d.calls.iter().map(CallEvent::display).collect()
    }

    #[test]
    fn free_fn_records_path_method_bare_and_macro_calls() {
        let d = defs(
            "fn work(n: usize) -> Vec<u8> {\n\
                 let mut v = Vec::new();\n\
                 v.push(1);\n\
                 helper(n);\n\
                 format!(\"{n}\");\n\
                 v\n\
             }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].display(), "work");
        let calls = calls_of(&d[0]);
        assert!(calls.contains(&"Vec::new".to_string()), "{calls:?}");
        assert!(calls.contains(&"push".to_string()));
        assert!(calls.contains(&"helper".to_string()));
        assert!(calls.contains(&"format".to_string()));
        let kinds: Vec<CallKind> = d[0].calls.iter().map(|c| c.kind).collect();
        assert!(kinds.contains(&CallKind::Path));
        assert!(kinds.contains(&CallKind::Method));
        assert!(kinds.contains(&CallKind::Bare));
        assert!(kinds.contains(&CallKind::Macro));
    }

    #[test]
    fn inherent_methods_carry_their_owner_and_resolve_self() {
        let d = defs(
            "struct B;\n\
             impl B {\n\
                 fn new() -> Self { Self::make() }\n\
                 fn make() -> Self { B }\n\
             }",
        );
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].display(), "B::new");
        assert_eq!(d[0].calls[0].qualifier.as_deref(), Some("B"));
        assert_eq!(d[0].calls[0].name, "make");
    }

    #[test]
    fn trait_impl_and_default_bodies_are_walked() {
        let d = defs(
            "trait T { fn go(&self) { helper(); } fn must(&self); }\n\
             struct S;\n\
             impl T for S { fn must(&self) { other(); } }",
        );
        let names: Vec<String> = d.iter().map(FnDef::display).collect();
        assert_eq!(names, ["T::go", "T::must", "S::must"]);
        assert_eq!(calls_of(&d[0]), ["helper"]);
        assert_eq!(calls_of(&d[2]), ["other"]);
    }

    #[test]
    fn bare_self_receiver_resolves_to_the_owner() {
        let d = defs("impl L { fn go(&mut self) { self.step(); self.inner.step(); } }");
        let c = &d[0].calls;
        assert_eq!(c[0].kind, CallKind::Path);
        assert_eq!(c[0].qualifier.as_deref(), Some("L"));
        assert_eq!(
            c[1].kind,
            CallKind::Method,
            "field receivers stay name-resolved"
        );
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let d = defs("fn f(v: Vec<u8>) -> Vec<u8> { v.iter().copied().collect::<Vec<u8>>() }");
        let calls = calls_of(&d[0]);
        assert!(calls.contains(&"collect".to_string()), "{calls:?}");
    }

    #[test]
    fn casts_record_their_numeric_target() {
        let d = defs("fn f(x: u64, y: f64) -> u32 { let _ = y as f32; x as u32 }");
        let targets: Vec<&str> = d[0].casts.iter().map(|c| c.target.as_str()).collect();
        assert_eq!(targets, ["f32", "u32"]);
    }

    #[test]
    fn non_numeric_as_is_not_a_cast() {
        let d = defs("fn f(x: &dyn std::fmt::Debug) { let _ = x as &dyn std::fmt::Debug; }");
        assert!(d[0].casts.is_empty());
    }

    #[test]
    fn sum_reduction_walks_the_chain_back() {
        let d = defs("fn f(v: &[f64]) -> f64 { v.iter().map(|x| x * 2.0).sum::<f64>() }");
        assert_eq!(d[0].reduces.len(), 1);
        let r = &d[0].reduces[0];
        assert_eq!(r.terminator, "sum");
        assert_eq!(r.chain, ["map", "iter", "v"]);
    }

    #[test]
    fn fold_with_float_seed_is_a_reduction() {
        let d = defs("fn f(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, x| a + x) }");
        assert_eq!(d[0].reduces.len(), 1);
        assert_eq!(d[0].reduces[0].terminator, "fold");
    }

    #[test]
    fn integer_sum_is_not_a_reduction() {
        let d = defs("fn f(v: &[u64]) -> u64 { v.iter().sum::<u64>() }");
        assert!(d[0].reduces.is_empty());
        let d = defs("fn f(v: &[u64]) -> u64 { v.iter().fold(0, |a, x| a + x) }");
        assert!(d[0].reduces.is_empty());
    }

    #[test]
    fn test_code_is_invisible() {
        let src = "#[cfg(test)]\nmod tests { fn t() { Vec::new(); } }\nfn real() { go(); }";
        let d = defs(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].name, "real");
    }

    #[test]
    fn fn_pointer_types_are_not_definitions() {
        let d = defs("fn apply(f: fn(u8) -> u8, x: u8) -> u8 { f(x) }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].name, "apply");
        assert_eq!(calls_of(&d[0]), ["f"]);
    }

    #[test]
    fn nested_fns_own_their_events() {
        let d = defs("fn outer() { fn inner() { deep(); } inner(); }");
        let names: Vec<String> = d.iter().map(FnDef::display).collect();
        assert_eq!(names, ["outer", "inner"]);
        assert_eq!(calls_of(&d[0]), ["inner"]);
        assert_eq!(calls_of(&d[1]), ["deep"]);
    }

    #[test]
    fn closures_belong_to_the_enclosing_fn() {
        let d = defs("fn f(v: Vec<u8>) -> Vec<u8> { v.into_iter().map(|x| bump(x)).collect() }");
        let calls = calls_of(&d[0]);
        assert!(calls.contains(&"bump".to_string()));
        assert!(calls.contains(&"collect".to_string()));
    }

    #[test]
    fn chain_back_crosses_turbofish_adapters() {
        let d = defs(
            "fn f(v: &[f64]) -> f64 { v.chunks(2).flat_map(|c| c.iter()).copied().sum::<f64>() }",
        );
        let r = &d[0].reduces[0];
        assert_eq!(r.chain, ["copied", "flat_map", "chunks", "v"]);
    }

    #[test]
    fn mod_blocks_are_descended() {
        let d = defs("mod inner { fn hidden() { go(); } }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].name, "hidden");
    }

    #[test]
    fn where_clause_and_return_types_are_crossed() {
        let d = defs(
            "fn f<T>(x: T) -> Vec<[u8; 4]> where T: Into<u64> { let _ = x.into() as u16; Vec::new() }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].casts.len(), 1);
        assert_eq!(d[0].casts[0].target, "u16");
    }
}
