//! SARIF 2.1.0 rendering of lint reports.
//!
//! The generic single-run document builder lives in
//! [`srlr_telemetry::sarif`] (both this tool and `srlr-cli`'s
//! `verify-noc` emit SARIF, and telemetry is the shared leaf they can
//! both reach); this module only maps a lint [`Report`] onto it.

pub use srlr_telemetry::sarif::SarifDoc;

use crate::diagnostics::Diagnostic;
use crate::rules::ALL_RULES;
use crate::Report;

/// Renders `report` as a single-run SARIF 2.1.0 document.
///
/// Fresh violations become `results` (advisory rules at level
/// `warning`, everything else `error`); baselined and stale entries are
/// a text-output concern and are not exported.
pub fn render(report: &Report) -> String {
    let mut doc = SarifDoc::new("srlr-lint", "https://example.invalid/srlr-lint");
    for rule in ALL_RULES {
        doc.rule(rule.name(), rule.description());
    }
    for diag in &report.fresh {
        write_result(&mut doc, diag);
    }
    doc.render()
}

fn write_result(doc: &mut SarifDoc, diag: &Diagnostic) {
    let level = if diag.rule.advisory() {
        "warning"
    } else {
        "error"
    };
    doc.result(
        diag.rule.name(),
        level,
        &diag.message,
        &diag.path,
        diag.line,
        diag.col,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;
    use srlr_telemetry::json::{parse, Json};

    fn diag(rule: RuleId, path: &str, line: u32, message: &str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            col: 5,
            rule,
            message: message.to_string(),
            snippet: String::new(),
            width: 1,
        }
    }

    fn results(doc: &Json) -> Vec<&Json> {
        let Json::Obj(top) = doc else {
            panic!("not an object")
        };
        let Some(Json::Arr(runs)) = top.get("runs") else {
            panic!("no runs")
        };
        let Json::Obj(run) = &runs[0] else {
            panic!("run not an object")
        };
        let Some(Json::Arr(results)) = run.get("results") else {
            panic!("no results")
        };
        results.iter().collect()
    }

    #[test]
    fn empty_report_is_valid_sarif() {
        let doc = parse(&render(&Report::default())).expect("valid JSON");
        let Json::Obj(top) = &doc else { panic!() };
        assert_eq!(top.get("version"), Some(&Json::Str("2.1.0".into())));
        assert!(results(&doc).is_empty());
    }

    #[test]
    fn diagnostics_become_results_with_locations() {
        let mut report = Report::default();
        report.fresh.push(diag(
            RuleId::NoPanic,
            "crates/noc/src/router.rs",
            42,
            "an \"escaped\" message\nwith a newline",
        ));
        report
            .fresh
            .push(diag(RuleId::Indexing, "src/lib.rs", 7, "advisory"));
        let doc = parse(&render(&report)).expect("valid JSON");
        let results = results(&doc);
        assert_eq!(results.len(), 2);
        let Json::Obj(first) = results[0] else {
            panic!()
        };
        assert_eq!(first.get("ruleId"), Some(&Json::Str("no-panic".into())));
        assert_eq!(first.get("level"), Some(&Json::Str("error".into())));
        let Json::Obj(second) = results[1] else {
            panic!()
        };
        assert_eq!(second.get("level"), Some(&Json::Str("warning".into())));
    }

    #[test]
    fn every_rule_is_declared_in_the_driver() {
        let doc = parse(&render(&Report::default())).expect("valid JSON");
        let Json::Obj(top) = &doc else { panic!() };
        let Some(Json::Arr(runs)) = top.get("runs") else {
            panic!()
        };
        let Json::Obj(run) = &runs[0] else { panic!() };
        let Some(Json::Obj(tool)) = run.get("tool") else {
            panic!()
        };
        let Some(Json::Obj(driver)) = tool.get("driver") else {
            panic!()
        };
        let Some(Json::Arr(rules)) = driver.get("rules") else {
            panic!()
        };
        assert_eq!(rules.len(), ALL_RULES.len());
    }
}
