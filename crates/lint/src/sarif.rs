//! SARIF 2.1.0 emitter for analysis reports.
//!
//! SARIF (Static Analysis Results Interchange Format) is the exchange
//! format CI systems and code-review UIs ingest; emitting it lets a
//! tool's findings annotate pull requests without any custom glue. The
//! document is assembled by hand on top of `srlr_telemetry::json`'s
//! string escaping — the workspace stays dependency-free.
//!
//! [`SarifDoc`] is the reusable single-run document builder; the lint
//! binary renders its [`Report`] through it, and `srlr-cli`'s
//! `verify-noc` reuses it for model-checker counterexamples.

use srlr_telemetry::json::write_str;

use crate::diagnostics::Diagnostic;
use crate::rules::ALL_RULES;
use crate::Report;

/// Builder for a single-run SARIF 2.1.0 document: one tool driver, its
/// rule table, and a flat list of results.
#[derive(Debug, Clone)]
pub struct SarifDoc {
    header: String,
    rules: String,
    rule_count: usize,
    results: String,
    result_count: usize,
}

impl SarifDoc {
    /// Starts a document for the named tool.
    pub fn new(tool: &str, information_uri: &str) -> Self {
        let mut header = String::with_capacity(256);
        header.push_str("{\"$schema\":");
        write_str(&mut header, "https://json.schemastore.org/sarif-2.1.0.json");
        header.push_str(",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":");
        write_str(&mut header, tool);
        header.push_str(",\"informationUri\":");
        write_str(&mut header, information_uri);
        SarifDoc {
            header,
            rules: String::new(),
            rule_count: 0,
            results: String::new(),
            result_count: 0,
        }
    }

    /// Declares a rule in the driver's rule table.
    pub fn rule(&mut self, id: &str, description: &str) -> &mut Self {
        if self.rule_count > 0 {
            self.rules.push(',');
        }
        self.rule_count += 1;
        self.rules.push_str("{\"id\":");
        write_str(&mut self.rules, id);
        self.rules.push_str(",\"shortDescription\":{\"text\":");
        write_str(&mut self.rules, description);
        self.rules.push_str("}}");
        self
    }

    /// Appends one result. `level` is a SARIF severity (`"error"`,
    /// `"warning"`, `"note"`); `uri` is the artifact the result is
    /// anchored to (for model-checker findings, a synthetic URI naming
    /// the checked route).
    pub fn result(
        &mut self,
        rule: &str,
        level: &str,
        message: &str,
        uri: &str,
        line: u32,
        col: u32,
    ) -> &mut Self {
        if self.result_count > 0 {
            self.results.push(',');
        }
        self.result_count += 1;
        self.results.push_str("{\"ruleId\":");
        write_str(&mut self.results, rule);
        self.results.push_str(",\"level\":");
        write_str(&mut self.results, level);
        self.results.push_str(",\"message\":{\"text\":");
        write_str(&mut self.results, message);
        self.results
            .push_str("},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":");
        write_str(&mut self.results, uri);
        self.results.push_str(&format!(
            "}},\"region\":{{\"startLine\":{line},\"startColumn\":{col}}}}}}}]}}"
        ));
        self
    }

    /// Number of results appended so far.
    pub fn results_len(&self) -> usize {
        self.result_count
    }

    /// Renders the complete document, newline-terminated.
    pub fn render(&self) -> String {
        let mut out =
            String::with_capacity(self.header.len() + self.rules.len() + self.results.len() + 64);
        out.push_str(&self.header);
        out.push_str(",\"rules\":[");
        out.push_str(&self.rules);
        out.push_str("]}},\"results\":[");
        out.push_str(&self.results);
        out.push_str("]}]}");
        out.push('\n');
        out
    }
}

/// Renders `report` as a single-run SARIF 2.1.0 document.
///
/// Fresh violations become `results` (advisory rules at level
/// `warning`, everything else `error`); baselined and stale entries are
/// a text-output concern and are not exported.
pub fn render(report: &Report) -> String {
    let mut doc = SarifDoc::new("srlr-lint", "https://example.invalid/srlr-lint");
    for rule in ALL_RULES {
        doc.rule(rule.name(), rule.description());
    }
    for diag in &report.fresh {
        write_result(&mut doc, diag);
    }
    doc.render()
}

fn write_result(doc: &mut SarifDoc, diag: &Diagnostic) {
    let level = if diag.rule.advisory() {
        "warning"
    } else {
        "error"
    };
    doc.result(
        diag.rule.name(),
        level,
        &diag.message,
        &diag.path,
        diag.line,
        diag.col,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;
    use srlr_telemetry::json::{parse, Json};

    fn diag(rule: RuleId, path: &str, line: u32, message: &str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            col: 5,
            rule,
            message: message.to_string(),
            snippet: String::new(),
            width: 1,
        }
    }

    fn results(doc: &Json) -> Vec<&Json> {
        let Json::Obj(top) = doc else {
            panic!("not an object")
        };
        let Some(Json::Arr(runs)) = top.get("runs") else {
            panic!("no runs")
        };
        let Json::Obj(run) = &runs[0] else {
            panic!("run not an object")
        };
        let Some(Json::Arr(results)) = run.get("results") else {
            panic!("no results")
        };
        results.iter().collect()
    }

    #[test]
    fn empty_report_is_valid_sarif() {
        let doc = parse(&render(&Report::default())).expect("valid JSON");
        let Json::Obj(top) = &doc else { panic!() };
        assert_eq!(top.get("version"), Some(&Json::Str("2.1.0".into())));
        assert!(results(&doc).is_empty());
    }

    #[test]
    fn diagnostics_become_results_with_locations() {
        let mut report = Report::default();
        report.fresh.push(diag(
            RuleId::NoPanic,
            "crates/noc/src/router.rs",
            42,
            "an \"escaped\" message\nwith a newline",
        ));
        report
            .fresh
            .push(diag(RuleId::Indexing, "src/lib.rs", 7, "advisory"));
        let doc = parse(&render(&report)).expect("valid JSON");
        let results = results(&doc);
        assert_eq!(results.len(), 2);
        let Json::Obj(first) = results[0] else {
            panic!()
        };
        assert_eq!(first.get("ruleId"), Some(&Json::Str("no-panic".into())));
        assert_eq!(first.get("level"), Some(&Json::Str("error".into())));
        let Json::Obj(second) = results[1] else {
            panic!()
        };
        assert_eq!(second.get("level"), Some(&Json::Str("warning".into())));
    }

    #[test]
    fn every_rule_is_declared_in_the_driver() {
        let doc = parse(&render(&Report::default())).expect("valid JSON");
        let Json::Obj(top) = &doc else { panic!() };
        let Some(Json::Arr(runs)) = top.get("runs") else {
            panic!()
        };
        let Json::Obj(run) = &runs[0] else { panic!() };
        let Some(Json::Obj(tool)) = run.get("tool") else {
            panic!()
        };
        let Some(Json::Obj(driver)) = tool.get("driver") else {
            panic!()
        };
        let Some(Json::Arr(rules)) = driver.get("rules") else {
            panic!()
        };
        assert_eq!(rules.len(), ALL_RULES.len());
    }

    #[test]
    fn the_generic_builder_produces_a_parsable_run_for_any_tool() {
        let mut doc = SarifDoc::new("srlr-model", "https://example.invalid/srlr-model");
        doc.rule("no-overtaking", "retried heads are never overtaken");
        doc.result(
            "no-overtaking",
            "error",
            "flit 1 overtook flit 0\nwith a \"trace\"",
            "model://2x2/route/0,0-1,1",
            1,
            1,
        );
        assert_eq!(doc.results_len(), 1);
        let parsed = parse(&doc.render()).expect("valid JSON");
        let results = results(&parsed);
        assert_eq!(results.len(), 1);
        let Json::Obj(first) = results[0] else {
            panic!()
        };
        assert_eq!(
            first.get("ruleId"),
            Some(&Json::Str("no-overtaking".into()))
        );
    }
}
