//! SARIF 2.1.0 emitter for lint reports.
//!
//! SARIF (Static Analysis Results Interchange Format) is the exchange
//! format CI systems and code-review UIs ingest; emitting it lets the
//! lint's findings annotate pull requests without any custom glue. The
//! document is assembled by hand on top of `srlr_telemetry::json`'s
//! string escaping — the workspace stays dependency-free.

use srlr_telemetry::json::write_str;

use crate::diagnostics::Diagnostic;
use crate::rules::ALL_RULES;
use crate::Report;

/// Renders `report` as a single-run SARIF 2.1.0 document.
///
/// Fresh violations become `results` (advisory rules at level
/// `warning`, everything else `error`); baselined and stale entries are
/// a text-output concern and are not exported.
pub fn render(report: &Report) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"$schema\":");
    write_str(&mut out, "https://json.schemastore.org/sarif-2.1.0.json");
    out.push_str(",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"srlr-lint\",");
    out.push_str("\"informationUri\":");
    write_str(&mut out, "https://example.invalid/srlr-lint");
    out.push_str(",\"rules\":[");
    for (i, rule) in ALL_RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        write_str(&mut out, rule.name());
        out.push_str(",\"shortDescription\":{\"text\":");
        write_str(&mut out, rule.description());
        out.push_str("}}");
    }
    out.push_str("]}},\"results\":[");
    for (i, diag) in report.fresh.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_result(&mut out, diag);
    }
    out.push_str("]}]}");
    out.push('\n');
    out
}

fn write_result(out: &mut String, diag: &Diagnostic) {
    let level = if diag.rule.advisory() {
        "warning"
    } else {
        "error"
    };
    out.push_str("{\"ruleId\":");
    write_str(out, diag.rule.name());
    out.push_str(",\"level\":");
    write_str(out, level);
    out.push_str(",\"message\":{\"text\":");
    write_str(out, &diag.message);
    out.push_str("},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":");
    write_str(out, &diag.path);
    out.push_str(&format!(
        "}},\"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
        diag.line, diag.col
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;
    use srlr_telemetry::json::{parse, Json};

    fn diag(rule: RuleId, path: &str, line: u32, message: &str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            col: 5,
            rule,
            message: message.to_string(),
            snippet: String::new(),
            width: 1,
        }
    }

    fn results(doc: &Json) -> Vec<&Json> {
        let Json::Obj(top) = doc else {
            panic!("not an object")
        };
        let Some(Json::Arr(runs)) = top.get("runs") else {
            panic!("no runs")
        };
        let Json::Obj(run) = &runs[0] else {
            panic!("run not an object")
        };
        let Some(Json::Arr(results)) = run.get("results") else {
            panic!("no results")
        };
        results.iter().collect()
    }

    #[test]
    fn empty_report_is_valid_sarif() {
        let doc = parse(&render(&Report::default())).expect("valid JSON");
        let Json::Obj(top) = &doc else { panic!() };
        assert_eq!(top.get("version"), Some(&Json::Str("2.1.0".into())));
        assert!(results(&doc).is_empty());
    }

    #[test]
    fn diagnostics_become_results_with_locations() {
        let mut report = Report::default();
        report.fresh.push(diag(
            RuleId::NoPanic,
            "crates/noc/src/router.rs",
            42,
            "an \"escaped\" message\nwith a newline",
        ));
        report
            .fresh
            .push(diag(RuleId::Indexing, "src/lib.rs", 7, "advisory"));
        let doc = parse(&render(&report)).expect("valid JSON");
        let results = results(&doc);
        assert_eq!(results.len(), 2);
        let Json::Obj(first) = results[0] else {
            panic!()
        };
        assert_eq!(first.get("ruleId"), Some(&Json::Str("no-panic".into())));
        assert_eq!(first.get("level"), Some(&Json::Str("error".into())));
        let Json::Obj(second) = results[1] else {
            panic!()
        };
        assert_eq!(second.get("level"), Some(&Json::Str("warning".into())));
    }

    #[test]
    fn every_rule_is_declared_in_the_driver() {
        let doc = parse(&render(&Report::default())).expect("valid JSON");
        let Json::Obj(top) = &doc else { panic!() };
        let Some(Json::Arr(runs)) = top.get("runs") else {
            panic!()
        };
        let Json::Obj(run) = &runs[0] else { panic!() };
        let Some(Json::Obj(tool)) = run.get("tool") else {
            panic!()
        };
        let Some(Json::Obj(driver)) = tool.get("driver") else {
            panic!()
        };
        let Some(Json::Arr(rules)) = driver.get("rules") else {
            panic!()
        };
        assert_eq!(rules.len(), ALL_RULES.len());
    }
}
