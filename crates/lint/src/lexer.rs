//! A small self-contained Rust lexer: just enough of the language to
//! token-scan workspace sources reliably.
//!
//! The lexer understands everything that could make a naive text search
//! lie about code: raw strings (`r#"…"#`, any number of hashes), byte and
//! C strings, nested block comments (`/* /* */ */`), char literals versus
//! lifetimes (`'a'` versus `'a`), doc comments, float literals (including
//! exponents, `1.`-style trailing dots and suffixes) and multi-character
//! operators. It does **not** build a syntax tree — the rule engine in
//! [`crate::analyze`] works on the token stream directly.

/// The shape of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (includes raw identifiers `r#foo`).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Integer literal (any base, any non-float suffix).
    Int,
    /// Float literal (`1.5`, `1.`, `2e-3`, `1f64`, …).
    Float,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Operator or other punctuation; multi-char operators (`==`, `::`,
    /// `..=`, …) are single tokens.
    Op,
    /// `{`
    OpenBrace,
    /// `}`
    CloseBrace,
    /// `(`
    OpenParen,
    /// `)`
    CloseParen,
    /// `[`
    OpenBracket,
    /// `]`
    CloseBracket,
    /// `//` comment; `doc` marks `///` and `//!` forms.
    LineComment {
        /// True for `///` (but not `////`) and `//!`.
        doc: bool,
    },
    /// `/* … */` comment (nesting handled); `doc` marks `/**` and `/*!`.
    BlockComment {
        /// True for `/**` (but not `/***` or the empty `/**/`) and `/*!`.
        doc: bool,
    },
    /// A byte the lexer did not recognise (kept so positions stay exact).
    Unknown,
}

impl TokenKind {
    /// Comments of either form.
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// Doc comments of either form.
    pub fn is_doc_comment(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment { doc: true } | TokenKind::BlockComment { doc: true }
        )
    }
}

/// One lexed token with its source span and position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of the first byte.
    pub line: u32,
    /// 1-based column (in characters) of the first byte.
    pub col: u32,
}

impl Token {
    /// The source text of the token.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Multi-character operators, longest first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "=>", "->", "::", "..", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn rest(&self) -> &'a str {
        self.src.get(self.pos..).unwrap_or("")
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.rest().chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes a full source file into tokens (comments included).
///
/// Unterminated literals or comments consume the rest of the input rather
/// than erroring: for a lint that must never abort a run, a best-effort
/// token stream beats a hard failure on a file rustc would reject anyway.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    // A shebang (`#!…`) is legal only as the very first bytes of a file,
    // and only when it does not open an inner attribute (`#![…]`). Treat
    // the whole line as a plain comment so `#` and `!` never reach the
    // rule engine as operators.
    if src.starts_with("#!") && !src.starts_with("#![") {
        cur.bump_while(|c| c != '\n');
        out.push(Token {
            kind: TokenKind::LineComment { doc: false },
            start: 0,
            end: cur.pos,
            line: 1,
            col: 1,
        });
    }
    while let Some(c) = cur.peek() {
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = lex_one(&mut cur, c);
        let Some(kind) = kind else { continue };
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
            col,
        });
    }
    out
}

/// Lexes one token (or skips whitespace, returning `None`).
fn lex_one(cur: &mut Cursor<'_>, c: char) -> Option<TokenKind> {
    if c.is_whitespace() {
        cur.bump_while(char::is_whitespace);
        return None;
    }
    if cur.starts_with("//") {
        return Some(lex_line_comment(cur));
    }
    if cur.starts_with("/*") {
        return Some(lex_block_comment(cur));
    }
    // String-prefix forms must be checked before generic identifiers.
    if let Some(kind) = lex_prefixed_literal(cur) {
        return Some(kind);
    }
    if c == '"' {
        lex_string(cur);
        return Some(TokenKind::Str);
    }
    if c == '\'' {
        return Some(lex_quote(cur));
    }
    if c.is_ascii_digit() {
        return Some(lex_number(cur));
    }
    if is_ident_start(c) {
        cur.bump_while(is_ident_continue);
        return Some(TokenKind::Ident);
    }
    Some(lex_punct(cur, c))
}

fn lex_line_comment(cur: &mut Cursor<'_>) -> TokenKind {
    let rest = cur.rest();
    let doc = (rest.starts_with("///") && !rest.starts_with("////")) || rest.starts_with("//!");
    cur.bump_while(|c| c != '\n');
    TokenKind::LineComment { doc }
}

fn lex_block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    let rest = cur.rest();
    let doc = (rest.starts_with("/**") && !rest.starts_with("/***") && !rest.starts_with("/**/"))
        || rest.starts_with("/*!");
    cur.bump();
    cur.bump();
    let mut depth = 1usize;
    while depth > 0 {
        if cur.starts_with("/*") {
            depth += 1;
            cur.bump();
            cur.bump();
        } else if cur.starts_with("*/") {
            depth -= 1;
            cur.bump();
            cur.bump();
        } else if cur.bump().is_none() {
            break; // unterminated: consume to EOF
        }
    }
    TokenKind::BlockComment { doc }
}

/// `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#`, `c"…"`, `cr#"…"#` and raw
/// identifiers `r#ident`. Returns `None` when the cursor is not at any
/// prefixed literal (plain identifiers fall through to the caller).
fn lex_prefixed_literal(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    let rest = cur.rest();
    let prefix_len = ["br", "cr", "r", "b", "c"]
        .iter()
        .find(|p| rest.starts_with(**p))
        .map(|p| p.len())?;
    let mut after = rest.get(prefix_len..).unwrap_or("").chars();
    match after.next() {
        // b'x' byte char.
        Some('\'') if rest.starts_with("b'") => {
            cur.bump(); // b
            lex_quote(cur);
            Some(TokenKind::Char)
        }
        // Plain (non-raw) prefixed string: b"…" or c"…".
        Some('"') if prefix_len == 1 && !rest.starts_with("r\"") => {
            cur.bump();
            lex_string(cur);
            Some(TokenKind::Str)
        }
        Some('"') => {
            // r"…", br"…", cr"…": raw with zero hashes. Consume the
            // prefix and the opening quote, then scan for the bare close.
            for _ in 0..prefix_len + 1 {
                cur.bump();
            }
            lex_raw_string(cur, 0);
            Some(TokenKind::Str)
        }
        Some('#') => {
            // Count hashes; a quote makes it a raw string, an identifier
            // start after exactly `r#` makes it a raw identifier.
            let mut hashes = 0usize;
            let mut probe = after;
            let mut next = Some('#');
            while next == Some('#') {
                hashes += 1;
                next = probe.next();
            }
            match next {
                Some('"') => {
                    for _ in 0..prefix_len + hashes + 1 {
                        cur.bump();
                    }
                    lex_raw_string(cur, hashes);
                    Some(TokenKind::Str)
                }
                Some(c) if rest.starts_with("r#") && hashes == 1 && is_ident_start(c) => {
                    cur.bump(); // r
                    cur.bump(); // #
                    cur.bump_while(is_ident_continue);
                    Some(TokenKind::Ident)
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Consumes a `"`-delimited string body; the opening quote is the current
/// character.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Consumes a raw-string body after the opening quote was consumed;
/// terminates on `"` followed by `hashes` hash marks.
fn lex_raw_string(cur: &mut Cursor<'_>, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' {
            let closing = (0..hashes).all(|n| cur.peek_at(n) == Some('#'));
            if closing {
                for _ in 0..hashes {
                    cur.bump();
                }
                return;
            }
        }
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime); the cursor is at the
/// opening quote.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // '
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume the escape then scan to the
            // closing quote (covers \u{…}, \x41, \n, \').
            cur.bump();
            cur.bump();
            while let Some(c) = cur.peek() {
                cur.bump();
                if c == '\'' {
                    break;
                }
            }
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            if cur.peek_at(1) == Some('\'') {
                cur.bump();
                cur.bump();
                TokenKind::Char
            } else {
                cur.bump_while(is_ident_continue);
                TokenKind::Lifetime
            }
        }
        Some(_) => {
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        None => TokenKind::Char,
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    if cur.starts_with("0x")
        || cur.starts_with("0X")
        || cur.starts_with("0o")
        || cur.starts_with("0b")
    {
        cur.bump();
        cur.bump();
        cur.bump_while(|c| c.is_ascii_hexdigit() || c == '_');
        cur.bump_while(is_ident_continue); // suffix
        return TokenKind::Int;
    }
    cur.bump_while(|c| c.is_ascii_digit() || c == '_');
    let mut float = false;
    if cur.peek() == Some('.') {
        match cur.peek_at(1) {
            // `1.5`
            Some(d) if d.is_ascii_digit() => {
                float = true;
                cur.bump();
                cur.bump_while(|c| c.is_ascii_digit() || c == '_');
            }
            // `1.` is a float, but `1..2` is a range and `1.max(…)` is a
            // method call.
            Some(c) if c == '.' || is_ident_start(c) => {}
            _ => {
                float = true;
                cur.bump();
            }
        }
    }
    if matches!(cur.peek(), Some('e' | 'E')) {
        let exp_ok = match cur.peek_at(1) {
            Some(d) if d.is_ascii_digit() => true,
            Some('+' | '-') => cur.peek_at(2).is_some_and(|d| d.is_ascii_digit()),
            _ => false,
        };
        if exp_ok {
            float = true;
            cur.bump(); // e
            if matches!(cur.peek(), Some('+' | '-')) {
                cur.bump();
            }
            cur.bump_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    // Suffix: `f32`/`f64` force float, anything else leaves the kind.
    if cur.peek().is_some_and(is_ident_start) {
        let suffix_start = cur.pos;
        cur.bump_while(is_ident_continue);
        let suffix = cur.src.get(suffix_start..cur.pos).unwrap_or("");
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

fn lex_punct(cur: &mut Cursor<'_>, c: char) -> TokenKind {
    for op in OPERATORS {
        if cur.starts_with(op) {
            for _ in 0..op.len() {
                cur.bump();
            }
            return TokenKind::Op;
        }
    }
    cur.bump();
    match c {
        '{' => TokenKind::OpenBrace,
        '}' => TokenKind::CloseBrace,
        '(' => TokenKind::OpenParen,
        ')' => TokenKind::CloseParen,
        '[' => TokenKind::OpenBracket,
        ']' => TokenKind::CloseBracket,
        '!' | '#' | '.' | ',' | ';' | ':' | '=' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&'
        | '|' | '^' | '?' | '@' | '~' | '$' => TokenKind::Op,
        _ => TokenKind::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_owned()))
            .collect()
    }

    fn code_texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| !t.kind.is_comment())
            .map(|t| t.text(src).to_owned())
            .collect()
    }

    #[test]
    fn idents_and_ops() {
        let ks = kinds("a == b != 0.5");
        assert_eq!(
            ks,
            vec![
                (TokenKind::Ident, "a".into()),
                (TokenKind::Op, "==".into()),
                (TokenKind::Ident, "b".into()),
                (TokenKind::Op, "!=".into()),
                (TokenKind::Float, "0.5".into()),
            ]
        );
    }

    #[test]
    fn raw_string_contents_are_not_tokens() {
        // The `unwrap()` inside the raw string must stay a single Str
        // token; a text-level grep would false-positive here.
        let src = r####"let s = r#"x.unwrap()"#; s.len()"####;
        let ks = kinds(src);
        assert!(ks.contains(&(TokenKind::Str, "r#\"x.unwrap()\"#".into())));
        let idents: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(!idents.contains(&"unwrap"), "idents: {idents:?}");
    }

    #[test]
    fn raw_strings_with_many_hashes() {
        let src = "r##\"one \"# two\"## + 1";
        let ks = kinds(src);
        assert_eq!(ks[0], (TokenKind::Str, "r##\"one \"# two\"##".into()));
        assert_eq!(ks[2], (TokenKind::Int, "1".into()));
    }

    #[test]
    fn byte_and_c_strings() {
        let ks = kinds(r##"b"bytes" c"cstr" br#"raw"# b'x'"##);
        assert_eq!(ks[0].0, TokenKind::Str);
        assert_eq!(ks[1].0, TokenKind::Str);
        assert_eq!(ks[2].0, TokenKind::Str);
        assert_eq!(ks[3].0, TokenKind::Char);
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let ks = kinds("r#type = 1");
        assert_eq!(ks[0], (TokenKind::Ident, "r#type".into()));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let ks = kinds(src);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[0], (TokenKind::Ident, "a".into()));
        assert_eq!(ks[1].0, TokenKind::BlockComment { doc: false });
        assert_eq!(ks[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn doc_comment_flavours() {
        assert_eq!(kinds("/// doc")[0].0, TokenKind::LineComment { doc: true });
        assert_eq!(kinds("//! doc")[0].0, TokenKind::LineComment { doc: true });
        assert_eq!(kinds("// not")[0].0, TokenKind::LineComment { doc: false });
        assert_eq!(
            kinds("//// not")[0].0,
            TokenKind::LineComment { doc: false }
        );
        assert_eq!(
            kinds("/** doc */")[0].0,
            TokenKind::BlockComment { doc: true }
        );
        assert_eq!(kinds("/**/")[0].0, TokenKind::BlockComment { doc: false });
    }

    #[test]
    fn char_vs_lifetime() {
        let ks = kinds("'a' 'x 'static '\\n' '\\u{41}' b'q'");
        assert_eq!(ks[0].0, TokenKind::Char);
        assert_eq!(ks[1], (TokenKind::Lifetime, "'x".into()));
        assert_eq!(ks[2], (TokenKind::Lifetime, "'static".into()));
        assert_eq!(ks[3].0, TokenKind::Char);
        assert_eq!(ks[4].0, TokenKind::Char);
        assert_eq!(ks[5].0, TokenKind::Char);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("1")[0].0, TokenKind::Int);
        assert_eq!(kinds("1.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e9")[0].0, TokenKind::Float);
        assert_eq!(kinds("2.5e-3")[0].0, TokenKind::Float);
        assert_eq!(kinds("1f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("1u32")[0].0, TokenKind::Int);
        assert_eq!(kinds("0xFF_usize")[0].0, TokenKind::Int);
        // `1.` is a float but `1..2` is int-op-int and `1.max` a call.
        assert_eq!(kinds("1.")[0].0, TokenKind::Float);
        assert_eq!(
            code_texts("1..2"),
            vec!["1".to_owned(), "..".to_owned(), "2".to_owned()]
        );
        assert_eq!(kinds("3.max(4)")[0].0, TokenKind::Int);
        // Tuple field access stays integral.
        let ks = kinds("t.0");
        assert_eq!(ks[2].0, TokenKind::Int);
    }

    #[test]
    fn operators_are_greedy() {
        assert_eq!(code_texts("a<=b"), vec!["a", "<=", "b"]);
        assert_eq!(code_texts("a..=b"), vec!["a", "..=", "b"]);
        assert_eq!(code_texts("m::n"), vec!["m", "::", "n"]);
        assert_eq!(code_texts("x=>y"), vec!["x", "=>", "y"]);
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let src = "ab\n  cd";
        let ts = lex(src);
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let ks = kinds(r#""a\"b" c"#);
        assert_eq!(ks[0], (TokenKind::Str, r#""a\"b""#.into()));
        assert_eq!(ks[1], (TokenKind::Ident, "c".into()));
    }

    #[test]
    fn shebang_is_a_comment() {
        let ks = kinds("#!/usr/bin/env run-cargo-script\nfn main() {}");
        assert_eq!(ks[0].0, TokenKind::LineComment { doc: false });
        assert_eq!(ks[0].1, "#!/usr/bin/env run-cargo-script");
        assert_eq!(ks[1], (TokenKind::Ident, "fn".into()));
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        let ks = kinds("#![allow(dead_code)]");
        assert_eq!(ks[0], (TokenKind::Op, "#".into()));
        assert_eq!(ks[1], (TokenKind::Op, "!".into()));
        assert_eq!(ks[2].0, TokenKind::OpenBracket);
    }

    #[test]
    fn shebang_mid_file_is_not_special() {
        // `#!` after the first byte lexes as two operator tokens.
        let ks = kinds("x\n#!/bin/sh");
        assert_eq!(ks[1], (TokenKind::Op, "#".into()));
    }

    #[test]
    fn unterminated_forms_consume_to_eof() {
        assert_eq!(kinds("\"open").len(), 1);
        assert_eq!(kinds("/* open").len(), 1);
        assert_eq!(kinds("r#\"open").len(), 1);
    }
}
