//! Diagnostics: what a rule violation looks like when reported.

use crate::rules::RuleId;

/// Saturating `usize → u32` for line/column/width arithmetic: the lint's
/// own `lossy-cast` rule bans bare `as` narrowing, and a 4-billion-line
/// source dimension is out of scope anyway.
pub(crate) fn to_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path of the offending file, relative to the workspace root, with
    /// forward slashes (stable across platforms for baseline matching).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// The violated rule.
    pub rule: RuleId,
    /// Human-oriented explanation.
    pub message: String,
    /// The full source line, for rendering.
    pub snippet: String,
    /// Character length of the offending token (for the caret underline).
    pub width: u32,
}

impl Diagnostic {
    /// The key this diagnostic matches against baseline entries:
    /// `rule path:line`.
    pub fn baseline_key(&self) -> String {
        format!("{} {}:{}", self.rule.name(), self.path, self.line)
    }

    /// Renders the diagnostic as a rustc-style block:
    ///
    /// ```text
    /// crates/noc/src/network.rs:154:32: error[no-panic]: `.expect()` …
    ///    154 |         self.traces.as_ref().expect("tracing not enabled")
    ///        |                              ^^^^^^
    /// ```
    pub fn render(&self) -> String {
        let severity = if self.rule.advisory() {
            "warning"
        } else {
            "error"
        };
        let gutter = format!("{:>6}", self.line);
        let caret_pad: String = self
            .snippet
            .chars()
            .take(self.col.saturating_sub(1) as usize)
            .map(|c| if c == '\t' { '\t' } else { ' ' })
            .collect();
        let carets = "^".repeat((self.width.max(1)) as usize);
        format!(
            "{}:{}:{}: {severity}[{}]: {}\n{gutter} | {}\n{} | {caret_pad}{carets}\n",
            self.path,
            self.line,
            self.col,
            self.rule.name(),
            self.message,
            self.snippet,
            " ".repeat(gutter.len()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            col: 11,
            rule: RuleId::NoPanic,
            message: "`.unwrap()` in library code".into(),
            snippet: "    let x = y.unwrap();".into(),
            width: 6,
        }
    }

    #[test]
    fn baseline_key_is_rule_path_line() {
        assert_eq!(diag().baseline_key(), "no-panic crates/x/src/lib.rs:7");
    }

    #[test]
    fn render_contains_position_rule_and_caret() {
        let r = diag().render();
        assert!(r.contains("crates/x/src/lib.rs:7:11"));
        assert!(r.contains("error[no-panic]"));
        assert!(r.contains("^^^^^^"));
        assert!(r.contains("let x = y.unwrap();"));
    }

    #[test]
    fn advisory_rules_render_as_warnings() {
        let mut d = diag();
        d.rule = RuleId::Indexing;
        assert!(d.render().contains("warning[indexing]"));
    }
}
