//! The rule catalog: every invariant `srlr-lint` enforces, with the
//! rationale each rule encodes.
//!
//! The rules exist because two guarantees of this reproduction are
//! load-bearing and easy to erode silently:
//!
//! * **Determinism** — the Fig. 6 Monte Carlo, the shmoo/bathtub sweeps
//!   and the NoC fault-injection runs promise bit-identical results at
//!   every thread count and across machines. A single `HashMap` iteration
//!   in a result-bearing path, a wall-clock call, or an untracked thread
//!   breaks that promise without failing any test on the machine it was
//!   written on.
//! * **No-panic library path** — `Network::run_until_delivered` and the
//!   histogram/percentile APIs were converted to typed errors so that a
//!   sweep point degrades instead of aborting a multi-hour run; a stray
//!   `unwrap()` reintroduces the abort.

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `unwrap`/`expect` calls and `panic!`-family macros in non-test
    /// library code. Use typed errors, graceful degradation, or an
    /// `assert!` with a message for documented preconditions.
    NoPanic,
    /// `HashMap`/`HashSet` anywhere in non-test code: iteration order is
    /// randomized per process, which can leak into results. Use
    /// `BTreeMap`/`BTreeSet` or suppress with a justification.
    DetMap,
    /// `Instant`/`SystemTime` outside the `crates/criterion` timing shim
    /// and `srlr-telemetry`'s `clock` module (which fences the wall clock
    /// behind the `Clock` abstraction): wall-clock reads make results
    /// time-dependent.
    DetTime,
    /// `spawn(...)` calls outside `srlr-parallel`: all concurrency must go
    /// through the deterministic index-ordered pool.
    DetSpawn,
    /// `==`/`!=` against a float literal: exact float comparison is
    /// usually a tolerance bug. (Token-level: only literal operands are
    /// detectable.)
    FloatEq,
    /// `println!`-family macros in library code: libraries return strings
    /// or write through `io::Write`/the telemetry sinks so output stays
    /// testable and redirectable. Binaries (`main.rs`) and the bench
    /// harness crate keep printing.
    NoPrint,
    /// Public item without a doc comment, in the crates configured for
    /// doc coverage (`srlr-tech`, `srlr-circuit`, `srlr-units`).
    MissingDoc,
    /// Advisory: `expr[index]` can panic; prefer `.get()` on untrusted
    /// indices. Off by default (token-level analysis cannot see types),
    /// enabled with `--warn-indexing`.
    Indexing,
    /// A public fn or field in the dimensioned crates (`tech`, `circuit`,
    /// `core`, `link`) that takes or returns a bare `f64` where an
    /// `srlr-units` newtype exists. Genuinely dimensionless values carry
    /// an inline `allow` explaining why.
    RawF64Api,
    /// A `use srlr_*` import or a `Cargo.toml` dependency that points
    /// against the crate DAG `units → tech → circuit → core → link → noc`
    /// (with `rng`/`parallel`/`telemetry`/`criterion` as shared leaves).
    CrateLayering,
    /// The crate's public surface drifted from its committed
    /// `api-lock.txt` snapshot: an addition or removal that nobody
    /// reviewed. Accept intentional changes with `--write-api-lock`.
    ApiLock,
    /// A heap-allocating call (`Vec::new`, `push`, `collect`, `clone`,
    /// `to_vec`, `format!`, `Box::new`, …) inside a function reachable
    /// from a profiler-designated hot root declared in
    /// `lint-hotpaths.txt`. The kernel tier must stay allocation-free so
    /// its cost is pure arithmetic.
    AllocInHotPath,
    /// A floating-point reduction (`.sum::<f64>()`, `.fold(0.0, …)`,
    /// `.product::<f64>()`) over an iterator chain containing an
    /// order-unspecified adapter (`par_bridge`, `par_iter`, `read_dir`,
    /// …). Float addition is not associative; merged parallel results
    /// must come through `par_map_indexed`-ordered outputs.
    UnorderedFloatReduce,
    /// RNG construction (`Xoshiro256pp::new`/`for_stream`,
    /// `stream_seed`, `splitmix64`) outside `srlr-rng` and the
    /// registered sampler entry points: every stream must stay
    /// counter-derived from a trial index.
    RngStreamDiscipline,
    /// An `as` cast to a sub-word integer type in library code:
    /// truncation and sign wrap are silent. Use `From`/`try_from`, or
    /// allow with a reason proving the range.
    LossyCast,
    /// A `srlr-lint:` suppression comment that is malformed, names an
    /// unknown rule, or omits the mandatory `reason = "…"`.
    BadSuppression,
    /// A baseline entry that no longer matches any violation: the
    /// baseline file may only shrink, so stale entries must be deleted.
    StaleBaseline,
}

/// Every rule, in reporting order.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::NoPanic,
    RuleId::DetMap,
    RuleId::DetTime,
    RuleId::DetSpawn,
    RuleId::FloatEq,
    RuleId::NoPrint,
    RuleId::MissingDoc,
    RuleId::Indexing,
    RuleId::RawF64Api,
    RuleId::CrateLayering,
    RuleId::ApiLock,
    RuleId::AllocInHotPath,
    RuleId::UnorderedFloatReduce,
    RuleId::RngStreamDiscipline,
    RuleId::LossyCast,
    RuleId::BadSuppression,
    RuleId::StaleBaseline,
];

impl RuleId {
    /// The stable kebab-case name used in suppressions, baselines and
    /// diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NoPanic => "no-panic",
            RuleId::DetMap => "det-map",
            RuleId::DetTime => "det-time",
            RuleId::DetSpawn => "det-spawn",
            RuleId::FloatEq => "float-eq",
            RuleId::NoPrint => "no-print",
            RuleId::MissingDoc => "missing-doc",
            RuleId::Indexing => "indexing",
            RuleId::RawF64Api => "raw-f64-api",
            RuleId::CrateLayering => "crate-layering",
            RuleId::ApiLock => "api-lock",
            RuleId::AllocInHotPath => "alloc-in-hot-path",
            RuleId::UnorderedFloatReduce => "unordered-float-reduce",
            RuleId::RngStreamDiscipline => "rng-stream-discipline",
            RuleId::LossyCast => "lossy-cast",
            RuleId::BadSuppression => "bad-suppression",
            RuleId::StaleBaseline => "stale-baseline",
        }
    }

    /// Parses a rule name (as written in a suppression or baseline).
    pub fn from_name(name: &str) -> Option<RuleId> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// One-line description for `--list-rules`.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::NoPanic => {
                "no unwrap/expect/panic!/unreachable!/todo!/unimplemented! in non-test library code"
            }
            RuleId::DetMap => "no HashMap/HashSet (iteration order leaks): use BTreeMap/BTreeSet",
            RuleId::DetTime => {
                "no Instant/SystemTime outside crates/criterion and telemetry::clock"
            }
            RuleId::DetSpawn => "no spawn() outside srlr-parallel",
            RuleId::FloatEq => "no ==/!= against float literals",
            RuleId::NoPrint => {
                "no println!/eprintln!/print!/eprint!/dbg! in library code (main.rs and \
                 crates/bench may print)"
            }
            RuleId::MissingDoc => "public items in doc-covered crates need doc comments",
            RuleId::Indexing => "advisory: expr[index] can panic (enable with --warn-indexing)",
            RuleId::RawF64Api => {
                "public fns/fields in dimensioned crates must use srlr-units newtypes, not bare f64"
            }
            RuleId::CrateLayering => {
                "imports and Cargo.toml deps must follow units -> tech -> circuit -> core -> \
                 link -> noc"
            }
            RuleId::ApiLock => {
                "public API surface must match the committed api-lock.txt (--write-api-lock to \
                 accept)"
            }
            RuleId::AllocInHotPath => {
                "no heap-allocating calls in functions reachable from the lint-hotpaths.txt \
                 hot roots"
            }
            RuleId::UnorderedFloatReduce => {
                "no float reductions over order-unspecified iteration; merge parallel results \
                 through par_map_indexed"
            }
            RuleId::RngStreamDiscipline => {
                "no RNG construction outside srlr-rng and the registered sampler entry points"
            }
            RuleId::LossyCast => {
                "no `as` casts to sub-word integer types in library code; use From/try_from \
                 or allow with a range argument"
            }
            RuleId::BadSuppression => "suppression comments need a known rule and a reason",
            RuleId::StaleBaseline => "baseline entries must match a real violation (shrink-only)",
        }
    }

    /// Advisory rules are reported but never fail the run, and are only
    /// scanned when explicitly enabled.
    pub fn advisory(self) -> bool {
        matches!(self, RuleId::Indexing)
    }

    /// Rules that may be suppressed inline. Meta-rules about the lint's
    /// own inputs cannot be waved through.
    pub fn suppressible(self) -> bool {
        !matches!(self, RuleId::BadSuppression | RuleId::StaleBaseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for &rule in ALL_RULES {
            assert_eq!(RuleId::from_name(rule.name()), Some(rule));
        }
        assert_eq!(RuleId::from_name("nope"), None);
    }

    #[test]
    fn meta_rules_are_not_suppressible() {
        assert!(!RuleId::BadSuppression.suppressible());
        assert!(!RuleId::StaleBaseline.suppressible());
        assert!(RuleId::NoPanic.suppressible());
    }
}
