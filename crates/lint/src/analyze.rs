//! The rule engine: token-level analysis of one source file.
//!
//! All rules share three pieces of context computed up front:
//!
//! * **Test exclusion** — items annotated `#[cfg(test)]` or `#[test]`
//!   (most importantly `mod tests { … }` blocks) are invisible to every
//!   rule: tests may unwrap, compare floats exactly and use `HashSet`
//!   freely, because nothing downstream consumes their iteration order.
//! * **Suppressions** — `// srlr-lint: allow(rule, reason = "…")` on the
//!   line of (or the line before) a violation waves exactly that rule
//!   through. The `reason` is mandatory; a suppression without one is
//!   itself a violation (`bad-suppression`).
//! * **`macro_rules!` bodies** — skipped by `missing-doc` (macro token
//!   templates are not items); the other rules still apply, since the
//!   expanded code runs in library context.

use crate::diagnostics::{to_u32, Diagnostic};
use crate::lexer::{lex, Token, TokenKind};
use crate::rules::RuleId;

/// Methods whose call panics on the unhappy path.
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
/// Macros that abort the process.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Macros that write straight to stdout/stderr.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];
/// Keywords that complete a `pub` item for `missing-doc`.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "static", "mod", "union",
];
/// Keywords that may sit between `pub` and the item keyword.
const ITEM_MODIFIERS: &[&str] = &["unsafe", "async", "extern"];
/// Keywords after which `[` opens an array/slice, not an index.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while",
];
/// The marker introducing an inline suppression comment.
const SUPPRESSION_MARKER: &str = "srlr-lint:";

/// Per-file knobs derived from the file's path by the caller.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeOptions {
    /// Enforce doc comments on public items (`srlr-tech`, `srlr-circuit`,
    /// `srlr-units`).
    pub check_missing_doc: bool,
    /// Allow `Instant`/`SystemTime` (the `crates/criterion` timing shim).
    pub allow_time: bool,
    /// Allow `spawn(…)` (the `srlr-parallel` worker pool).
    pub allow_spawn: bool,
    /// Allow the `println!` family (binaries and the bench harness).
    pub allow_print: bool,
    /// Scan for the advisory `indexing` rule.
    pub warn_indexing: bool,
}

/// One parsed suppression comment; covers its own line and the next.
#[derive(Debug, Clone, Copy)]
pub struct Suppression {
    /// The rule being waved through.
    pub rule: RuleId,
    /// Line of the suppression comment (it also covers the next line).
    pub line: u32,
}

/// A file's token stream plus the index of non-comment ("code") tokens.
///
/// Shared between the token-level rule engine here and the item-tree
/// parser in [`crate::items`].
pub(crate) struct FileView<'a> {
    pub(crate) path: &'a str,
    pub(crate) src: &'a str,
    pub(crate) lines: Vec<&'a str>,
    pub(crate) tokens: Vec<Token>,
    /// Raw indices of the non-comment tokens, in order.
    pub(crate) code: Vec<usize>,
    /// Raw-index flags: token lies inside a `#[cfg(test)]`/`#[test]` item.
    excluded: Vec<bool>,
    /// Raw-index flags: token lies inside a `macro_rules!` body.
    in_macro: Vec<bool>,
}

impl<'a> FileView<'a> {
    pub(crate) fn new(path: &'a str, src: &'a str) -> Self {
        let tokens = lex(src);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].kind.is_comment())
            .collect();
        let mut view = Self {
            path,
            src,
            lines: src.lines().collect(),
            tokens,
            code,
            excluded: Vec::new(),
            in_macro: Vec::new(),
        };
        view.excluded = view.compute_excluded();
        view.in_macro = view.compute_macro_bodies();
        view
    }

    /// The code token at code index `ci`.
    pub(crate) fn ctok(&self, ci: usize) -> Option<&Token> {
        self.code.get(ci).map(|&r| &self.tokens[r])
    }

    /// The text of the code token at code index `ci`.
    pub(crate) fn ctext(&self, ci: usize) -> Option<&'a str> {
        self.ctok(ci).map(|t| t.text(self.src))
    }

    /// Whether the code token at `ci` is inside excluded (test) code.
    pub(crate) fn is_excluded(&self, ci: usize) -> bool {
        self.code
            .get(ci)
            .is_some_and(|&r| self.excluded.get(r).copied().unwrap_or(false))
    }

    /// Whether the code token at `ci` is inside a `macro_rules!` body.
    pub(crate) fn is_in_macro(&self, ci: usize) -> bool {
        self.code
            .get(ci)
            .is_some_and(|&r| self.in_macro.get(r).copied().unwrap_or(false))
    }

    /// Builds a diagnostic anchored at the given token.
    pub(crate) fn diag(&self, tok: &Token, rule: RuleId, message: String) -> Diagnostic {
        let snippet = self
            .lines
            .get(tok.line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or("")
            .to_string();
        Diagnostic {
            path: self.path.to_string(),
            line: tok.line,
            col: tok.col,
            rule,
            message,
            snippet,
            width: to_u32(tok.text(self.src).chars().count().max(1)),
        }
    }

    /// Finds the code index of the close delimiter matching the open
    /// delimiter at code index `i`.
    pub(crate) fn matching_close(
        &self,
        i: usize,
        open: TokenKind,
        close: TokenKind,
    ) -> Option<usize> {
        let mut depth = 0usize;
        for ci in i..self.code.len() {
            let kind = self.ctok(ci)?.kind;
            if kind == open {
                depth += 1;
            } else if kind == close {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(ci);
                }
            }
        }
        None
    }

    /// Parses an attribute group (`#[…]` or `#![…]`) starting at code
    /// index `i`. Returns the code index of the closing `]` and whether
    /// the attribute marks test code (`#[test]` / `#[cfg(test)]`).
    pub(crate) fn parse_attr(&self, i: usize) -> Option<(usize, bool)> {
        if self.ctext(i)? != "#" {
            return None;
        }
        let mut j = i + 1;
        if self.ctext(j) == Some("!") {
            j += 1;
        }
        if self.ctok(j)?.kind != TokenKind::OpenBracket {
            return None;
        }
        let close = self.matching_close(j, TokenKind::OpenBracket, TokenKind::CloseBracket)?;
        let inner: Vec<&str> = (j + 1..close).filter_map(|k| self.ctext(k)).collect();
        let is_test = inner == ["test"] || inner == ["cfg", "(", "test", ")"];
        Some((close, is_test))
    }

    /// Finds the code index of the last token of the item starting at `i`
    /// (skipping stacked attributes): a top-level `;`, or the closing `}`
    /// of the item's brace block.
    pub(crate) fn item_end(&self, mut i: usize) -> Option<usize> {
        while let Some((close, _)) = self.parse_attr(i) {
            i = close + 1;
        }
        let mut parens = 0i32;
        let mut brackets = 0i32;
        for ci in i..self.code.len() {
            match self.ctok(ci)?.kind {
                TokenKind::OpenParen => parens += 1,
                TokenKind::CloseParen => parens -= 1,
                TokenKind::OpenBracket => brackets += 1,
                TokenKind::CloseBracket => brackets -= 1,
                TokenKind::OpenBrace if parens == 0 && brackets == 0 => {
                    return self.matching_close(ci, TokenKind::OpenBrace, TokenKind::CloseBrace);
                }
                TokenKind::Op if parens == 0 && brackets == 0 && self.ctext(ci) == Some(";") => {
                    return Some(ci);
                }
                _ => {}
            }
        }
        None
    }

    /// Marks raw-token ranges covered by `#[cfg(test)]` / `#[test]` items
    /// (attribute through end of item, comments included).
    fn compute_excluded(&self) -> Vec<bool> {
        let mut flags = vec![false; self.tokens.len()];
        let mut i = 0usize;
        while i < self.code.len() {
            let Some((close, is_test)) = self.parse_attr(i) else {
                i += 1;
                continue;
            };
            if !is_test {
                i = close + 1;
                continue;
            }
            let end = match self.item_end(close + 1) {
                Some(e) => e,
                None => self.code.len().saturating_sub(1),
            };
            if let (Some(&raw_start), Some(&raw_end)) = (self.code.get(i), self.code.get(end)) {
                for flag in flags.iter_mut().take(raw_end + 1).skip(raw_start) {
                    *flag = true;
                }
            }
            i = end + 1;
        }
        flags
    }

    /// Marks raw-token ranges inside `macro_rules! name { … }` bodies.
    fn compute_macro_bodies(&self) -> Vec<bool> {
        let mut flags = vec![false; self.tokens.len()];
        let mut i = 0usize;
        while i < self.code.len() {
            if self.ctext(i) == Some("macro_rules") && self.ctext(i + 1) == Some("!") {
                let open = i + 3; // macro_rules ! name {
                if self.ctok(open).map(|t| t.kind) == Some(TokenKind::OpenBrace) {
                    if let Some(close) =
                        self.matching_close(open, TokenKind::OpenBrace, TokenKind::CloseBrace)
                    {
                        if let (Some(&rs), Some(&re)) = (self.code.get(open), self.code.get(close))
                        {
                            for flag in flags.iter_mut().take(re + 1).skip(rs) {
                                *flag = true;
                            }
                        }
                        i = close + 1;
                        continue;
                    }
                }
            }
            i += 1;
        }
        flags
    }
}

/// Token-level analysis of one file: the (unsuppressed) diagnostics plus
/// the parsed suppressions, so the caller can apply the same suppressions
/// to cross-file diagnostics (raw-f64-api, crate-layering, api-lock)
/// anchored in this file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Diagnostics from the token-level rules, not yet suppression-filtered.
    pub diags: Vec<Diagnostic>,
    /// Every well-formed suppression comment in the file.
    pub suppressions: Vec<Suppression>,
}

/// Runs the token-level rules on one file without applying suppressions.
pub fn analyze_file(path: &str, src: &str, opts: AnalyzeOptions) -> FileAnalysis {
    let view = FileView::new(path, src);
    let mut diags: Vec<Diagnostic> = Vec::new();

    let suppressions = parse_suppressions(&view, &mut diags);
    scan_code_rules(&view, opts, &mut diags);
    if opts.check_missing_doc {
        scan_missing_doc(&view, &mut diags);
    }
    FileAnalysis {
        diags,
        suppressions,
    }
}

/// Drops every suppressible diagnostic covered by a suppression on its
/// own line or the line above.
pub fn apply_suppressions(diags: &mut Vec<Diagnostic>, suppressions: &[Suppression]) {
    diags.retain(|d| {
        !(d.rule.suppressible()
            && suppressions
                .iter()
                .any(|s| s.rule == d.rule && (d.line == s.line || d.line == s.line + 1)))
    });
}

/// Analyzes one file and returns its diagnostics, sorted by position.
pub fn analyze_source(path: &str, src: &str, opts: AnalyzeOptions) -> Vec<Diagnostic> {
    let mut analysis = analyze_file(path, src, opts);
    apply_suppressions(&mut analysis.diags, &analysis.suppressions);
    analysis.diags.sort_by_key(|d| (d.line, d.col, d.rule));
    analysis.diags
}

/// Parses every `srlr-lint:` comment; malformed ones become
/// `bad-suppression` diagnostics.
fn parse_suppressions(view: &FileView<'_>, diags: &mut Vec<Diagnostic>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (r, tok) in view.tokens.iter().enumerate() {
        if !matches!(tok.kind, TokenKind::LineComment { doc: false }) {
            continue;
        }
        if view.excluded.get(r).copied().unwrap_or(false) {
            continue; // test code needs no suppressions
        }
        let text = tok.text(view.src);
        let Some(pos) = text.find(SUPPRESSION_MARKER) else {
            continue;
        };
        let rest = text
            .get(pos + SUPPRESSION_MARKER.len()..)
            .unwrap_or("")
            .trim();
        match parse_allow(rest) {
            Ok(rule) => out.push(Suppression {
                rule,
                line: tok.line,
            }),
            Err(why) => diags.push(view.diag(
                tok,
                RuleId::BadSuppression,
                format!("malformed suppression: {why}"),
            )),
        }
    }
    out
}

/// Parses the `allow(rule, reason = "…")` payload of a suppression.
fn parse_allow(rest: &str) -> Result<RuleId, String> {
    let Some(inner) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(rule, reason = \"…\")`".to_string());
    };
    let name_end = inner
        .find([',', ')'])
        .ok_or_else(|| "unclosed `allow(`".to_string())?;
    let name = inner.get(..name_end).unwrap_or("").trim();
    let rule = RuleId::from_name(name).ok_or_else(|| format!("unknown rule `{name}`"))?;
    if !rule.suppressible() {
        return Err(format!("rule `{name}` cannot be suppressed"));
    }
    let after = inner.get(name_end..).unwrap_or("");
    let Some(args) = after.strip_prefix(',') else {
        return Err(format!(
            "rule `{name}` needs a justification: `allow({name}, reason = \"…\")`"
        ));
    };
    let args = args.trim_start();
    let Some(quoted) = args
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|a| a.strip_prefix('='))
        .map(str::trim_start)
    else {
        return Err("expected `reason = \"…\"` after the rule name".to_string());
    };
    let Some(body) = quoted.strip_prefix('"') else {
        return Err("reason must be a quoted string".to_string());
    };
    let Some(close_quote) = body.rfind('"') else {
        return Err("unterminated reason string".to_string());
    };
    let reason = body.get(..close_quote).unwrap_or("");
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    if !body
        .get(close_quote + 1..)
        .unwrap_or("")
        .trim_start()
        .starts_with(')')
    {
        return Err("expected `)` after the reason".to_string());
    }
    Ok(rule)
}

/// Scans the code token stream for the panic, determinism, float and
/// indexing rules.
fn scan_code_rules(view: &FileView<'_>, opts: AnalyzeOptions, diags: &mut Vec<Diagnostic>) {
    for ci in 0..view.code.len() {
        if view.is_excluded(ci) {
            continue;
        }
        let Some(tok) = view.ctok(ci) else {
            continue;
        };
        let tok = *tok;
        let text = tok.text(view.src);
        match tok.kind {
            TokenKind::Ident => {
                let next_kind = view.ctok(ci + 1).map(|t| t.kind);
                let next_is_bang = view.ctext(ci + 1) == Some("!");
                let prev_is_dot = ci > 0 && view.ctext(ci - 1) == Some(".");
                if PANIC_METHODS.contains(&text)
                    && prev_is_dot
                    && next_kind == Some(TokenKind::OpenParen)
                {
                    diags.push(view.diag(
                        &tok,
                        RuleId::NoPanic,
                        format!(
                            "`.{text}()` can panic in library code; return a typed error, \
                             degrade gracefully, or add a justified suppression"
                        ),
                    ));
                } else if PANIC_MACROS.contains(&text) && next_is_bang && !prev_is_dot {
                    diags.push(view.diag(
                        &tok,
                        RuleId::NoPanic,
                        format!("`{text}!` aborts in library code; return a typed error instead"),
                    ));
                } else if PRINT_MACROS.contains(&text)
                    && next_is_bang
                    && !prev_is_dot
                    && !opts.allow_print
                {
                    diags.push(view.diag(
                        &tok,
                        RuleId::NoPrint,
                        format!(
                            "`{text}!` writes to the terminal from library code; return a \
                             string, take an `io::Write`, or record through the telemetry \
                             sinks"
                        ),
                    ));
                } else if text == "HashMap" || text == "HashSet" {
                    diags.push(view.diag(
                        &tok,
                        RuleId::DetMap,
                        format!(
                            "`{text}` iteration order is randomized per process; use \
                             `BTree{}` to keep results deterministic",
                            text.trim_start_matches("Hash")
                        ),
                    ));
                } else if (text == "Instant" || text == "SystemTime") && !opts.allow_time {
                    diags.push(view.diag(
                        &tok,
                        RuleId::DetTime,
                        format!(
                            "`{text}` reads the wall clock; timing belongs in \
                             `crates/criterion` or `srlr-telemetry`'s `clock` module \
                             (use the `Clock` abstraction), results must not depend on it"
                        ),
                    ));
                } else if text == "spawn"
                    && next_kind == Some(TokenKind::OpenParen)
                    && !opts.allow_spawn
                {
                    diags.push(
                        view.diag(
                            &tok,
                            RuleId::DetSpawn,
                            "`spawn(…)` outside `srlr-parallel`; route concurrency through \
                         the deterministic index-ordered pool"
                                .to_string(),
                        ),
                    );
                }
            }
            TokenKind::Op if text == "==" || text == "!=" => {
                let float_operand = view.ctok(ci + 1).map(|t| t.kind) == Some(TokenKind::Float)
                    || (ci > 0 && view.ctok(ci - 1).map(|t| t.kind) == Some(TokenKind::Float));
                if float_operand {
                    diags.push(view.diag(
                        &tok,
                        RuleId::FloatEq,
                        format!(
                            "`{text}` against a float literal; compare with a tolerance \
                             (or suppress if exact-zero is a sentinel)"
                        ),
                    ));
                }
            }
            TokenKind::OpenBracket if opts.warn_indexing && ci > 0 => {
                let Some(prev) = view.ctok(ci - 1) else {
                    continue;
                };
                let prev_text = prev.text(view.src);
                let indexes = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev_text),
                    TokenKind::CloseParen | TokenKind::CloseBracket => true,
                    _ => false,
                };
                if indexes {
                    diags.push(
                        view.diag(
                            &tok,
                            RuleId::Indexing,
                            "indexing can panic on out-of-range; prefer `.get()` for \
                         untrusted indices"
                                .to_string(),
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Flags `pub` items in doc-covered crates that lack a doc comment.
fn scan_missing_doc(view: &FileView<'_>, diags: &mut Vec<Diagnostic>) {
    for ci in 0..view.code.len() {
        if view.ctext(ci) != Some("pub") || view.is_excluded(ci) || view.is_in_macro(ci) {
            continue;
        }
        // `pub(crate)` / `pub(super)` / `pub(in …)` items are not public
        // API: no doc requirement.
        let j = ci + 1;
        if view.ctok(j).map(|t| t.kind) == Some(TokenKind::OpenParen) {
            continue;
        }
        let Some(kind) = item_keyword(view, j) else {
            continue; // a field, a re-export, or not an item at all
        };
        let Some(&raw_pub) = view.code.get(ci) else {
            continue;
        };
        if !has_doc_before(view, raw_pub) {
            let Some(tok) = view.ctok(ci) else { continue };
            let tok = *tok;
            diags.push(view.diag(
                &tok,
                RuleId::MissingDoc,
                format!("public {kind} is missing a doc comment"),
            ));
        }
    }
}

/// Resolves the item keyword after a `pub`, skipping modifiers. Returns
/// `None` for struct fields and `use` re-exports (no doc required).
fn item_keyword<'a>(view: &FileView<'a>, mut j: usize) -> Option<&'a str> {
    for _ in 0..4 {
        let text = view.ctext(j)?;
        if ITEM_KEYWORDS.contains(&text) {
            return Some(text);
        }
        if text == "const" {
            // `pub const NAME: …` is an item; `pub const fn` keeps going.
            return if view.ctext(j + 1) == Some("fn") {
                Some("fn")
            } else {
                Some("const")
            };
        }
        if ITEM_MODIFIERS.contains(&text) || view.ctok(j)?.kind == TokenKind::Str {
            j += 1; // `unsafe`, `async`, `extern "C"`, …
            continue;
        }
        return None;
    }
    None
}

/// Walks raw tokens backwards from `raw_pub` looking for an outer doc
/// comment (`///` or `/**`) or a `#[doc…]` attribute, crossing plain
/// comments and other attributes.
fn has_doc_before(view: &FileView<'_>, raw_pub: usize) -> bool {
    let mut r = raw_pub;
    while r > 0 {
        r -= 1;
        let Some(tok) = view.tokens.get(r) else {
            return false;
        };
        let text = tok.text(view.src);
        match tok.kind {
            TokenKind::LineComment { doc } | TokenKind::BlockComment { doc } => {
                // Inner docs (`//!`, `/*!`) document the enclosing module,
                // not the following item: keep walking.
                if doc && !text.starts_with("//!") && !text.starts_with("/*!") {
                    return true;
                }
            }
            TokenKind::CloseBracket => {
                // Possibly the tail of an attribute: find its `[`, then
                // require a preceding `#` (an optional `!` may intervene).
                let Some(open) = matching_open_bracket(view, r) else {
                    return false;
                };
                let mut before = (0..open)
                    .rev()
                    .find(|&k| view.tokens.get(k).is_some_and(|t| !t.kind.is_comment()));
                if before.is_some_and(|k| view.tokens[k].text(view.src) == "!") {
                    before = before.and_then(|k| {
                        (0..k)
                            .rev()
                            .find(|&m| view.tokens.get(m).is_some_and(|t| !t.kind.is_comment()))
                    });
                }
                let Some(hash) = before else {
                    return false;
                };
                if view.tokens.get(hash).map(|t| t.text(view.src)) != Some("#") {
                    return false;
                }
                let first_inner = (open + 1..r)
                    .filter_map(|k| view.tokens.get(k))
                    .find(|t| !t.kind.is_comment())
                    .map(|t| t.text(view.src));
                if first_inner == Some("doc") {
                    return true; // #[doc = "…"] or #[doc(hidden)]
                }
                r = hash; // keep walking above the attribute
            }
            _ => return false,
        }
    }
    false
}

/// Finds the raw index of the `[` matching the `]` at raw index `close`.
fn matching_open_bracket(view: &FileView<'_>, close: usize) -> Option<usize> {
    let mut depth = 0usize;
    for r in (0..=close).rev() {
        match view.tokens.get(r)?.kind {
            TokenKind::CloseBracket => depth += 1,
            TokenKind::OpenBracket => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(r);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        analyze_source("test.rs", src, AnalyzeOptions::default())
    }

    fn run_docs(src: &str) -> Vec<Diagnostic> {
        analyze_source(
            "test.rs",
            src,
            AnalyzeOptions {
                check_missing_doc: true,
                ..AnalyzeOptions::default()
            },
        )
    }

    fn rules(diags: &[Diagnostic]) -> Vec<RuleId> {
        diags.iter().map(|d| d.rule).collect()
    }

    // ---- seeded violations, one per rule class -------------------------

    #[test]
    fn catches_unwrap() {
        let d = run("fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(rules(&d), [RuleId::NoPanic]);
        assert!(d[0].message.contains(".unwrap()"));
    }

    #[test]
    fn catches_expect_and_panic_macro() {
        let d = run("fn f() { g().expect(\"boom\"); panic!(\"no\"); }");
        assert_eq!(rules(&d), [RuleId::NoPanic, RuleId::NoPanic]);
    }

    #[test]
    fn catches_unreachable_todo_unimplemented() {
        let d = run("fn f() { unreachable!() } fn g() { todo!() } fn h() { unimplemented!() }");
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|d| d.rule == RuleId::NoPanic));
    }

    #[test]
    fn catches_hashmap_and_hashset() {
        let d = run("use std::collections::HashMap;\nfn f() { let s = HashSet::new(); }");
        assert_eq!(rules(&d), [RuleId::DetMap, RuleId::DetMap]);
        assert!(d[0].message.contains("BTreeMap"));
        assert!(d[1].message.contains("BTreeSet"));
    }

    #[test]
    fn catches_instant() {
        let d = run("fn f() { let t = std::time::Instant::now(); }");
        assert_eq!(rules(&d), [RuleId::DetTime]);
    }

    #[test]
    fn catches_float_eq() {
        let d = run("fn f(x: f64) -> bool { x == 1.5 }");
        assert_eq!(rules(&d), [RuleId::FloatEq]);
        let d = run("fn f(x: f64) -> bool { 0.0 != x }");
        assert_eq!(rules(&d), [RuleId::FloatEq]);
    }

    #[test]
    fn int_eq_is_fine() {
        assert!(run("fn f(x: u8) -> bool { x == 3 }").is_empty());
    }

    #[test]
    fn catches_print_macros() {
        let d = run("fn f() { println!(\"x\"); eprintln!(\"y\"); dbg!(1); }");
        assert_eq!(
            rules(&d),
            [RuleId::NoPrint, RuleId::NoPrint, RuleId::NoPrint]
        );
        assert!(d[0].message.contains("println!"));
    }

    #[test]
    fn print_is_allowed_in_binaries_and_tests() {
        let opts = AnalyzeOptions {
            allow_print: true,
            ..AnalyzeOptions::default()
        };
        assert!(analyze_source("main.rs", "fn main() { println!(\"ok\"); }", opts).is_empty());
        let test_code =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"dbg\"); }\n}";
        assert!(run(test_code).is_empty());
    }

    #[test]
    fn writeln_and_print_named_items_are_not_flagged() {
        // `writeln!` to an explicit writer is the sanctioned pattern, and
        // an identifier merely named `print` is not the macro.
        assert!(
            run("fn f(w: &mut impl std::io::Write) { let _ = writeln!(w, \"x\"); }").is_empty()
        );
        assert!(run("fn f(print: u8) -> u8 { print }").is_empty());
    }

    #[test]
    fn catches_spawn() {
        let d = run("fn f() { std::thread::spawn(|| {}); }");
        assert_eq!(rules(&d), [RuleId::DetSpawn]);
    }

    #[test]
    fn catches_missing_doc() {
        let d = run_docs("pub struct Foo;\n/// Documented.\npub struct Bar;");
        assert_eq!(rules(&d), [RuleId::MissingDoc]);
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("struct"));
    }

    // ---- per-path opt-outs ---------------------------------------------

    #[test]
    fn allow_time_and_spawn_flags() {
        let opts = AnalyzeOptions {
            allow_time: true,
            allow_spawn: true,
            ..AnalyzeOptions::default()
        };
        let d = analyze_source(
            "test.rs",
            "fn f() { Instant::now(); std::thread::spawn(|| {}); }",
            opts,
        );
        assert!(d.is_empty());
    }

    // ---- test-code exclusion -------------------------------------------

    #[test]
    fn cfg_test_module_is_excluded() {
        let src = "fn lib() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { Some(1).unwrap(); let m = std::collections::HashMap::new(); }\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_fn_is_excluded_but_surrounding_code_is_not() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib(x: Option<u8>) { x.unwrap(); }";
        let d = run(src);
        assert_eq!(rules(&d), [RuleId::NoPanic]);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn cfg_test_on_semicolon_item() {
        let src =
            "#[cfg(test)]\nuse std::collections::HashMap;\nfn f(x: Option<u8>) { x.expect(\"x\"); }";
        let d = run(src);
        assert_eq!(rules(&d), [RuleId::NoPanic]);
    }

    // ---- things that must NOT be flagged -------------------------------

    #[test]
    fn raw_string_containing_unwrap_is_not_flagged() {
        // `unwrap()` inside a raw string literal is data, not code.
        let src = "fn f() -> &'static str { r#\"x.unwrap() and panic!(\"no\")\"# }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn comment_mentioning_unwrap_is_not_flagged() {
        assert!(run("// never call .unwrap() here\nfn f() {}").is_empty());
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        assert!(run("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }").is_empty());
    }

    #[test]
    fn assert_with_message_is_allowed() {
        // Documented-precondition idiom: `assert!`/`assert_eq!` stay legal.
        assert!(run("fn f(n: usize) { assert!(n > 0, \"n must be positive\"); }").is_empty());
    }

    // ---- suppressions ---------------------------------------------------

    #[test]
    fn suppression_same_line_and_next_line() {
        let same = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // srlr-lint: allow(no-panic, reason = \"test fixture\")";
        assert!(run(same).is_empty());
        let next = "// srlr-lint: allow(no-panic, reason = \"test fixture\")\nfn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(run(next).is_empty());
    }

    #[test]
    fn suppression_only_covers_named_rule() {
        let src =
            "// srlr-lint: allow(det-map, reason = \"scratch\")\nfn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules(&run(src)), [RuleId::NoPanic]);
    }

    #[test]
    fn suppression_does_not_reach_two_lines_down() {
        let src = "// srlr-lint: allow(no-panic, reason = \"near miss\")\n\nfn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules(&run(src)), [RuleId::NoPanic]);
    }

    #[test]
    fn suppression_without_reason_is_rejected() {
        // A suppression missing its reason is itself a violation and does
        // not suppress.
        let src = "// srlr-lint: allow(no-panic)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }";
        let d = run(src);
        assert_eq!(rules(&d), [RuleId::BadSuppression, RuleId::NoPanic]);
        assert!(d[0].message.contains("justification"));
    }

    #[test]
    fn suppression_with_empty_reason_is_rejected() {
        let src = "// srlr-lint: allow(no-panic, reason = \"  \")\nfn f() { panic!(\"x\") }";
        assert_eq!(rules(&run(src)), [RuleId::BadSuppression, RuleId::NoPanic]);
    }

    #[test]
    fn suppression_with_unknown_rule_is_rejected() {
        let src = "// srlr-lint: allow(no-such-rule, reason = \"eh\")\nfn f() {}";
        let d = run(src);
        assert_eq!(rules(&d), [RuleId::BadSuppression]);
        assert!(d[0].message.contains("unknown rule"));
    }

    #[test]
    fn meta_rules_cannot_be_suppressed() {
        let src = "// srlr-lint: allow(bad-suppression, reason = \"nice try\")\nfn f() {}";
        assert_eq!(rules(&run(src)), [RuleId::BadSuppression]);
    }

    // ---- nested comments ------------------------------------------------

    #[test]
    fn nested_block_comment_hides_code() {
        let src = "/* outer /* x.unwrap() */ still comment */ fn f() {}";
        assert!(run(src).is_empty());
    }

    // ---- missing-doc details -------------------------------------------

    #[test]
    fn doc_attribute_counts_as_documentation() {
        assert!(run_docs("#[doc = \"Documented.\"]\npub fn f() {}").is_empty());
    }

    #[test]
    fn derive_between_doc_and_item_is_crossed() {
        let src = "/// Documented.\n#[derive(Debug, Clone)]\npub struct Foo;";
        assert!(run_docs(src).is_empty());
    }

    #[test]
    fn module_inner_doc_does_not_document_first_item() {
        let src = "//! Module docs.\n\npub struct Foo;";
        assert_eq!(rules(&run_docs(src)), [RuleId::MissingDoc]);
    }

    #[test]
    fn pub_use_and_pub_fields_need_no_docs() {
        let src = "/// S.\npub struct S {\n    pub x: f64,\n}\npub use core::fmt;";
        assert!(run_docs(src).is_empty());
    }

    #[test]
    fn pub_crate_items_need_no_docs() {
        let src = "pub(crate) fn helper() {}\npub(super) struct S;\npub(in crate::a) fn g() {}";
        assert!(run_docs(src).is_empty());
    }

    #[test]
    fn pub_const_and_pub_const_fn() {
        let d = run_docs("pub const X: u8 = 1;\npub const fn f() {}");
        assert_eq!(rules(&d), [RuleId::MissingDoc, RuleId::MissingDoc]);
        assert!(d[0].message.contains("const"));
        assert!(d[1].message.contains("fn"));
    }

    #[test]
    fn macro_rules_body_is_skipped_by_missing_doc() {
        let src = "/// Documented macro.\n#[macro_export]\nmacro_rules! m {\n    () => { pub fn hidden() {} };\n}";
        assert!(run_docs(src).is_empty());
    }

    // ---- advisory indexing ----------------------------------------------

    #[test]
    fn indexing_is_off_by_default_and_advisory() {
        assert!(run("fn f(v: &[u8]) -> u8 { v[0] }").is_empty());
        let d = analyze_source(
            "test.rs",
            "fn f(v: &[u8]) -> u8 { v[0] }",
            AnalyzeOptions {
                warn_indexing: true,
                ..AnalyzeOptions::default()
            },
        );
        assert_eq!(rules(&d), [RuleId::Indexing]);
        assert!(d[0].rule.advisory());
    }

    #[test]
    fn array_types_and_literals_are_not_indexing() {
        let src = "fn f() -> [u8; 2] { let a: &[u8] = &[1, 2]; [a[0], a[1]] }";
        let d = analyze_source(
            "test.rs",
            src,
            AnalyzeOptions {
                warn_indexing: true,
                ..AnalyzeOptions::default()
            },
        );
        // Only the two real index expressions are flagged.
        assert_eq!(rules(&d), [RuleId::Indexing, RuleId::Indexing]);
    }
}
