//! A hermetic stand-in for the `criterion` bench harness.
//!
//! This workspace must build with no network and no vendored registry
//! crates, so the real statistics-heavy `criterion` cannot be a
//! dependency. The bench targets only use a narrow slice of its API —
//! `Criterion::default().sample_size(n)`, `bench_function`, `Bencher::
//! iter`, and the `criterion_group!`/`criterion_main!` macros — which
//! this crate reimplements over `std::time::Instant`: each benchmark
//! closure is warmed up once, timed for `sample_size` samples, and
//! reported as min/mean/max wall-clock per iteration.
//!
//! The numbers are honest wall-clock measurements but carry none of
//! criterion's outlier rejection or regression analysis; if the real
//! crate ever becomes available the workspace dependency can be pointed
//! back at it without touching any bench source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver: configuration plus result reporting.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(id, &bencher.samples);
        self
    }
}

/// Hands the benchmark closure to the timing loop.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` for the configured number of samples (after one
    /// untimed warm-up call). The routine's return value is passed
    /// through [`black_box`] so the optimiser cannot delete the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        // srlr-lint: allow(no-print, reason = "the criterion shim IS the bench reporter; its one job is terminal output")
        println!("{id:<44} (no samples)");
        return;
    }
    let (Some(min), Some(max)) = (samples.iter().min(), samples.iter().max()) else {
        return; // unreachable: the empty case returned above
    };
    // srlr-lint: allow(lossy-cast, reason = "Duration division takes u32; sample counts are bench iteration counts, far below 4e9")
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    // srlr-lint: allow(no-print, reason = "the criterion shim IS the bench reporter; its one job is terminal output")
    println!(
        "{id:<44} time: [{} {} {}]",
        human(*min),
        human(mean),
        human(*max)
    );
}

fn human(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a bench group function, mirroring criterion's two macro
/// forms (`criterion_group!(name, targets...)` and the
/// `name = ...; config = ...; targets = ...` long form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_warmup_plus_samples() {
        let mut calls = 0usize;
        Criterion::default()
            .sample_size(5)
            .bench_function("counter", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 6, "one warm-up plus five samples");
    }

    #[test]
    fn sample_size_is_applied() {
        let mut calls = 0usize;
        Criterion::default()
            .sample_size(2)
            .bench_function("small", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);
    }

    #[test]
    #[should_panic(expected = "sample size")]
    fn zero_sample_size_rejected() {
        let _ = Criterion::default().sample_size(0);
    }

    #[test]
    fn human_units() {
        assert_eq!(human(Duration::from_nanos(12)), "12 ns");
        assert_eq!(human(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(human(Duration::from_secs(2)), "2.00 s");
    }

    criterion_group!(sample_group, smoke);

    fn smoke(c: &mut Criterion) {
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macro_group_invokes_targets() {
        sample_group();
    }
}
