//! Property tests for the shared link-protocol transition functions:
//! the `link_busy_until` no-overtaking invariant under 1000 random
//! fault seeds, wormhole integrity of whole networks under the same
//! seeds, and trace-identity of seeded faulty runs — the simulation
//! mirror of the `srlr-model` checker's qualitative claims.

use srlr_noc::protocol::link_arrival;
use srlr_noc::traffic::Pattern;
use srlr_noc::{
    Coord, Direction, FaultConfig, FaultModel, Mesh, Network, NocConfig, Packet, PacketId,
};

/// The sender of a 2x2 mesh's (0,0) -> (1,0) link.
const SRC: Coord = Coord { x: 0, y: 0 };

#[test]
fn retried_heads_are_never_overtaken_across_1000_fault_seeds() {
    // A wormhole's flits leave the sender one cycle apart; retries delay
    // individual flits by different amounts. The scheduling rule must
    // keep per-link arrival order equal to send order for every sampled
    // delay sequence — and the check must not be vacuous: without the
    // watermark the same delay sequences WOULD reorder flits.
    let flits = Packet::unicast(PacketId(1), SRC, Coord::new(1, 1), 8, 0).flits(Coord::new(1, 1));
    let mut naive_overtakes = 0u64;
    for seed in 0..1000u64 {
        let config = FaultConfig::new(0.05).with_seed(seed).with_max_retries(4);
        let mut fm = FaultModel::new(config, Mesh::new(2, 2));
        let mut busy = 0u64;
        let mut last_naive = 0u64;
        for (i, flit) in flits.iter().enumerate() {
            let send = i as u64;
            let tx = fm.transmit(SRC, Direction::East, flit);
            let at = link_arrival(send, 1 + tx.extra_delay, busy);
            assert!(
                at > busy,
                "seed {seed} flit {i}: arrival {at} overtakes watermark {busy}"
            );
            let naive = send + 1 + tx.extra_delay;
            if naive <= last_naive {
                naive_overtakes += 1;
            }
            last_naive = last_naive.max(naive);
            busy = at;
        }
    }
    assert!(
        naive_overtakes > 0,
        "at 5 % BER some delay sequence must reorder flits without the watermark"
    );
}

#[test]
fn wormholes_stay_intact_under_1000_random_fault_seeds() {
    // Whole-network mirror of the checker's qualitative pass: under
    // heavy faults with random seeds, every packet terminates as
    // Delivered or CountedDrop, every flit reaches its ejection port
    // (poisoned ones included), and nothing dangles or mis-routes.
    let pairs = [
        (Coord::new(0, 0), Coord::new(1, 1)),
        (Coord::new(1, 0), Coord::new(0, 1)),
        (Coord::new(0, 1), Coord::new(1, 0)),
        (Coord::new(1, 1), Coord::new(0, 0)),
    ];
    let len_flits = 4usize;
    for seed in 0..1000u64 {
        let fault = FaultConfig::new(0.03).with_seed(seed).with_max_retries(2);
        let config = NocConfig::paper_default()
            .with_size(2, 2)
            .with_faults(fault)
            .with_packet_len(len_flits);
        let mut net = Network::new(config);
        for (k, &(src, dst)) in pairs.iter().enumerate() {
            net.enqueue(Packet::unicast(
                PacketId(k as u64 + 1),
                src,
                dst,
                len_flits,
                0,
            ));
        }
        let done = net
            .run_until_delivered(pairs.len(), 5_000)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            done.len() as u64 + net.packets_dropped(),
            pairs.len() as u64,
            "seed {seed}: every packet must terminate"
        );
        assert_eq!(net.routing_errors(), 0, "seed {seed}");
        assert!(net.drain(2_000), "seed {seed}: residue left in the mesh");
        assert!(net.in_flight_packets().is_empty(), "seed {seed}");
        assert_eq!(
            net.counters().local_hops,
            (pairs.len() * len_flits) as u64,
            "seed {seed}: every flit (poisoned included) must eject"
        );
    }
}

#[test]
fn faulty_seeded_runs_are_trace_identical() {
    // The refactor through `protocol::retry_step` / `link_arrival` must
    // leave seeded runs reproducible down to the flit-event byte stream,
    // not merely down to summary statistics.
    let run = || {
        let config = NocConfig::paper_default()
            .with_size(4, 4)
            .with_seed(11)
            .with_ber(5e-3);
        let mut net = Network::new(config);
        net.enable_flit_telemetry();
        let stats = net.run_warmup_and_measure(Pattern::UniformRandom, 0.05, 200, 800);
        let tel = net.take_flit_telemetry().expect("telemetry enabled");
        let mut events = Vec::new();
        tel.write_events_jsonl(&mut events)
            .expect("in-memory write");
        (
            stats.packets_received,
            stats.packets_dropped,
            stats.latency_sum,
            stats.faults.clone(),
            stats.energy,
            events,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.5.len(), b.5.len(), "event stream length must match");
    assert_eq!(a, b, "seeded faulty runs must be trace-identical");
}
