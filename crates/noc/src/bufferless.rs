//! Bufferless (deflection) routing — the other way to attack NoC power.
//!
//! Sec. I: "buffer power can be reduced by virtual bypassing flow control
//! or bufferless routing algorithms \[11\]–\[13\], \[but\] links and
//! crossbar switches form the unavoidable portion of mesh NoC power."
//! This module provides that alternative as a comparison substrate: a
//! BLESS/SCARAB-style deflection mesh where flits are never buffered —
//! every arriving flit leaves the router the same cycle, deflected to a
//! free port when its preferred port is taken. Buffer energy disappears,
//! but deflections *add* link traversals, so the unavoidable datapath
//! component grows — exactly the paper's point that the datapath, not the
//! buffers, is the floor.

use crate::packet::{Flit, Packet};
use crate::power::EnergyCounters;
use crate::router::NocConfig;
use crate::stats::NetworkStats;
use crate::topology::{Coord, Direction, Mesh};
use crate::traffic::{Pattern, TrafficGenerator};
use std::collections::VecDeque;

/// A flit in flight in the deflection mesh (single-flit packets, as in
/// BLESS-style networks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DeflectFlit {
    flit: Flit,
    /// Router the flit currently occupies.
    at: Coord,
    /// Age, for oldest-first arbitration (livelock freedom).
    age: u64,
}

/// A bufferless deflection-routed mesh.
#[derive(Debug, Clone)]
pub struct DeflectionNetwork {
    mesh: Mesh,
    config: NocConfig,
    in_flight: Vec<DeflectFlit>,
    source_queues: Vec<VecDeque<Packet>>,
    cycle: u64,
    counters: EnergyCounters,
    injected: u64,
    /// Total deflections suffered (diagnostic).
    deflections: u64,
}

impl DeflectionNetwork {
    /// Builds an idle deflection mesh. Packets are single-flit
    /// (deflection routing cannot keep multi-flit worms contiguous).
    pub fn new(config: NocConfig) -> Self {
        config.validate();
        let mesh = config.mesh();
        Self {
            mesh,
            config,
            in_flight: Vec::new(),
            source_queues: vec![VecDeque::new(); mesh.len()],
            cycle: 0,
            counters: EnergyCounters::default(),
            injected: 0,
            deflections: 0,
        }
    }

    /// Accumulated energy counters (note: `buffer_writes`/`reads` stay 0 —
    /// that is the whole point).
    pub fn counters(&self) -> &EnergyCounters {
        &self.counters
    }

    /// Total deflections suffered so far.
    pub fn deflections(&self) -> u64 {
        self.deflections
    }

    /// Flits currently in flight.
    pub fn occupancy(&self) -> usize {
        self.in_flight.len() + self.source_queues.iter().map(VecDeque::len).sum::<usize>()
    }

    /// Enqueues a packet (converted to single-flit).
    pub fn enqueue(&mut self, packet: Packet) {
        let node = self.mesh.index_of(packet.src);
        self.injected += 1;
        self.source_queues[node].push_back(packet);
    }

    /// One cycle: route every in-flight flit (oldest first), deflecting
    /// losers; inject where a port remains free. Returns completed
    /// `(destination, latency)` pairs.
    pub fn step(&mut self) -> Vec<(Coord, u64)> {
        let n = self.mesh.len();
        // Output-port occupancy per router this cycle.
        let mut taken = vec![[false; 4]; n];
        let mut completed = Vec::new();
        let mut next_flight: Vec<DeflectFlit> = Vec::with_capacity(self.in_flight.len());

        // Oldest-first service order (deterministic livelock freedom).
        self.in_flight
            .sort_by(|a, b| b.age.cmp(&a.age).then(a.flit.packet.cmp(&b.flit.packet)));
        let in_flight = std::mem::take(&mut self.in_flight);

        for mut f in in_flight {
            if f.at == f.flit.dst {
                // Ejection is contention-free (one flit per cycle per
                // node would be the strict model; relaxed here since
                // single-flit packets rarely collide on ejection).
                self.counters.local_hops += 1;
                completed.push((f.at, self.cycle - f.flit.inject_cycle + 1));
                continue;
            }
            let node = self.mesh.index_of(f.at);
            let preferred = self.mesh.xy_route(f.at, f.flit.dst);
            // Preference order: productive port first, then any free port.
            let mut choice = None;
            let candidates = [
                preferred,
                Direction::North,
                Direction::South,
                Direction::East,
                Direction::West,
            ];
            for dir in candidates {
                if dir == Direction::Local {
                    continue;
                }
                let Some(next) = self.mesh.neighbor(f.at, dir) else {
                    continue;
                };
                if !taken[node][dir.index()] {
                    choice = Some((dir, next));
                    break;
                }
            }
            match choice {
                Some((dir, next)) => {
                    if dir != preferred {
                        self.deflections += 1;
                    }
                    taken[node][dir.index()] = true;
                    self.counters.link_hops += 1;
                    f.at = next;
                    f.age += 1;
                    next_flight.push(f);
                }
                None => {
                    // Low-radix corner routers can host more flits than
                    // ports (arrivals + an injection from the previous
                    // cycle); the youngest loser holds in place for a
                    // cycle, SCARAB-style.
                    self.deflections += 1;
                    f.age += 1;
                    next_flight.push(f);
                }
            }
        }

        // Injection: a node may inject when it has a free output port.
        // The index addresses queues, coords and the taken-port table.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let here = self.mesh.coord_of(i);
            let free = Direction::ALL[..4]
                .iter()
                .any(|d| self.mesh.neighbor(here, *d).is_some() && !taken[i][d.index()]);
            if free {
                let Some(pkt) = self.source_queues[i].pop_front() else {
                    continue;
                };
                let dst = pkt.dst();
                // Allocator work for the injection decision.
                self.counters.allocations += 1;
                next_flight.push(DeflectFlit {
                    flit: pkt.flits(dst)[0],
                    at: here,
                    age: 0,
                });
            }
        }

        // Routing decisions count as allocator activity.
        self.counters.allocations += next_flight.len() as u64;
        self.in_flight = next_flight;
        self.cycle += 1;
        self.counters.router_cycles += n as u64;
        completed
    }

    /// Warmup + measurement, as in [`crate::network::Network`]. Packets
    /// are forced single-flit.
    ///
    /// # Panics
    ///
    /// Panics if `measure` is zero.
    pub fn run_warmup_and_measure(
        &mut self,
        pattern: Pattern,
        injection_rate: f64,
        warmup: u64,
        measure: u64,
    ) -> NetworkStats {
        assert!(measure > 0, "measurement window must be non-empty");
        let mut gen =
            TrafficGenerator::new(self.mesh, pattern, injection_rate, 1, self.config.seed);
        for _ in 0..warmup {
            self.inject_from(&mut gen);
            let _ = self.step();
        }
        let before = self.counters;
        let injected_before = self.injected;
        let mut stats = NetworkStats::new(measure, self.mesh.len());
        for _ in 0..measure {
            self.inject_from(&mut gen);
            for (_, latency) in self.step() {
                stats.record_packet(latency);
            }
        }
        stats.flits_received = self.counters.local_hops - before.local_hops;
        stats.packets_injected = self.injected - injected_before;
        stats.energy = self.counters.delta(&before);
        stats
    }

    fn inject_from(&mut self, gen: &mut TrafficGenerator) {
        for i in 0..self.mesh.len() {
            if let Some(pkt) = gen.maybe_inject(self.mesh.coord_of(i), self.cycle) {
                self.enqueue(pkt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;

    fn config() -> NocConfig {
        NocConfig::paper_default()
            .with_size(4, 4)
            .with_packet_len(1)
    }

    #[test]
    fn lone_flit_takes_the_shortest_path() {
        let mut net = DeflectionNetwork::new(config());
        net.enqueue(Packet::unicast(
            PacketId(1),
            Coord::new(0, 0),
            Coord::new(3, 2),
            1,
            0,
        ));
        let mut done = Vec::new();
        for _ in 0..30 {
            done.extend(net.step());
        }
        assert_eq!(done.len(), 1);
        // 5 hops + injection/ejection bookkeeping, no deflections.
        assert!(done[0].1 <= 8, "latency {}", done[0].1);
        assert_eq!(net.deflections(), 0);
        assert_eq!(net.counters().link_hops, 5);
    }

    #[test]
    fn no_buffer_events_ever() {
        let mut net = DeflectionNetwork::new(config());
        let _ = net.run_warmup_and_measure(Pattern::UniformRandom, 0.10, 200, 800);
        assert_eq!(net.counters().buffer_writes, 0);
        assert_eq!(net.counters().buffer_reads, 0);
    }

    #[test]
    fn contention_causes_deflections() {
        let mut net = DeflectionNetwork::new(config());
        let _ = net.run_warmup_and_measure(Pattern::UniformRandom, 0.25, 200, 800);
        assert!(net.deflections() > 0, "high load must deflect");
    }

    #[test]
    fn all_packets_eventually_arrive() {
        let mut net = DeflectionNetwork::new(config());
        for k in 0..20 {
            net.enqueue(Packet::unicast(
                PacketId(k),
                Coord::new((k % 4) as u16, (k % 3) as u16),
                Coord::new(3 - (k % 4) as u16, 3 - (k % 3) as u16),
                1,
                0,
            ));
        }
        let mut done = 0;
        for _ in 0..500 {
            done += net.step().len();
        }
        assert_eq!(done, 20, "deflection must not lose or livelock flits");
        assert_eq!(net.occupancy(), 0);
    }

    #[test]
    fn deflections_inflate_link_traversals() {
        // The Sec. I argument quantified: bufferless saves buffer energy
        // but pays extra datapath hops under load.
        let mut light = DeflectionNetwork::new(config());
        let s_light = light.run_warmup_and_measure(Pattern::UniformRandom, 0.05, 300, 1000);
        let mut heavy = DeflectionNetwork::new(config());
        let s_heavy = heavy.run_warmup_and_measure(Pattern::UniformRandom, 0.30, 300, 1000);
        let hops_per_flit_light =
            s_light.energy.link_hops as f64 / s_light.flits_received.max(1) as f64;
        let hops_per_flit_heavy =
            s_heavy.energy.link_hops as f64 / s_heavy.flits_received.max(1) as f64;
        assert!(
            hops_per_flit_heavy > hops_per_flit_light,
            "deflections should add hops: {hops_per_flit_light} -> {hops_per_flit_heavy}"
        );
    }

    #[test]
    fn latency_is_competitive_at_low_load() {
        let mut net = DeflectionNetwork::new(config());
        let stats = net.run_warmup_and_measure(Pattern::UniformRandom, 0.05, 300, 1200);
        assert!(stats.packets_received > 50);
        assert!(stats.avg_latency_cycles() < 15.0, "{stats}");
    }
}
