//! Latency and throughput statistics.

use crate::power::EnergyCounters;

/// Aggregate network statistics over a measurement window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetworkStats {
    /// Packets injected during the window.
    pub packets_injected: u64,
    /// Packets fully received (tail ejected) during the window.
    pub packets_received: u64,
    /// Flits ejected during the window.
    pub flits_received: u64,
    /// Sum of packet latencies (inject → tail eject), cycles.
    pub latency_sum: u64,
    /// Worst packet latency seen.
    pub latency_max: u64,
    /// Latency histogram (1-cycle bins, saturating at the last bin).
    pub latency_histogram: Vec<u64>,
    /// Measurement window length in cycles.
    pub cycles: u64,
    /// Number of nodes.
    pub nodes: usize,
    /// Energy event counters over the window.
    pub energy: EnergyCounters,
}

impl NetworkStats {
    /// Creates an empty record for a window.
    pub fn new(cycles: u64, nodes: usize) -> Self {
        Self {
            cycles,
            nodes,
            latency_histogram: vec![0; 512],
            ..Self::default()
        }
    }

    /// Records one completed packet.
    pub fn record_packet(&mut self, latency_cycles: u64) {
        self.packets_received += 1;
        self.latency_sum += latency_cycles;
        self.latency_max = self.latency_max.max(latency_cycles);
        let bin = (latency_cycles as usize).min(self.latency_histogram.len() - 1);
        self.latency_histogram[bin] += 1;
    }

    /// Average packet latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if no packets were received.
    pub fn avg_latency_cycles(&self) -> f64 {
        assert!(self.packets_received > 0, "no packets received");
        self.latency_sum as f64 / self.packets_received as f64
    }

    /// The p-th latency percentile (0 < p <= 100) from the histogram.
    ///
    /// # Panics
    ///
    /// Panics if no packets were received or `p` is out of range.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        assert!(self.packets_received > 0, "no packets received");
        assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
        let target = (self.packets_received as f64 * p / 100.0).ceil() as u64;
        let mut seen = 0;
        for (bin, &count) in self.latency_histogram.iter().enumerate() {
            seen += count;
            if seen >= target {
                return bin as u64;
            }
        }
        self.latency_max
    }

    /// Accepted throughput in flits per node per cycle.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn throughput_flits_per_node_cycle(&self) -> f64 {
        assert!(self.cycles > 0 && self.nodes > 0, "empty window");
        self.flits_received as f64 / (self.cycles as f64 * self.nodes as f64)
    }

    /// Offered load that was actually accepted, as packets per node per
    /// cycle.
    pub fn accepted_packet_rate(&self) -> f64 {
        self.packets_received as f64 / (self.cycles as f64 * self.nodes as f64)
    }
}

impl core::fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.packets_received == 0 {
            return write!(f, "no packets received over {} cycles", self.cycles);
        }
        write!(
            f,
            "{} pkts, avg latency {:.1} cyc (p99 {}, max {}), {:.4} flits/node/cyc",
            self.packets_received,
            self.avg_latency_cycles(),
            self.latency_percentile(99.0),
            self.latency_max,
            self.throughput_flits_per_node_cycle(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(latencies: &[u64]) -> NetworkStats {
        let mut s = NetworkStats::new(1000, 16);
        for &l in latencies {
            s.record_packet(l);
        }
        s.flits_received = latencies.len() as u64 * 5;
        s
    }

    #[test]
    fn average_and_max() {
        let s = stats_with(&[10, 20, 30]);
        assert!((s.avg_latency_cycles() - 20.0).abs() < 1e-12);
        assert_eq!(s.latency_max, 30);
    }

    #[test]
    fn percentiles_from_histogram() {
        let lat: Vec<u64> = (1..=100).collect();
        let s = stats_with(&lat);
        assert_eq!(s.latency_percentile(50.0), 50);
        assert_eq!(s.latency_percentile(99.0), 99);
        assert_eq!(s.latency_percentile(100.0), 100);
    }

    #[test]
    fn histogram_saturates_at_last_bin() {
        let s = stats_with(&[10_000]);
        assert_eq!(*s.latency_histogram.last().unwrap(), 1);
        assert_eq!(s.latency_percentile(100.0), 511);
    }

    #[test]
    fn throughput_accounting() {
        let s = stats_with(&[10; 32]);
        // 32 packets x 5 flits over 1000 cycles x 16 nodes.
        let expect = 160.0 / 16_000.0;
        assert!((s.throughput_flits_per_node_cycle() - expect).abs() < 1e-12);
        assert!((s.accepted_packet_rate() - 32.0 / 16_000.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "no packets received")]
    fn empty_average_panics() {
        let _ = NetworkStats::new(10, 4).avg_latency_cycles();
    }

    #[test]
    fn display_summarises() {
        let s = stats_with(&[10, 20]);
        let text = s.to_string();
        assert!(text.contains("avg latency"));
        assert!(NetworkStats::new(10, 4).to_string().contains("no packets"));
    }
}
