//! Latency and throughput statistics.

use crate::fault::FaultTally;
use crate::power::EnergyCounters;

/// A fixed-bin counting histogram with an explicit overflow bucket.
///
/// Bin `i` counts samples of value `i` (1-cycle bins). Samples beyond the
/// last bin are **not** folded into it — they land in a separate overflow
/// counter so percentile queries can report honestly instead of silently
/// clamping long-tail samples to the top bin.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// An empty histogram with `bins` one-unit bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            bins: vec![0; bins],
            overflow: 0,
            count: 0,
        }
    }

    /// Number of bins (excluding the overflow bucket).
    pub fn bins(&self) -> usize {
        self.bins.len()
    }

    /// The per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Samples recorded beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded (including overflowed ones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        match self.bins.get_mut(value as usize) {
            Some(bin) => *bin += 1,
            None => self.overflow += 1,
        }
    }

    /// The p-th percentile (0 < p <= 100), or `None` when the histogram
    /// is empty or the requested percentile lands in the overflow bucket
    /// (i.e. the true value is beyond the binned range and cannot be
    /// reported exactly).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
        if self.count == 0 {
            return None;
        }
        let target = (self.count as f64 * p / 100.0).ceil() as u64;
        let mut seen = 0;
        for (bin, &count) in self.bins.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(bin as u64);
            }
        }
        // The percentile falls among the overflowed samples.
        None
    }

    /// A serializable summary of this histogram (counts, overflow, and
    /// the p50/p95/p99 percentiles), ready for the JSON run report.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            overflow: self.overflow,
            bins: self.bins.len() as u64,
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
            max_binned: self.bins.iter().rposition(|&c| c > 0).map(|bin| bin as u64),
        }
    }

    /// Bin-wise difference `self - earlier` (for measurement windows).
    ///
    /// # Panics
    ///
    /// Panics if the bin counts differ or `earlier` is not a prefix of
    /// `self` (a count would go negative).
    #[must_use]
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        assert_eq!(self.bins.len(), earlier.bins.len(), "bin count mismatch");
        Histogram {
            bins: self
                .bins
                .iter()
                .zip(&earlier.bins)
                .map(|(&now, &then)| {
                    assert!(now >= then, "histogram went backwards");
                    now - then
                })
                .collect(),
            overflow: self.overflow - earlier.overflow,
            count: self.count - earlier.count,
        }
    }
}

/// A serializable summary of a [`Histogram`], following the overflow
/// honesty of the source: percentiles that fall among overflowed
/// samples are `None`, never clamped to the top bin, and
/// [`HistogramSummary::max_binned`] reports only the largest *binned*
/// value (the true maximum may live in overflow — check
/// [`HistogramSummary::overflow`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Total samples recorded (including overflowed ones).
    pub count: u64,
    /// Samples beyond the binned range.
    pub overflow: u64,
    /// Number of bins in the source histogram.
    pub bins: u64,
    /// Median, when it falls inside the binned range.
    pub p50: Option<u64>,
    /// 95th percentile, when it falls inside the binned range.
    pub p95: Option<u64>,
    /// 99th percentile, when it falls inside the binned range.
    pub p99: Option<u64>,
    /// Highest non-empty bin, `None` for an empty histogram.
    pub max_binned: Option<u64>,
}

impl HistogramSummary {
    /// The summary as `"<prefix>.<stat>"` telemetry metric pairs, for a
    /// [`srlr_telemetry::RunReport`] section or collector. Unreportable
    /// percentiles are emitted as `null` (JSON has no `Option`), with
    /// the overflow count alongside so consumers can tell "empty" from
    /// "beyond range".
    pub fn metric_fields(&self, prefix: &str) -> Vec<(String, srlr_telemetry::Value)> {
        use srlr_telemetry::Value;
        let opt = |v: Option<u64>| match v {
            // `null` in the JSON sinks: f64::NAN serializes as null.
            None => Value::F64(f64::NAN),
            Some(v) => Value::U64(v),
        };
        vec![
            (format!("{prefix}.count"), Value::U64(self.count)),
            (format!("{prefix}.overflow"), Value::U64(self.overflow)),
            (format!("{prefix}.bins"), Value::U64(self.bins)),
            (format!("{prefix}.p50"), opt(self.p50)),
            (format!("{prefix}.p95"), opt(self.p95)),
            (format!("{prefix}.p99"), opt(self.p99)),
            (format!("{prefix}.max_binned"), opt(self.max_binned)),
        ]
    }
}

/// Aggregate network statistics over a measurement window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetworkStats {
    /// Packets injected during the window.
    pub packets_injected: u64,
    /// Packets fully received (tail ejected) during the window.
    pub packets_received: u64,
    /// Packets discarded at the ejection port because a flit exhausted
    /// its link-level retries (zero without fault injection).
    pub packets_dropped: u64,
    /// Flits ejected during the window.
    pub flits_received: u64,
    /// Sum of packet latencies (inject → tail eject), cycles.
    pub latency_sum: u64,
    /// Worst packet latency seen.
    pub latency_max: u64,
    /// Latency histogram (1-cycle bins, with explicit overflow).
    pub latency_histogram: Histogram,
    /// Measurement window length in cycles.
    pub cycles: u64,
    /// Number of nodes.
    pub nodes: usize,
    /// Energy event counters over the window.
    pub energy: EnergyCounters,
    /// Fault-injection events over the window (all zero when the fault
    /// model is disabled).
    pub faults: FaultTally,
}

impl NetworkStats {
    /// Default latency histogram bin count.
    pub const DEFAULT_LATENCY_BINS: usize = 512;

    /// Creates an empty record for a window.
    pub fn new(cycles: u64, nodes: usize) -> Self {
        Self::with_latency_bins(cycles, nodes, Self::DEFAULT_LATENCY_BINS)
    }

    /// Creates an empty record with a custom latency histogram bin count
    /// (long-latency studies want more than the default 512 bins).
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn with_latency_bins(cycles: u64, nodes: usize, bins: usize) -> Self {
        Self {
            cycles,
            nodes,
            latency_histogram: Histogram::new(bins),
            ..Self::default()
        }
    }

    /// Records one completed packet.
    pub fn record_packet(&mut self, latency_cycles: u64) {
        self.packets_received += 1;
        self.latency_sum += latency_cycles;
        self.latency_max = self.latency_max.max(latency_cycles);
        self.latency_histogram.record(latency_cycles);
    }

    /// Average packet latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if no packets were received.
    pub fn avg_latency_cycles(&self) -> f64 {
        assert!(self.packets_received > 0, "no packets received");
        self.latency_sum as f64 / self.packets_received as f64
    }

    /// The p-th latency percentile (0 < p <= 100) from the histogram, or
    /// `None` when no packets were received or the percentile falls among
    /// samples beyond the histogram range (use
    /// [`Self::with_latency_bins`] to widen it).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn latency_percentile(&self, p: f64) -> Option<u64> {
        self.latency_histogram.percentile(p)
    }

    /// Fraction of terminated packets (received + dropped) that were
    /// actually delivered; `1.0` for an empty window.
    pub fn delivered_fraction(&self) -> f64 {
        let terminated = self.packets_received + self.packets_dropped;
        if terminated == 0 {
            1.0
        } else {
            self.packets_received as f64 / terminated as f64
        }
    }

    /// Wilson-score 95 % confidence interval `(lower, upper)` on the
    /// delivered fraction, treating each terminated packet as one
    /// Bernoulli trial, or `None` for an empty window. This is the
    /// interval the `srlr-model` exact delivery probability is
    /// cross-validated against, exposed here (and in the `ber_sweep`
    /// telemetry) so downstream consumers read the same numbers as the
    /// integration test.
    pub fn delivered_interval_95(&self) -> Option<(f64, f64)> {
        let terminated = self.packets_received + self.packets_dropped;
        if terminated == 0 {
            return None;
        }
        // The Wilson machinery is phrased in failures; a drop is the
        // failure event, so the delivered interval is its complement.
        let drops = srlr_tech::montecarlo::ErrorProbability {
            failures: self.packets_dropped as usize,
            trials: terminated as usize,
        };
        let (drop_lo, drop_hi) = drops.interval_95();
        Some((1.0 - drop_hi, 1.0 - drop_lo))
    }

    /// Accepted throughput in flits per node per cycle.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn throughput_flits_per_node_cycle(&self) -> f64 {
        assert!(self.cycles > 0 && self.nodes > 0, "empty window");
        self.flits_received as f64 / (self.cycles as f64 * self.nodes as f64)
    }

    /// Offered load that was actually accepted, as packets per node per
    /// cycle.
    pub fn accepted_packet_rate(&self) -> f64 {
        self.packets_received as f64 / (self.cycles as f64 * self.nodes as f64)
    }
}

impl core::fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.packets_received == 0 {
            return write!(f, "no packets received over {} cycles", self.cycles);
        }
        let p99 = match self.latency_percentile(99.0) {
            Some(v) => v.to_string(),
            None => format!(">{}", self.latency_histogram.bins()),
        };
        write!(
            f,
            "{} pkts, avg latency {:.1} cyc (p99 {}, max {}), {:.4} flits/node/cyc",
            self.packets_received,
            self.avg_latency_cycles(),
            p99,
            self.latency_max,
            self.throughput_flits_per_node_cycle(),
        )?;
        if self.packets_dropped > 0 {
            write!(
                f,
                ", {} dropped ({:.2} % delivered)",
                self.packets_dropped,
                self.delivered_fraction() * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(latencies: &[u64]) -> NetworkStats {
        let mut s = NetworkStats::new(1000, 16);
        for &l in latencies {
            s.record_packet(l);
        }
        s.flits_received = latencies.len() as u64 * 5;
        s
    }

    #[test]
    fn average_and_max() {
        let s = stats_with(&[10, 20, 30]);
        assert!((s.avg_latency_cycles() - 20.0).abs() < 1e-12);
        assert_eq!(s.latency_max, 30);
    }

    #[test]
    fn percentiles_from_histogram() {
        let lat: Vec<u64> = (1..=100).collect();
        let s = stats_with(&lat);
        assert_eq!(s.latency_percentile(50.0), Some(50));
        assert_eq!(s.latency_percentile(99.0), Some(99));
        assert_eq!(s.latency_percentile(100.0), Some(100));
    }

    #[test]
    fn overflow_is_counted_not_clamped() {
        let s = stats_with(&[10_000]);
        assert_eq!(s.latency_histogram.overflow(), 1);
        assert_eq!(
            s.latency_histogram.counts().iter().sum::<u64>(),
            0,
            "overflow samples must not corrupt the top bin"
        );
        // The only sample lies beyond the bins: every percentile is
        // unreportable, not silently 511.
        assert_eq!(s.latency_percentile(50.0), None);
        assert_eq!(s.latency_percentile(100.0), None);
        assert_eq!(s.latency_max, 10_000);
    }

    #[test]
    fn percentile_below_overflow_still_reports() {
        let mut s = stats_with(&[5; 99]);
        s.record_packet(100_000);
        assert_eq!(s.latency_percentile(50.0), Some(5));
        assert_eq!(s.latency_percentile(99.0), Some(5));
        assert_eq!(s.latency_percentile(100.0), None, "p100 is overflowed");
    }

    #[test]
    fn configurable_bins_extend_the_range() {
        let mut s = NetworkStats::with_latency_bins(1000, 16, 20_000);
        s.record_packet(10_000);
        assert_eq!(s.latency_percentile(100.0), Some(10_000));
        assert_eq!(s.latency_histogram.overflow(), 0);
    }

    #[test]
    fn histogram_diff_subtracts_binwise() {
        let mut h = Histogram::new(8);
        h.record(1);
        h.record(100);
        let before = h.clone();
        h.record(1);
        h.record(3);
        h.record(200);
        let d = h.diff(&before);
        assert_eq!(d.counts()[1], 1);
        assert_eq!(d.counts()[3], 1);
        assert_eq!(d.overflow(), 1);
        assert_eq!(d.count(), 3);
    }

    #[test]
    fn empty_histogram_has_no_percentile() {
        assert_eq!(Histogram::new(4).percentile(50.0), None);
    }

    #[test]
    fn summary_of_empty_histogram() {
        let s = Histogram::new(4).summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.overflow, 0);
        assert_eq!(s.bins, 4);
        assert_eq!(
            (s.p50, s.p95, s.p99, s.max_binned),
            (None, None, None, None)
        );
    }

    #[test]
    fn summary_reports_percentiles_and_max() {
        let mut h = Histogram::new(256);
        for v in 1..=100 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.overflow, 0);
        assert_eq!(s.p50, Some(50));
        assert_eq!(s.p95, Some(95));
        assert_eq!(s.p99, Some(99));
        assert_eq!(s.max_binned, Some(100));
    }

    #[test]
    fn summary_overflow_only_is_all_unreportable() {
        let mut h = Histogram::new(8);
        h.record(1_000);
        h.record(2_000);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.overflow, 2);
        assert_eq!((s.p50, s.p99), (None, None));
        assert_eq!(s.max_binned, None, "nothing landed in a bin");
    }

    #[test]
    fn summary_mixed_overflow_keeps_low_percentiles() {
        let mut h = Histogram::new(16);
        for _ in 0..99 {
            h.record(5);
        }
        h.record(10_000);
        let s = h.summary();
        assert_eq!(s.p50, Some(5));
        assert_eq!(s.p99, Some(5));
        assert_eq!(s.overflow, 1);
        assert_eq!(s.max_binned, Some(5), "overflow must not fake a max");
    }

    #[test]
    fn summary_metric_fields_serialize_none_as_null() {
        use srlr_telemetry::Value;
        let mut h = Histogram::new(4);
        h.record(100);
        let fields = h.summary().metric_fields("latency");
        let get = |k: &str| {
            fields
                .iter()
                .find(|(name, _)| name == &format!("latency.{k}"))
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing field {k}"))
        };
        assert_eq!(get("count"), Value::U64(1));
        assert_eq!(get("overflow"), Value::U64(1));
        let mut out = String::new();
        get("p50").write_json(&mut out);
        assert_eq!(out, "null", "unreportable percentile must be null");
    }

    #[test]
    fn throughput_accounting() {
        let s = stats_with(&[10; 32]);
        // 32 packets x 5 flits over 1000 cycles x 16 nodes.
        let expect = 160.0 / 16_000.0;
        assert!((s.throughput_flits_per_node_cycle() - expect).abs() < 1e-12);
        assert!((s.accepted_packet_rate() - 32.0 / 16_000.0).abs() < 1e-15);
    }

    #[test]
    fn delivered_fraction_accounts_for_drops() {
        let mut s = stats_with(&[10; 9]);
        assert!((s.delivered_fraction() - 1.0).abs() < 1e-12);
        s.packets_dropped = 1;
        assert!((s.delivered_fraction() - 0.9).abs() < 1e-12);
        assert_eq!(NetworkStats::new(10, 4).delivered_fraction(), 1.0);
    }

    #[test]
    fn delivered_interval_brackets_the_fraction() {
        let mut s = stats_with(&[10; 90]);
        s.packets_dropped = 10;
        let (lo, hi) = s.delivered_interval_95().expect("terminated packets");
        let point = s.delivered_fraction();
        assert!(lo < point && point < hi, "{lo} < {point} < {hi}");
        assert!(lo > 0.8 && hi < 1.0, "100 trials at 90 %: ({lo}, {hi})");

        // Zero drops: the interval hangs off 1.0 but never exceeds it.
        let clean = stats_with(&[10; 50]);
        let (lo, hi) = clean.delivered_interval_95().expect("terminated packets");
        assert_eq!(hi, 1.0);
        assert!(lo < 1.0 && lo > 0.9);

        // An empty window has no trials to build an interval from.
        assert_eq!(NetworkStats::new(10, 4).delivered_interval_95(), None);
    }

    #[test]
    #[should_panic(expected = "no packets received")]
    fn empty_average_panics() {
        let _ = NetworkStats::new(10, 4).avg_latency_cycles();
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0);
    }

    #[test]
    fn display_summarises() {
        let s = stats_with(&[10, 20]);
        let text = s.to_string();
        assert!(text.contains("avg latency"));
        assert!(NetworkStats::new(10, 4).to_string().contains("no packets"));
        let mut dropped = stats_with(&[10, 20]);
        dropped.packets_dropped = 2;
        assert!(dropped.to_string().contains("dropped"));
    }
}
