//! Activity-based NoC power accounting.
//!
//! Two calibration anchors from the paper:
//!
//! * Sec. IV: a synthesized 64-bit 5-port router in the same process —
//!   input buffers 38.8 mW, control logic 5.2 mW, SRLR low-swing datapath
//!   12.9 mW (plus the shared 587 uW bias generator);
//! * Sec. I: the published mesh-NoC power splits of RAW, TRIPS and
//!   TeraFLOPS, which motivate attacking the physical datapath.
//!
//! The model charges energy per micro-architectural event (buffer write,
//! buffer read, allocator grant, flit hop over the datapath) so the same
//! constants produce power at *any* load, with the calibration point
//! reproducing the paper's numbers.

use srlr_link::baselines::FullSwingRepeatedLink;
use srlr_link::SrlrLink;
use srlr_tech::Technology;
use srlr_units::{Energy, EnergyPerBitLength, Frequency, Length, Power, TimeInterval};

/// Which physical datapath implementation the routers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatapathKind {
    /// The paper's SRLR low-swing crossbar + links.
    SrlrLowSwing,
    /// Conventional full-swing repeated wires.
    FullSwingRepeated,
}

impl core::fmt::Display for DatapathKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::SrlrLowSwing => f.write_str("SRLR low-swing"),
            Self::FullSwingRepeated => f.write_str("full-swing repeated"),
        }
    }
}

/// Event counters accumulated by the network simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyCounters {
    /// Flits written into input buffers.
    pub buffer_writes: u64,
    /// Flits read out of input buffers.
    pub buffer_reads: u64,
    /// Flit traversals of the crossbar + inter-router link datapath.
    pub link_hops: u64,
    /// Flit ejections through the local port (crossbar only, no link).
    pub local_hops: u64,
    /// Allocator grants (RC + VA + SA).
    pub allocations: u64,
    /// Router-cycles simulated (routers x cycles).
    pub router_cycles: u64,
    /// Extra link traversals spent retransmitting corrupted flits (zero
    /// without fault injection). Each costs a full hop.
    pub retry_hops: u64,
    /// Single-bit NACK pulses sent back over the reverse wire (zero
    /// without fault injection).
    pub nacks: u64,
}

impl EnergyCounters {
    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &EnergyCounters) {
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.link_hops += other.link_hops;
        self.local_hops += other.local_hops;
        self.allocations += other.allocations;
        self.router_cycles += other.router_cycles;
        self.retry_hops += other.retry_hops;
        self.nacks += other.nacks;
    }

    /// The counter delta `self - earlier` (for measurement windows).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter went backwards.
    #[must_use]
    pub fn delta(&self, earlier: &EnergyCounters) -> EnergyCounters {
        EnergyCounters {
            buffer_writes: self.buffer_writes - earlier.buffer_writes,
            buffer_reads: self.buffer_reads - earlier.buffer_reads,
            link_hops: self.link_hops - earlier.link_hops,
            local_hops: self.local_hops - earlier.local_hops,
            allocations: self.allocations - earlier.allocations,
            router_cycles: self.router_cycles - earlier.router_cycles,
            retry_hops: self.retry_hops - earlier.retry_hops,
            nacks: self.nacks - earlier.nacks,
        }
    }
}

/// The per-event energy model.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Flit width in bits.
    pub flit_bits: usize,
    /// Buffer write energy per bit.
    pub buffer_write_per_bit: Energy,
    /// Buffer read energy per bit.
    pub buffer_read_per_bit: Energy,
    /// Static (clock tree + leakage) control power per router.
    pub control_static_per_router: Power,
    /// Energy per allocator grant (RC, VA or SA).
    pub control_per_allocation: Energy,
    /// Datapath length a flit traverses per hop (crossbar path + link).
    pub hop_length: Length,
    /// Datapath energy per bit per unit length.
    pub datapath_energy: EnergyPerBitLength,
    /// Shared bias-generator power per router (SRLR only).
    pub bias_per_router: Power,
    /// Which datapath the energy was derived for.
    pub datapath: DatapathKind,
}

impl PowerModel {
    /// Calibration activity: flits a saturated router moves per cycle.
    /// The paper's component powers are reproduced at this point.
    pub const CALIBRATION_FLITS_PER_CYCLE: f64 = 2.0;

    /// Builds the model for a datapath kind; SRLR numbers are *measured*
    /// from the simulated link, full-swing numbers from the behavioural
    /// baseline.
    pub fn for_datapath(tech: &Technology, flit_bits: usize, datapath: DatapathKind) -> Self {
        let datapath_energy = match datapath {
            DatapathKind::SrlrLowSwing => SrlrLink::paper_test_chip(tech).metrics().energy,
            DatapathKind::FullSwingRepeated => {
                FullSwingRepeatedLink::paper_reference(tech.vdd).energy_per_bit_length()
            }
        };
        let bias = match datapath {
            DatapathKind::SrlrLowSwing => Power::from_microwatts(587.0),
            DatapathKind::FullSwingRepeated => Power::zero(),
        };
        Self {
            flit_bits,
            // 38.8 mW at 2 flits/cycle x 64 bits x 1 GHz, split 60/40
            // between write and read: 303 fJ/bit total.
            buffer_write_per_bit: Energy::from_femtojoules(182.0),
            buffer_read_per_bit: Energy::from_femtojoules(121.0),
            // 5.2 mW: half static (clocking), half allocator activity.
            control_static_per_router: Power::from_milliwatts(2.6),
            control_per_allocation: Energy::from_picojoules(0.93),
            // Crossbar crosspoint path (~1.5 mm) plus the 1 mm link.
            hop_length: Length::from_millimeters(2.5),
            datapath_energy,
            bias_per_router: bias,
            datapath,
        }
    }

    /// The paper's model: 64-bit SRLR datapath.
    pub fn paper_default(tech: &Technology) -> Self {
        Self::for_datapath(tech, 64, DatapathKind::SrlrLowSwing)
    }

    /// Datapath energy of one flit hop (crossbar + link).
    pub fn hop_energy(&self) -> Energy {
        let per_bit = self.datapath_energy * self.hop_length;
        per_bit.total(self.flit_bits as f64)
    }

    /// Datapath energy of a local ejection (crossbar only, no link wire;
    /// modelled as 40 % of a full hop).
    pub fn local_hop_energy(&self) -> Energy {
        self.hop_energy() * 0.4
    }

    /// Energy of one NACK pulse: a single bit back over the link wire
    /// (the reverse wire reuses the SRLR repeater chain).
    pub fn nack_energy(&self) -> Energy {
        self.hop_energy() * (1.0 / self.flit_bits as f64)
    }

    /// Total energy of a counter set (dynamic only). Retransmissions pay
    /// a full extra hop per retry plus a one-bit NACK per detection.
    pub fn dynamic_energy(&self, c: &EnergyCounters) -> Energy {
        let bits = self.flit_bits as f64;
        let buffers = self.buffer_write_per_bit * (c.buffer_writes as f64 * bits)
            + self.buffer_read_per_bit * (c.buffer_reads as f64 * bits);
        let control = self.control_per_allocation * c.allocations as f64;
        let datapath = self.hop_energy() * (c.link_hops + c.retry_hops) as f64
            + self.local_hop_energy() * c.local_hops as f64
            + self.nack_energy() * c.nacks as f64;
        buffers + control + datapath
    }

    /// Converts counters plus elapsed time into a per-component report.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn report(
        &self,
        c: &EnergyCounters,
        cycles: u64,
        clock: Frequency,
        routers: usize,
    ) -> RouterPowerReport {
        assert!(cycles > 0, "need at least one simulated cycle");
        let elapsed: TimeInterval = clock.period() * cycles as f64;
        let bits = self.flit_bits as f64;
        let per = |e: Energy| Power::from_watts(e.joules() / elapsed.seconds());

        let buffers = per(self.buffer_write_per_bit * (c.buffer_writes as f64 * bits)
            + self.buffer_read_per_bit * (c.buffer_reads as f64 * bits));
        let control_dyn = per(self.control_per_allocation * c.allocations as f64);
        let control = control_dyn + self.control_static_per_router * routers as f64;
        let datapath = per(self.hop_energy() * (c.link_hops + c.retry_hops) as f64
            + self.local_hop_energy() * c.local_hops as f64
            + self.nack_energy() * c.nacks as f64);
        let bias = self.bias_per_router * routers as f64;
        RouterPowerReport {
            buffers,
            control,
            datapath,
            bias,
            routers,
        }
    }

    /// The analytic calibration point: a single router moving
    /// [`Self::CALIBRATION_FLITS_PER_CYCLE`] flits per cycle at `clock`,
    /// every flit written + read + traversing a full hop, with RC/VA/SA
    /// activity for 5-flit packets. This is what reproduces the paper's
    /// 38.8 / 5.2 / 12.9 mW split.
    pub fn calibration_report(&self, clock: Frequency, packet_len: usize) -> RouterPowerReport {
        let flits = Self::CALIBRATION_FLITS_PER_CYCLE;
        let cycles = 1_000_000u64;
        let total_flits = (flits * cycles as f64) as u64;
        let heads = total_flits / packet_len as u64;
        let c = EnergyCounters {
            buffer_writes: total_flits,
            buffer_reads: total_flits,
            link_hops: total_flits,
            local_hops: 0,
            // RC + VA per head, SA per flit.
            allocations: 2 * heads + total_flits,
            router_cycles: cycles,
            retry_hops: 0,
            nacks: 0,
        };
        self.report(&c, cycles, clock, 1)
    }
}

/// Per-component router (or network) power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterPowerReport {
    /// Input-buffer power.
    pub buffers: Power,
    /// Control logic (allocators + clocking) power.
    pub control: Power,
    /// Physical datapath (crossbar + links) power.
    pub datapath: Power,
    /// Adaptive-swing bias generators.
    pub bias: Power,
    /// Number of routers covered by the report.
    pub routers: usize,
}

impl RouterPowerReport {
    /// Total power.
    pub fn total(&self) -> Power {
        self.buffers + self.control + self.datapath + self.bias
    }

    /// Fraction of the total spent in the physical datapath (+ bias).
    pub fn datapath_fraction(&self) -> f64 {
        (self.datapath + self.bias) / self.total()
    }
}

impl core::fmt::Display for RouterPowerReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "buffers {:.1} mW | control {:.1} mW | datapath {:.1} mW | bias {:.2} mW (over {} routers)",
            self.buffers.milliwatts(),
            self.control.milliwatts(),
            self.datapath.milliwatts(),
            self.bias.milliwatts(),
            self.routers,
        )
    }
}

/// A published mesh-NoC power breakdown (Sec. I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedBreakdown {
    /// Chip name.
    pub name: &'static str,
    /// Links' share of NoC power (percent).
    pub links_pct: f64,
    /// Crossbars' share (percent).
    pub crossbar_pct: f64,
    /// Buffers' share (percent).
    pub buffers_pct: f64,
}

impl PublishedBreakdown {
    /// The three chips the paper cites.
    pub fn all() -> [Self; 3] {
        [
            Self {
                name: "RAW",
                links_pct: 39.0,
                crossbar_pct: 30.0,
                buffers_pct: 31.0,
            },
            Self {
                name: "TRIPS",
                links_pct: 31.0,
                crossbar_pct: 33.0,
                buffers_pct: 35.0,
            },
            Self {
                name: "TeraFLOPS",
                links_pct: 17.0,
                crossbar_pct: 15.0,
                buffers_pct: 22.0,
            },
        ]
    }

    /// The unavoidable physical-datapath share (links + crossbar): 69 %
    /// in RAW, 64 % in TRIPS, 32 % in TeraFLOPS per the paper.
    pub fn datapath_pct(&self) -> f64 {
        self.links_pct + self.crossbar_pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::paper_default(&Technology::soi45())
    }

    #[test]
    fn calibration_reproduces_paper_router_breakdown() {
        let m = model();
        let r = m.calibration_report(Frequency::from_gigahertz(1.0), 5);
        // Paper: buffers 38.8 mW, control 5.2 mW, datapath 12.9 mW.
        let b = r.buffers.milliwatts();
        let c = r.control.milliwatts();
        let d = (r.datapath + r.bias).milliwatts();
        assert!((b - 38.8).abs() < 1.5, "buffers {b} mW");
        assert!((c - 5.2).abs() < 0.8, "control {c} mW");
        assert!((d - 12.9).abs() < 2.5, "datapath {d} mW");
    }

    #[test]
    fn full_swing_datapath_costs_more() {
        let tech = Technology::soi45();
        let srlr = PowerModel::for_datapath(&tech, 64, DatapathKind::SrlrLowSwing);
        let fs = PowerModel::for_datapath(&tech, 64, DatapathKind::FullSwingRepeated);
        assert!(
            fs.hop_energy() > srlr.hop_energy() * 1.3,
            "full swing {} vs SRLR {}",
            fs.hop_energy(),
            srlr.hop_energy()
        );
        // But it needs no bias generator.
        assert_eq!(fs.bias_per_router, Power::zero());
    }

    #[test]
    fn hop_energy_scales_with_flit_width() {
        let tech = Technology::soi45();
        let w64 = PowerModel::for_datapath(&tech, 64, DatapathKind::SrlrLowSwing);
        let w32 = PowerModel::for_datapath(&tech, 32, DatapathKind::SrlrLowSwing);
        assert!((w64.hop_energy().joules() / w32.hop_energy().joules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn report_scales_linearly_with_activity() {
        let m = model();
        let base = EnergyCounters {
            buffer_writes: 1000,
            buffer_reads: 1000,
            link_hops: 1000,
            local_hops: 100,
            allocations: 1200,
            router_cycles: 10_000,
            retry_hops: 50,
            nacks: 50,
        };
        let mut double = base;
        double.merge(&base);
        let e1 = m.dynamic_energy(&base);
        let e2 = m.dynamic_energy(&double);
        assert!((e2.joules() / e1.joules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn retries_cost_full_hops_and_nacks_cost_one_bit() {
        let m = model();
        let clean = EnergyCounters {
            link_hops: 1000,
            ..EnergyCounters::default()
        };
        let retried = EnergyCounters {
            retry_hops: 100,
            nacks: 100,
            ..clean
        };
        let extra = retried.delta(&clean);
        assert_eq!(extra.retry_hops, 100);
        let de = m.dynamic_energy(&retried) - m.dynamic_energy(&clean);
        let expect = m.hop_energy() * 100.0 + m.nack_energy() * 100.0;
        assert!((de.joules() / expect.joules() - 1.0).abs() < 1e-9);
        // A NACK is a single-bit reverse pulse: 1/64th of a 64-bit hop.
        assert!((m.nack_energy().joules() * 64.0 / m.hop_energy().joules() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn published_breakdowns_match_paper_text() {
        let all = PublishedBreakdown::all();
        assert_eq!(all[0].datapath_pct(), 69.0); // RAW
        assert_eq!(all[1].datapath_pct(), 64.0); // TRIPS
        assert_eq!(all[2].datapath_pct(), 32.0); // TeraFLOPS
    }

    #[test]
    fn report_totals_and_fractions() {
        let r = RouterPowerReport {
            buffers: Power::from_milliwatts(38.8),
            control: Power::from_milliwatts(5.2),
            datapath: Power::from_milliwatts(12.3),
            bias: Power::from_milliwatts(0.6),
            routers: 1,
        };
        assert!((r.total().milliwatts() - 56.9).abs() < 1e-9);
        assert!((r.datapath_fraction() - 12.9 / 56.9).abs() < 1e-3);
        assert!(r.to_string().contains("buffers"));
    }

    #[test]
    #[should_panic(expected = "at least one simulated cycle")]
    fn zero_cycles_rejected() {
        let m = model();
        let _ = m.report(
            &EnergyCounters::default(),
            0,
            Frequency::from_gigahertz(1.0),
            1,
        );
    }
}
