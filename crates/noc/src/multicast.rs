//! Multicast tree accounting: the SRLR's free 1-to-N multicast in mesh
//! terms.
//!
//! A multicast built from unicast clones pays for every branch's full
//! path. With the SRLR datapath, every intermediate repeater regenerates
//! the full-swing pulse, so routers along a shared path prefix can sample
//! the stream for free: the energy cost is the *tree* edge set, not the
//! sum of paths. This module computes both.

use crate::packet::Packet;
use crate::topology::{Coord, Mesh};
use std::collections::BTreeSet;

/// Hop accounting for one multicast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticastAccounting {
    /// Unique tree edges (XY paths union), as ordered node pairs.
    tree_edges: BTreeSet<(Coord, Coord)>,
    /// Sum of branch path lengths (what unicast clones pay).
    unicast_hops: usize,
}

impl MulticastAccounting {
    /// Computes the XY multicast tree from `src` to `dsts`.
    ///
    /// # Panics
    ///
    /// Panics if `dsts` is empty or any coordinate is outside the mesh.
    pub fn new(mesh: Mesh, src: Coord, dsts: &[Coord]) -> Self {
        assert!(!dsts.is_empty(), "multicast needs at least one destination");
        let mut tree_edges = BTreeSet::new();
        let mut unicast_hops = 0;
        for &dst in dsts {
            let path = mesh.xy_path(src, dst);
            unicast_hops += path.len() - 1;
            for w in path.windows(2) {
                tree_edges.insert((w[0], w[1]));
            }
        }
        Self {
            tree_edges,
            unicast_hops,
        }
    }

    /// Accounting for a packet (multicast or unicast).
    pub fn for_packet(mesh: Mesh, packet: &Packet) -> Self {
        Self::new(mesh, packet.src, &packet.dsts)
    }

    /// Edges of the multicast tree (hops the SRLR datapath pays for).
    pub fn tree_hops(&self) -> usize {
        self.tree_edges.len()
    }

    /// Hops unicast clones would pay for.
    pub fn unicast_hops(&self) -> usize {
        self.unicast_hops
    }

    /// Hops saved by the free multicast.
    pub fn saved_hops(&self) -> usize {
        self.unicast_hops - self.tree_edges.len()
    }

    /// Energy-saving factor of tree multicast over unicast clones.
    pub fn saving_factor(&self) -> f64 {
        self.unicast_hops as f64 / self.tree_edges.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn unicast_has_no_savings() {
        let acc = MulticastAccounting::new(mesh(), Coord::new(0, 0), &[Coord::new(5, 0)]);
        assert_eq!(acc.tree_hops(), 5);
        assert_eq!(acc.unicast_hops(), 5);
        assert_eq!(acc.saved_hops(), 0);
        assert!((acc.saving_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_prefix_is_paid_once() {
        // Fig. 2's scenario in mesh terms: destinations strung along one
        // row share the whole prefix.
        let src = Coord::new(0, 0);
        let dsts = [Coord::new(4, 0), Coord::new(6, 0), Coord::new(7, 0)];
        let acc = MulticastAccounting::new(mesh(), src, &dsts);
        assert_eq!(acc.tree_hops(), 7, "tree = the longest prefix");
        assert_eq!(acc.unicast_hops(), 4 + 6 + 7);
        assert_eq!(acc.saved_hops(), 10);
    }

    #[test]
    fn forked_tree_counts_both_branches() {
        let src = Coord::new(0, 0);
        // Shared X run to (3,0), then forks north to two rows.
        let dsts = [Coord::new(3, 2), Coord::new(3, 4)];
        let acc = MulticastAccounting::new(mesh(), src, &dsts);
        // Tree: 3 east + 4 north = 7; unicast: 5 + 7 = 12.
        assert_eq!(acc.tree_hops(), 7);
        assert_eq!(acc.unicast_hops(), 12);
    }

    #[test]
    fn saving_grows_with_fanout_along_a_line() {
        let src = Coord::new(0, 3);
        let two = MulticastAccounting::new(mesh(), src, &[Coord::new(6, 3), Coord::new(7, 3)]);
        let four = MulticastAccounting::new(
            mesh(),
            src,
            &[
                Coord::new(4, 3),
                Coord::new(5, 3),
                Coord::new(6, 3),
                Coord::new(7, 3),
            ],
        );
        assert!(four.saving_factor() > two.saving_factor());
    }

    #[test]
    #[should_panic(expected = "at least one destination")]
    fn empty_destinations_rejected() {
        let _ = MulticastAccounting::new(mesh(), Coord::new(0, 0), &[]);
    }
}
