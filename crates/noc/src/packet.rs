//! Packets and flits.

use crate::topology::Coord;

/// Unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

impl core::fmt::Display for PacketId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// A network packet: one or more flits from a source to one or more
/// destinations (multicast packets carry several).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Identifier.
    pub id: PacketId,
    /// Source node.
    pub src: Coord,
    /// Destination node(s); unicast packets carry exactly one.
    pub dsts: Vec<Coord>,
    /// Length in flits (head + bodies + tail; single-flit packets send a
    /// combined head-tail).
    pub len_flits: usize,
    /// Cycle the packet was created at the source queue.
    pub inject_cycle: u64,
}

impl Packet {
    /// A unicast packet.
    ///
    /// # Panics
    ///
    /// Panics if `len_flits` is zero.
    pub fn unicast(
        id: PacketId,
        src: Coord,
        dst: Coord,
        len_flits: usize,
        inject_cycle: u64,
    ) -> Self {
        assert!(len_flits > 0, "packet needs at least one flit");
        Self {
            id,
            src,
            dsts: vec![dst],
            len_flits,
            inject_cycle,
        }
    }

    /// A multicast packet to several destinations.
    ///
    /// # Panics
    ///
    /// Panics if `len_flits` is zero or `dsts` is empty.
    pub fn multicast(
        id: PacketId,
        src: Coord,
        dsts: Vec<Coord>,
        len_flits: usize,
        inject_cycle: u64,
    ) -> Self {
        assert!(len_flits > 0, "packet needs at least one flit");
        assert!(!dsts.is_empty(), "multicast needs at least one destination");
        Self {
            id,
            src,
            dsts,
            len_flits,
            inject_cycle,
        }
    }

    /// `true` when the packet has more than one destination.
    pub fn is_multicast(&self) -> bool {
        self.dsts.len() > 1
    }

    /// The single destination of a unicast packet.
    ///
    /// # Panics
    ///
    /// Panics on a multicast packet.
    pub fn dst(&self) -> Coord {
        assert!(
            !self.is_multicast(),
            "multicast packet has many destinations"
        );
        self.dsts[0]
    }

    /// Produces the packet's flits in wire order.
    pub fn flits(&self, dst: Coord) -> Vec<Flit> {
        (0..self.len_flits)
            .map(|i| {
                let kind = if self.len_flits == 1 {
                    FlitKind::HeadTail
                } else if i == 0 {
                    FlitKind::Head
                } else if i + 1 == self.len_flits {
                    FlitKind::Tail
                } else {
                    FlitKind::Body
                };
                Flit {
                    packet: self.id,
                    kind,
                    dst,
                    inject_cycle: self.inject_cycle,
                }
            })
            .collect()
    }
}

/// Flit position within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit: carries the route.
    Head,
    /// Middle flit.
    Body,
    /// Last flit: releases the path.
    Tail,
    /// A single-flit packet.
    HeadTail,
}

impl FlitKind {
    /// `true` for flits that open a route (head or head-tail).
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// `true` for flits that close a route (tail or head-tail).
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flow-control unit travelling through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Destination node (per-branch for decomposed multicasts).
    pub dst: Coord,
    /// Inject cycle of the owning packet (for latency accounting).
    pub inject_cycle: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(len: usize) -> Packet {
        Packet::unicast(PacketId(1), Coord::new(0, 0), Coord::new(3, 3), len, 10)
    }

    #[test]
    fn single_flit_packet_is_head_tail() {
        let flits = pkt(1).flits(Coord::new(3, 3));
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].kind.is_head());
        assert!(flits[0].kind.is_tail());
    }

    #[test]
    fn multi_flit_packet_structure() {
        let flits = pkt(4).flits(Coord::new(3, 3));
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Tail);
        assert!(flits.iter().all(|f| f.packet == PacketId(1)));
    }

    #[test]
    fn multicast_flags() {
        let m = Packet::multicast(
            PacketId(2),
            Coord::new(0, 0),
            vec![Coord::new(1, 1), Coord::new(2, 2)],
            2,
            0,
        );
        assert!(m.is_multicast());
        let u = pkt(1);
        assert!(!u.is_multicast());
        assert_eq!(u.dst(), Coord::new(3, 3));
    }

    #[test]
    #[should_panic(expected = "many destinations")]
    fn dst_of_multicast_panics() {
        let m = Packet::multicast(
            PacketId(2),
            Coord::new(0, 0),
            vec![Coord::new(1, 1), Coord::new(2, 2)],
            2,
            0,
        );
        let _ = m.dst();
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_rejected() {
        let _ = pkt(0);
    }
}
