//! Packets and flits, with CRC-protected payloads.

use crate::topology::Coord;

/// CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xFFFF) over the 64-bit
/// flit payload, most-significant byte first — the check the link-level
/// retransmission protocol uses to detect corrupted flits. CRC-16
/// detects every 1- and 2-bit error and any burst up to 16 bits, so only
/// improbable multi-bit patterns can slip through silently.
pub fn crc16(payload: u64) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for byte in payload.to_be_bytes() {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// The deterministic payload word of flit `index` of packet `id` (a
/// SplitMix-style mix, so every flit carries a distinct, reproducible
/// bit pattern for the CRC to protect).
pub fn flit_payload(id: PacketId, index: usize) -> u64 {
    srlr_rng::stream_seed(id.0, index as u64)
}

/// Unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

impl core::fmt::Display for PacketId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// A network packet: one or more flits from a source to one or more
/// destinations (multicast packets carry several).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Identifier.
    pub id: PacketId,
    /// Source node.
    pub src: Coord,
    /// Destination node(s); unicast packets carry exactly one.
    pub dsts: Vec<Coord>,
    /// Length in flits (head + bodies + tail; single-flit packets send a
    /// combined head-tail).
    pub len_flits: usize,
    /// Cycle the packet was created at the source queue.
    pub inject_cycle: u64,
}

impl Packet {
    /// A unicast packet.
    ///
    /// # Panics
    ///
    /// Panics if `len_flits` is zero.
    pub fn unicast(
        id: PacketId,
        src: Coord,
        dst: Coord,
        len_flits: usize,
        inject_cycle: u64,
    ) -> Self {
        assert!(len_flits > 0, "packet needs at least one flit");
        Self {
            id,
            src,
            dsts: vec![dst],
            len_flits,
            inject_cycle,
        }
    }

    /// A multicast packet to several destinations.
    ///
    /// # Panics
    ///
    /// Panics if `len_flits` is zero or `dsts` is empty.
    pub fn multicast(
        id: PacketId,
        src: Coord,
        dsts: Vec<Coord>,
        len_flits: usize,
        inject_cycle: u64,
    ) -> Self {
        assert!(len_flits > 0, "packet needs at least one flit");
        assert!(!dsts.is_empty(), "multicast needs at least one destination");
        Self {
            id,
            src,
            dsts,
            len_flits,
            inject_cycle,
        }
    }

    /// `true` when the packet has more than one destination.
    pub fn is_multicast(&self) -> bool {
        self.dsts.len() > 1
    }

    /// The single destination of a unicast packet.
    ///
    /// # Panics
    ///
    /// Panics on a multicast packet.
    pub fn dst(&self) -> Coord {
        assert!(
            !self.is_multicast(),
            "multicast packet has many destinations"
        );
        self.dsts[0]
    }

    /// Produces the packet's flits in wire order.
    pub fn flits(&self, dst: Coord) -> Vec<Flit> {
        (0..self.len_flits)
            .map(|i| {
                let kind = if self.len_flits == 1 {
                    FlitKind::HeadTail
                } else if i == 0 {
                    FlitKind::Head
                } else if i + 1 == self.len_flits {
                    FlitKind::Tail
                } else {
                    FlitKind::Body
                };
                let payload = flit_payload(self.id, i);
                Flit {
                    packet: self.id,
                    kind,
                    dst,
                    inject_cycle: self.inject_cycle,
                    payload,
                    crc: crc16(payload),
                }
            })
            .collect()
    }
}

/// Flit position within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit: carries the route.
    Head,
    /// Middle flit.
    Body,
    /// Last flit: releases the path.
    Tail,
    /// A single-flit packet.
    HeadTail,
}

impl FlitKind {
    /// `true` for flits that open a route (head or head-tail).
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// `true` for flits that close a route (tail or head-tail).
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flow-control unit travelling through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Destination node (per-branch for decomposed multicasts).
    pub dst: Coord,
    /// Inject cycle of the owning packet (for latency accounting).
    pub inject_cycle: u64,
    /// Payload word (the bits the fault model corrupts).
    pub payload: u64,
    /// CRC-16 of the payload, computed at packetisation.
    pub crc: u16,
}

impl Flit {
    /// `true` when the stored CRC matches the payload — the receiver-side
    /// integrity check of the retransmission protocol.
    pub fn crc_ok(&self) -> bool {
        crc16(self.payload) == self.crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(len: usize) -> Packet {
        Packet::unicast(PacketId(1), Coord::new(0, 0), Coord::new(3, 3), len, 10)
    }

    #[test]
    fn single_flit_packet_is_head_tail() {
        let flits = pkt(1).flits(Coord::new(3, 3));
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].kind.is_head());
        assert!(flits[0].kind.is_tail());
    }

    #[test]
    fn multi_flit_packet_structure() {
        let flits = pkt(4).flits(Coord::new(3, 3));
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Tail);
        assert!(flits.iter().all(|f| f.packet == PacketId(1)));
    }

    #[test]
    fn multicast_flags() {
        let m = Packet::multicast(
            PacketId(2),
            Coord::new(0, 0),
            vec![Coord::new(1, 1), Coord::new(2, 2)],
            2,
            0,
        );
        assert!(m.is_multicast());
        let u = pkt(1);
        assert!(!u.is_multicast());
        assert_eq!(u.dst(), Coord::new(3, 3));
    }

    #[test]
    #[should_panic(expected = "many destinations")]
    fn dst_of_multicast_panics() {
        let m = Packet::multicast(
            PacketId(2),
            Coord::new(0, 0),
            vec![Coord::new(1, 1), Coord::new(2, 2)],
            2,
            0,
        );
        let _ = m.dst();
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_rejected() {
        let _ = pkt(0);
    }

    #[test]
    fn crc16_reference_vector() {
        // CRC-16/CCITT-FALSE of the ASCII bytes "123456789" is 0x29B1.
        let word = u64::from_be_bytes(*b"12345678");
        let mut crc = crc16(word);
        // Extend by the final '9' byte manually to match the 9-byte vector.
        crc ^= u16::from(b'9') << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
        assert_eq!(crc, 0x29B1);
    }

    #[test]
    fn flits_carry_valid_crcs() {
        for f in pkt(4).flits(Coord::new(3, 3)) {
            assert!(f.crc_ok());
        }
    }

    #[test]
    fn single_bit_flips_are_always_detected() {
        let f = pkt(1).flits(Coord::new(3, 3))[0];
        for bit in 0..64 {
            let mut bad = f;
            bad.payload ^= 1 << bit;
            assert!(!bad.crc_ok(), "missed flip of payload bit {bit}");
        }
        for bit in 0..16 {
            let mut bad = f;
            bad.crc ^= 1 << bit;
            assert!(!bad.crc_ok(), "missed flip of crc bit {bit}");
        }
    }

    #[test]
    fn payloads_differ_across_flits_and_packets() {
        let a = flit_payload(PacketId(1), 0);
        assert_ne!(a, flit_payload(PacketId(1), 1));
        assert_ne!(a, flit_payload(PacketId(2), 0));
        assert_eq!(
            a,
            flit_payload(PacketId(1), 0),
            "payloads are deterministic"
        );
    }
}
