//! Mesh topology: coordinates, ports and dimension-ordered (XY) routing.

/// A node coordinate in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Column (0 = west edge).
    pub x: u16,
    /// Row (0 = south edge).
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Manhattan (hop) distance to another coordinate.
    pub fn hop_distance(self, other: Coord) -> u32 {
        let dx = (i32::from(self.x) - i32::from(other.x)).unsigned_abs();
        let dy = (i32::from(self.y) - i32::from(other.y)).unsigned_abs();
        dx + dy
    }
}

impl core::fmt::Display for Coord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A router port direction; `Local` is the injection/ejection port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Towards larger `y`.
    North,
    /// Towards smaller `y`.
    South,
    /// Towards larger `x`.
    East,
    /// Towards smaller `x`.
    West,
    /// The attached core.
    Local,
}

impl Direction {
    /// All five ports in canonical order (the index used across the
    /// router's port arrays).
    pub const ALL: [Direction; 5] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
        Direction::Local,
    ];

    /// The canonical port index of this direction.
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::South => 1,
            Direction::East => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }

    /// The direction a flit leaving through `self` arrives *from* at the
    /// neighbouring router, or `None` for `Local` (the local port has no
    /// opposite). Returning `None` instead of panicking keeps a bad route
    /// an error value rather than an abort in a million-packet run.
    pub fn opposite(self) -> Option<Direction> {
        match self {
            Direction::North => Some(Direction::South),
            Direction::South => Some(Direction::North),
            Direction::East => Some(Direction::West),
            Direction::West => Some(Direction::East),
            Direction::Local => None,
        }
    }

    /// The four mesh (non-local) directions.
    pub const MESH: [Direction; 4] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
    ];

    /// `true` for the four inter-router ports, `false` for `Local`.
    pub fn is_mesh(self) -> bool {
        !matches!(self, Direction::Local)
    }
}

impl core::fmt::Display for Direction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::South => "S",
            Direction::East => "E",
            Direction::West => "W",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// The mesh fabric: dimensions and coordinate arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mesh {
    cols: u16,
    rows: u16,
}

impl Mesh {
    /// Creates a `cols x rows` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be non-zero");
        Self { cols, rows }
    }

    /// Number of columns.
    pub fn cols(self) -> u16 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(self) -> u16 {
        self.rows
    }

    /// Total node count.
    pub fn len(self) -> usize {
        usize::from(self.cols) * usize::from(self.rows)
    }

    /// `false` — a mesh always has at least one node (kept for the
    /// `len`/`is_empty` API convention).
    pub fn is_empty(self) -> bool {
        false
    }

    /// Flattened index of a coordinate (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    pub fn index_of(self, c: Coord) -> usize {
        assert!(self.contains(c), "coordinate {c} outside {self}");
        usize::from(c.y) * usize::from(self.cols) + usize::from(c.x)
    }

    /// Coordinate of a flattened index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn coord_of(self, index: usize) -> Coord {
        assert!(index < self.len(), "index {index} outside {self}");
        Coord::new(
            // srlr-lint: allow(lossy-cast, reason = "index % cols < cols, which is u16")
            (index % usize::from(self.cols)) as u16,
            // srlr-lint: allow(lossy-cast, reason = "index < rows * cols, so index / cols < rows, which is u16")
            (index / usize::from(self.cols)) as u16,
        )
    }

    /// Whether the coordinate lies inside the mesh.
    pub fn contains(self, c: Coord) -> bool {
        c.x < self.cols && c.y < self.rows
    }

    /// The neighbouring coordinate in a direction, if it exists. `Local`
    /// has no neighbour (the port loops back into the attached core), so
    /// it yields `None` like an off-mesh edge does.
    pub fn neighbor(self, c: Coord, dir: Direction) -> Option<Coord> {
        match dir {
            Direction::North => {
                if c.y + 1 < self.rows {
                    Some(Coord::new(c.x, c.y + 1))
                } else {
                    None
                }
            }
            Direction::South => c.y.checked_sub(1).map(|y| Coord::new(c.x, y)),
            Direction::East => {
                if c.x + 1 < self.cols {
                    Some(Coord::new(c.x + 1, c.y))
                } else {
                    None
                }
            }
            Direction::West => c.x.checked_sub(1).map(|x| Coord::new(x, c.y)),
            Direction::Local => None,
        }
    }

    /// Dimension-ordered (X-then-Y) routing: the output port at `here`
    /// for a packet heading to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is outside the mesh.
    pub fn xy_route(self, here: Coord, dst: Coord) -> Direction {
        assert!(
            self.contains(here) && self.contains(dst),
            "route outside mesh"
        );
        if here.x < dst.x {
            Direction::East
        } else if here.x > dst.x {
            Direction::West
        } else if here.y < dst.y {
            Direction::North
        } else if here.y > dst.y {
            Direction::South
        } else {
            Direction::Local
        }
    }

    /// The full XY path from `src` to `dst`, inclusive of both endpoints.
    pub fn xy_path(self, src: Coord, dst: Coord) -> Vec<Coord> {
        let mut path = vec![src];
        let mut here = src;
        while here != dst {
            let dir = self.xy_route(here, dst);
            // XY routing toward an in-mesh destination never walks off the
            // edge; an off-mesh `dst` yields the partial path instead of
            // panicking (or looping).
            let Some(next) = self.neighbor(here, dir) else {
                break;
            };
            here = next;
            path.push(here);
        }
        path
    }

    /// Iterates over every coordinate (row-major).
    pub fn iter(self) -> impl Iterator<Item = Coord> {
        (0..self.len()).map(move |i| self.coord_of(i))
    }
}

impl core::fmt::Display for Mesh {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{} mesh", self.cols, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let m = Mesh::new(8, 8);
        for i in 0..m.len() {
            assert_eq!(m.index_of(m.coord_of(i)), i);
        }
    }

    #[test]
    fn hop_distance_is_manhattan() {
        let a = Coord::new(1, 2);
        let b = Coord::new(4, 0);
        assert_eq!(a.hop_distance(b), 5);
        assert_eq!(b.hop_distance(a), 5);
        assert_eq!(a.hop_distance(a), 0);
    }

    #[test]
    fn edges_have_no_outward_neighbors() {
        let m = Mesh::new(4, 4);
        assert_eq!(m.neighbor(Coord::new(0, 0), Direction::West), None);
        assert_eq!(m.neighbor(Coord::new(0, 0), Direction::South), None);
        assert_eq!(m.neighbor(Coord::new(3, 3), Direction::East), None);
        assert_eq!(m.neighbor(Coord::new(3, 3), Direction::North), None);
        assert_eq!(
            m.neighbor(Coord::new(1, 1), Direction::East),
            Some(Coord::new(2, 1))
        );
    }

    #[test]
    fn xy_routes_x_first() {
        let m = Mesh::new(8, 8);
        let src = Coord::new(1, 1);
        let dst = Coord::new(4, 5);
        assert_eq!(m.xy_route(src, dst), Direction::East);
        // Once x matches, go in y.
        assert_eq!(m.xy_route(Coord::new(4, 1), dst), Direction::North);
        assert_eq!(m.xy_route(dst, dst), Direction::Local);
    }

    #[test]
    fn xy_path_has_hop_distance_plus_one_nodes() {
        let m = Mesh::new(8, 8);
        let src = Coord::new(0, 0);
        let dst = Coord::new(3, 4);
        let path = m.xy_path(src, dst);
        assert_eq!(path.len() as u32, src.hop_distance(dst) + 1);
        assert_eq!(path[0], src);
        assert_eq!(*path.last().unwrap(), dst);
        // Each step is one hop.
        for w in path.windows(2) {
            assert_eq!(w[0].hop_distance(w[1]), 1);
        }
    }

    #[test]
    fn opposite_ports_pair_up() {
        assert_eq!(Direction::North.opposite(), Some(Direction::South));
        assert_eq!(Direction::East.opposite(), Some(Direction::West));
        for d in Direction::MESH {
            assert!(d.is_mesh());
            assert_eq!(d.opposite().and_then(Direction::opposite), Some(d));
        }
    }

    #[test]
    fn local_has_no_opposite_or_neighbor() {
        assert_eq!(Direction::Local.opposite(), None);
        assert!(!Direction::Local.is_mesh());
        let m = Mesh::new(4, 4);
        assert_eq!(m.neighbor(Coord::new(1, 1), Direction::Local), None);
    }

    #[test]
    fn direction_indices_are_unique() {
        let mut seen = [false; 5];
        for d in Direction::ALL {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
        }
    }

    #[test]
    #[should_panic(expected = "dimensions must be non-zero")]
    fn zero_mesh_rejected() {
        let _ = Mesh::new(0, 4);
    }

    #[test]
    fn iter_covers_all_nodes() {
        let m = Mesh::new(3, 2);
        let coords: Vec<Coord> = m.iter().collect();
        assert_eq!(coords.len(), 6);
        assert!(coords.contains(&Coord::new(2, 1)));
    }
}
