//! The 5-port virtual-channel wormhole router (paper Fig. 1).
//!
//! Pipeline: route computation (XY) and VC allocation for head flits,
//! separable input-first switch allocation, then switch + link traversal.
//! Flow control is credit-based; each input port carries `vcs` virtual
//! channels of `buffer_depth` flits (the paper's router: 4 VCs, 16
//! buffers per port).

use crate::packet::Flit;
use crate::power::DatapathKind;
use crate::topology::{Coord, Direction, Mesh};
use srlr_units::Frequency;
use std::collections::VecDeque;

/// Network configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Mesh columns.
    pub cols: u16,
    /// Mesh rows.
    pub rows: u16,
    /// Virtual channels per input port.
    pub vcs: usize,
    /// Buffer slots per VC (flits).
    pub buffer_depth: usize,
    /// Datapath width in bits.
    pub flit_bits: usize,
    /// Packet length in flits.
    pub packet_len: usize,
    /// Router clock.
    pub clock: Frequency,
    /// Physical datapath implementation (energy model).
    pub datapath: DatapathKind,
    /// Extra pipeline cycles per hop beyond the single-cycle router +
    /// single-cycle link baseline (0 models an aggressively bypassed
    /// router; 1 gives the paper's 3-stage pipeline).
    pub extra_pipeline: u64,
    /// Routing algorithm.
    pub routing: crate::routing::RoutingAlgorithm,
    /// Traffic RNG seed.
    pub seed: u64,
    /// Link fault injection and retransmission; `None` simulates ideal
    /// error-free links (and costs nothing).
    pub fault: Option<crate::fault::FaultConfig>,
}

impl NocConfig {
    /// The paper's configuration: 8x8 mesh of 64-bit, 5-port routers with
    /// 4 VCs and 16 buffers per port, 1 GHz clock, SRLR datapath.
    pub fn paper_default() -> Self {
        Self {
            cols: 8,
            rows: 8,
            vcs: 4,
            buffer_depth: 4,
            flit_bits: 64,
            packet_len: 5,
            clock: Frequency::from_gigahertz(1.0),
            datapath: DatapathKind::SrlrLowSwing,
            extra_pipeline: 0,
            routing: crate::routing::RoutingAlgorithm::Xy,
            seed: 42,
            fault: None,
        }
    }

    /// Returns a copy with a different routing algorithm.
    #[must_use]
    pub fn with_routing(mut self, routing: crate::routing::RoutingAlgorithm) -> Self {
        self.routing = routing;
        self
    }

    /// Returns a copy with extra per-hop pipeline cycles.
    #[must_use]
    pub fn with_extra_pipeline(mut self, extra_pipeline: u64) -> Self {
        self.extra_pipeline = extra_pipeline;
        self
    }

    /// Returns a copy with a different mesh size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn with_size(mut self, cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be non-zero");
        self.cols = cols;
        self.rows = rows;
        self
    }

    /// Returns a copy with a different datapath implementation.
    #[must_use]
    pub fn with_datapath(mut self, datapath: DatapathKind) -> Self {
        self.datapath = datapath;
        self
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different packet length (flits).
    ///
    /// # Panics
    ///
    /// Panics if `packet_len` is zero.
    #[must_use]
    pub fn with_packet_len(mut self, packet_len: usize) -> Self {
        assert!(packet_len > 0, "packets need at least one flit");
        self.packet_len = packet_len;
        self
    }

    /// Returns a copy with the given link fault model.
    #[must_use]
    pub fn with_faults(mut self, fault: crate::fault::FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Returns a copy whose links flip bits at `ber` under the default
    /// retransmission protocol (shorthand for
    /// `with_faults(FaultConfig::new(ber))`).
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `[0, 1)`.
    #[must_use]
    pub fn with_ber(self, ber: f64) -> Self {
        self.with_faults(crate::fault::FaultConfig::new(ber))
    }

    /// The mesh described by this configuration.
    pub fn mesh(&self) -> Mesh {
        Mesh::new(self.cols, self.rows)
    }

    /// Validates the structural parameters.
    ///
    /// # Panics
    ///
    /// Panics if VCs or buffer depth are zero, or the flit width is zero.
    pub fn validate(&self) {
        assert!(self.vcs > 0, "need at least one VC");
        assert!(self.buffer_depth > 0, "need at least one buffer slot");
        assert!(self.flit_bits > 0, "flit width must be non-zero");
        assert!(self.packet_len > 0, "packets need at least one flit");
        if let Some(fault) = &self.fault {
            fault.validate();
        }
    }
}

/// Per-VC input state.
#[derive(Debug, Clone, Default)]
struct VcState {
    buffer: VecDeque<Flit>,
    /// Output port assigned by route computation (None until RC).
    route: Option<Direction>,
    /// Downstream VC granted by VC allocation (None until VA).
    out_vc: Option<usize>,
}

/// A flit leaving the router this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentFlit {
    /// The flit itself.
    pub flit: Flit,
    /// Output port it left through.
    pub out_port: Direction,
    /// Downstream VC it was sent on.
    pub out_vc: usize,
    /// Input port it was buffered at.
    pub in_port: Direction,
    /// Input VC it was buffered at.
    pub in_vc: usize,
}

/// Switch-allocation / VC-allocation activity of one cycle, for the
/// control-logic power model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterActivity {
    /// Route computations performed.
    pub route_computations: usize,
    /// VC allocation grants.
    pub vc_allocations: usize,
    /// Switch allocation grants (= flits traversing).
    pub switch_allocations: usize,
}

/// One 5-port mesh router.
#[derive(Debug, Clone)]
pub struct Router {
    coord: Coord,
    vcs: usize,
    buffer_depth: usize,
    routing: crate::routing::RoutingAlgorithm,
    /// Input state, indexed `[port][vc]`.
    inputs: Vec<Vec<VcState>>,
    /// Credits available at the downstream buffer of each output, indexed
    /// `[port][vc]`. The Local output is an always-ready sink.
    out_credits: Vec<Vec<usize>>,
    /// Whether a downstream VC is currently owned by a packet.
    out_vc_busy: Vec<Vec<bool>>,
    /// Round-robin pointers.
    rr_va: usize,
    rr_sa_in: Vec<usize>,
    rr_sa_out: usize,
}

impl Router {
    /// Creates an idle router at `coord`.
    pub fn new(coord: Coord, config: &NocConfig) -> Self {
        config.validate();
        let vcs = config.vcs;
        Self {
            coord,
            vcs,
            buffer_depth: config.buffer_depth,
            routing: config.routing,
            inputs: (0..5)
                .map(|_| (0..vcs).map(|_| VcState::default()).collect())
                .collect(),
            out_credits: (0..5).map(|_| vec![config.buffer_depth; vcs]).collect(),
            out_vc_busy: (0..5).map(|_| vec![false; vcs]).collect(),
            rr_va: 0,
            rr_sa_in: vec![0; 5],
            rr_sa_out: 0,
        }
    }

    /// The router's mesh coordinate.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// Free buffer slots at an input VC.
    pub fn free_slots(&self, port: Direction, vc: usize) -> usize {
        self.buffer_depth - self.inputs[port.index()][vc].buffer.len()
    }

    /// Total buffered flits across all inputs (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.inputs.iter().flatten().map(|v| v.buffer.len()).sum()
    }

    /// The packets with at least one flit buffered in this router (with
    /// repetitions; used to report the in-flight set of a stalled run).
    pub fn buffered_packets(&self) -> impl Iterator<Item = crate::packet::PacketId> + '_ {
        self.inputs
            .iter()
            .flatten()
            .flat_map(|v| v.buffer.iter().map(|f| f.packet))
    }

    /// Accepts a flit into an input VC buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — the upstream credit loop must make
    /// that impossible; a panic here means a flow-control bug.
    pub fn accept(&mut self, port: Direction, vc: usize, flit: Flit) {
        let state = &mut self.inputs[port.index()][vc];
        assert!(
            state.buffer.len() < self.buffer_depth,
            "buffer overflow at {} port {port} vc {vc}: credit protocol violated",
            self.coord
        );
        state.buffer.push_back(flit);
    }

    /// Returns one credit for an output VC (the downstream router freed a
    /// slot).
    pub fn return_credit(&mut self, port: Direction, vc: usize) {
        let c = &mut self.out_credits[port.index()][vc];
        *c += 1;
        debug_assert!(*c <= self.buffer_depth, "credit overflow");
    }

    /// Executes one cycle of the router pipeline, returning the flits sent
    /// and the allocation activity (for power accounting).
    pub fn step(&mut self, mesh: Mesh) -> (Vec<SentFlit>, RouterActivity) {
        let mut activity = RouterActivity::default();

        // --- RC: heads at the front of an unrouted VC compute their port.
        for port in 0..5 {
            for vc in 0..self.vcs {
                let state = &self.inputs[port][vc];
                if state.route.is_none() {
                    if let Some(front) = state.buffer.front() {
                        if front.kind.is_head() {
                            let candidates = self.routing.candidates(mesh, self.coord, front.dst);
                            // Adaptive choice: prefer the candidate whose
                            // output column has the most downstream
                            // credits (a congestion-aware local greedy).
                            // A routing function always offers at least
                            // one port; an empty candidate set leaves the
                            // flit parked instead of panicking.
                            let Some(&dir) = candidates
                                .iter()
                                .max_by_key(|d| self.out_credits[d.index()].iter().sum::<usize>())
                            else {
                                continue;
                            };
                            self.inputs[port][vc].route = Some(dir);
                            activity.route_computations += 1;
                        }
                    }
                }
            }
        }

        // --- VA: routed VCs without a downstream VC bid for one.
        let requesters: Vec<(usize, usize)> = (0..5)
            .flat_map(|p| (0..self.vcs).map(move |v| (p, v)))
            .filter(|&(p, v)| {
                let s = &self.inputs[p][v];
                s.route.is_some() && s.out_vc.is_none() && !s.buffer.is_empty()
            })
            .collect();
        if !requesters.is_empty() {
            let start = self.rr_va % requesters.len();
            for k in 0..requesters.len() {
                let (p, v) = requesters[(start + k) % requesters.len()];
                let Some(out) = self.inputs[p][v].route else {
                    continue; // requesters are routed by construction
                };
                let o = out.index();
                // The Local output needs no VC ownership (ejection sink).
                if out == Direction::Local {
                    self.inputs[p][v].out_vc = Some(0);
                    activity.vc_allocations += 1;
                    continue;
                }
                if let Some(w) = (0..self.vcs).find(|&w| !self.out_vc_busy[o][w]) {
                    self.out_vc_busy[o][w] = true;
                    self.inputs[p][v].out_vc = Some(w);
                    activity.vc_allocations += 1;
                }
            }
            self.rr_va = self.rr_va.wrapping_add(1);
        }

        // --- SA, input-first: each input port nominates one VC...
        let mut nominations: Vec<Option<(usize, usize)>> = vec![None; 5];
        // Port indexes both the nomination slot and the round-robin state.
        #[allow(clippy::needless_range_loop)]
        for port in 0..5 {
            let start = self.rr_sa_in[port] % self.vcs;
            for k in 0..self.vcs {
                let vc = (start + k) % self.vcs;
                let s = &self.inputs[port][vc];
                let ready = !s.buffer.is_empty()
                    && s.out_vc.is_some()
                    && s.route.is_some_and(|d| {
                        d == Direction::Local
                            || s.out_vc.is_some_and(|w| self.out_credits[d.index()][w] > 0)
                    });
                if ready {
                    nominations[port] = Some((port, vc));
                    self.rr_sa_in[port] = vc + 1;
                    break;
                }
            }
        }
        // ...then each output port grants one nomination.
        let mut granted_outputs = [false; 5];
        let mut winners: Vec<(usize, usize)> = Vec::new();
        let start = self.rr_sa_out % 5;
        for k in 0..5 {
            let port = (start + k) % 5;
            if let Some((p, v)) = nominations[port] {
                let Some(out) = self.inputs[p][v].route else {
                    continue; // nominees are routed by construction
                };
                if !granted_outputs[out.index()] {
                    granted_outputs[out.index()] = true;
                    winners.push((p, v));
                }
            }
        }
        self.rr_sa_out = self.rr_sa_out.wrapping_add(1);

        // --- ST: winners move one flit each.
        let mut sent = Vec::with_capacity(winners.len());
        for (p, v) in winners {
            // Winners are routed, VC-allocated and non-empty by the SA
            // stage above; a violated invariant skips the grant instead of
            // aborting the simulation.
            let (Some(out), Some(w)) = (self.inputs[p][v].route, self.inputs[p][v].out_vc) else {
                continue;
            };
            let Some(flit) = self.inputs[p][v].buffer.pop_front() else {
                continue;
            };
            if out != Direction::Local {
                self.out_credits[out.index()][w] -= 1;
            }
            if flit.kind.is_tail() {
                if out != Direction::Local {
                    self.out_vc_busy[out.index()][w] = false;
                }
                self.inputs[p][v].route = None;
                self.inputs[p][v].out_vc = None;
            }
            activity.switch_allocations += 1;
            sent.push(SentFlit {
                flit,
                out_port: out,
                out_vc: w,
                in_port: Direction::ALL[p],
                in_vc: v,
            });
        }
        (sent, activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketId};

    fn config() -> NocConfig {
        NocConfig::paper_default().with_size(4, 4)
    }

    fn head_tail_flit(dst: Coord) -> Flit {
        Packet::unicast(PacketId(1), Coord::new(0, 0), dst, 1, 0).flits(dst)[0]
    }

    #[test]
    fn flit_routes_and_leaves_in_one_pass() {
        let cfg = config();
        let mesh = cfg.mesh();
        let mut r = Router::new(Coord::new(1, 1), &cfg);
        r.accept(Direction::West, 0, head_tail_flit(Coord::new(3, 1)));
        let (sent, act) = r.step(mesh);
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].out_port, Direction::East);
        assert_eq!(act.route_computations, 1);
        assert_eq!(act.vc_allocations, 1);
        assert_eq!(act.switch_allocations, 1);
        assert_eq!(r.occupancy(), 0);
    }

    #[test]
    fn local_destination_ejects() {
        let cfg = config();
        let mut r = Router::new(Coord::new(2, 2), &cfg);
        r.accept(Direction::North, 1, head_tail_flit(Coord::new(2, 2)));
        let (sent, _) = r.step(cfg.mesh());
        assert_eq!(sent[0].out_port, Direction::Local);
    }

    #[test]
    fn credits_gate_transmission() {
        let cfg = config();
        let mesh = cfg.mesh();
        let mut r = Router::new(Coord::new(1, 1), &cfg);
        // Exhaust all credits on the East output for every VC.
        for vc in 0..cfg.vcs {
            for _ in 0..cfg.buffer_depth {
                r.out_credits[Direction::East.index()][vc] = 0;
            }
        }
        r.accept(Direction::West, 0, head_tail_flit(Coord::new(3, 1)));
        let (sent, _) = r.step(mesh);
        assert!(sent.is_empty(), "no credits, nothing may leave");
        // Returning a credit unblocks it.
        r.return_credit(Direction::East, 0);
        let (sent, _) = r.step(mesh);
        assert_eq!(sent.len(), 1);
    }

    #[test]
    fn one_flit_per_output_per_cycle() {
        let cfg = config();
        let mesh = cfg.mesh();
        let mut r = Router::new(Coord::new(1, 1), &cfg);
        // Two flits from different inputs, both heading East.
        r.accept(Direction::West, 0, head_tail_flit(Coord::new(3, 1)));
        r.accept(Direction::North, 0, head_tail_flit(Coord::new(3, 1)));
        let (sent, _) = r.step(mesh);
        assert_eq!(sent.len(), 1, "the East port can carry one flit/cycle");
        let (sent, _) = r.step(mesh);
        assert_eq!(sent.len(), 1, "the loser goes next cycle");
    }

    #[test]
    fn different_outputs_proceed_in_parallel() {
        let cfg = config();
        let mesh = cfg.mesh();
        let mut r = Router::new(Coord::new(1, 1), &cfg);
        r.accept(Direction::West, 0, head_tail_flit(Coord::new(3, 1))); // East
        r.accept(Direction::North, 0, head_tail_flit(Coord::new(1, 0))); // South
        let (sent, _) = r.step(mesh);
        assert_eq!(sent.len(), 2);
    }

    #[test]
    fn wormhole_keeps_packet_contiguous_on_vc() {
        let cfg = config();
        let mesh = cfg.mesh();
        let mut r = Router::new(Coord::new(1, 1), &cfg);
        let pkt = Packet::unicast(PacketId(9), Coord::new(0, 1), Coord::new(3, 1), 3, 0);
        for f in pkt.flits(Coord::new(3, 1)) {
            r.accept(Direction::West, 2, f);
        }
        let mut kinds = Vec::new();
        for _ in 0..4 {
            let (sent, _) = r.step(mesh);
            for s in sent {
                kinds.push(s.flit.kind);
            }
        }
        use crate::packet::FlitKind::*;
        assert_eq!(kinds, vec![Head, Body, Tail]);
    }

    #[test]
    #[should_panic(expected = "credit protocol violated")]
    fn buffer_overflow_panics() {
        let cfg = config();
        let mut r = Router::new(Coord::new(0, 0), &cfg);
        for _ in 0..=cfg.buffer_depth {
            r.accept(Direction::West, 0, head_tail_flit(Coord::new(3, 0)));
        }
    }

    #[test]
    fn tail_releases_downstream_vc() {
        let cfg = config();
        let mesh = cfg.mesh();
        let mut r = Router::new(Coord::new(1, 1), &cfg);
        let dst = Coord::new(3, 1);
        let pkt = Packet::unicast(PacketId(5), Coord::new(0, 1), dst, 2, 0);
        for f in pkt.flits(dst) {
            r.accept(Direction::West, 0, f);
        }
        // Head leaves, allocating a downstream VC...
        let _ = r.step(mesh);
        assert!(r.out_vc_busy[Direction::East.index()].iter().any(|&b| b));
        // ...tail leaves, releasing it.
        let _ = r.step(mesh);
        assert!(r.out_vc_busy[Direction::East.index()].iter().all(|&b| !b));
    }

    #[test]
    fn switch_arbitration_is_fair_between_inputs() {
        // Two inputs streaming to the same output must share it roughly
        // 50/50 under round-robin arbitration.
        let cfg = config();
        let mesh = cfg.mesh();
        let mut r = Router::new(Coord::new(1, 1), &cfg);
        let dst = Coord::new(3, 1);
        let mut from_west: i64 = 0;
        let mut from_north: i64 = 0;
        for round in 0..40 {
            // Keep both inputs loaded.
            if r.free_slots(Direction::West, 0) > 0 {
                r.accept(
                    Direction::West,
                    0,
                    Packet::unicast(PacketId(round * 2), Coord::new(0, 1), dst, 1, 0).flits(dst)[0],
                );
            }
            if r.free_slots(Direction::North, 0) > 0 {
                r.accept(
                    Direction::North,
                    0,
                    Packet::unicast(PacketId(round * 2 + 1), Coord::new(1, 2), dst, 1, 0)
                        .flits(dst)[0],
                );
            }
            let (sent, _) = r.step(mesh);
            for s in &sent {
                match s.in_port {
                    Direction::West => from_west += 1,
                    Direction::North => from_north += 1,
                    _ => {}
                }
                // Return the credit so the stream keeps flowing.
                r.return_credit(s.out_port, s.out_vc);
            }
        }
        let total = from_west + from_north;
        assert!(total >= 30, "arbitration starved the port: {total}");
        let imbalance = (from_west - from_north).abs();
        assert!(
            imbalance <= total / 4,
            "unfair split {from_west} vs {from_north}"
        );
    }

    #[test]
    fn config_validation() {
        let bad = NocConfig {
            vcs: 0,
            ..NocConfig::paper_default()
        };
        let result = std::panic::catch_unwind(|| bad.validate());
        assert!(result.is_err());
    }
}
