//! Synthetic traffic generation.

use crate::packet::{Packet, PacketId};
use crate::topology::{Coord, Mesh};
use srlr_rng::Xoshiro256pp;

/// A synthetic traffic pattern: the destination map of the mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Each packet picks a uniformly random destination (excluding the
    /// source).
    UniformRandom,
    /// `(x, y) -> (y, x)`.
    Transpose,
    /// `(x, y) -> (cols-1-x, rows-1-y)`.
    BitComplement,
    /// Each node talks to its east neighbour (wrapping) — the local
    /// traffic meshes excel at.
    Neighbor,
    /// A fraction of traffic targets one hot node; the rest is uniform.
    Hotspot {
        /// The hot destination.
        hot: Coord,
        /// Fraction of packets sent to it (0..=1).
        fraction: f64,
    },
    /// Multicast: each packet targets `fanout` random destinations.
    Multicast {
        /// Destinations per packet.
        fanout: usize,
    },
}

/// Bernoulli packet injector implementing the patterns.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    mesh: Mesh,
    pattern: Pattern,
    /// Packet injection probability per node per cycle.
    injection_rate: f64,
    packet_len: usize,
    /// Optional bimodal length mix: `(short, long, long_fraction)` —
    /// the classic control/data split of coherence traffic.
    bimodal: Option<(usize, usize, f64)>,
    rng: Xoshiro256pp,
    next_id: u64,
}

impl TrafficGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the injection rate is outside `[0, 1]`, the packet
    /// length is zero, a hotspot fraction is outside `[0, 1]`, or a
    /// multicast fanout is zero or exceeds the mesh size.
    pub fn new(
        mesh: Mesh,
        pattern: Pattern,
        injection_rate: f64,
        packet_len: usize,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&injection_rate),
            "injection rate must be in [0, 1]"
        );
        assert!(packet_len > 0, "packets need at least one flit");
        match pattern {
            Pattern::Hotspot { fraction, hot } => {
                assert!(
                    (0.0..=1.0).contains(&fraction),
                    "hotspot fraction must be in [0, 1]"
                );
                assert!(mesh.contains(hot), "hotspot outside the mesh");
            }
            Pattern::Multicast { fanout } => {
                assert!(
                    fanout >= 1 && fanout < mesh.len(),
                    "multicast fanout must be in [1, nodes)"
                );
            }
            _ => {}
        }
        Self {
            mesh,
            pattern,
            injection_rate,
            packet_len,
            bimodal: None,
            rng: Xoshiro256pp::new(seed),
            next_id: 0,
        }
    }

    /// Switches to a bimodal packet-length mix: a `long_fraction` of
    /// packets carry `long` flits (cache lines), the rest `short` flits
    /// (control messages) — the realistic coherence-traffic shape.
    ///
    /// # Panics
    ///
    /// Panics if a length is zero or the fraction is outside `[0, 1]`.
    #[must_use]
    pub fn with_bimodal(mut self, short: usize, long: usize, long_fraction: f64) -> Self {
        assert!(short > 0 && long > 0, "packet lengths must be positive");
        assert!(
            (0.0..=1.0).contains(&long_fraction),
            "long fraction must be in [0, 1]"
        );
        self.bimodal = Some((short, long, long_fraction));
        self
    }

    /// The flit count for the next packet under the active length model.
    fn next_len(&mut self) -> usize {
        match self.bimodal {
            None => self.packet_len,
            Some((short, long, frac)) => {
                if self.rng.next_f64() < frac {
                    long
                } else {
                    short
                }
            }
        }
    }

    /// The pattern.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// Generates this cycle's new packet at `src`, if the Bernoulli coin
    /// lands.
    pub fn maybe_inject(&mut self, src: Coord, cycle: u64) -> Option<Packet> {
        if self.rng.next_f64() >= self.injection_rate {
            return None;
        }
        Some(self.make_packet(src, cycle))
    }

    /// Unconditionally generates one packet at `src` (for deterministic
    /// tests and drains).
    pub fn make_packet(&mut self, src: Coord, cycle: u64) -> Packet {
        let id = PacketId(self.next_id);
        self.next_id += 1;
        let len = self.next_len();
        match self.pattern {
            Pattern::UniformRandom => {
                let dst = self.random_other(src);
                Packet::unicast(id, src, dst, len, cycle)
            }
            Pattern::Transpose => {
                let dst = Coord::new(src.y % self.mesh.cols(), src.x % self.mesh.rows());
                Packet::unicast(id, src, dst, len, cycle)
            }
            Pattern::BitComplement => {
                let dst = Coord::new(self.mesh.cols() - 1 - src.x, self.mesh.rows() - 1 - src.y);
                Packet::unicast(id, src, dst, len, cycle)
            }
            Pattern::Neighbor => {
                let dst = Coord::new((src.x + 1) % self.mesh.cols(), src.y);
                Packet::unicast(id, src, dst, len, cycle)
            }
            Pattern::Hotspot { hot, fraction } => {
                let dst = if self.rng.next_f64() < fraction && hot != src {
                    hot
                } else {
                    self.random_other(src)
                };
                Packet::unicast(id, src, dst, len, cycle)
            }
            Pattern::Multicast { fanout } => {
                let mut dsts = Vec::with_capacity(fanout);
                while dsts.len() < fanout {
                    let d = self.random_other(src);
                    if !dsts.contains(&d) {
                        dsts.push(d);
                    }
                }
                dsts.sort();
                Packet::multicast(id, src, dsts, len, cycle)
            }
        }
    }

    fn random_other(&mut self, src: Coord) -> Coord {
        loop {
            let idx = self.rng.index(self.mesh.len());
            let c = self.mesh.coord_of(idx);
            if c != src {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(4, 4)
    }

    fn generator(pattern: Pattern) -> TrafficGenerator {
        TrafficGenerator::new(mesh(), pattern, 0.5, 5, 7)
    }

    #[test]
    fn uniform_never_self_targets() {
        let mut g = generator(Pattern::UniformRandom);
        let src = Coord::new(2, 2);
        for _ in 0..200 {
            let p = g.make_packet(src, 0);
            assert_ne!(p.dst(), src);
            assert!(mesh().contains(p.dst()));
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mut g = generator(Pattern::Transpose);
        let p = g.make_packet(Coord::new(1, 3), 0);
        assert_eq!(p.dst(), Coord::new(3, 1));
    }

    #[test]
    fn bit_complement_mirrors() {
        let mut g = generator(Pattern::BitComplement);
        let p = g.make_packet(Coord::new(0, 1), 0);
        assert_eq!(p.dst(), Coord::new(3, 2));
    }

    #[test]
    fn neighbor_goes_east_with_wrap() {
        let mut g = generator(Pattern::Neighbor);
        assert_eq!(g.make_packet(Coord::new(1, 2), 0).dst(), Coord::new(2, 2));
        assert_eq!(g.make_packet(Coord::new(3, 2), 0).dst(), Coord::new(0, 2));
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let hot = Coord::new(3, 3);
        let mut g = generator(Pattern::Hotspot { hot, fraction: 0.8 });
        let n = 500;
        let hits = (0..n)
            .filter(|_| g.make_packet(Coord::new(0, 0), 0).dst() == hot)
            .count();
        assert!(hits > n * 6 / 10, "only {hits}/{n} hit the hotspot");
    }

    #[test]
    fn multicast_has_unique_destinations() {
        let mut g = generator(Pattern::Multicast { fanout: 4 });
        let p = g.make_packet(Coord::new(0, 0), 0);
        assert_eq!(p.dsts.len(), 4);
        let mut sorted = p.dsts.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "destinations must be unique");
        assert!(p.is_multicast());
    }

    #[test]
    fn injection_rate_is_respected() {
        let mut g = TrafficGenerator::new(mesh(), Pattern::UniformRandom, 0.25, 5, 11);
        let n = 4000;
        let injected = (0..n)
            .filter(|&i| g.maybe_inject(Coord::new(1, 1), i).is_some())
            .count();
        let rate = injected as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "measured rate {rate}");
    }

    #[test]
    fn zero_rate_never_injects() {
        let mut g = TrafficGenerator::new(mesh(), Pattern::UniformRandom, 0.0, 5, 11);
        assert!((0..100).all(|i| g.maybe_inject(Coord::new(0, 0), i).is_none()));
    }

    #[test]
    fn packet_ids_are_unique_and_increasing() {
        let mut g = generator(Pattern::UniformRandom);
        let a = g.make_packet(Coord::new(0, 0), 0);
        let b = g.make_packet(Coord::new(0, 0), 0);
        assert!(b.id > a.id);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn oversized_fanout_rejected() {
        let _ = generator(Pattern::Multicast { fanout: 16 });
    }

    #[test]
    #[should_panic(expected = "injection rate")]
    fn bad_rate_rejected() {
        let _ = TrafficGenerator::new(mesh(), Pattern::UniformRandom, 1.5, 5, 0);
    }
}

#[cfg(test)]
mod bimodal_tests {
    use super::*;

    #[test]
    fn bimodal_mix_matches_fraction() {
        let mut g = TrafficGenerator::new(Mesh::new(4, 4), Pattern::UniformRandom, 0.5, 5, 3)
            .with_bimodal(1, 9, 0.25);
        let n = 2000;
        let longs = (0..n)
            .filter(|_| g.make_packet(Coord::new(0, 0), 0).len_flits == 9)
            .count();
        let frac = longs as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.04, "long fraction {frac}");
        // Every packet is one of the two lengths.
        for _ in 0..100 {
            let l = g.make_packet(Coord::new(1, 1), 0).len_flits;
            assert!(l == 1 || l == 9);
        }
    }

    #[test]
    fn unimodal_generator_is_unchanged() {
        let mut g = TrafficGenerator::new(Mesh::new(4, 4), Pattern::UniformRandom, 0.5, 5, 3);
        assert!((0..50).all(|_| g.make_packet(Coord::new(0, 0), 0).len_flits == 5));
    }

    #[test]
    #[should_panic(expected = "long fraction")]
    fn bad_fraction_rejected() {
        let _ = TrafficGenerator::new(Mesh::new(4, 4), Pattern::UniformRandom, 0.5, 5, 3)
            .with_bimodal(1, 9, 1.5);
    }
}
