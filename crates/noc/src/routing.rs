//! Routing algorithms: deterministic XY and a deadlock-free adaptive
//! alternative (west-first turn model).
//!
//! The paper's introduction cites minimal adaptive routing \[13\] among
//! the NoC techniques orthogonal to its datapath contribution. This
//! module provides it as a drop-in so the mesh substrate can evaluate
//! datapath energy under adaptive traffic spreading too:
//!
//! * [`RoutingAlgorithm::Xy`] — dimension-ordered, the default.
//! * [`RoutingAlgorithm::WestFirst`] — Glass/Ni turn model: any westward
//!   travel happens first, after which packets may route adaptively among
//!   the remaining (N/S/E) productive directions. Prohibiting the two
//!   turns into the west direction breaks every cycle in the channel
//!   dependence graph, so the algorithm is deadlock-free without extra
//!   virtual channels.

use crate::topology::{Coord, Direction, Mesh};

/// Which routing function routers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutingAlgorithm {
    /// Deterministic X-then-Y.
    #[default]
    Xy,
    /// West-first minimal adaptive.
    WestFirst,
}

impl RoutingAlgorithm {
    /// The productive output ports this algorithm permits at `here` for a
    /// packet to `dst`, in preference order. Always non-empty for
    /// `here != dst`; contains exactly `Local` when arrived.
    pub fn candidates(self, mesh: Mesh, here: Coord, dst: Coord) -> Vec<Direction> {
        if here == dst {
            return vec![Direction::Local];
        }
        match self {
            RoutingAlgorithm::Xy => vec![mesh.xy_route(here, dst)],
            RoutingAlgorithm::WestFirst => {
                // Any westward component must be exhausted first.
                if dst.x < here.x {
                    return vec![Direction::West];
                }
                let mut out = Vec::with_capacity(2);
                if dst.x > here.x {
                    out.push(Direction::East);
                }
                if dst.y > here.y {
                    out.push(Direction::North);
                } else if dst.y < here.y {
                    out.push(Direction::South);
                }
                out
            }
        }
    }

    /// `true` when the algorithm may return more than one candidate.
    pub fn is_adaptive(self) -> bool {
        matches!(self, RoutingAlgorithm::WestFirst)
    }
}

impl core::fmt::Display for RoutingAlgorithm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Xy => f.write_str("XY"),
            Self::WestFirst => f.write_str("west-first adaptive"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn xy_returns_the_single_dimension_ordered_port() {
        let c = RoutingAlgorithm::Xy.candidates(mesh(), Coord::new(1, 1), Coord::new(4, 5));
        assert_eq!(c, vec![Direction::East]);
    }

    #[test]
    fn west_first_exhausts_west_before_anything() {
        let c = RoutingAlgorithm::WestFirst.candidates(mesh(), Coord::new(5, 2), Coord::new(1, 6));
        assert_eq!(c, vec![Direction::West]);
    }

    #[test]
    fn west_first_is_adaptive_in_the_east_quadrant() {
        let c = RoutingAlgorithm::WestFirst.candidates(mesh(), Coord::new(1, 1), Coord::new(4, 5));
        assert_eq!(c, vec![Direction::East, Direction::North]);
    }

    #[test]
    fn candidates_are_always_productive() {
        // Every offered port reduces the distance to the destination.
        for algo in [RoutingAlgorithm::Xy, RoutingAlgorithm::WestFirst] {
            for (hx, hy, dx, dy) in [(0, 0, 7, 7), (7, 7, 0, 0), (3, 5, 3, 1), (6, 2, 2, 2)] {
                let here = Coord::new(hx, hy);
                let dst = Coord::new(dx, dy);
                for dir in algo.candidates(mesh(), here, dst) {
                    let next = mesh().neighbor(here, dir).expect("in mesh");
                    assert!(
                        next.hop_distance(dst) < here.hop_distance(dst),
                        "{algo}: unproductive {dir} at {here} -> {dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn west_first_never_turns_into_west() {
        // The turn-model invariant: once any non-west port is offered,
        // West is never among the candidates.
        for hx in 0..8u16 {
            for dxx in 0..8u16 {
                let here = Coord::new(hx, 3);
                let dst = Coord::new(dxx, 6);
                let c = RoutingAlgorithm::WestFirst.candidates(mesh(), here, dst);
                if c.contains(&Direction::West) {
                    assert_eq!(c, vec![Direction::West], "west must be exclusive");
                }
            }
        }
    }

    #[test]
    fn arrived_packets_go_local() {
        for algo in [RoutingAlgorithm::Xy, RoutingAlgorithm::WestFirst] {
            let c = algo.candidates(mesh(), Coord::new(2, 2), Coord::new(2, 2));
            assert_eq!(c, vec![Direction::Local]);
        }
    }

    #[test]
    fn adaptivity_flag() {
        assert!(!RoutingAlgorithm::Xy.is_adaptive());
        assert!(RoutingAlgorithm::WestFirst.is_adaptive());
        assert_eq!(RoutingAlgorithm::default(), RoutingAlgorithm::Xy);
    }
}
