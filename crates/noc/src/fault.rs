//! BER-driven link fault injection with CRC/NACK retransmission.
//!
//! The paper verifies the SRLR link to BER < 1e-9 with an on-chip PRBS
//! checker and argues that residual link errors are rare enough to
//! retransmit. This module closes the loop at the network layer: every
//! inter-router link flips flit bits with a configurable bit-error rate
//! (measured from the `srlr-link` physics, see
//! `srlr_link::error_model::LinkErrorModel`), receivers check the flit
//! CRC-16, and detected errors trigger a link-level NACK/retransmission
//! with a bounded retry count, an ACK timeout, and per-retry backoff.
//!
//! Determinism: each directed link owns its own counter-based RNG stream
//! (`srlr_rng::stream_seed(seed, link_index)`), so a simulation is a pure
//! function of its configuration regardless of traffic interleaving, and
//! sweeps fan out over threads ([`ber_sweep`]) bit-identically to a
//! serial run.
//!
//! Modelling choices, stated explicitly:
//!
//! * A clean traversal costs exactly one RNG draw; with `ber == 0` the
//!   draw is skipped entirely, so the fault path is zero-cost when
//!   disabled and delivery is bit-identical to a fault-free network.
//! * On a corrupted traversal the model flips real bits in the flit's
//!   80-bit codeword (64-bit payload + CRC-16) and runs the real CRC
//!   check, so undetected ("silent") corruption has the true CRC-16
//!   escape behaviour rather than an assumed probability.
//! * Retry `k` is delayed by `ack_timeout + backoff * (k - 1)` cycles on
//!   top of the normal link latency (NACK travels back over the reverse
//!   wire, the sender re-serialises after a growing backoff).
//! * A flit that exhausts its retries is *forced through* poisoned —
//!   dropping a wormhole flit would leave routes dangling — and the
//!   ejection port discards the whole packet, which is what the
//!   delivered/dropped accounting reports.

use crate::packet::{crc16, Flit};
use crate::protocol::{retry_step, AttemptOutcome, RetryState, RetryStep};
use crate::router::NocConfig;
use crate::stats::{Histogram, NetworkStats};
use crate::topology::{Coord, Direction, Mesh};
use crate::traffic::Pattern;
use srlr_rng::Xoshiro256pp;

/// Bits in the protected codeword: 64-bit payload + CRC-16.
const CODEWORD_BITS: usize = 80;

/// Per-link fault-injection and retransmission parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Raw per-bit error probability of every inter-router link.
    pub ber: f64,
    /// Seed of the per-link RNG streams (independent of the traffic
    /// seed, so enabling faults never perturbs the traffic pattern).
    pub seed: u64,
    /// Retransmissions allowed per flit per link before the link gives
    /// up and the packet is discarded at ejection.
    pub max_retries: u32,
    /// Cycles the sender waits for the ACK before retransmitting (the
    /// NACK round trip).
    pub ack_timeout: u64,
    /// Extra cycles added per successive retry of the same flit.
    pub backoff: u64,
}

impl FaultConfig {
    /// A fault model at the given BER with the default retransmission
    /// protocol (4 retries, 2-cycle ACK timeout, 1-cycle backoff step).
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `[0, 1)`.
    pub fn new(ber: f64) -> Self {
        let config = Self {
            ber,
            seed: 0xFA17,
            max_retries: 4,
            ack_timeout: 2,
            backoff: 1,
        };
        config.validate();
        config
    }

    /// Returns a copy with a different per-link RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different retry bound.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Returns a copy with different timing (ACK timeout, backoff step).
    #[must_use]
    pub fn with_timing(mut self, ack_timeout: u64, backoff: u64) -> Self {
        self.ack_timeout = ack_timeout;
        self.backoff = backoff;
        self
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `[0, 1)` or not finite.
    pub fn validate(&self) {
        assert!(
            self.ber.is_finite() && (0.0..1.0).contains(&self.ber),
            "BER must be in [0, 1), got {}",
            self.ber
        );
    }

    /// Probability that at least one bit of an 80-bit codeword flips in
    /// one traversal.
    pub fn word_error_probability(&self) -> f64 {
        // srlr-lint: allow(lossy-cast, reason = "powi takes i32; CODEWORD_BITS is the constant 80")
        1.0 - (1.0 - self.ber).powi(CODEWORD_BITS as i32)
    }
}

/// The outcome of pushing one flit across one faulty link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTransmission {
    /// Transmissions performed (1 = clean on the first try).
    pub attempts: u32,
    /// NACKs sent back over the reverse wire (detected corruptions).
    pub nacks: u32,
    /// `false` when the retry budget ran out — the flit went through
    /// poisoned and the packet must be discarded at ejection.
    pub delivered: bool,
    /// An undetected corruption slipped past the CRC.
    pub silent: bool,
    /// Cycles of retransmission delay added to the link latency.
    pub extra_delay: u64,
}

impl LinkTransmission {
    /// The clean, single-attempt outcome.
    fn clean(attempts: u32, nacks: u32, extra_delay: u64) -> Self {
        Self {
            attempts,
            nacks,
            delivered: true,
            silent: false,
            extra_delay,
        }
    }
}

/// Cumulative fault-injection event counts (plus the retry-delay
/// histogram), also used for per-window deltas in
/// [`crate::stats::NetworkStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTally {
    /// Link traversals corrupted (detected or silent).
    pub flits_corrupted: u64,
    /// Extra transmissions performed (retries, i.e. attempts beyond the
    /// first).
    pub flits_retransmitted: u64,
    /// Flits whose retry budget ran out (each poisons its packet).
    pub retries_exhausted: u64,
    /// Corruptions that slipped past the CRC undetected.
    pub silent_corruptions: u64,
    /// Packets discarded at ejection because a flit was poisoned.
    pub packets_dropped: u64,
    /// Histogram of per-flit retransmission delay (cycles added on top
    /// of the normal link latency), with explicit overflow.
    pub retry_delay: Histogram,
}

impl Default for FaultTally {
    fn default() -> Self {
        Self {
            flits_corrupted: 0,
            flits_retransmitted: 0,
            retries_exhausted: 0,
            silent_corruptions: 0,
            packets_dropped: 0,
            retry_delay: Histogram::new(Self::RETRY_DELAY_BINS),
        }
    }
}

impl FaultTally {
    /// Bin count of the retry-delay histogram (1-cycle bins).
    pub const RETRY_DELAY_BINS: usize = 64;

    /// The difference `self - earlier` (for measurement windows).
    #[must_use]
    pub fn diff(&self, earlier: &FaultTally) -> FaultTally {
        FaultTally {
            flits_corrupted: self.flits_corrupted - earlier.flits_corrupted,
            flits_retransmitted: self.flits_retransmitted - earlier.flits_retransmitted,
            retries_exhausted: self.retries_exhausted - earlier.retries_exhausted,
            silent_corruptions: self.silent_corruptions - earlier.silent_corruptions,
            packets_dropped: self.packets_dropped - earlier.packets_dropped,
            retry_delay: self.retry_delay.diff(&earlier.retry_delay),
        }
    }
}

/// The per-link fault injector: one deterministic RNG stream per
/// directed inter-router link.
#[derive(Debug, Clone)]
pub struct FaultModel {
    config: FaultConfig,
    mesh: Mesh,
    /// One stream per `(node, mesh direction)` sender, indexed
    /// `node * 4 + direction`.
    streams: Vec<Xoshiro256pp>,
    word_error: f64,
    tally: FaultTally,
}

impl FaultModel {
    /// Builds the injector for every directed link of `mesh`.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid.
    pub fn new(config: FaultConfig, mesh: Mesh) -> Self {
        config.validate();
        let streams = (0..mesh.len() * Direction::MESH.len())
            .map(|i| Xoshiro256pp::for_stream(config.seed, i as u64))
            .collect();
        Self {
            config,
            mesh,
            streams,
            word_error: config.word_error_probability(),
            tally: FaultTally::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Cumulative event counts since construction.
    pub fn tally(&self) -> &FaultTally {
        &self.tally
    }

    /// Records a packet discarded at the ejection port (called by the
    /// network when a poisoned tail ejects).
    pub fn note_packet_dropped(&mut self) {
        self.tally.packets_dropped += 1;
    }

    /// The stream index of the link leaving `from` through `dir`, or
    /// `None` for the local port (no link, no faults).
    fn stream_index(&self, from: Coord, dir: Direction) -> Option<usize> {
        dir.is_mesh()
            .then(|| self.mesh.index_of(from) * Direction::MESH.len() + dir.index())
    }

    /// Pushes `flit` across the link leaving `from` through `dir`,
    /// sampling corruption, CRC detection and the retransmission
    /// protocol. Local-port "traversals" are fault-free by construction.
    ///
    /// The protocol semantics live in [`crate::protocol::retry_step`]
    /// (shared verbatim with the `srlr-model` checker); this method only
    /// samples the per-attempt [`AttemptOutcome`]s from the link's RNG
    /// stream and keeps the tallies.
    pub fn transmit(&mut self, from: Coord, dir: Direction, flit: &Flit) -> LinkTransmission {
        let Some(stream) = self.stream_index(from, dir) else {
            return LinkTransmission::clean(1, 0, 0);
        };
        let mut state = RetryState::start();
        loop {
            let corrupted =
                self.word_error > 0.0 && self.streams[stream].next_f64() < self.word_error;
            let outcome = if corrupted {
                self.tally.flits_corrupted += 1;
                let (payload, crc) = corrupt_codeword(
                    &mut self.streams[stream],
                    flit.payload,
                    flit.crc,
                    self.config.ber,
                );
                if crc16(payload) == crc {
                    // The CRC check passes on corrupted bits: silent escape.
                    AttemptOutcome::Silent
                } else {
                    // Detected: NACK back to the sender.
                    AttemptOutcome::Detected
                }
            } else {
                AttemptOutcome::Clean
            };
            match retry_step(&self.config, state, outcome) {
                RetryStep::Continue(next) => {
                    state = next;
                    self.tally.flits_retransmitted += 1;
                }
                RetryStep::Done(tx) => {
                    if tx.silent {
                        self.tally.silent_corruptions += 1;
                    }
                    if !tx.delivered {
                        self.tally.retries_exhausted += 1;
                    }
                    if (tx.silent || !tx.delivered) && tx.extra_delay > 0 {
                        self.tally.retry_delay.record(tx.extra_delay);
                    }
                    return tx;
                }
            }
        }
    }
}

/// Flips bits of the 80-bit codeword, conditioned on at least one flip
/// (the caller already decided the word is corrupted): the first flipped
/// position is uniform, every other bit flips independently with
/// probability `ber` — the exact conditional distribution up to the
/// (negligible, O(ber)) bias of pinning one flip.
fn corrupt_codeword(rng: &mut Xoshiro256pp, payload: u64, crc: u16, ber: f64) -> (u64, u16) {
    let first = rng.index(CODEWORD_BITS);
    let mut word = (u128::from(payload) << 16) | u128::from(crc);
    word ^= 1u128 << first;
    for bit in 0..CODEWORD_BITS {
        if bit != first && rng.next_f64() < ber {
            word ^= 1u128 << bit;
        }
    }
    // srlr-lint: allow(lossy-cast, reason = "intentional split of the 80-bit codeword: low 16 bits are the CRC, the rest the payload")
    (((word >> 16) as u64), (word as u16))
}

/// One point of a BER sweep: the fault configuration it ran at and the
/// measured window statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepPoint {
    /// The injected bit-error rate.
    pub ber: f64,
    /// The measured window.
    pub stats: NetworkStats,
}

/// Sweeps the injected BER over otherwise-identical networks, fanning
/// the points out over `threads` workers (`None` defers to
/// `SRLR_THREADS` / the machine). Every point is a pure function of
/// `(base, pattern, load, ber)`, so results are bit-identical at every
/// thread count.
///
/// # Panics
///
/// Panics if `bers` is empty, a BER is outside `[0, 1)`, or the load /
/// window parameters are invalid for [`crate::Network`].
#[allow(clippy::too_many_arguments)]
pub fn ber_sweep(
    base: NocConfig,
    template: FaultConfig,
    pattern: Pattern,
    load: f64,
    warmup: u64,
    measure: u64,
    bers: &[f64],
    threads: Option<usize>,
) -> Vec<FaultSweepPoint> {
    let mut obs = srlr_telemetry::Obs::none();
    ber_sweep_observed(
        base, template, pattern, load, warmup, measure, bers, threads, &mut obs,
    )
}

/// [`ber_sweep`] with telemetry: one `point` span per BER point (track =
/// point index, so the merged stream is identical at every thread
/// count), per-point `ber.point.NNN.*` metrics including the latency
/// histogram summary, `ber.points` / `ber.packets_*` counters, and a
/// progress tick per point. An enabled `obs.profiler` gets a
/// `noc.sweep` frame over per-point `noc.point` frames wrapping the
/// network's `noc.warmup` / `noc.measure` phases, merged in point
/// order. With an inactive `obs` this is exactly [`ber_sweep`]: no
/// allocation, no overhead beyond one branch.
///
/// # Panics
///
/// Panics under the same conditions as [`ber_sweep`].
#[allow(clippy::too_many_arguments)]
pub fn ber_sweep_observed(
    base: NocConfig,
    template: FaultConfig,
    pattern: Pattern,
    load: f64,
    warmup: u64,
    measure: u64,
    bers: &[f64],
    threads: Option<usize>,
    obs: &mut srlr_telemetry::Obs,
) -> Vec<FaultSweepPoint> {
    use srlr_telemetry::{Profiler, Value};
    assert!(!bers.is_empty(), "need at least one BER point");
    let workers = srlr_parallel::resolve_threads(threads);
    let run_point = |i: usize, prof: &mut Profiler| {
        let ber = bers[i];
        let fault = FaultConfig { ber, ..template };
        let mut net = crate::Network::new(base.with_faults(fault));
        let stats = net.run_warmup_and_measure_profiled(pattern, load, warmup, measure, prof);
        FaultSweepPoint { ber, stats }
    };
    if !obs.is_active() {
        return srlr_parallel::par_map_indexed(bers.len(), workers, |i| {
            run_point(i, &mut Profiler::disabled())
        });
    }
    obs.profiler.enter("noc.sweep");
    let (collector, progress, profiler) = (&obs.collector, &obs.progress, &obs.profiler);
    let observed = srlr_parallel::par_map_indexed(bers.len(), workers, |i| {
        let mut prof = profiler.child();
        prof.enter("noc.point");
        let point = run_point(i, &mut prof);
        prof.exit();
        let mut child = collector.child();
        child.span(
            "point",
            "ber-sweep",
            i as f64,
            1.0,
            i as u64,
            &[
                ("point", Value::U64(i as u64)),
                ("ber", Value::F64(point.ber)),
                ("received", Value::U64(point.stats.packets_received)),
                ("dropped", Value::U64(point.stats.packets_dropped)),
            ],
        );
        let prefix = format!("ber.point.{i:03}");
        child.set_metric(&format!("{prefix}.ber"), Value::F64(point.ber));
        child.set_metric(
            &format!("{prefix}.packets_received"),
            Value::U64(point.stats.packets_received),
        );
        child.set_metric(
            &format!("{prefix}.packets_dropped"),
            Value::U64(point.stats.packets_dropped),
        );
        child.set_metric(
            &format!("{prefix}.delivered_fraction"),
            Value::F64(point.stats.delivered_fraction()),
        );
        if let Some((lo, hi)) = point.stats.delivered_interval_95() {
            child.set_metric(&format!("{prefix}.delivered_lower_95"), Value::F64(lo));
            child.set_metric(&format!("{prefix}.delivered_upper_95"), Value::F64(hi));
        }
        child.set_metric(
            &format!("{prefix}.retries_exhausted"),
            Value::U64(point.stats.faults.retries_exhausted),
        );
        for (name, value) in point
            .stats
            .latency_histogram
            .summary()
            .metric_fields(&format!("{prefix}.latency"))
        {
            child.set_metric(&name, value);
        }
        progress.tick();
        (point, child, prof)
    });
    let mut points = Vec::with_capacity(observed.len());
    for (point, child, prof) in observed {
        obs.collector.merge(child);
        obs.profiler.merge(prof);
        obs.collector.add("ber.points", 1);
        obs.collector
            .add("ber.packets_received", point.stats.packets_received);
        obs.collector
            .add("ber.packets_dropped", point.stats.packets_dropped);
        points.push(point);
    }
    obs.profiler.exit();
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketId};

    fn flit() -> Flit {
        Packet::unicast(PacketId(3), Coord::new(0, 0), Coord::new(3, 3), 1, 0)
            .flits(Coord::new(3, 3))[0]
    }

    fn model(ber: f64) -> FaultModel {
        FaultModel::new(FaultConfig::new(ber), Mesh::new(4, 4))
    }

    #[test]
    fn zero_ber_is_always_clean_and_draws_nothing() {
        let mut fm = model(0.0);
        let before = fm.streams.clone();
        for _ in 0..100 {
            let tx = fm.transmit(Coord::new(1, 1), Direction::East, &flit());
            assert_eq!(tx, LinkTransmission::clean(1, 0, 0));
        }
        assert_eq!(fm.streams, before, "ber=0 must not advance any stream");
        assert_eq!(fm.tally(), &FaultTally::default());
    }

    #[test]
    fn local_port_is_fault_free() {
        let mut fm = model(0.9);
        let tx = fm.transmit(Coord::new(1, 1), Direction::Local, &flit());
        assert_eq!(tx, LinkTransmission::clean(1, 0, 0));
    }

    #[test]
    fn high_ber_corrupts_and_retries() {
        let mut fm = model(0.05);
        let mut retried = 0;
        for _ in 0..400 {
            let tx = fm.transmit(Coord::new(1, 1), Direction::East, &flit());
            assert!(tx.attempts >= 1 && tx.attempts <= fm.config.max_retries + 1);
            if tx.attempts > 1 {
                retried += 1;
                assert!(tx.nacks >= 1, "a retry implies a NACK");
                assert!(tx.extra_delay >= fm.config.ack_timeout);
            }
        }
        assert!(retried > 0, "5 % BER must trigger retransmissions");
        assert!(fm.tally().flits_corrupted > 0);
        assert!(fm.tally().flits_retransmitted > 0);
    }

    #[test]
    fn extreme_ber_exhausts_retries() {
        // Near-certain corruption: every attempt fails, the budget runs
        // out, and the flit is reported undelivered (poisoned).
        let mut fm = model(0.5);
        let mut exhausted = 0;
        for _ in 0..50 {
            let tx = fm.transmit(Coord::new(0, 0), Direction::North, &flit());
            if !tx.delivered {
                exhausted += 1;
                assert_eq!(tx.attempts, fm.config.max_retries + 1);
            }
        }
        assert!(exhausted > 0, "0.5 BER must exhaust some retry budgets");
        assert_eq!(fm.tally().retries_exhausted, exhausted);
    }

    #[test]
    fn builders_compose() {
        let config = FaultConfig::new(1e-6)
            .with_seed(7)
            .with_max_retries(9)
            .with_timing(3, 2);
        assert_eq!(config.seed, 7);
        assert_eq!(config.max_retries, 9);
        assert_eq!(config.ack_timeout, 3);
        assert_eq!(config.backoff, 2);
    }

    #[test]
    fn streams_are_per_link_and_deterministic() {
        let run = |ops: &[(Coord, Direction)]| {
            let mut fm = model(0.02);
            ops.iter()
                .map(|&(c, d)| fm.transmit(c, d, &flit()))
                .collect::<Vec<_>>()
        };
        let a = Coord::new(1, 1);
        let b = Coord::new(2, 2);
        // Interleaving traffic on link B must not perturb link A's draws.
        let solo: Vec<_> = run(&[(a, Direction::East), (a, Direction::East)]);
        let interleaved = run(&[
            (a, Direction::East),
            (b, Direction::North),
            (a, Direction::East),
        ]);
        assert_eq!(solo[0], interleaved[0]);
        assert_eq!(solo[1], interleaved[2]);
    }

    #[test]
    fn corrupt_codeword_always_changes_something() {
        let mut rng = Xoshiro256pp::new(5);
        let f = flit();
        for _ in 0..200 {
            let (p, c) = corrupt_codeword(&mut rng, f.payload, f.crc, 1e-4);
            assert!(p != f.payload || c != f.crc);
        }
    }

    #[test]
    fn word_error_probability_scales_with_ber() {
        let small = FaultConfig::new(1e-6).word_error_probability();
        let large = FaultConfig::new(1e-3).word_error_probability();
        assert!(small < large);
        assert!((small - 80e-6).abs() / 80e-6 < 0.01, "p ≈ 80·ber: {small}");
        assert_eq!(FaultConfig::new(0.0).word_error_probability(), 0.0);
    }

    #[test]
    #[should_panic(expected = "BER must be in [0, 1)")]
    fn invalid_ber_rejected() {
        let _ = FaultConfig::new(1.5);
    }

    #[test]
    fn observed_ber_sweep_matches_unobserved_and_is_thread_invariant() {
        let bers = [0.0, 1e-3, 5e-3];
        let run = |threads: usize, observe: bool| {
            let mut obs = if observe {
                srlr_telemetry::Obs {
                    collector: srlr_telemetry::Collector::enabled("point-index"),
                    ..srlr_telemetry::Obs::default()
                }
            } else {
                srlr_telemetry::Obs::none()
            };
            let points = ber_sweep_observed(
                NocConfig::paper_default().with_size(4, 4),
                FaultConfig::new(0.0),
                Pattern::UniformRandom,
                0.05,
                100,
                400,
                &bers,
                Some(threads),
                &mut obs,
            );
            let mut jsonl = Vec::new();
            obs.collector
                .write_events_jsonl(&mut jsonl)
                .expect("in-memory write");
            (points, jsonl)
        };
        let (plain, empty) = run(1, false);
        assert!(empty.is_empty(), "inactive obs records nothing");
        let (p1, t1) = run(1, true);
        let (p2, t2) = run(2, true);
        let (p8, t8) = run(8, true);
        assert_eq!(plain, p1, "observation must not perturb results");
        assert_eq!(p1, p2);
        assert_eq!(p1, p8);
        assert_eq!(t1, t2, "telemetry must be bit-identical at 2 threads");
        assert_eq!(t1, t8, "telemetry must be bit-identical at 8 threads");
        let text = String::from_utf8(t1).expect("utf8");
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("\"type\":\"span\""))
                .count(),
            bers.len(),
            "one span per BER point"
        );
        assert!(text.contains("\"ber.point.001.latency.p50\""));
        assert!(
            text.contains("\"ber.point.001.delivered_lower_95\"")
                && text.contains("\"ber.point.001.delivered_upper_95\""),
            "the Wilson interval must be exposed per sweep point"
        );
        assert!(text.contains("\"name\":\"ber.points\",\"value\":3"));
    }

    #[test]
    fn ber_sweep_profile_is_thread_invariant_and_frames_every_point() {
        use srlr_telemetry::{Clock, Profiler};
        let bers = [0.0, 1e-3, 5e-3];
        let profile_at = |threads: usize| {
            let mut obs = srlr_telemetry::Obs {
                profiler: Profiler::enabled(Clock::tick(1.0)),
                ..srlr_telemetry::Obs::default()
            };
            let _ = ber_sweep_observed(
                NocConfig::paper_default().with_size(4, 4),
                FaultConfig::new(0.0),
                Pattern::UniformRandom,
                0.05,
                100,
                400,
                &bers,
                Some(threads),
                &mut obs,
            );
            obs.profiler.snapshot()
        };
        let p1 = profile_at(1);
        for threads in [2usize, 8] {
            assert_eq!(
                p1,
                profile_at(threads),
                "profile diverged at {threads} threads"
            );
        }
        let count_of = |name: &str| -> u64 {
            p1.nodes
                .iter()
                .filter(|n| n.name == name)
                .map(|n| n.count)
                .sum()
        };
        assert_eq!(count_of("noc.sweep"), 1);
        assert_eq!(count_of("noc.point"), bers.len() as u64);
        assert_eq!(count_of("noc.warmup"), bers.len() as u64);
        assert_eq!(count_of("noc.measure"), bers.len() as u64);
    }

    #[test]
    fn sampled_transmissions_replay_through_the_pure_automaton() {
        // Lockstep with `crate::protocol`: every transmission the RNG-driven
        // fault model produces on a seeded run, replayed through the pure
        // automaton the model checker enumerates, must reproduce itself
        // bit-for-bit — attempts, NACKs, delay and delivery flags.
        use crate::protocol::replay_transmission;
        let dirs = [
            Direction::East,
            Direction::North,
            Direction::West,
            Direction::South,
        ];
        for (seed, ber) in [(1u64, 0.05), (2, 0.2), (3, 0.45)] {
            let config = FaultConfig::new(ber).with_seed(seed).with_max_retries(3);
            let mut fm = FaultModel::new(config, Mesh::new(4, 4));
            for k in 0..1500usize {
                let from = Coord::new((k % 3) as u16 + 1, (k % 2) as u16 + 1);
                let tx = fm.transmit(from, dirs[k % dirs.len()], &flit());
                assert_eq!(
                    replay_transmission(fm.config(), &tx),
                    Some(tx),
                    "seed {seed} ber {ber} transmission {k} diverged from the automaton"
                );
            }
        }
    }

    #[test]
    fn tally_diff_subtracts() {
        let mut fm = model(0.1);
        for _ in 0..50 {
            let _ = fm.transmit(Coord::new(0, 0), Direction::East, &flit());
        }
        let before = fm.tally().clone();
        for _ in 0..50 {
            let _ = fm.transmit(Coord::new(0, 0), Direction::East, &flit());
        }
        let d = fm.tally().diff(&before);
        assert_eq!(
            d.flits_corrupted + before.flits_corrupted,
            fm.tally().flits_corrupted
        );
    }
}
