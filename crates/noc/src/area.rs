//! Router floorplan area model.
//!
//! The paper quotes a 0.34 mm² three-stage router (64 bits, 5 ports,
//! 4 VCs, 16 buffers) and shows its SRLR datapath occupying ≈18 % of that
//! footprint. This module decomposes the router into DSENT-style
//! components — flip-flop input buffers, crossbar wiring, allocators,
//! miscellaneous control — so the 0.34 mm² is *derived* from the
//! configuration rather than quoted, and the area can be swept with the
//! router parameters.

use crate::router::NocConfig;
use srlr_core::SrlrArea;
use srlr_units::Area;

/// Calibrated per-component area constants (45 nm class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterAreaModel {
    /// Area of one buffered bit (flip-flop + input mux), um².
    pub buffer_cell_um2: f64,
    /// Crossbar wiring pitch per bit-track, um.
    pub crossbar_track_um: f64,
    /// Area of one VC/switch arbitration point, um².
    pub arbiter_cell_um2: f64,
    /// Fixed control/clocking overhead, um².
    pub control_fixed_um2: f64,
    /// The SRLR datapath cells.
    pub srlr: SrlrArea,
    /// SRLR columns per port-bit path (the paper's 4).
    pub srlr_columns: usize,
}

impl RouterAreaModel {
    /// Constants calibrated so the paper's configuration lands on
    /// 0.34 mm² with an 18 % datapath share.
    pub fn paper_default() -> Self {
        Self {
            buffer_cell_um2: 20.0,
            crossbar_track_um: 0.8,
            arbiter_cell_um2: 100.0,
            control_fixed_um2: 70_000.0,
            srlr: SrlrArea::paper_default(),
            srlr_columns: 4,
        }
    }

    /// Input-buffer area: every port buffers `vcs x depth` flits of
    /// `flit_bits` bits.
    pub fn buffer_area(&self, config: &NocConfig) -> Area {
        let bits = config.flit_bits * 5 * config.vcs * config.buffer_depth;
        Area::from_square_micrometers(self.buffer_cell_um2 * bits as f64)
    }

    /// Crossbar area: a `bits x ports` track matrix on both axes.
    pub fn crossbar_area(&self, config: &NocConfig) -> Area {
        let side = config.flit_bits as f64 * 5.0 * self.crossbar_track_um;
        Area::from_square_micrometers(side * side)
    }

    /// Allocator area: `ports² x vcs²` arbitration points.
    pub fn allocator_area(&self, config: &NocConfig) -> Area {
        Area::from_square_micrometers(
            25.0 * (config.vcs * config.vcs) as f64 * self.arbiter_cell_um2,
        )
    }

    /// Fixed control/clock overhead.
    pub fn control_area(&self) -> Area {
        Area::from_square_micrometers(self.control_fixed_um2)
    }

    /// SRLR datapath area (the Fig. 7 accounting).
    pub fn datapath_area(&self, config: &NocConfig) -> Area {
        self.srlr
            .datapath_area(config.flit_bits, 5, self.srlr_columns)
    }

    /// Total router area.
    pub fn total_area(&self, config: &NocConfig) -> Area {
        self.buffer_area(config)
            + self.crossbar_area(config)
            + self.allocator_area(config)
            + self.control_area()
            + self.datapath_area(config)
    }

    /// Datapath share of the footprint (the paper's ≈18 %).
    pub fn datapath_fraction(&self, config: &NocConfig) -> f64 {
        self.datapath_area(config).square_meters() / self.total_area(config).square_meters()
    }

    /// A rendered breakdown table.
    pub fn render(&self, config: &NocConfig) -> String {
        let rows = [
            ("input buffers", self.buffer_area(config)),
            ("crossbar wiring", self.crossbar_area(config)),
            ("allocators", self.allocator_area(config)),
            ("control/clock", self.control_area()),
            ("SRLR datapath", self.datapath_area(config)),
        ];
        let total = self.total_area(config);
        let mut out = String::new();
        for (label, area) in rows {
            out.push_str(&format!(
                "{label:<18} {:>9.4} mm^2  ({:>4.1} %)\n",
                area.square_millimeters(),
                area.square_meters() / total.square_meters() * 100.0
            ));
        }
        out.push_str(&format!(
            "{:<18} {:>9.4} mm^2\n",
            "total",
            total.square_millimeters()
        ));
        out
    }
}

impl Default for RouterAreaModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> (RouterAreaModel, NocConfig) {
        (RouterAreaModel::paper_default(), NocConfig::paper_default())
    }

    #[test]
    fn total_area_matches_the_paper_router() {
        let (m, c) = paper();
        let total = m.total_area(&c).square_millimeters();
        assert!((total - 0.34).abs() < 0.02, "router area {total} mm^2");
    }

    #[test]
    fn datapath_share_is_about_18_percent() {
        let (m, c) = paper();
        let frac = m.datapath_fraction(&c);
        assert!((frac - 0.18).abs() < 0.015, "fraction {frac}");
    }

    #[test]
    fn buffers_scale_with_vc_count() {
        let (m, c) = paper();
        let more_vcs = NocConfig { vcs: 8, ..c };
        assert!(
            (m.buffer_area(&more_vcs).square_meters() / m.buffer_area(&c).square_meters() - 2.0)
                .abs()
                < 1e-9
        );
        // Allocators grow quadratically in VCs.
        assert!(
            m.allocator_area(&more_vcs).square_meters() / m.allocator_area(&c).square_meters()
                > 3.9
        );
    }

    #[test]
    fn crossbar_scales_quadratically_with_width() {
        let (m, c) = paper();
        let wide = NocConfig {
            flit_bits: 128,
            ..c
        };
        let ratio = m.crossbar_area(&wide).square_meters() / m.crossbar_area(&c).square_meters();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn render_lists_components_and_total() {
        let (m, c) = paper();
        let text = m.render(&c);
        assert!(text.contains("input buffers"));
        assert!(text.contains("SRLR datapath"));
        assert!(text.contains("total"));
        assert_eq!(text.lines().count(), 6);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(RouterAreaModel::default(), RouterAreaModel::paper_default());
    }
}
