//! Express channels: the alternative the paper's introduction argues
//! against.
//!
//! Long equalized links can be used as *express channels* between
//! far-away routers (\[28\] CNoC, \[29\] express cubes). That shortens
//! hop counts but (a) raises router radix — more ports, more crossbar
//! area — and (b) moves traffic onto long point-to-point wires whose
//! drivers are huge (the \[26\] 10 mm driver is 1760 um² per bit). This
//! module quantifies that trade against the SRLR mesh analytically: hop
//! counts under uniform traffic, datapath energy per average transfer,
//! and router area overhead.

use crate::topology::{Coord, Mesh};
use srlr_link::baselines::EqualizedLink;
use srlr_link::SrlrLink;
use srlr_tech::Technology;
use srlr_units::{Area, EnergyPerBit, Length};

/// A mesh augmented with express channels along rows and columns every
/// `interval` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpressTopology {
    mesh: Mesh,
    interval: u16,
}

impl ExpressTopology {
    /// Creates an express mesh.
    ///
    /// # Panics
    ///
    /// Panics if `interval < 2` (interval 1 is the plain mesh) or the
    /// interval exceeds the mesh dimensions.
    pub fn new(mesh: Mesh, interval: u16) -> Self {
        assert!(interval >= 2, "express interval must be at least 2");
        assert!(
            interval < mesh.cols().max(mesh.rows()),
            "express interval exceeds the mesh"
        );
        Self { mesh, interval }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Express interval in hops.
    pub fn interval(&self) -> u16 {
        self.interval
    }

    /// Hops from `src` to `dst` using express channels greedily along
    /// each dimension: express hops cover `interval` nodes each, local
    /// hops the remainder. Returns `(express_hops, local_hops)`.
    pub fn route_hops(&self, src: Coord, dst: Coord) -> (u32, u32) {
        let k = u32::from(self.interval);
        let dx = (i32::from(src.x) - i32::from(dst.x)).unsigned_abs();
        let dy = (i32::from(src.y) - i32::from(dst.y)).unsigned_abs();
        // Express stations sit on multiples of `interval`; a greedy ride
        // still pays local hops to reach/leave stations. First-order:
        // each dimension uses floor(d/k) express hops + (d mod k) locals.
        let (ex, lx) = (dx / k, dx % k);
        let (ey, ly) = (dy / k, dy % k);
        (ex + ey, lx + ly)
    }

    /// Average `(express, local)` hops over uniform all-pairs traffic.
    pub fn average_hops(&self) -> (f64, f64) {
        let mut express = 0u64;
        let mut local = 0u64;
        let mut pairs = 0u64;
        for src in self.mesh.iter() {
            for dst in self.mesh.iter() {
                if src == dst {
                    continue;
                }
                let (e, l) = self.route_hops(src, dst);
                express += u64::from(e);
                local += u64::from(l);
                pairs += 1;
            }
        }
        (express as f64 / pairs as f64, local as f64 / pairs as f64)
    }

    /// Average plain-mesh hop count over uniform all-pairs traffic.
    pub fn baseline_average_hops(&self) -> f64 {
        let mut total = 0u64;
        let mut pairs = 0u64;
        for src in self.mesh.iter() {
            for dst in self.mesh.iter() {
                if src != dst {
                    total += u64::from(src.hop_distance(dst));
                    pairs += 1;
                }
            }
        }
        total as f64 / pairs as f64
    }

    /// Extra ports each express-station router needs (one per direction
    /// per dimension), relative to the 5-port baseline.
    pub fn extra_ports_at_stations(&self) -> usize {
        4
    }
}

/// Energy/area comparison: SRLR mesh vs express mesh with equalized
/// express channels, under uniform traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpressComparison {
    /// Average per-bit energy of a transfer on the plain SRLR mesh.
    pub srlr_energy_per_bit: EnergyPerBit,
    /// Average per-bit energy on the express mesh (equalized express
    /// hops + SRLR local hops).
    pub express_energy_per_bit: EnergyPerBit,
    /// Average hops on the plain mesh.
    pub srlr_avg_hops: f64,
    /// Average `(express, local)` hops on the express mesh.
    pub express_avg_hops: (f64, f64),
    /// Per-bit driver area of one equalized express channel.
    pub express_driver_area: Area,
    /// Area of the SRLRs replaced per bit-lane hop.
    pub srlr_cell_area: Area,
}

impl ExpressComparison {
    /// Evaluates the trade on the given express topology, with SRLR local
    /// hops of 1 mm and equalized express channels of `interval` mm.
    pub fn evaluate(tech: &Technology, topology: ExpressTopology) -> Self {
        let srlr = SrlrLink::paper_test_chip(tech).metrics().energy;
        let hop = Length::from_millimeters(1.0);
        let srlr_per_hop = srlr * hop;

        let equalized = EqualizedLink::jssc10_reference();
        let express_len = Length::from_millimeters(f64::from(topology.interval()));
        let express_per_hop = equalized.energy_per_bit_length() * express_len;

        let baseline_hops = topology.baseline_average_hops();
        let (e_hops, l_hops) = topology.average_hops();

        Self {
            srlr_energy_per_bit: EnergyPerBit::from_joules_per_bit(
                srlr_per_hop.value() * baseline_hops,
            ),
            express_energy_per_bit: EnergyPerBit::from_joules_per_bit(
                express_per_hop.value() * e_hops + srlr_per_hop.value() * l_hops,
            ),
            srlr_avg_hops: baseline_hops,
            express_avg_hops: (e_hops, l_hops),
            express_driver_area: equalized.driver_area,
            srlr_cell_area: Area::from_square_micrometers(47.9),
        }
    }

    /// Router-visit reduction of the express mesh (latency proxy).
    pub fn hop_reduction(&self) -> f64 {
        let (e, l) = self.express_avg_hops;
        1.0 - (e + l) / self.srlr_avg_hops
    }

    /// Energy ratio express / SRLR mesh (>1 means express costs more).
    pub fn energy_ratio(&self) -> f64 {
        self.express_energy_per_bit.value() / self.srlr_energy_per_bit.value()
    }

    /// Driver-area ratio of one express bit-lane vs one SRLR cell.
    pub fn driver_area_ratio(&self) -> f64 {
        self.express_driver_area.value() / self.srlr_cell_area.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ExpressTopology {
        ExpressTopology::new(Mesh::new(8, 8), 4)
    }

    #[test]
    fn express_routes_split_correctly() {
        let t = topo();
        // 7 east: one 4-hop express + 3 locals.
        let (e, l) = t.route_hops(Coord::new(0, 0), Coord::new(7, 0));
        assert_eq!((e, l), (1, 3));
        // Short trips never use express.
        let (e, l) = t.route_hops(Coord::new(0, 0), Coord::new(2, 1));
        assert_eq!((e, l), (0, 3));
    }

    #[test]
    fn express_reduces_router_visits() {
        let c = ExpressComparison::evaluate(&Technology::soi45(), topo());
        assert!(c.hop_reduction() > 0.1, "reduction {}", c.hop_reduction());
        let (e, l) = c.express_avg_hops;
        assert!(e + l < c.srlr_avg_hops);
    }

    #[test]
    fn express_costs_more_datapath_energy() {
        // The paper's argument: equalized express wires are less
        // efficient per mm than repeated SRLR hops on local traffic.
        let c = ExpressComparison::evaluate(&Technology::soi45(), topo());
        assert!(
            c.energy_ratio() > 1.0,
            "express should cost more energy: ratio {}",
            c.energy_ratio()
        );
    }

    #[test]
    fn express_driver_area_is_prohibitive() {
        let c = ExpressComparison::evaluate(&Technology::soi45(), topo());
        // 1760 um² vs 47.9 um²: >35x, the paper's Sec. I number.
        assert!(c.driver_area_ratio() > 35.0);
    }

    #[test]
    fn stations_need_higher_radix() {
        assert_eq!(topo().extra_ports_at_stations(), 4);
    }

    #[test]
    fn average_hops_match_known_mesh_value() {
        // 8x8 mesh: per-axis mean |dx| = (n^2-1)/(3n) = 2.625, doubled is
        // 5.25 over all ordered pairs including self; excluding the n^2
        // self pairs rescales by 4096/4032 => 5.333.
        let t = topo();
        assert!((t.baseline_average_hops() - 5.333).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn interval_one_rejected() {
        let _ = ExpressTopology::new(Mesh::new(8, 8), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds the mesh")]
    fn oversized_interval_rejected() {
        let _ = ExpressTopology::new(Mesh::new(4, 4), 5);
    }
}
