//! A cycle-accurate 2-D mesh network-on-chip substrate with activity-based
//! power accounting.
//!
//! The paper embeds its low-swing SRLR datapath inside a classic 5-port
//! mesh router (Fig. 1: input buffers, control logic, crossbar, links) and
//! reports the resulting router power split — input buffers 38.8 mW,
//! control 5.2 mW, SRLR datapath 12.9 mW — plus the Sec. I observation
//! that links + crossbars dominate mesh NoC power (69 % in RAW, 64 % in
//! TRIPS, 32 % in TeraFLOPS). This crate provides the NoC those numbers
//! live in:
//!
//! * [`topology`] — mesh coordinates, ports and XY routing,
//! * [`packet`] — packets and flits,
//! * [`router`] — a 3-stage virtual-channel wormhole router with
//!   credit-based flow control (4 VCs × 4-flit buffers by default, the
//!   paper's 16-buffer configuration),
//! * [`network`] — the cycle-accurate simulator,
//! * [`traffic`] — synthetic traffic patterns (uniform, transpose,
//!   bit-complement, neighbour, hotspot) and multicast generation,
//! * [`stats`] — latency/throughput collection with overflow-aware
//!   histograms,
//! * [`fault`] — BER-driven link fault injection with CRC-16 detection
//!   and bounded NACK/retransmission (the system-level consequence of
//!   the paper's measured link BER),
//! * [`protocol`] — the pure retry/scheduling transition functions the
//!   fault model and the `srlr-model` exhaustive checker share,
//! * [`power`] — per-event energy accounting with a pluggable datapath
//!   (full-swing repeated wires vs the SRLR low-swing datapath), the
//!   published RAW/TRIPS/TeraFLOPS breakdowns, and the paper's router
//!   power calibration,
//! * [`multicast`] — shared-prefix tree accounting for the SRLR's free
//!   1-to-N multicast.
//!
//! # Examples
//!
//! ```
//! use srlr_noc::{NocConfig, Network, traffic::Pattern};
//!
//! let config = NocConfig::paper_default().with_size(4, 4);
//! let mut net = Network::new(config);
//! let stats = net.run_warmup_and_measure(Pattern::UniformRandom, 0.05, 500, 1500);
//! assert!(stats.packets_received > 0);
//! assert!(stats.avg_latency_cycles() < 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod bufferless;
pub mod express;
pub mod fault;
pub mod multicast;
pub mod network;
pub mod packet;
pub mod power;
pub mod protocol;
pub mod router;
pub mod routing;
pub mod stats;
pub mod topology;
pub mod traffic;

pub use area::RouterAreaModel;
pub use bufferless::DeflectionNetwork;
pub use express::{ExpressComparison, ExpressTopology};
pub use fault::{
    ber_sweep, ber_sweep_observed, FaultConfig, FaultModel, FaultSweepPoint, FaultTally,
    LinkTransmission,
};
pub use multicast::MulticastAccounting;
pub use network::{Network, StalledError};
pub use packet::{crc16, Flit, FlitKind, Packet, PacketId};
pub use power::{DatapathKind, PowerModel, PublishedBreakdown, RouterPowerReport};
pub use router::{NocConfig, Router};
pub use routing::RoutingAlgorithm;
pub use stats::{Histogram, HistogramSummary, NetworkStats};
pub use topology::{Coord, Direction, Mesh};
