//! The cycle-accurate network simulator: routers, links, injection and
//! ejection, with deterministic two-phase updates.

use crate::fault::{FaultModel, LinkTransmission};
use crate::packet::{Flit, Packet, PacketId};
use crate::power::EnergyCounters;
use crate::router::{NocConfig, Router};
use crate::stats::NetworkStats;
use crate::topology::{Coord, Direction, Mesh};
use crate::traffic::{Pattern, TrafficGenerator};
use srlr_telemetry::{Collector, Value};
use std::collections::{BTreeSet, VecDeque};

/// Cycle window over which retry/NACK rates are tallied before being
/// emitted as one `flit.window` event (rates *over time*, not just
/// run totals).
pub const TELEMETRY_WINDOW_CYCLES: u64 = 64;

/// Retry/NACK/drop tallies for the current telemetry window.
#[derive(Debug, Clone, Copy, Default)]
struct WindowTally {
    start: u64,
    nacks: u64,
    retries: u64,
    drops: u64,
}

impl WindowTally {
    fn is_empty(&self) -> bool {
        self.nacks == 0 && self.retries == 0 && self.drops == 0
    }

    /// Emits the window as one event (skipped when nothing happened)
    /// and restarts the tally at `now`.
    fn flush(&mut self, collector: &mut Collector, now: u64) {
        if !self.is_empty() {
            collector.event(
                "flit.window",
                now as f64,
                &[
                    ("window_start", Value::U64(self.start)),
                    ("nacks", Value::U64(self.nacks)),
                    ("retries", Value::U64(self.retries)),
                    ("drops", Value::U64(self.drops)),
                ],
            );
        }
        *self = WindowTally {
            start: now,
            ..WindowTally::default()
        };
    }
}

/// Opt-in flit-lifecycle telemetry (see
/// [`Network::enable_flit_telemetry`]): a collector of per-flit
/// lifecycle events plus a per-directed-link traversal tally that
/// becomes `link.*` counters when the collector is taken.
#[derive(Debug, Clone)]
struct FlitTelemetry {
    collector: Collector,
    /// Flit traversals per directed link (`node * 4 + direction`).
    link_flits: Vec<u64>,
    /// Retry/NACK tallies for the in-progress cycle window.
    window: WindowTally,
    /// Per-cycle samples of the total source-queue depth (packets
    /// waiting to start injection), for `queue.*` metrics.
    queue_depth_sum: u64,
    queue_depth_max: u64,
    /// Per-cycle samples of total network occupancy (flits buffered,
    /// streaming in, or on a link).
    occupancy_sum: u64,
    occupancy_max: u64,
    samples: u64,
}

/// Emits the CRC-fail / NACK / retry lifecycle events and counters for
/// one faulty link traversal. Clean traversals return after one branch.
fn record_fault_events(
    collector: &mut Collector,
    cycle: u64,
    from: Coord,
    out: Direction,
    packet: PacketId,
    tx: &LinkTransmission,
) {
    if tx.nacks == 0 && tx.delivered && !tx.silent {
        return;
    }
    let ts = cycle as f64;
    if tx.nacks > 0 {
        collector.event(
            "flit.crc_fail",
            ts,
            &[
                ("packet", Value::U64(packet.0)),
                ("x", Value::U64(u64::from(from.x))),
                ("y", Value::U64(u64::from(from.y))),
                ("out", Value::Str(out.to_string())),
                ("nacks", Value::U64(u64::from(tx.nacks))),
            ],
        );
        collector.add("flit.nacks", u64::from(tx.nacks));
    }
    if tx.attempts > 1 {
        collector.event(
            "flit.retry",
            ts,
            &[
                ("packet", Value::U64(packet.0)),
                ("x", Value::U64(u64::from(from.x))),
                ("y", Value::U64(u64::from(from.y))),
                ("out", Value::Str(out.to_string())),
                ("retries", Value::U64(u64::from(tx.attempts - 1))),
                ("delivered", Value::Bool(tx.delivered)),
            ],
        );
        collector.add("flit.retries", u64::from(tx.attempts - 1));
    }
    if !tx.delivered {
        collector.event(
            "flit.retry_exhausted",
            ts,
            &[
                ("packet", Value::U64(packet.0)),
                ("x", Value::U64(u64::from(from.x))),
                ("y", Value::U64(u64::from(from.y))),
                ("out", Value::Str(out.to_string())),
            ],
        );
        collector.add("flit.retries_exhausted", 1);
    }
    if tx.silent {
        collector.add("flit.silent_corruptions", 1);
    }
}

/// A bounded simulation ran out of cycles before the expected packets
/// terminated: the typed replacement for the old "step N times and
/// panic" test idiom, carrying what *was* achieved and which packets are
/// still in the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StalledError {
    /// The cycle budget that was exhausted.
    pub cycles: u64,
    /// Packets that did complete before the budget ran out, as
    /// `(destination, latency_cycles)`.
    pub delivered: Vec<(Coord, u64)>,
    /// Packets discarded at ejection during the run (fault injection).
    pub dropped: u64,
    /// Every packet still queued, buffered or on a link (sorted,
    /// deduplicated).
    pub in_flight: Vec<PacketId>,
}

impl core::fmt::Display for StalledError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "simulation stalled after {} cycles: {} delivered, {} dropped, {} packet(s) in flight",
            self.cycles,
            self.delivered.len(),
            self.dropped,
            self.in_flight.len(),
        )?;
        for id in self.in_flight.iter().take(8) {
            write!(f, " {id}")?;
        }
        if self.in_flight.len() > 8 {
            write!(f, " ...")?;
        }
        Ok(())
    }
}

impl std::error::Error for StalledError {}

/// Per-node injection state: the packet currently streaming into the
/// local port.
#[derive(Debug, Clone, Default)]
struct InjectState {
    /// Remaining flits of the in-progress packet (front is next to go).
    flits: VecDeque<Flit>,
    /// The VC chosen for the in-progress packet.
    vc: usize,
}

/// The mesh network under simulation.
///
/// Per-hop latency is two cycles: one through the router pipeline (route
/// computation, allocation and switch traversal are modelled as a single
/// aggressively-pipelined stage) and one on the link.
#[derive(Debug, Clone)]
pub struct Network {
    config: NocConfig,
    mesh: Mesh,
    routers: Vec<Router>,
    /// Flits in flight to each router: `(deliver_at, in_port, vc, flit)`.
    pending_flits: Vec<Vec<(u64, Direction, usize, Flit)>>,
    /// Credits arriving at each router next cycle: `(out_port, vc)`.
    pending_credits: Vec<Vec<(Direction, usize)>>,
    /// Per-node source queues (open-loop, unbounded).
    source_queues: Vec<VecDeque<Packet>>,
    inject: Vec<InjectState>,
    cycle: u64,
    counters: EnergyCounters,
    /// Total packets ever enqueued.
    injected: u64,
    /// Link hops a multicast tree saved versus unicast clones (the SRLR's
    /// free multicast; see [`crate::multicast`]).
    multicast_saved_hops: u64,
    /// When enabled, the router sequence each packet's head flit visits.
    traces: Option<std::collections::BTreeMap<crate::packet::PacketId, Vec<Coord>>>,
    /// The link fault injector, when the config enables one.
    fault: Option<FaultModel>,
    /// Packets poisoned by an exhausted retry budget, awaiting discard at
    /// their ejection port.
    failed: BTreeSet<PacketId>,
    /// Packets discarded at ejection so far.
    dropped: u64,
    /// Flits or credits that pointed off the mesh edge and were discarded
    /// instead of aborting the run (always zero with the shipped routing
    /// algorithms; a non-zero value means a routing bug).
    routing_errors: u64,
    /// Per directed link (`node * 4 + direction`), the latest arrival
    /// cycle granted so far: retransmission delays must not let a later
    /// flit overtake an earlier one on the same wire.
    link_busy_until: Vec<u64>,
    /// Opt-in flit-lifecycle telemetry; `None` costs one branch per
    /// instrumentation site and no allocation.
    telemetry: Option<Box<FlitTelemetry>>,
}

impl Network {
    /// Builds an idle network.
    pub fn new(config: NocConfig) -> Self {
        config.validate();
        let mesh = config.mesh();
        let n = mesh.len();
        Self {
            config,
            mesh,
            routers: (0..n)
                .map(|i| Router::new(mesh.coord_of(i), &config))
                .collect(),
            pending_flits: vec![Vec::new(); n],
            pending_credits: vec![Vec::new(); n],
            source_queues: vec![VecDeque::new(); n],
            inject: vec![InjectState::default(); n],
            cycle: 0,
            counters: EnergyCounters::default(),
            injected: 0,
            multicast_saved_hops: 0,
            traces: None,
            fault: config.fault.map(|f| FaultModel::new(f, mesh)),
            failed: BTreeSet::new(),
            dropped: 0,
            routing_errors: 0,
            link_busy_until: vec![0; n * Direction::MESH.len()],
            telemetry: None,
        }
    }

    /// Enables per-packet route tracing: every router a head flit leaves
    /// is recorded. Costs memory proportional to traffic; intended for
    /// validation and debugging.
    pub fn enable_tracing(&mut self) {
        self.traces = Some(std::collections::BTreeMap::new());
    }

    /// The recorded route of a packet (router coordinates in visit
    /// order), if tracing was enabled and the packet moved.
    pub fn trace_of(&self, id: crate::packet::PacketId) -> Option<&[Coord]> {
        self.traces.as_ref()?.get(&id).map(Vec::as_slice)
    }

    /// All recorded traces.
    ///
    /// # Panics
    ///
    /// Panics if tracing was never enabled.
    pub fn traces(&self) -> &std::collections::BTreeMap<crate::packet::PacketId, Vec<Coord>> {
        // srlr-lint: allow(no-panic, reason = "documented panic: caller must call enable_tracing first, see # Panics")
        self.traces.as_ref().expect("tracing not enabled")
    }

    /// Enables the flit-lifecycle tracer: `flit.inject`, `flit.route`,
    /// `flit.crc_fail`, `flit.retry`, `flit.retry_exhausted`,
    /// `flit.eject` and `flit.drop` events (timestamps in cycles) plus
    /// per-directed-link flit tallies. Costs memory proportional to
    /// traffic; intended for validation, debugging and `--events-out`.
    pub fn enable_flit_telemetry(&mut self) {
        self.telemetry = Some(Box::new(FlitTelemetry {
            collector: Collector::enabled("cycles"),
            link_flits: vec![0; self.mesh.len() * Direction::MESH.len()],
            window: WindowTally {
                start: self.cycle,
                ..WindowTally::default()
            },
            queue_depth_sum: 0,
            queue_depth_max: 0,
            occupancy_sum: 0,
            occupancy_max: 0,
            samples: 0,
        }));
    }

    /// Whether the flit-lifecycle tracer is currently recording.
    pub fn flit_telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Takes the flit-lifecycle collector, folding the per-link flit
    /// tallies into `link.x{X}y{Y}.{dir}.flits` counters and summary
    /// metrics (`link.links_used`, `link.max_flits`,
    /// `link.total_flits`, `flit.cycles`). Returns `None` when the
    /// tracer was never enabled; recording stops.
    pub fn take_flit_telemetry(&mut self) -> Option<Collector> {
        let mut tel = self.telemetry.take()?;
        tel.window.flush(&mut tel.collector, self.cycle);
        let mut collector = tel.collector;
        let (mut links_used, mut max_flits, mut total_flits) = (0u64, 0u64, 0u64);
        for (link, &flits) in tel.link_flits.iter().enumerate() {
            if flits == 0 {
                continue;
            }
            links_used += 1;
            max_flits = max_flits.max(flits);
            total_flits += flits;
            let at = self.mesh.coord_of(link / Direction::MESH.len());
            let dir = Direction::MESH[link % Direction::MESH.len()];
            collector.add(&format!("link.x{}y{}.{dir}.flits", at.x, at.y), flits);
        }
        collector.set_metric("link.links_used", Value::U64(links_used));
        collector.set_metric("link.max_flits", Value::U64(max_flits));
        collector.set_metric("link.total_flits", Value::U64(total_flits));
        collector.set_metric("flit.cycles", Value::U64(self.cycle));
        // Utilization = flits per cycle on a directed link; the peak is
        // the busiest link, the mean averages over the links that
        // carried traffic at all.
        if self.cycle > 0 && links_used > 0 {
            let cycles = self.cycle as f64;
            collector.set_metric(
                "link.peak_utilization",
                Value::F64(max_flits as f64 / cycles),
            );
            collector.set_metric(
                "link.mean_utilization",
                Value::F64(total_flits as f64 / (links_used as f64 * cycles)),
            );
        }
        // Per-cycle queue-depth / occupancy samples taken in `step`.
        collector.set_metric("queue.samples", Value::U64(tel.samples));
        collector.set_metric("queue.max_depth", Value::U64(tel.queue_depth_max));
        collector.set_metric("queue.max_occupancy", Value::U64(tel.occupancy_max));
        if tel.samples > 0 {
            let n = tel.samples as f64;
            collector.set_metric(
                "queue.mean_depth",
                Value::F64(tel.queue_depth_sum as f64 / n),
            );
            collector.set_metric(
                "queue.mean_occupancy",
                Value::F64(tel.occupancy_sum as f64 / n),
            );
        }
        Some(collector)
    }

    /// The configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated energy counters.
    pub fn counters(&self) -> &EnergyCounters {
        &self.counters
    }

    /// Packets enqueued so far.
    pub fn packets_injected(&self) -> u64 {
        self.injected
    }

    /// Link hops saved by tree multicast relative to unicast clones.
    pub fn multicast_saved_hops(&self) -> u64 {
        self.multicast_saved_hops
    }

    /// Cumulative fault-injection event counts, when faults are enabled.
    pub fn fault_tally(&self) -> Option<&crate::fault::FaultTally> {
        self.fault.as_ref().map(FaultModel::tally)
    }

    /// Packets discarded at their ejection port so far (a flit exhausted
    /// its link-level retries; zero without fault injection).
    pub fn packets_dropped(&self) -> u64 {
        self.dropped
    }

    /// Flits or credits discarded because a route pointed off the mesh
    /// edge. Always zero with the shipped routing algorithms; counted
    /// instead of panicking so a routing bug degrades a run rather than
    /// aborting it.
    pub fn routing_errors(&self) -> u64 {
        self.routing_errors
    }

    /// Every packet currently queued at a source, streaming into a local
    /// port, buffered in a router or in flight on a link — sorted and
    /// deduplicated. This is the set a stalled run reports.
    pub fn in_flight_packets(&self) -> Vec<PacketId> {
        let mut ids: Vec<PacketId> = self
            .routers
            .iter()
            .flat_map(Router::buffered_packets)
            .chain(
                self.pending_flits
                    .iter()
                    .flatten()
                    .map(|&(_, _, _, flit)| flit.packet),
            )
            .chain(
                self.inject
                    .iter()
                    .flat_map(|s| s.flits.iter().map(|f| f.packet)),
            )
            .chain(self.source_queues.iter().flatten().map(|p| p.id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Total flits currently buffered in routers plus in flight.
    pub fn occupancy(&self) -> usize {
        self.routers.iter().map(Router::occupancy).sum::<usize>()
            + self.pending_flits.iter().map(Vec::len).sum::<usize>()
            + self.inject.iter().map(|s| s.flits.len()).sum::<usize>()
            + self
                .source_queues
                .iter()
                .map(|q| q.iter().map(|p| p.len_flits * p.dsts.len()).sum::<usize>())
                .sum::<usize>()
    }

    /// Enqueues a packet at its source. Multicast packets are decomposed
    /// into per-destination branches; the link hops their shared tree
    /// prefix saves (the SRLR free multicast) are tallied in
    /// [`Self::multicast_saved_hops`].
    pub fn enqueue(&mut self, packet: Packet) {
        let node = self.mesh.index_of(packet.src);
        self.injected += 1;
        if let Some(tel) = self.telemetry.as_mut() {
            tel.collector.event(
                "flit.inject",
                self.cycle as f64,
                &[
                    ("packet", Value::U64(packet.id.0)),
                    ("src_x", Value::U64(u64::from(packet.src.x))),
                    ("src_y", Value::U64(u64::from(packet.src.y))),
                    ("flits", Value::U64(packet.len_flits as u64)),
                    ("branches", Value::U64(packet.dsts.len() as u64)),
                ],
            );
            tel.collector.add("flit.packets_injected", 1);
        }
        if packet.is_multicast() {
            let acc = crate::multicast::MulticastAccounting::for_packet(self.mesh, &packet);
            self.multicast_saved_hops += acc.saved_hops() as u64 * packet.len_flits as u64;
            for (i, &dst) in packet.dsts.iter().enumerate() {
                let branch = Packet::unicast(
                    crate::packet::PacketId(packet.id.0 | ((i as u64 + 1) << 48)),
                    packet.src,
                    dst,
                    packet.len_flits,
                    packet.inject_cycle,
                );
                self.source_queues[node].push_back(branch);
            }
        } else {
            self.source_queues[node].push_back(packet);
        }
    }

    /// Advances the simulation by one cycle, returning the packets that
    /// completed (`(destination, latency_cycles)` per ejected tail).
    pub fn step(&mut self) -> Vec<(Coord, u64)> {
        let n = self.routers.len();

        // Phase 0 (telemetry only): sample queue depth and occupancy as
        // of the cycle start, and roll the retry/NACK window over. The
        // flush timestamp is the current cycle, so the event stream
        // stays monotone in time.
        if self.telemetry.is_some() {
            let depth: u64 = self.source_queues.iter().map(|q| q.len() as u64).sum();
            let occupancy = self.occupancy() as u64;
            let cycle = self.cycle;
            if let Some(tel) = self.telemetry.as_mut() {
                tel.queue_depth_sum += depth;
                tel.queue_depth_max = tel.queue_depth_max.max(depth);
                tel.occupancy_sum += occupancy;
                tel.occupancy_max = tel.occupancy_max.max(occupancy);
                tel.samples += 1;
                if cycle - tel.window.start >= TELEMETRY_WINDOW_CYCLES {
                    tel.window.flush(&mut tel.collector, cycle);
                }
            }
        }

        // Phase 1: deliver due link flits and credits.
        for i in 0..n {
            let now = self.cycle;
            let (due, later): (Vec<_>, Vec<_>) = std::mem::take(&mut self.pending_flits[i])
                .into_iter()
                .partition(|&(at, ..)| at <= now);
            self.pending_flits[i] = later;
            for (_, port, vc, flit) in due {
                self.routers[i].accept(port, vc, flit);
                self.counters.buffer_writes += 1;
            }
            let credits = std::mem::take(&mut self.pending_credits[i]);
            for (port, vc) in credits {
                self.routers[i].return_credit(port, vc);
            }
        }

        // Phase 2: injection into local input ports.
        for i in 0..n {
            if self.inject[i].flits.is_empty() {
                if let Some(pkt) = self.source_queues[i].pop_front() {
                    let dst = pkt.dst();
                    // Pick the emptiest local VC for the new packet.
                    let vc = (0..self.config.vcs)
                        .max_by_key(|&v| self.routers[i].free_slots(Direction::Local, v))
                        .unwrap_or(0);
                    self.inject[i] = InjectState {
                        flits: pkt.flits(dst).into(),
                        vc,
                    };
                }
            }
            let state = &mut self.inject[i];
            if let Some(&flit) = state.flits.front() {
                if self.routers[i].free_slots(Direction::Local, state.vc) > 0 {
                    self.routers[i].accept(Direction::Local, state.vc, flit);
                    self.counters.buffer_writes += 1;
                    state.flits.pop_front();
                }
            }
        }

        // Phase 3: router pipelines.
        let mut completed = Vec::new();
        for i in 0..n {
            let (sent, activity) = self.routers[i].step(self.mesh);
            self.counters.allocations += (activity.route_computations
                + activity.vc_allocations
                + activity.switch_allocations) as u64;
            for s in sent {
                self.counters.buffer_reads += 1;
                if s.flit.kind.is_head() {
                    if let Some(traces) = self.traces.as_mut() {
                        traces
                            .entry(s.flit.packet)
                            .or_default()
                            .push(self.routers[i].coord());
                    }
                    if let Some(tel) = self.telemetry.as_mut() {
                        let at = self.routers[i].coord();
                        tel.collector.event(
                            "flit.route",
                            self.cycle as f64,
                            &[
                                ("packet", Value::U64(s.flit.packet.0)),
                                ("x", Value::U64(u64::from(at.x))),
                                ("y", Value::U64(u64::from(at.y))),
                                ("out", Value::Str(s.out_port.to_string())),
                            ],
                        );
                    }
                }
                let here = self.routers[i].coord();
                // Credit back to the upstream router (not for local
                // injection, whose occupancy is polled directly). A flit
                // claiming to come from off-mesh means a corrupted route:
                // count it, don't abort the run.
                if s.in_port != Direction::Local {
                    match (s.in_port.opposite(), self.mesh.neighbor(here, s.in_port)) {
                        (Some(back), Some(up)) => {
                            self.pending_credits[self.mesh.index_of(up)].push((back, s.in_vc));
                        }
                        _ => self.routing_errors += 1,
                    }
                }
                if s.out_port == Direction::Local {
                    self.counters.local_hops += 1;
                    if s.flit.kind.is_tail() {
                        if self.failed.remove(&s.flit.packet) {
                            // A flit of this packet exhausted its link
                            // retries: the whole packet is discarded at
                            // ejection (flits are never dropped mid-route,
                            // which would dangle the wormhole).
                            self.dropped += 1;
                            if let Some(fault) = self.fault.as_mut() {
                                fault.note_packet_dropped();
                            }
                            if let Some(tel) = self.telemetry.as_mut() {
                                tel.collector.event(
                                    "flit.drop",
                                    self.cycle as f64,
                                    &[
                                        ("packet", Value::U64(s.flit.packet.0)),
                                        ("x", Value::U64(u64::from(here.x))),
                                        ("y", Value::U64(u64::from(here.y))),
                                    ],
                                );
                                tel.collector.add("flit.packets_dropped", 1);
                                tel.window.drops += 1;
                            }
                        } else {
                            let latency = self.cycle - s.flit.inject_cycle + 1;
                            completed.push((here, latency));
                            if let Some(tel) = self.telemetry.as_mut() {
                                tel.collector.event(
                                    "flit.eject",
                                    self.cycle as f64,
                                    &[
                                        ("packet", Value::U64(s.flit.packet.0)),
                                        ("x", Value::U64(u64::from(here.x))),
                                        ("y", Value::U64(u64::from(here.y))),
                                        ("latency", Value::U64(latency)),
                                    ],
                                );
                                tel.collector.add("flit.packets_ejected", 1);
                            }
                        }
                    }
                } else {
                    match (s.out_port.opposite(), self.mesh.neighbor(here, s.out_port)) {
                        (Some(arrive_port), Some(next)) => {
                            self.counters.link_hops += 1;
                            let mut delay = 1 + self.config.extra_pipeline;
                            if let Some(fault) = self.fault.as_mut() {
                                let tx = fault.transmit(here, s.out_port, &s.flit);
                                self.counters.retry_hops += u64::from(tx.attempts - 1);
                                self.counters.nacks += u64::from(tx.nacks);
                                delay += tx.extra_delay;
                                if !tx.delivered {
                                    self.failed.insert(s.flit.packet);
                                }
                                if let Some(tel) = self.telemetry.as_mut() {
                                    record_fault_events(
                                        &mut tel.collector,
                                        self.cycle,
                                        here,
                                        s.out_port,
                                        s.flit.packet,
                                        &tx,
                                    );
                                    tel.window.nacks += u64::from(tx.nacks);
                                    tel.window.retries += u64::from(tx.attempts - 1);
                                }
                            }
                            // Retransmission delay must not let this flit
                            // overtake an earlier one on the same wire
                            // (the shared scheduling rule the checker
                            // verifies, see `crate::protocol`).
                            let link = self.mesh.index_of(here) * Direction::MESH.len()
                                + s.out_port.index();
                            if let Some(tel) = self.telemetry.as_mut() {
                                tel.link_flits[link] += 1;
                            }
                            let at = crate::protocol::link_arrival(
                                self.cycle,
                                delay,
                                self.link_busy_until[link],
                            );
                            self.link_busy_until[link] = at;
                            self.pending_flits[self.mesh.index_of(next)].push((
                                at,
                                arrive_port,
                                s.out_vc,
                                s.flit,
                            ));
                        }
                        _ => self.routing_errors += 1,
                    }
                }
            }
        }

        self.cycle += 1;
        self.counters.router_cycles += n as u64;
        completed
    }

    /// Runs `warmup` cycles of traffic, then measures for `measure`
    /// cycles, returning the window statistics.
    ///
    /// # Panics
    ///
    /// Panics if `measure` is zero.
    pub fn run_warmup_and_measure(
        &mut self,
        pattern: Pattern,
        injection_rate: f64,
        warmup: u64,
        measure: u64,
    ) -> NetworkStats {
        self.run_warmup_and_measure_profiled(
            pattern,
            injection_rate,
            warmup,
            measure,
            &mut srlr_telemetry::Profiler::disabled(),
        )
    }

    /// [`Self::run_warmup_and_measure`] with profiling: the warmup and
    /// measurement windows land as `noc.warmup` / `noc.measure` frames
    /// in `prof`. A disabled profiler costs one branch per frame and
    /// this *is* the unprofiled path — same code, same result.
    ///
    /// # Panics
    ///
    /// Panics if `measure` is zero.
    pub fn run_warmup_and_measure_profiled(
        &mut self,
        pattern: Pattern,
        injection_rate: f64,
        warmup: u64,
        measure: u64,
        prof: &mut srlr_telemetry::Profiler,
    ) -> NetworkStats {
        assert!(measure > 0, "measurement window must be non-empty");
        let mut gen = TrafficGenerator::new(
            self.mesh,
            pattern,
            injection_rate,
            self.config.packet_len,
            self.config.seed,
        );
        prof.enter("noc.warmup");
        for _ in 0..warmup {
            self.inject_from(&mut gen);
            let _ = self.step();
        }
        prof.exit();
        let counters_before = self.counters;
        let injected_before = self.injected;
        let dropped_before = self.dropped;
        let faults_before = self.fault.as_ref().map(|f| f.tally().clone());
        let mut stats = NetworkStats::new(measure, self.mesh.len());
        prof.enter("noc.measure");
        for _ in 0..measure {
            self.inject_from(&mut gen);
            for (_, latency) in self.step() {
                stats.record_packet(latency);
            }
        }
        prof.exit();
        // Flit receipt count over the window comes from the counter delta.
        stats.flits_received = self.counters.local_hops - counters_before.local_hops;
        stats.packets_injected = self.injected - injected_before;
        stats.packets_dropped = self.dropped - dropped_before;
        stats.energy = self.counters.delta(&counters_before);
        if let (Some(fault), Some(before)) = (self.fault.as_ref(), faults_before) {
            stats.faults = fault.tally().diff(&before);
        }
        stats
    }

    /// Steps the network until `packets` have terminated (delivered or,
    /// under fault injection, dropped at ejection), returning the
    /// delivered `(destination, latency_cycles)` pairs in completion
    /// order.
    ///
    /// This is the bounded replacement for the "step a magic number of
    /// cycles and panic" idiom: when `max_cycles` elapse first, the run
    /// surfaces a typed [`StalledError`] carrying the partial deliveries
    /// and the set of packets still in the network instead of aborting
    /// the process.
    ///
    /// # Errors
    ///
    /// Returns [`StalledError`] when the cycle budget is exhausted before
    /// `packets` packets terminate.
    pub fn run_until_delivered(
        &mut self,
        packets: usize,
        max_cycles: u64,
    ) -> Result<Vec<(Coord, u64)>, StalledError> {
        let dropped_before = self.dropped;
        let mut delivered = Vec::new();
        for _ in 0..max_cycles {
            delivered.extend(self.step());
            let terminated = delivered.len() as u64 + (self.dropped - dropped_before);
            if terminated >= packets as u64 {
                return Ok(delivered);
            }
        }
        Err(StalledError {
            cycles: max_cycles,
            dropped: self.dropped - dropped_before,
            in_flight: self.in_flight_packets(),
            delivered,
        })
    }

    fn inject_from(&mut self, gen: &mut TrafficGenerator) {
        for i in 0..self.mesh.len() {
            if let Some(pkt) = gen.maybe_inject(self.mesh.coord_of(i), self.cycle) {
                self.enqueue(pkt);
            }
        }
    }

    /// Runs until every queued flit has drained or `max_cycles` elapse;
    /// returns `true` when fully drained.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.occupancy() == 0 {
                return true;
            }
            let _ = self.step();
        }
        self.occupancy() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;

    fn small_config() -> NocConfig {
        NocConfig::paper_default().with_size(4, 4)
    }

    #[test]
    fn single_packet_crosses_the_mesh() {
        let mut net = Network::new(small_config());
        let src = Coord::new(0, 0);
        let dst = Coord::new(3, 3);
        net.enqueue(Packet::unicast(PacketId(1), src, dst, 5, 0));
        let done = net.run_until_delivered(1, 100).expect("must arrive");
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, dst);
        // 6 hops (router + link each) serialising 5 flits: small but
        // at least the hop count plus the body flits.
        assert!(done[0].1 >= 10 && done[0].1 < 40, "latency {}", done[0].1);
        assert!(net.drain(10), "network should be empty");
    }

    #[test]
    fn local_delivery_works() {
        let mut net = Network::new(small_config());
        let at = Coord::new(1, 1);
        net.enqueue(Packet::unicast(PacketId(1), at, at, 1, 0));
        let done = net.run_until_delivered(1, 20).expect("must arrive");
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, at);
    }

    #[test]
    fn all_flits_are_conserved() {
        let mut net = Network::new(small_config());
        for k in 0..10 {
            net.enqueue(Packet::unicast(
                PacketId(k),
                Coord::new((k % 4) as u16, 0),
                Coord::new(3 - (k % 4) as u16, 3),
                5,
                0,
            ));
        }
        assert!(net.drain(500), "all packets must eventually drain");
        assert_eq!(net.counters().local_hops, 50, "5 flits x 10 packets eject");
    }

    #[test]
    fn uniform_traffic_flows_at_low_load() {
        let mut net = Network::new(small_config());
        let stats = net.run_warmup_and_measure(Pattern::UniformRandom, 0.05, 300, 1000);
        assert!(stats.packets_received > 50, "{stats}");
        let avg = stats.avg_latency_cycles();
        assert!(avg > 5.0 && avg < 60.0, "avg latency {avg}");
    }

    #[test]
    fn latency_rises_with_load() {
        let lat = |rate: f64| {
            let mut net = Network::new(small_config());
            net.run_warmup_and_measure(Pattern::UniformRandom, rate, 300, 1500)
                .avg_latency_cycles()
        };
        let low = lat(0.02);
        let high = lat(0.12);
        assert!(high > low, "latency must rise with load: {low} -> {high}");
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let mut net = Network::new(small_config());
        let rate = 0.04;
        let stats = net.run_warmup_and_measure(Pattern::UniformRandom, rate, 500, 2000);
        let offered_flits = rate * 5.0;
        let accepted = stats.throughput_flits_per_node_cycle();
        assert!(
            (accepted - offered_flits).abs() < offered_flits * 0.25,
            "accepted {accepted} vs offered {offered_flits}"
        );
    }

    #[test]
    fn neighbor_traffic_has_lower_latency_than_uniform() {
        let run = |pattern| {
            let mut net = Network::new(small_config());
            net.run_warmup_and_measure(pattern, 0.05, 300, 1500)
                .avg_latency_cycles()
        };
        assert!(run(Pattern::Neighbor) < run(Pattern::UniformRandom));
    }

    #[test]
    fn multicast_decomposes_and_saves_hops() {
        let mut net = Network::new(small_config());
        net.enqueue(Packet::multicast(
            PacketId(7),
            Coord::new(0, 0),
            vec![Coord::new(3, 0), Coord::new(3, 1), Coord::new(3, 2)],
            2,
            0,
        ));
        // One multicast = 3 branches.
        let done = net.run_until_delivered(3, 200).expect("branches arrive");
        assert_eq!(done.len(), 3);
        // Shared prefix (0,0)->(3,0) appears once in the tree but three
        // times in unicast clones: savings must be positive.
        assert!(net.multicast_saved_hops() > 0);
    }

    #[test]
    fn extra_pipeline_stretches_latency_by_hops() {
        let run = |extra: u64| {
            let mut net = Network::new(small_config().with_extra_pipeline(extra));
            net.enqueue(Packet::unicast(
                PacketId(1),
                Coord::new(0, 0),
                Coord::new(3, 3),
                1,
                0,
            ));
            net.run_until_delivered(1, 200).expect("must arrive")[0].1
        };
        let base = run(0);
        let deep = run(1);
        // 6 inter-router links... the last hop to the local port has no
        // link, so 5-6 extra cycles for one extra pipeline stage.
        assert!(
            deep >= base + 5 && deep <= base + 7,
            "base {base}, deep {deep}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut net = Network::new(small_config().with_seed(9));
            let stats = net.run_warmup_and_measure(Pattern::UniformRandom, 0.08, 200, 800);
            (stats.packets_received, stats.latency_sum)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stalled_run_reports_the_in_flight_set() {
        let mut net = Network::new(small_config());
        net.enqueue(Packet::unicast(
            PacketId(1),
            Coord::new(0, 0),
            Coord::new(3, 3),
            5,
            0,
        ));
        let err = net
            .run_until_delivered(1, 3)
            .expect_err("3 cycles is too few");
        assert_eq!(err.cycles, 3);
        assert!(err.delivered.is_empty());
        assert_eq!(err.dropped, 0);
        assert_eq!(err.in_flight, vec![PacketId(1)]);
        assert!(err.to_string().contains("stalled after 3 cycles"));
        // The same network finishes the job given a real budget.
        let done = net.run_until_delivered(1, 200).expect("must arrive");
        assert_eq!(done.len(), 1);
        assert!(net.in_flight_packets().is_empty());
    }

    #[test]
    fn zero_ber_fault_model_is_transparent() {
        let run = |config: NocConfig| {
            let mut net = Network::new(config);
            let stats = net.run_warmup_and_measure(Pattern::UniformRandom, 0.08, 200, 800);
            (
                stats.packets_received,
                stats.latency_sum,
                stats.latency_max,
                stats.energy,
            )
        };
        // Delivered packets, latencies and energy must be bit-identical
        // with the fault model installed at BER 0.
        assert_eq!(run(small_config()), run(small_config().with_ber(0.0)));
    }

    #[test]
    fn faulty_links_retry_and_recover() {
        let mut net = Network::new(small_config().with_ber(2e-3));
        let stats = net.run_warmup_and_measure(Pattern::UniformRandom, 0.05, 300, 2000);
        assert!(stats.faults.flits_corrupted > 0, "{:?}", stats.faults);
        assert!(stats.energy.retry_hops > 0);
        assert!(stats.energy.nacks >= stats.energy.retry_hops);
        assert!(stats.packets_received > 50, "{stats}");
        assert!(net.drain(20_000), "faulty network must still drain");
        assert_eq!(net.routing_errors(), 0);
    }

    #[test]
    fn exhausted_retries_drop_packets_at_ejection() {
        // 2 % BER corrupts ~80 % of 80-bit words; with the default 4
        // retries plenty of flits exhaust their budget.
        let mut net = Network::new(small_config().with_ber(0.02));
        let stats = net.run_warmup_and_measure(Pattern::UniformRandom, 0.03, 300, 2000);
        assert!(stats.packets_dropped > 0, "{stats}");
        assert!(stats.delivered_fraction() < 1.0);
        assert!(stats.faults.retries_exhausted >= stats.packets_dropped);
        assert_eq!(
            net.packets_dropped(),
            net.fault_tally().expect("faults enabled").packets_dropped
        );
        assert!(net.drain(50_000), "drops must not wedge the wormhole");
    }

    #[test]
    fn flit_telemetry_traces_the_lifecycle() {
        let mut net = Network::new(small_config());
        net.enable_flit_telemetry();
        assert!(net.flit_telemetry_enabled());
        let src = Coord::new(0, 0);
        let dst = Coord::new(3, 3);
        net.enqueue(Packet::unicast(PacketId(9), src, dst, 2, 0));
        let done = net.run_until_delivered(1, 200).expect("must arrive");
        let latency = done[0].1;
        let tel = net.take_flit_telemetry().expect("tracer was enabled");
        assert!(!net.flit_telemetry_enabled(), "take stops recording");
        assert!(net.take_flit_telemetry().is_none());

        assert_eq!(tel.timebase(), "cycles");
        let names: Vec<&str> = tel.events().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names.first(), Some(&"flit.inject"));
        assert_eq!(names.last(), Some(&"flit.eject"));
        // XY from (0,0) to (3,3): 6 inter-router hops + the local
        // ejection = 7 route events for the head flit.
        assert_eq!(names.iter().filter(|n| **n == "flit.route").count(), 7);
        let eject = tel.events().last().expect("eject event");
        assert_eq!(
            eject.fields.get("latency"),
            Some(&srlr_telemetry::Value::U64(latency))
        );
        assert_eq!(tel.counter("flit.packets_injected"), 1);
        assert_eq!(tel.counter("flit.packets_ejected"), 1);
        assert_eq!(tel.counter("flit.packets_dropped"), 0);
        // 6 links x 2 flits traversed; the per-link counters agree.
        assert_eq!(
            tel.metrics().get("link.total_flits"),
            Some(&srlr_telemetry::Value::U64(12))
        );
        assert_eq!(
            tel.metrics().get("link.links_used"),
            Some(&srlr_telemetry::Value::U64(6))
        );
        assert_eq!(tel.counter("link.x0y0.E.flits"), 2);
        // Timestamps are cycles: monotone non-decreasing in the stream.
        let ts: Vec<f64> = tel.events().iter().map(|e| e.ts).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "cycle order: {ts:?}");
    }

    #[test]
    fn flit_telemetry_does_not_perturb_the_simulation() {
        let run = |trace: bool| {
            let mut net = Network::new(small_config().with_seed(5));
            if trace {
                net.enable_flit_telemetry();
            }
            let stats = net.run_warmup_and_measure(Pattern::UniformRandom, 0.08, 200, 800);
            (stats.packets_received, stats.latency_sum, stats.energy)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn flit_telemetry_records_faults_and_drops() {
        let mut net = Network::new(small_config().with_ber(0.02));
        net.enable_flit_telemetry();
        let _ = net.run_warmup_and_measure(Pattern::UniformRandom, 0.03, 300, 2000);
        let dropped = net.packets_dropped();
        assert!(dropped > 0, "2 % BER must drop packets");
        let tel = net.take_flit_telemetry().expect("enabled");
        assert!(tel.counter("flit.nacks") > 0);
        assert!(tel.counter("flit.retries") > 0);
        assert!(tel.counter("flit.retries_exhausted") > 0);
        assert_eq!(tel.counter("flit.packets_dropped"), dropped);
        let names: Vec<&str> = tel.events().iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"flit.crc_fail"));
        assert!(names.contains(&"flit.retry"));
        assert!(names.contains(&"flit.drop"));
    }

    #[test]
    fn flit_telemetry_samples_queues_and_link_utilization() {
        let mut net = Network::new(small_config().with_seed(7));
        net.enable_flit_telemetry();
        let _ = net.run_warmup_and_measure(Pattern::UniformRandom, 0.10, 200, 800);
        let cycles = net.cycle();
        let tel = net.take_flit_telemetry().expect("enabled");
        // One queue/occupancy sample per simulated cycle.
        assert_eq!(
            tel.metrics().get("queue.samples"),
            Some(&Value::U64(cycles))
        );
        let get_f64 = |name: &str| match tel.metrics().get(name) {
            Some(&Value::F64(v)) => v,
            other => panic!("{name} missing or not F64: {other:?}"),
        };
        let get_u64 = |name: &str| match tel.metrics().get(name) {
            Some(&Value::U64(v)) => v,
            other => panic!("{name} missing or not U64: {other:?}"),
        };
        // At 10 % load the queues are exercised; means are bounded by
        // the observed maxima.
        assert!(get_u64("queue.max_occupancy") > 0);
        assert!(get_f64("queue.mean_occupancy") > 0.0);
        assert!(get_f64("queue.mean_occupancy") <= get_u64("queue.max_occupancy") as f64);
        assert!(get_f64("queue.mean_depth") <= get_u64("queue.max_depth") as f64);
        // Utilization is flits per cycle on a directed link: positive
        // under traffic, at most one (the wire carries one flit/cycle).
        let (mean, peak) = (
            get_f64("link.mean_utilization"),
            get_f64("link.peak_utilization"),
        );
        assert!(0.0 < mean && mean <= peak && peak <= 1.0, "{mean} {peak}");
    }

    #[test]
    fn retry_window_events_tally_the_fault_totals() {
        let mut net = Network::new(small_config().with_ber(0.02));
        net.enable_flit_telemetry();
        let _ = net.run_warmup_and_measure(Pattern::UniformRandom, 0.03, 300, 2000);
        let tel = net.take_flit_telemetry().expect("enabled");
        let windows: Vec<_> = tel
            .events()
            .iter()
            .filter(|e| e.name == "flit.window")
            .collect();
        assert!(!windows.is_empty(), "2 % BER must produce retry windows");
        let sum_field = |field: &str| -> u64 {
            windows
                .iter()
                .map(|e| match e.fields.get(field) {
                    Some(&Value::U64(v)) => v,
                    other => panic!("window field {field}: {other:?}"),
                })
                .sum()
        };
        // The windowed rate-over-time decomposition conserves the run
        // totals exactly.
        assert_eq!(sum_field("nacks"), tel.counter("flit.nacks"));
        assert_eq!(sum_field("retries"), tel.counter("flit.retries"));
        assert_eq!(sum_field("drops"), tel.counter("flit.packets_dropped"));
        // Windows cover disjoint spans no longer than the window size.
        for e in &windows {
            let start = match e.fields.get("window_start") {
                Some(&Value::U64(v)) => v,
                other => panic!("window_start: {other:?}"),
            };
            assert!(e.ts >= start as f64);
        }
    }

    #[test]
    fn fault_free_runs_emit_no_window_events() {
        let mut net = Network::new(small_config());
        net.enable_flit_telemetry();
        let _ = net.run_warmup_and_measure(Pattern::UniformRandom, 0.05, 100, 400);
        let tel = net.take_flit_telemetry().expect("enabled");
        assert!(
            tel.events().iter().all(|e| e.name != "flit.window"),
            "empty windows are skipped, not emitted"
        );
    }

    #[test]
    fn profiled_run_matches_unprofiled_and_frames_the_phases() {
        use srlr_telemetry::{Clock, Profiler};
        let run = |profile: bool| {
            let mut net = Network::new(small_config().with_seed(3));
            let mut prof = if profile {
                Profiler::enabled(Clock::tick(1.0))
            } else {
                Profiler::disabled()
            };
            let stats = net.run_warmup_and_measure_profiled(
                Pattern::UniformRandom,
                0.05,
                150,
                600,
                &mut prof,
            );
            (stats, prof.snapshot())
        };
        let (plain, empty) = run(false);
        assert!(empty.nodes.is_empty());
        let (profiled, profile) = run(true);
        assert_eq!(plain, profiled, "profiling must not perturb the run");
        let names: Vec<&str> = profile.nodes.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, ["noc.warmup", "noc.measure"]);
    }

    #[test]
    fn counters_accumulate() {
        let mut net = Network::new(small_config());
        let _ = net.run_warmup_and_measure(Pattern::UniformRandom, 0.05, 100, 400);
        let c = net.counters();
        assert!(c.buffer_writes > 0);
        assert!(c.buffer_reads > 0);
        assert!(c.link_hops > 0);
        assert!(c.allocations > 0);
        assert_eq!(c.router_cycles, 500 * 16);
        // Every read was once written.
        assert!(c.buffer_reads <= c.buffer_writes);
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use crate::routing::RoutingAlgorithm;

    fn config(routing: RoutingAlgorithm) -> NocConfig {
        NocConfig::paper_default()
            .with_size(4, 4)
            .with_routing(routing)
    }

    #[test]
    fn west_first_network_delivers_everything() {
        let mut net = Network::new(config(RoutingAlgorithm::WestFirst));
        let stats =
            net.run_warmup_and_measure(crate::traffic::Pattern::UniformRandom, 0.08, 300, 1500);
        assert!(stats.packets_received > 100, "{stats}");
        assert!(net.drain(20_000), "adaptive mesh must drain (deadlock?)");
    }

    #[test]
    fn west_first_survives_heavy_load_without_deadlock() {
        // The turn-model guarantee: even past saturation the network must
        // keep making progress and drain completely afterwards.
        let mut net = Network::new(config(RoutingAlgorithm::WestFirst));
        let stats = net.run_warmup_and_measure(crate::traffic::Pattern::Transpose, 0.30, 500, 1500);
        assert!(stats.packets_received > 100, "{stats}");
        assert!(net.drain(100_000), "deadlock under heavy transpose load");
    }

    #[test]
    fn adaptive_helps_transpose_traffic() {
        // Transpose concentrates XY traffic on the diagonal; spreading
        // over the adaptive quadrant should not do worse.
        let run = |routing| {
            let mut net = Network::new(config(routing));
            net.run_warmup_and_measure(crate::traffic::Pattern::Transpose, 0.10, 400, 1500)
                .throughput_flits_per_node_cycle()
        };
        let xy = run(RoutingAlgorithm::Xy);
        let adaptive = run(RoutingAlgorithm::WestFirst);
        assert!(
            adaptive > xy * 0.9,
            "adaptive throughput {adaptive} collapsed vs XY {xy}"
        );
    }
}
