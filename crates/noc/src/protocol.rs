//! The pure, side-effect-free transition semantics of the link-level
//! fault/retry protocol — shared by the cycle-accurate simulator and the
//! `srlr-model` exhaustive checker.
//!
//! [`crate::fault::FaultModel::transmit`] *samples* attempt outcomes
//! from its per-link RNG streams and folds them through [`retry_step`];
//! the model checker *enumerates* every outcome sequence through the
//! same function. [`crate::Network::step`] schedules each link arrival
//! through [`link_arrival`]; the checker applies the identical rule to
//! its abstract states. Because both consumers call these two functions
//! — rather than each re-implementing the protocol — a property proved
//! by the checker is a property of the code the simulator runs, not of
//! a hand-copied model that could drift.
//!
//! Everything here is a pure function of its arguments: no RNG, no
//! tallies, no I/O. The sampling, accounting and telemetry stay in
//! [`crate::fault`] and [`crate::network`].

use crate::fault::{FaultConfig, LinkTransmission};

/// The receiver-side verdict on one transmission attempt of a flit
/// codeword across a link.
///
/// The simulator samples this from the injected BER and a real CRC-16
/// check over the corrupted bits; the checker enumerates all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The codeword crossed uncorrupted: ACK, transmission complete.
    Clean,
    /// Corrupted and caught by the CRC: NACK back over the reverse wire.
    Detected,
    /// Corrupted but the CRC still matched — an undetected escape. The
    /// flit is delivered carrying wrong bits.
    Silent,
}

/// The sender-side retry automaton state between attempts of one flit
/// on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryState {
    /// Transmissions performed so far, counting the one in flight.
    pub attempts: u32,
    /// NACKs received so far.
    pub nacks: u32,
    /// Retransmission delay accumulated so far, in cycles on top of the
    /// normal link latency.
    pub extra_delay: u64,
}

impl RetryState {
    /// The state at the first transmission attempt.
    pub fn start() -> Self {
        Self {
            attempts: 1,
            nacks: 0,
            extra_delay: 0,
        }
    }
}

/// The result of folding one [`AttemptOutcome`] into a [`RetryState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryStep {
    /// The attempt was NACKed and budget remains: retransmit from the
    /// carried state after its accumulated delay.
    Continue(RetryState),
    /// The transmission terminated (clean, silent escape, or budget
    /// exhausted — see [`LinkTransmission::delivered`]).
    Done(LinkTransmission),
}

/// Advances the retry automaton by one attempt outcome.
///
/// Semantics (exactly the PR 2 protocol):
///
/// * `Clean` / `Silent` terminate immediately with `delivered = true`.
/// * `Detected` costs a NACK. With `attempts > max_retries` the budget
///   is exhausted: the flit goes through poisoned (`delivered = false`)
///   and its packet will be discarded at ejection. Otherwise retry `k`
///   (1-based) adds `ack_timeout + backoff * (k - 1)` cycles of delay
///   and the automaton continues.
pub fn retry_step(config: &FaultConfig, state: RetryState, outcome: AttemptOutcome) -> RetryStep {
    let RetryState {
        attempts,
        nacks,
        extra_delay,
    } = state;
    match outcome {
        AttemptOutcome::Clean => RetryStep::Done(LinkTransmission {
            attempts,
            nacks,
            delivered: true,
            silent: false,
            extra_delay,
        }),
        AttemptOutcome::Silent => RetryStep::Done(LinkTransmission {
            attempts,
            nacks,
            delivered: true,
            silent: true,
            extra_delay,
        }),
        AttemptOutcome::Detected => {
            let nacks = nacks + 1;
            if attempts > config.max_retries {
                RetryStep::Done(LinkTransmission {
                    attempts,
                    nacks,
                    delivered: false,
                    silent: false,
                    extra_delay,
                })
            } else {
                RetryStep::Continue(RetryState {
                    attempts: attempts + 1,
                    nacks,
                    extra_delay: extra_delay
                        + config.ack_timeout
                        + config.backoff * u64::from(attempts - 1),
                })
            }
        }
    }
}

/// Replays a completed transmission through the automaton and returns
/// the reconstructed [`LinkTransmission`].
///
/// A terminated transmission fully determines its outcome sequence:
/// every non-final attempt was `Detected`, and the final attempt is
/// `Clean`, `Silent` or the exhausting `Detected`. This is the lockstep
/// bridge used by tests: a transmission sampled by the simulator,
/// replayed here, must reproduce itself bit-for-bit.
///
/// Returns `None` if `tx` is not a trace the automaton can produce
/// under `config` (e.g. more attempts than the budget allows).
pub fn replay_transmission(
    config: &FaultConfig,
    tx: &LinkTransmission,
) -> Option<LinkTransmission> {
    let mut state = RetryState::start();
    for _ in 1..tx.attempts {
        match retry_step(config, state, AttemptOutcome::Detected) {
            RetryStep::Continue(next) => state = next,
            RetryStep::Done(_) => return None,
        }
    }
    let last = if tx.silent {
        AttemptOutcome::Silent
    } else if tx.delivered {
        AttemptOutcome::Clean
    } else {
        AttemptOutcome::Detected
    };
    match retry_step(config, state, last) {
        RetryStep::Done(replayed) => Some(replayed),
        RetryStep::Continue(_) => None,
    }
}

/// The link scheduling rule: the cycle at which a flit sent at `cycle`
/// with total latency `delay` (pipeline + retransmission) arrives at
/// the far router, given the latest arrival already granted on the same
/// directed link.
///
/// The `busy_until + 1` floor is the no-overtaking watermark: a flit
/// whose predecessor was stalled by retries is pushed behind it, so
/// per-link arrival order always equals send order and a wormhole can
/// never be re-interleaved mid-flight.
pub fn link_arrival(cycle: u64, delay: u64, busy_until: u64) -> u64 {
    (cycle + delay).max(busy_until + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    fn config(retries: u32) -> FaultConfig {
        FaultConfig::new(1e-3)
            .with_max_retries(retries)
            .with_timing(2, 1)
    }

    #[test]
    fn clean_first_attempt_terminates() {
        let step = retry_step(&config(4), RetryState::start(), AttemptOutcome::Clean);
        assert_eq!(
            step,
            RetryStep::Done(LinkTransmission {
                attempts: 1,
                nacks: 0,
                delivered: true,
                silent: false,
                extra_delay: 0,
            })
        );
    }

    #[test]
    fn detected_accumulates_backoff_then_exhausts() {
        let cfg = config(2);
        let mut state = RetryState::start();
        // Retry 1: +ack_timeout (2) + backoff*0.
        let RetryStep::Continue(next) = retry_step(&cfg, state, AttemptOutcome::Detected) else {
            panic!("budget remains after one NACK");
        };
        state = next;
        assert_eq!((state.attempts, state.nacks, state.extra_delay), (2, 1, 2));
        // Retry 2: +ack_timeout (2) + backoff*1.
        let RetryStep::Continue(next) = retry_step(&cfg, state, AttemptOutcome::Detected) else {
            panic!("budget remains after two NACKs");
        };
        state = next;
        assert_eq!((state.attempts, state.nacks, state.extra_delay), (3, 2, 5));
        // Third detected attempt exhausts the 2-retry budget.
        let RetryStep::Done(tx) = retry_step(&cfg, state, AttemptOutcome::Detected) else {
            panic!("budget must exhaust");
        };
        assert_eq!(tx.attempts, 3);
        assert_eq!(tx.nacks, 3);
        assert!(!tx.delivered);
        assert!(!tx.silent);
        assert_eq!(tx.extra_delay, 5);
    }

    #[test]
    fn zero_budget_exhausts_on_first_detection() {
        let RetryStep::Done(tx) =
            retry_step(&config(0), RetryState::start(), AttemptOutcome::Detected)
        else {
            panic!("no retries allowed");
        };
        assert!(!tx.delivered);
        assert_eq!((tx.attempts, tx.nacks, tx.extra_delay), (1, 1, 0));
    }

    #[test]
    fn silent_escape_is_delivered_with_the_accumulated_delay() {
        let cfg = config(4);
        let RetryStep::Continue(state) =
            retry_step(&cfg, RetryState::start(), AttemptOutcome::Detected)
        else {
            panic!("budget remains");
        };
        let RetryStep::Done(tx) = retry_step(&cfg, state, AttemptOutcome::Silent) else {
            panic!("silent terminates");
        };
        assert!(tx.delivered && tx.silent);
        assert_eq!((tx.attempts, tx.nacks, tx.extra_delay), (2, 1, 2));
    }

    #[test]
    fn replay_reconstructs_every_terminal_shape() {
        let cfg = config(3);
        // Enumerate the terminals by driving the automaton directly.
        let mut state = RetryState::start();
        loop {
            let RetryStep::Done(clean) = retry_step(&cfg, state, AttemptOutcome::Clean) else {
                panic!("clean always terminates");
            };
            assert_eq!(replay_transmission(&cfg, &clean), Some(clean));
            let RetryStep::Done(silent) = retry_step(&cfg, state, AttemptOutcome::Silent) else {
                panic!("silent always terminates");
            };
            assert_eq!(replay_transmission(&cfg, &silent), Some(silent));
            match retry_step(&cfg, state, AttemptOutcome::Detected) {
                RetryStep::Continue(next) => state = next,
                RetryStep::Done(exhausted) => {
                    assert_eq!(replay_transmission(&cfg, &exhausted), Some(exhausted));
                    break;
                }
            }
        }
    }

    #[test]
    fn replay_rejects_impossible_traces() {
        let cfg = config(1);
        let forged = LinkTransmission {
            attempts: 9,
            nacks: 8,
            delivered: true,
            silent: false,
            extra_delay: 0,
        };
        assert_eq!(replay_transmission(&cfg, &forged), None);
    }

    #[test]
    fn link_arrival_floors_at_the_watermark() {
        // Unconstrained link: plain latency.
        assert_eq!(link_arrival(10, 3, 0), 13);
        // Watermark ahead of the natural arrival: pushed behind it.
        assert_eq!(link_arrival(10, 3, 20), 21);
        // Equal: still strictly after the previous arrival.
        assert_eq!(link_arrival(10, 3, 13), 14);
    }

    #[test]
    fn link_arrival_is_strictly_monotone_per_link() {
        // Chained sends through the rule always produce strictly
        // increasing arrivals, whatever the per-send delays do.
        let mut busy = 0;
        let delays = [5u64, 1, 9, 1, 1, 14, 1];
        for (i, &d) in delays.iter().enumerate() {
            let at = link_arrival(i as u64, d, busy);
            assert!(at > busy, "arrival {at} must pass watermark {busy}");
            busy = at;
        }
    }
}
