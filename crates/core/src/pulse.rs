//! Pulse-domain state: the `(width, swing)` pair that one SRLR stage hands
//! to the next.
//!
//! Sec. III-A of the paper analyses the link as a recurrence on output
//! pulse widths (`W_out,0 > W_out,1 > ...` at a slow corner, the reverse at
//! a fast one). [`PulseState`] is the state of that recurrence, extended
//! with the swing voltage (which closes the feedback loop through the
//! wire's channel attenuation) and the accumulated latency.

use srlr_units::{TimeInterval, Voltage};

/// A low-swing pulse at a stage boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseState {
    /// Pulse width at the sensing threshold.
    pub width: TimeInterval,
    /// Peak swing at the receiving stage's input.
    pub swing: Voltage,
    /// Accumulated latency since the pulse was launched.
    pub arrival: TimeInterval,
}

impl PulseState {
    /// Creates a live pulse with zero accumulated latency.
    ///
    /// # Panics
    ///
    /// Panics if width or swing is negative.
    pub fn new(width: TimeInterval, swing: Voltage) -> Self {
        assert!(width.seconds() >= 0.0, "pulse width must be non-negative");
        assert!(swing.volts() >= 0.0, "pulse swing must be non-negative");
        Self {
            width,
            swing,
            arrival: TimeInterval::zero(),
        }
    }

    /// The canonical "no pulse" value: zero width and swing. Returned by a
    /// stage when the incoming pulse could not be detected.
    pub fn dead() -> Self {
        Self {
            width: TimeInterval::zero(),
            swing: Voltage::zero(),
            arrival: TimeInterval::zero(),
        }
    }

    /// `true` when the pulse still carries a detectable signal
    /// (strictly positive width *and* swing).
    pub fn is_valid(&self) -> bool {
        self.width.seconds() > 0.0 && self.swing.volts() > 0.0
    }

    /// Returns a copy with `extra` added to the accumulated latency.
    #[must_use]
    pub fn delayed_by(self, extra: TimeInterval) -> Self {
        Self {
            arrival: self.arrival + extra,
            ..self
        }
    }
}

impl core::fmt::Display for PulseState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_valid() {
            write!(
                f,
                "pulse(width={}, swing={}, arrival={})",
                self.width, self.swing, self.arrival
            )
        } else {
            f.write_str("pulse(dead)")
        }
    }
}

/// What happened to a pulse inside one stage, with the launched drive and
/// consumed energy. Produced by [`SrlrStage::process`].
///
/// [`SrlrStage::process`]: crate::stage::SrlrStage::process
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageOutcome {
    /// The pulse delivered to the *next* stage's input (dead on failure).
    pub output: PulseState,
    /// Drive level the output driver launched onto the wire segment.
    pub launched_drive: Voltage,
    /// Dynamic energy consumed by the stage + wire for this pulse.
    pub energy: srlr_units::Energy,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_pulse_is_valid() {
        let p = PulseState::new(
            TimeInterval::from_picoseconds(90.0),
            Voltage::from_millivolts(300.0),
        );
        assert!(p.is_valid());
        assert_eq!(p.arrival, TimeInterval::zero());
    }

    #[test]
    fn dead_pulse_is_invalid() {
        assert!(!PulseState::dead().is_valid());
    }

    #[test]
    fn zero_width_is_invalid() {
        let p = PulseState::new(TimeInterval::zero(), Voltage::from_millivolts(300.0));
        assert!(!p.is_valid());
    }

    #[test]
    fn zero_swing_is_invalid() {
        let p = PulseState::new(TimeInterval::from_picoseconds(90.0), Voltage::zero());
        assert!(!p.is_valid());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_width_rejected() {
        let _ = PulseState::new(
            TimeInterval::from_picoseconds(-1.0),
            Voltage::from_millivolts(300.0),
        );
    }

    #[test]
    fn delay_accumulates() {
        let p = PulseState::new(
            TimeInterval::from_picoseconds(90.0),
            Voltage::from_millivolts(300.0),
        )
        .delayed_by(TimeInterval::from_picoseconds(50.0))
        .delayed_by(TimeInterval::from_picoseconds(25.0));
        assert!((p.arrival.picoseconds() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn display_distinguishes_dead() {
        let live = PulseState::new(
            TimeInterval::from_picoseconds(90.0),
            Voltage::from_millivolts(300.0),
        );
        assert!(live.to_string().contains("width="));
        assert_eq!(PulseState::dead().to_string(), "pulse(dead)");
    }
}
