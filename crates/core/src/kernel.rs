//! The raw `f64` pulse-domain math shared by [`crate::stage::SrlrStage`]
//! and the batched evaluator in [`crate::batch`].
//!
//! # Why this module exists
//!
//! The structure-of-arrays batch evaluator ([`crate::batch::DieBatch`])
//! must produce results **bit-identical** to the scalar stage map: a die
//! that passes the Monte Carlo stress test serially must pass it batched,
//! down to the last ulp of every intermediate. The only way to guarantee
//! that under compiler and libm evolution is to have exactly one
//! implementation of each hot expression. `SrlrStage`'s methods delegate
//! here, and `DieBatch`'s inner loops call the same functions on its flat
//! parameter arrays — same operations, same order, same results.
//!
//! All quantities are in SI base units (volts, seconds, farads, amperes,
//! joules), matching the payload of every `srlr_units` newtype.

/// M1's discharge current (amperes) at gate voltage `vgs_v`, using the
/// smoothed alpha-power law of [`crate::stage::SrlrStage`]:
/// `softplus`-blended overdrive raised to `alpha`, with a subthreshold
/// attenuation below the threshold.
#[inline]
pub(crate) fn m1_current_amperes(
    vth_v: f64,
    smooth_v: f64,
    drive_scale: f64,
    alpha: f64,
    vgs_v: f64,
) -> f64 {
    let overdrive = vgs_v - vth_v;
    let x = overdrive / smooth_v;
    let eff = if x > 30.0 {
        overdrive
    } else {
        smooth_v * x.exp().ln_1p()
    };
    let mut i = drive_scale * eff.powf(alpha);
    if x < 0.0 {
        i *= (x / 1.4).exp();
    }
    i
}

/// Time (seconds) for M1 to pull node X through the amplifier threshold,
/// fighting the keeper: `C_x · depth / max(I_m1 − I_keeper, 1 pA)`.
///
/// `cx_depth_coulombs` is the precomputed product `C_x · depth` (the
/// charge M1 must remove), hoisted because it is die-constant.
#[inline]
pub(crate) fn x_discharge_seconds(
    m1_amperes: f64,
    keeper_amperes: f64,
    cx_depth_coulombs: f64,
) -> f64 {
    let i = (m1_amperes - keeper_amperes).max(1e-12);
    cx_depth_coulombs / i
}

/// Far-end swing (volts) the outgoing segment delivers for an output
/// pulse of width `w_s`: the RC step response
/// `V_drive · (1 − e^(−w/τ))`, zero for non-positive widths.
///
/// `charge_tau_s` must already carry the scalar path's `max(τ, 1 fs)`
/// floor (it is die-constant, so pre-flooring is exact).
#[inline]
pub(crate) fn delivered_swing_volts(drive_v: f64, charge_tau_s: f64, w_s: f64) -> f64 {
    if w_s <= 0.0 {
        return 0.0;
    }
    drive_v * (1.0 - (-w_s / charge_tau_s).exp())
}

/// Wire energy (joules) of one launched pulse: near-end charge toward the
/// drive level with the driver-dominated time constant, times VDD.
///
/// `tau_near_s` must already carry the `max(τ, 1 fs)` floor.
#[inline]
pub(crate) fn wire_energy_joules(
    drive_v: f64,
    tau_near_s: f64,
    wire_cap_f: f64,
    vdd_v: f64,
    w_s: f64,
) -> f64 {
    let v_near = if w_s <= 0.0 {
        0.0
    } else {
        drive_v * (1.0 - (-w_s / tau_near_s).exp())
    };
    wire_cap_f * v_near * vdd_v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_is_monotone_in_vgs() {
        let mut last = 0.0;
        for mv in [100.0, 200.0, 280.0, 300.0, 350.0, 500.0, 2000.0] {
            let i = m1_current_amperes(0.28, 0.034, 1e-3, 1.3, mv * 1e-3);
            assert!(i > last, "current must grow with vgs");
            last = i;
        }
    }

    #[test]
    fn deep_saturation_uses_the_linear_overdrive() {
        // x > 30 switches to the raw overdrive; the blend must be
        // continuous enough that the two branches agree closely there.
        let smooth = 0.034;
        let vth = 0.28;
        let vgs = vth + 30.0 * smooth * 1.001;
        let above = m1_current_amperes(vth, smooth, 1e-3, 1.3, vgs);
        let just_below = m1_current_amperes(vth, smooth, 1e-3, 1.3, vgs * 0.9999);
        assert!((above / just_below - 1.0).abs() < 1e-2);
    }

    #[test]
    fn discharge_time_floors_the_net_current() {
        // Keeper stronger than M1: the 1 pA floor keeps the time finite.
        let t = x_discharge_seconds(1e-15, 1e-6, 1e-16);
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn delivered_swing_is_zero_at_nonpositive_width() {
        assert_eq!(delivered_swing_volts(0.45, 50e-12, 0.0), 0.0);
        assert_eq!(delivered_swing_volts(0.45, 50e-12, -1e-12), 0.0);
    }

    #[test]
    fn delivered_swing_saturates_at_drive() {
        let v = delivered_swing_volts(0.45, 50e-12, 10e-9);
        assert!(v <= 0.45 && v > 0.449);
    }

    #[test]
    fn wire_energy_is_zero_for_dead_pulses() {
        assert_eq!(wire_energy_joules(0.45, 50e-12, 200e-15, 1.0, 0.0), 0.0);
    }
}
