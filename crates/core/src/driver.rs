//! Output drivers: the straightforward inverter driver and the proposed
//! NMOS-based driver (Sec. III-B).
//!
//! An inverter driver has **two** corner failure modes: a weak PMOS
//! delivers insufficient swing to the next stage, while a strong PMOS
//! (paired with a weak NMOS) delivers *too much* swing that the pull-down
//! cannot drain before the next bit — the worst-case `11110` pattern then
//! saturates the wire and swallows the trailing `0`. The NMOS-based driver
//! supplies both pull-up and pull-down current through NMOS devices, so
//! only the weak-NMOS mode remains and the design can be optimised against
//! a single failure mechanism. Its pull-up is a source follower whose
//! level is set by the (optionally adaptive) `Vref` bias rather than the
//! rail, which is also what makes the adaptive swing scheme possible.

use srlr_tech::{Device, GlobalVariation, MosKind, Technology};
use srlr_units::{Length, Resistance, Voltage};

/// Which output-driver topology a design uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriverKind {
    /// PMOS pull-up / NMOS pull-down (the straightforward design).
    Inverter,
    /// NMOS pull-up (source follower from the bias level) and NMOS
    /// pull-down (the proposed design).
    NmosBased,
}

impl core::fmt::Display for DriverKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Inverter => f.write_str("inverter driver"),
            Self::NmosBased => f.write_str("NMOS-based driver"),
        }
    }
}

/// A sized output-driver instance.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputDriver {
    kind: DriverKind,
    pull_up: Device,
    pull_down: Device,
}

impl OutputDriver {
    /// The proposed NMOS-based driver: 4 um pull-up and pull-down NMOS.
    pub fn nmos_based(tech: &Technology) -> Self {
        let l = tech.min_length;
        let w = Length::from_micrometers(4.0);
        Self {
            kind: DriverKind::NmosBased,
            pull_up: Device::new(MosKind::Nmos, tech.nmos, w, l),
            pull_down: Device::new(MosKind::Nmos, tech.nmos, w, l),
        }
    }

    /// The straightforward inverter driver. The PMOS is drawn wide to
    /// compensate its weaker carrier mobility; the NMOS is the usual half
    /// width, which is precisely what creates the slow-discharge failure
    /// mode at a strong-PMOS/weak-NMOS corner.
    pub fn inverter(tech: &Technology) -> Self {
        let l = tech.min_length;
        Self {
            kind: DriverKind::Inverter,
            pull_up: Device::new(MosKind::Pmos, tech.pmos, Length::from_micrometers(4.0), l),
            pull_down: Device::new(MosKind::Nmos, tech.nmos, Length::from_micrometers(2.0), l),
        }
    }

    /// The topology.
    pub fn kind(&self) -> DriverKind {
        self.kind
    }

    /// The voltage level the driver pushes the wire toward.
    ///
    /// * NMOS-based: the `commanded` bias level (`Vref`-derived) — the
    ///   source follower self-limits there, so a strong PMOS corner cannot
    ///   overdrive the wire.
    /// * Inverter: the full rail, regardless of `commanded` — the arriving
    ///   swing is then whatever the PMOS strength and channel attenuation
    ///   produce, which is the root of its two failure modes.
    pub fn drive_level(&self, tech: &Technology, commanded: Voltage) -> Voltage {
        match self.kind {
            DriverKind::NmosBased => commanded.min(tech.vdd),
            DriverKind::Inverter => tech.vdd,
        }
    }

    /// Pull-up (charging) source resistance on the given die.
    pub fn charge_resistance(&self, tech: &Technology, var: &GlobalVariation) -> Resistance {
        let (dvth, mult) = match self.pull_up.kind() {
            MosKind::Nmos => (var.dvth_n, var.drive_mult_n),
            MosKind::Pmos => (var.dvth_p, var.drive_mult_p),
        };
        let dev = self.pull_up.with_variation(dvth, mult);
        let base = dev.effective_resistance(tech.vdd);
        match self.kind {
            // Source-follower pull-up loses gate overdrive as the output
            // approaches the bias level; fold that in as a fixed penalty.
            DriverKind::NmosBased => base * 1.3,
            DriverKind::Inverter => base,
        }
    }

    /// Pull-down (discharging) resistance on the given die. Both driver
    /// topologies discharge through their NMOS.
    pub fn discharge_resistance(&self, tech: &Technology, var: &GlobalVariation) -> Resistance {
        let dev = self.pull_down.with_variation(var.dvth_n, var.drive_mult_n);
        dev.effective_resistance(tech.vdd)
    }

    /// Gate capacitance presented to the pre-driver (for energy accounting).
    pub fn input_capacitance(&self) -> srlr_units::Capacitance {
        self.pull_up.gate_capacitance() + self.pull_down.gate_capacitance()
    }

    /// Returns a copy with the pull-up device scaled to `mult` times its
    /// drawn width (resistance scales as `1/mult`). Used to size an
    /// inverter driver's PMOS for a chosen delivered swing.
    ///
    /// # Panics
    ///
    /// Panics if `mult` is not strictly positive and finite.
    #[must_use]
    // srlr-lint: allow(raw-f64-api, reason = "pull-up scale is a dimensionless multiplier")
    pub fn with_pull_up_scaled(&self, mult: f64) -> Self {
        assert!(
            mult > 0.0 && mult.is_finite(),
            "pull-up scale must be positive"
        );
        Self {
            pull_up: self.pull_up.with_width(self.pull_up.width() * mult),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlr_tech::ProcessCorner;

    fn tech() -> Technology {
        Technology::soi45()
    }

    #[test]
    fn nmos_driver_obeys_commanded_level() {
        let t = tech();
        let d = OutputDriver::nmos_based(&t);
        let cmd = Voltage::from_millivolts(400.0);
        assert_eq!(d.drive_level(&t, cmd), cmd);
        // Cannot command above the rail.
        assert_eq!(d.drive_level(&t, Voltage::from_volts(2.0)), t.vdd);
    }

    #[test]
    fn inverter_driver_always_drives_to_rail() {
        let t = tech();
        let d = OutputDriver::inverter(&t);
        assert_eq!(d.drive_level(&t, Voltage::from_millivolts(300.0)), t.vdd);
    }

    #[test]
    fn charge_resistance_magnitudes() {
        let t = tech();
        let nominal = GlobalVariation::nominal();
        let nmos = OutputDriver::nmos_based(&t).charge_resistance(&t, &nominal);
        let inv = OutputDriver::inverter(&t).charge_resistance(&t, &nominal);
        // 4 um devices: low hundreds of ohms.
        assert!(nmos.ohms() > 80.0 && nmos.ohms() < 600.0, "nmos R = {nmos}");
        assert!(inv.ohms() > 150.0 && inv.ohms() < 1500.0, "inv R = {inv}");
        // PMOS pull-up at equal width is weaker than NMOS even with the
        // follower penalty.
        assert!(inv > nmos);
    }

    #[test]
    fn weak_pmos_corner_raises_inverter_charge_resistance() {
        let t = tech();
        let d = OutputDriver::inverter(&t);
        let nominal = d.charge_resistance(&t, &GlobalVariation::nominal());
        // SlowFast = slow NMOS / fast PMOS; FastSlow = fast NMOS / slow PMOS.
        let weak_pmos = d.charge_resistance(&t, &ProcessCorner::FastSlow.variation(&t));
        let strong_pmos = d.charge_resistance(&t, &ProcessCorner::SlowFast.variation(&t));
        assert!(weak_pmos > nominal);
        assert!(strong_pmos < nominal);
    }

    #[test]
    fn nmos_driver_charge_resistance_ignores_pmos_corner() {
        let t = tech();
        let d = OutputDriver::nmos_based(&t);
        let nominal = d.charge_resistance(&t, &GlobalVariation::nominal());
        let pmos_only = GlobalVariation {
            dvth_p: Voltage::from_millivolts(60.0),
            drive_mult_p: 0.85,
            ..GlobalVariation::nominal()
        };
        let shifted = d.charge_resistance(&t, &pmos_only);
        assert!(
            (shifted.ohms() - nominal.ohms()).abs() < nominal.ohms() * 1e-9,
            "NMOS driver must be insensitive to PMOS corners"
        );
    }

    #[test]
    fn weak_nmos_slows_discharge_for_both() {
        let t = tech();
        let weak_n = GlobalVariation {
            dvth_n: Voltage::from_millivolts(60.0),
            drive_mult_n: 0.88,
            ..GlobalVariation::nominal()
        };
        for d in [OutputDriver::nmos_based(&t), OutputDriver::inverter(&t)] {
            let nominal = d.discharge_resistance(&t, &GlobalVariation::nominal());
            let weak = d.discharge_resistance(&t, &weak_n);
            assert!(weak > nominal, "{} discharge should weaken", d.kind());
        }
    }

    #[test]
    fn inverter_pull_down_is_weaker_than_nmos_drivers() {
        let t = tech();
        let nominal = GlobalVariation::nominal();
        let inv = OutputDriver::inverter(&t).discharge_resistance(&t, &nominal);
        let nmos = OutputDriver::nmos_based(&t).discharge_resistance(&t, &nominal);
        assert!(inv > nmos, "half-width inverter NMOS discharges slower");
    }

    #[test]
    fn input_capacitance_positive() {
        let t = tech();
        let c = OutputDriver::nmos_based(&t).input_capacitance();
        assert!(c.femtofarads() > 1.0);
    }

    #[test]
    fn kind_display() {
        assert_eq!(DriverKind::Inverter.to_string(), "inverter driver");
        assert_eq!(DriverKind::NmosBased.to_string(), "NMOS-based driver");
    }
}
