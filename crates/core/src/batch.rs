//! Structure-of-arrays batch evaluation of the pulse-domain stage map:
//! one pass advances N dice (lanes) per stage per bit slot.
//!
//! # Why batched
//!
//! Monte Carlo, shmoo, and bathtub experiments evaluate thousands of
//! independent links through the same recurrence. The scalar path
//! ([`SrlrStage::process`] driven slot-by-slot) walks one die at a time
//! through pointer-rich structs; [`DieBatch`] transposes the population
//! into flat per-parameter `f64` arrays (stage-major, lane-minor) so the
//! inner loop streams contiguous slices — friendly to the cache and to
//! auto-vectorization — and hoists every die-constant subexpression
//! (idle-slot decay, launch swing/energy) out of the slot loop.
//!
//! # Bit-identity contract
//!
//! A lane advanced by [`DieBatch::advance_slot`] produces **bit-identical**
//! decisions, energies, and ISI diagnostics to the scalar link stepping
//! the same die, at any batch width and any thread count. This holds
//! because:
//!
//! * every hot expression is evaluated by the same private `kernel`
//!   functions the scalar path delegates to, in the same order on the
//!   same operands;
//! * hoisted constants (`exp(−t_bit/τ_discharge)`, the launch pulse's
//!   delivered swing and energy) are whole-expression results of
//!   die-constant inputs, so hoisting cannot change their value;
//! * the per-lane alive mask only *skips* lanes whose outcome is already
//!   decided — it never alters a computation that still runs.
//!
//! The contract is enforced by `srlr-link`'s batched-versus-serial
//! identity tests (results and telemetry bytes).
//!
//! [`SrlrStage::process`]: crate::stage::SrlrStage::process

use crate::design::SrlrChain;
use crate::kernel;
use srlr_telemetry::Profiler;
use srlr_units::{Energy, TimeInterval, Voltage};

/// A population of independent dice advanced in lockstep through the
/// pulse-domain stage map, one bit slot at a time.
///
/// Parameter arrays are stage-major (`[stage][lane]` flattened); per-lane
/// state mirrors the scalar link's `SlotState` (`baseline` per segment,
/// running `energy` and `max_baseline`) plus the in-flight pulse
/// (`width`, its delivered swing, and a live flag) and the alive mask
/// that replaces the scalar early exit.
#[derive(Debug, Clone)]
pub struct DieBatch {
    stages: usize,
    lanes: usize,
    track_energy: bool,

    // Die-resolved stage parameters, stage-major (`stage * lanes + lane`).
    live: Vec<bool>,
    vth: Vec<f64>,
    smooth: Vec<f64>,
    drive_scale: Vec<f64>,
    alpha: Vec<f64>,
    keeper: Vec<f64>,
    cx_depth: Vec<f64>,
    trise0: Vec<f64>,
    tfall: Vec<f64>,
    delay: Vec<f64>,
    minw: Vec<f64>,
    drive: Vec<f64>,
    charge_tau: Vec<f64>,
    discharge_tau: Vec<f64>,
    idle_decay: Vec<f64>,
    sense: Vec<f64>,
    tau_near: Vec<f64>,
    wire_cap: Vec<f64>,
    vdd: Vec<f64>,
    internal_e: Vec<f64>,

    // Per-lane link constants.
    t_bit: Vec<f64>,
    demod_min: Vec<f64>,
    launch_width: Vec<f64>,
    launch_delivered: Vec<f64>,
    launch_energy: Vec<f64>,

    // Per-lane mutable state.
    baseline: Vec<f64>,
    energy: Vec<f64>,
    max_baseline: Vec<f64>,
    width: Vec<f64>,
    dsw: Vec<f64>,
    has_pulse: Vec<bool>,
    alive: Vec<bool>,
}

impl DieBatch {
    /// An empty batch of `lanes` dice, each an `stages`-stage link.
    /// Load dice with [`DieBatch::load_lane`] before advancing.
    ///
    /// # Panics
    ///
    /// Panics if `stages` or `lanes` is zero.
    pub fn new(stages: usize, lanes: usize) -> Self {
        assert!(stages > 0 && lanes > 0, "batch needs stages and lanes");
        let per_stage = stages * lanes;
        Self {
            stages,
            lanes,
            track_energy: false,
            live: vec![false; per_stage],
            vth: vec![0.0; per_stage],
            smooth: vec![0.0; per_stage],
            drive_scale: vec![0.0; per_stage],
            alpha: vec![0.0; per_stage],
            keeper: vec![0.0; per_stage],
            cx_depth: vec![0.0; per_stage],
            trise0: vec![0.0; per_stage],
            tfall: vec![0.0; per_stage],
            delay: vec![0.0; per_stage],
            minw: vec![0.0; per_stage],
            drive: vec![0.0; per_stage],
            charge_tau: vec![0.0; per_stage],
            discharge_tau: vec![0.0; per_stage],
            idle_decay: vec![0.0; per_stage],
            sense: vec![0.0; per_stage],
            tau_near: vec![0.0; per_stage],
            wire_cap: vec![0.0; per_stage],
            vdd: vec![0.0; per_stage],
            internal_e: vec![0.0; per_stage],
            t_bit: vec![0.0; lanes],
            demod_min: vec![0.0; lanes],
            launch_width: vec![0.0; lanes],
            launch_delivered: vec![0.0; lanes],
            launch_energy: vec![0.0; lanes],
            baseline: vec![0.0; per_stage],
            energy: vec![0.0; lanes],
            max_baseline: vec![0.0; lanes],
            width: vec![0.0; lanes],
            dsw: vec![0.0; lanes],
            has_pulse: vec![false; lanes],
            alive: vec![true; lanes],
        }
    }

    /// Number of stages per lane.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Number of lanes (dice).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Enables per-lane energy and pulse accounting. Off by default:
    /// pass/fail evaluation skips the per-pulse energy exponentials
    /// entirely, which decisions never depend on.
    pub fn set_track_energy(&mut self, on: bool) {
        self.track_energy = on;
    }

    /// Loads die `lane` from an instantiated chain, hoisting every
    /// die-constant subexpression of the slot loop.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or the chain's stage count does
    /// not match the batch.
    pub fn load_lane(
        &mut self,
        lane: usize,
        chain: &SrlrChain,
        t_bit: TimeInterval,
        demod_min: TimeInterval,
    ) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let stages = chain.stages();
        assert_eq!(stages.len(), self.stages, "stage count mismatch");
        for (s, stage) in stages.iter().enumerate() {
            let k = s * self.lanes + lane;
            self.live[k] = stage.enabled && stage.statically_sound;
            self.vth[k] = stage.m1_vth.volts();
            self.smooth[k] = stage.m1_smooth;
            self.drive_scale[k] = stage.m1_drive_scale;
            self.alpha[k] = stage.m1_alpha;
            self.keeper[k] = stage.keeper_current.amperes();
            self.cx_depth[k] = stage.c_x.farads() * stage.x_discharge_depth.volts();
            self.trise0[k] = stage.t_rise0.seconds();
            self.tfall[k] = stage.t_fall.seconds();
            self.delay[k] = stage.delay.seconds();
            self.minw[k] = stage.min_output_width.seconds();
            self.drive[k] = stage.drive_level.volts();
            self.charge_tau[k] = stage.charge_tau().seconds().max(1e-15);
            self.discharge_tau[k] = stage.discharge_tau().seconds();
            self.idle_decay[k] = (-t_bit.seconds() / stage.discharge_tau().seconds()).exp();
            self.sense[k] = stage.sense_threshold.volts();
            let tau_near =
                (stage.charge_resistance + stage.wire_resistance * 0.15) * stage.wire_capacitance;
            self.tau_near[k] = tau_near.seconds().max(1e-15);
            self.wire_cap[k] = stage.wire_capacitance.farads();
            self.vdd[k] = stage.vdd.volts();
            self.internal_e[k] = stage.internal_energy_per_pulse.joules();
        }
        self.t_bit[lane] = t_bit.seconds();
        self.demod_min[lane] = demod_min.seconds();
        self.launch_width[lane] = chain.launch_width().seconds();
        self.launch_delivered[lane] = stages[0].delivered_swing(chain.launch_width()).volts();
        self.launch_energy[lane] = stages[0].pulse_energy(chain.launch_width()).joules();
    }

    /// Resets the transmission state of every lane (fresh ISI baselines,
    /// zero energy/diagnostics), like starting a new scalar transmit.
    /// The alive mask is left untouched.
    pub fn reset_state(&mut self) {
        self.baseline.fill(0.0);
        self.energy.fill(0.0);
        self.max_baseline.fill(0.0);
        self.width.fill(0.0);
        self.dsw.fill(0.0);
        self.has_pulse.fill(false);
    }

    /// Marks every lane alive again.
    pub fn revive_all(&mut self) {
        self.alive.fill(true);
    }

    /// Permanently retires `lane` from subsequent slots (its outcome is
    /// decided); the batched analogue of the scalar early exit.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn kill_lane(&mut self, lane: usize) {
        self.alive[lane] = false;
    }

    /// Whether `lane` is still being advanced.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn is_alive(&self, lane: usize) -> bool {
        self.alive[lane]
    }

    /// Whether any lane is still being advanced.
    pub fn any_alive(&self) -> bool {
        self.alive.iter().any(|&a| a)
    }

    /// Accumulated dynamic energy of `lane` since the last reset (zero
    /// unless energy tracking is enabled).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn energy(&self, lane: usize) -> Energy {
        Energy::from_joules(self.energy[lane])
    }

    /// Worst ISI residue observed on any segment of `lane` since the
    /// last reset.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn max_baseline(&self, lane: usize) -> Voltage {
        Voltage::from_volts(self.max_baseline[lane])
    }

    /// Advances every alive lane by one bit slot: `bits[lane]` is the
    /// transmitted bit, `received[lane]` gets the demodulator decision
    /// (untouched for dead lanes).
    ///
    /// # Panics
    ///
    /// Panics if the slices are not `lanes` long.
    pub fn advance_slot(&mut self, bits: &[bool], received: &mut [bool]) {
        self.advance_slot_impl::<false>(bits, received, &mut |_, w| w);
    }

    /// [`DieBatch::advance_slot`] wrapped in a per-bit-slot `bit_slot`
    /// profiler frame — the batched kernel's innermost unit of work,
    /// where hotspot attribution expects the self time of a Monte
    /// Carlo run to land. Free when `prof` is disabled (one branch per
    /// call, no clock read, identical arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if the slices are not `lanes` long.
    pub fn advance_slot_profiled(
        &mut self,
        bits: &[bool],
        received: &mut [bool],
        prof: &mut Profiler,
    ) {
        prof.enter("bit_slot");
        self.advance_slot(bits, received);
        prof.exit();
    }

    /// [`DieBatch::advance_slot`] with per-pulse width jitter: `jitter`
    /// is called as `(lane, width)` for every launched pulse, in the same
    /// per-lane order as the scalar jittered transmit (modulator launch
    /// first, then each stage's output).
    ///
    /// # Panics
    ///
    /// Panics if the slices are not `lanes` long.
    pub fn advance_slot_jittered(
        &mut self,
        bits: &[bool],
        received: &mut [bool],
        jitter: &mut dyn FnMut(usize, TimeInterval) -> TimeInterval,
    ) {
        self.advance_slot_impl::<true>(bits, received, jitter);
    }

    fn advance_slot_impl<const JITTER: bool>(
        &mut self,
        bits: &[bool],
        received: &mut [bool],
        jitter: &mut dyn FnMut(usize, TimeInterval) -> TimeInterval,
    ) {
        let l = self.lanes;
        assert_eq!(bits.len(), l, "one bit per lane");
        assert_eq!(received.len(), l, "one decision slot per lane");

        // Pulse-modulator launch into segment 0 (PM hardware mirrors
        // stage 0, so its delivered swing/energy are hoisted constants).
        for (lane, &bit) in bits.iter().enumerate() {
            if !self.alive[lane] {
                continue;
            }
            self.has_pulse[lane] = bit;
            if bit {
                if self.track_energy {
                    self.energy[lane] += self.launch_energy[lane];
                }
                if JITTER {
                    let w =
                        jitter(lane, TimeInterval::from_seconds(self.launch_width[lane])).seconds();
                    self.width[lane] = w;
                    self.dsw[lane] =
                        kernel::delivered_swing_volts(self.drive[lane], self.charge_tau[lane], w);
                } else {
                    self.width[lane] = self.launch_width[lane];
                    self.dsw[lane] = self.launch_delivered[lane];
                }
            }
        }

        // `li` indexes the launcher that owns the segment feeding stage
        // `s` (the previous stage; the PM mirrors stage 0 for segment 0).
        let mut li = 0usize;
        let n = self.stages;
        for s in 0..n {
            let base = s * l;
            let lbase = li * l;
            for lane in 0..l {
                if !self.alive[lane] {
                    continue;
                }
                let k = base + lane;
                let lk = lbase + lane;
                let b = self.baseline[k];

                // Peak this slot on segment `s`, and its end-of-slot
                // residue — the scalar `step_slot` arithmetic verbatim.
                let (peak, in_w, have_input) = if self.has_pulse[lane] {
                    let w = self.width[lane];
                    let headroom = (1.0 - b / self.drive[lk].max(1e-9)).clamp(0.0, 1.0);
                    let peak = b + self.dsw[lane] * headroom;
                    let gap = (self.t_bit[lane] - w).max(0.0);
                    let decay = (-gap / self.discharge_tau[lk]).exp();
                    let residue = peak * decay;
                    self.baseline[k] = residue;
                    self.max_baseline[lane] = self.max_baseline[lane].max(residue);
                    (peak, w, true)
                } else {
                    let residue = b * self.idle_decay[lk];
                    self.baseline[k] = residue;
                    self.max_baseline[lane] = self.max_baseline[lane].max(residue);
                    // A baseline alone above threshold self-fires the
                    // repeater, seen as a bit-slot-wide input.
                    (b, self.t_bit[lane], b >= self.sense[k])
                };

                // Stage `s` detection: the current race of
                // `SrlrStage::process` on the flat parameter arrays.
                let mut fired = false;
                let mut valid = false;
                if have_input && self.live[k] && in_w > 0.0 && peak > 0.0 {
                    let i_m1 = kernel::m1_current_amperes(
                        self.vth[k],
                        self.smooth[k],
                        self.drive_scale[k],
                        self.alpha[k],
                        peak,
                    );
                    let t_d = kernel::x_discharge_seconds(i_m1, self.keeper[k], self.cx_depth[k]);
                    // The scalar dead-checks are `t_d > w` and
                    // `w_out < minw`; negate them literally so even the
                    // NaN edge keeps the same branch.
                    #[allow(clippy::neg_cmp_op_on_partial_ord)]
                    if !(t_d > in_w) {
                        let w_out = self.delay[k] - ((self.trise0[k] + t_d) - self.tfall[k]);
                        #[allow(clippy::neg_cmp_op_on_partial_ord)]
                        if !(w_out < self.minw[k]) {
                            fired = true;
                            let swing_next = kernel::delivered_swing_volts(
                                self.drive[k],
                                self.charge_tau[k],
                                w_out,
                            );
                            valid = w_out > 0.0 && swing_next > 0.0;
                            if valid {
                                if JITTER {
                                    let wj =
                                        jitter(lane, TimeInterval::from_seconds(w_out)).seconds();
                                    self.width[lane] = wj;
                                    self.dsw[lane] = kernel::delivered_swing_volts(
                                        self.drive[k],
                                        self.charge_tau[k],
                                        wj,
                                    );
                                } else {
                                    self.width[lane] = w_out;
                                    self.dsw[lane] = swing_next;
                                }
                            }
                            if self.track_energy {
                                if s + 1 < n {
                                    // Full pulse energy: wire charge plus
                                    // the stage's internal switching.
                                    self.energy[lane] += kernel::wire_energy_joules(
                                        self.drive[k],
                                        self.tau_near[k],
                                        self.wire_cap[k],
                                        self.vdd[k],
                                        w_out,
                                    ) + self.internal_e[k];
                                } else if valid {
                                    // The last stage drives the DM
                                    // directly: internal nodes only.
                                    self.energy[lane] += self.internal_e[k];
                                }
                            }
                        }
                    }
                }
                self.has_pulse[lane] = fired && valid;
            }
            li = s;
        }

        // DM decision on the last stage's (full-swing) output pulse.
        for (lane, decision) in received.iter_mut().enumerate() {
            if self.alive[lane] {
                *decision = self.has_pulse[lane] && self.width[lane] >= self.demod_min[lane];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::SrlrDesign;
    use srlr_tech::{GlobalVariation, Technology};

    fn chain(stages: usize) -> SrlrChain {
        let tech = Technology::soi45();
        SrlrDesign::paper_proposed(&tech).instantiate(&tech, &GlobalVariation::nominal(), stages)
    }

    fn paper_timing() -> (TimeInterval, TimeInterval) {
        (
            TimeInterval::from_seconds(1.0 / 4.1e9),
            TimeInterval::from_picoseconds(20.0),
        )
    }

    #[test]
    fn nominal_die_reproduces_a_stress_pattern() {
        let (t_bit, demod) = paper_timing();
        let c = chain(10);
        let mut batch = DieBatch::new(10, 3);
        for lane in 0..3 {
            batch.load_lane(lane, &c, t_bit, demod);
        }
        let pattern = [true, true, true, true, false, true, true, true, true, false];
        let mut rx = [false; 3];
        for &bit in &pattern {
            batch.advance_slot(&[bit; 3], &mut rx);
            assert_eq!(rx, [bit; 3], "nominal die must reproduce the pattern");
        }
    }

    #[test]
    fn dead_lanes_are_skipped_and_keep_their_decision_slot() {
        let (t_bit, demod) = paper_timing();
        let c = chain(4);
        let mut batch = DieBatch::new(4, 2);
        batch.load_lane(0, &c, t_bit, demod);
        batch.load_lane(1, &c, t_bit, demod);
        batch.kill_lane(1);
        assert!(batch.is_alive(0) && !batch.is_alive(1));
        let mut rx = [false, true];
        batch.advance_slot(&[true, true], &mut rx);
        assert!(rx[0], "alive lane advances");
        assert!(rx[1], "dead lane's slot is untouched");
        assert!(batch.any_alive());
        batch.kill_lane(0);
        assert!(!batch.any_alive());
        batch.revive_all();
        assert!(batch.is_alive(1));
    }

    #[test]
    fn reset_state_clears_isi_and_energy() {
        let (t_bit, demod) = paper_timing();
        let c = chain(4);
        let mut batch = DieBatch::new(4, 1);
        batch.load_lane(0, &c, t_bit, demod);
        batch.set_track_energy(true);
        let mut rx = [false];
        for _ in 0..8 {
            batch.advance_slot(&[true], &mut rx);
        }
        assert!(batch.energy(0).femtojoules() > 0.0);
        assert!(batch.max_baseline(0).volts() > 0.0);
        batch.reset_state();
        assert_eq!(batch.energy(0), Energy::zero());
        assert_eq!(batch.max_baseline(0), Voltage::zero());
    }

    #[test]
    fn energy_tracking_is_off_by_default() {
        let (t_bit, demod) = paper_timing();
        let c = chain(4);
        let mut batch = DieBatch::new(4, 1);
        batch.load_lane(0, &c, t_bit, demod);
        let mut rx = [false];
        for _ in 0..4 {
            batch.advance_slot(&[true], &mut rx);
        }
        assert_eq!(batch.energy(0), Energy::zero());
    }

    #[test]
    #[should_panic(expected = "stages and lanes")]
    fn zero_lanes_rejected() {
        let _ = DieBatch::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "stage count mismatch")]
    fn stage_count_mismatch_rejected() {
        let (t_bit, demod) = paper_timing();
        let mut batch = DieBatch::new(10, 1);
        batch.load_lane(0, &chain(4), t_bit, demod);
    }
}
