//! Design-space description of an SRLR link and its elaboration into a
//! chain of per-die stages.
//!
//! [`SrlrDesign`] captures the *choices* of Secs. II–III: delay-cell
//! arrangement, driver topology, adaptive-swing on/off, the target swing
//! and the device sizing. [`SrlrDesign::instantiate`] resolves those
//! choices against a technology and one die's global variation (plus,
//! optionally, per-stage local mismatch) into an [`SrlrChain`] of
//! [`SrlrStage`]s ready to propagate pulses.

use crate::delay::DelayCellDesign;
use crate::driver::{DriverKind, OutputDriver};
use crate::pulse::{PulseState, StageOutcome};
use crate::stage::SrlrStage;
use srlr_tech::{
    AdaptiveSwingBias, Device, GlobalVariation, MismatchSampler, MosKind, Technology, WireGeometry,
};
use srlr_units::{Capacitance, Energy, Length, TimeInterval, Voltage};

/// A complete SRLR design point.
///
/// # Examples
///
/// ```
/// use srlr_core::{DriverKind, SrlrDesign};
/// use srlr_tech::Technology;
///
/// let tech = Technology::soi45();
/// let proposed = SrlrDesign::paper_proposed(&tech);
/// assert_eq!(proposed.driver_kind, DriverKind::NmosBased);
/// assert!(proposed.adaptive_swing);
///
/// let baseline = SrlrDesign::straightforward(&tech);
/// assert_eq!(baseline.driver_kind, DriverKind::Inverter);
/// assert!(!baseline.adaptive_swing);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SrlrDesign {
    /// Delay-cell arrangement (single vs alternating).
    pub delay_cell: DelayCellDesign,
    /// Output-driver topology.
    pub driver_kind: DriverKind,
    /// Whether the adaptive swing-voltage scheme is enabled.
    pub adaptive_swing: bool,
    /// Commanded drive level on a typical die (the Fig. 6 sweep axis).
    pub nominal_swing: Voltage,
    /// Repeater insertion length (the mesh router-to-router distance).
    pub segment_length: Length,
    /// Link wire geometry.
    pub wire: WireGeometry,
    /// Drawn width of the input NMOS M1.
    pub m1_width: Length,
    /// Drawn width of the keeper NMOS M2.
    pub m2_width: Length,
    /// Threshold offset of M1/M2 relative to the regular NMOS (a low-Vt
    /// flavour; negative lowers the threshold).
    pub lvt_offset: Voltage,
    /// Intrinsic amplifier rise time at the typical corner.
    pub t_rise0: TimeInterval,
    /// Amplifier fall time at the typical corner.
    pub t_fall: TimeInterval,
    /// Narrowest usable output pulse.
    pub min_output_width: TimeInterval,
    /// Sensitivity-margin floor added to M1's threshold.
    pub sense_margin_floor: Voltage,
    /// Keeper-ratio coefficient of the sensitivity margin.
    pub sense_margin_coeff: Voltage,
    /// Static-soundness guard between X's standby level and the amplifier
    /// threshold.
    pub static_guard: Voltage,
}

impl SrlrDesign {
    /// The proposed design: alternating delay cells, NMOS-based drivers and
    /// the adaptive swing scheme (Sec. III), at the fabrication swing.
    pub fn paper_proposed(tech: &Technology) -> Self {
        Self {
            delay_cell: DelayCellDesign::alternating_paper(),
            driver_kind: DriverKind::NmosBased,
            adaptive_swing: true,
            nominal_swing: Voltage::from_millivolts(460.0),
            segment_length: Length::from_millimeters(1.0),
            wire: tech.wire,
            m1_width: Length::from_micrometers(0.3),
            m2_width: Length::from_nanometers(60.0),
            lvt_offset: Voltage::from_millivolts(-70.0),
            t_rise0: TimeInterval::from_picoseconds(10.0),
            t_fall: TimeInterval::from_picoseconds(15.0),
            min_output_width: TimeInterval::from_picoseconds(10.0),
            sense_margin_floor: Voltage::from_millivolts(10.0),
            sense_margin_coeff: Voltage::from_millivolts(20.0),
            static_guard: Voltage::from_millivolts(20.0),
        }
    }

    /// The straightforward design the paper compares against in Fig. 6:
    /// inverter drivers, a single 6-buffer delay cell everywhere and no
    /// adaptive swing.
    pub fn straightforward(tech: &Technology) -> Self {
        Self {
            delay_cell: DelayCellDesign::single_paper(),
            driver_kind: DriverKind::Inverter,
            adaptive_swing: false,
            ..Self::paper_proposed(tech)
        }
    }

    /// Returns a copy with a different commanded nominal swing.
    ///
    /// # Panics
    ///
    /// Panics if `swing` is not strictly positive.
    #[must_use]
    pub fn with_nominal_swing(&self, swing: Voltage) -> Self {
        assert!(swing.volts() > 0.0, "nominal swing must be positive");
        Self {
            nominal_swing: swing,
            ..self.clone()
        }
    }

    /// Returns a copy with a different delay-cell design (for ablations).
    #[must_use]
    pub fn with_delay_cell(&self, delay_cell: DelayCellDesign) -> Self {
        Self {
            delay_cell,
            ..self.clone()
        }
    }

    /// Returns a copy with a different driver topology (for ablations).
    #[must_use]
    pub fn with_driver(&self, driver_kind: DriverKind) -> Self {
        Self {
            driver_kind,
            ..self.clone()
        }
    }

    /// Returns a copy with the adaptive swing scheme toggled.
    #[must_use]
    pub fn with_adaptive_swing(&self, adaptive_swing: bool) -> Self {
        Self {
            adaptive_swing,
            ..self.clone()
        }
    }

    /// The commanded drive level on a die: adaptive designs track M1's
    /// threshold via the bias generator; fixed designs lose (gain) drive
    /// when the follower's threshold rises (falls).
    pub fn commanded_drive(&self, tech: &Technology, var: &GlobalVariation) -> Voltage {
        if self.adaptive_swing {
            AdaptiveSwingBias::with_nominal_swing(tech, self.nominal_swing).target_swing(var)
        } else {
            (self.nominal_swing - var.dvth_n).max(Voltage::zero())
        }
    }

    /// Builds the output driver for this design.
    ///
    /// An inverter driver always drives to the rail, so its *delivered*
    /// swing is set at design time by sizing the PMOS such that a pulse of
    /// the nominal delay-cell width charges the segment's far end to
    /// `nominal_swing` at the typical corner — the realistic equivalent of
    /// "the voltage swing selected for fabrication" in Fig. 6's sweep.
    pub fn driver(&self, tech: &Technology) -> OutputDriver {
        match self.driver_kind {
            DriverKind::NmosBased => OutputDriver::nmos_based(tech),
            DriverKind::Inverter => {
                let base = OutputDriver::inverter(tech);
                let wire = self.wire.extract(self.segment_length);
                let w_star = self.delay_cell.nominal_delay().seconds();
                // Fair sizing: match the *delivered* swing of the
                // NMOS-based design at the same design point, i.e. the
                // commanded swing times that driver's nominal attenuation.
                let nmos_tau = (OutputDriver::nmos_based(tech)
                    .charge_resistance(tech, &GlobalVariation::nominal())
                    + wire.resistance * 0.5)
                    * wire.capacitance;
                let delivered_frac = 1.0 - (-w_star / nmos_tau.seconds()).exp();
                let target = self.nominal_swing * delivered_frac;
                let frac = (target / tech.vdd).clamp(0.05, 0.95);
                let tau_target = -w_star / (1.0 - frac).ln();
                let r_needed = (tau_target / wire.capacitance.farads()
                    - 0.5 * wire.resistance.ohms())
                .max(50.0);
                let r_base = base
                    .charge_resistance(tech, &GlobalVariation::nominal())
                    .ohms();
                base.with_pull_up_scaled(r_base / r_needed)
            }
        }
    }

    /// Elaborates `stages` identical-die stages (global variation only).
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    pub fn instantiate(
        &self,
        tech: &Technology,
        var: &GlobalVariation,
        stages: usize,
    ) -> SrlrChain {
        self.build_chain(tech, var, stages, None)
    }

    /// Elaborates a chain with per-stage local mismatch drawn from `mc`
    /// on top of the die's global variation.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    pub fn instantiate_with_mismatch<M: MismatchSampler>(
        &self,
        tech: &Technology,
        var: &GlobalVariation,
        stages: usize,
        mc: &mut M,
    ) -> SrlrChain {
        self.build_chain(tech, var, stages, Some(mc))
    }

    fn build_chain(
        &self,
        tech: &Technology,
        var: &GlobalVariation,
        stages: usize,
        mut mc: Option<&mut dyn MismatchSampler>,
    ) -> SrlrChain {
        assert!(stages > 0, "a chain needs at least one stage");
        let driver = self.driver(tech);
        let drive_command = self.commanded_drive(tech, var);
        let drive_level = driver.drive_level(tech, drive_command);
        let charge_r = driver.charge_resistance(tech, var);
        let discharge_r = driver.discharge_resistance(tech, var);
        let wire = self
            .wire
            .extract(self.segment_length)
            .with_variation(var.wire_r_mult, var.wire_c_mult);

        let delay_mult = DelayCellDesign::variation_multiplier(tech, var);
        let t_rise0 = self.t_rise0 * delay_mult;
        let t_fall = self.t_fall * delay_mult;

        let built: Vec<SrlrStage> = (0..stages)
            .map(|index| {
                // Local mismatch applies to the small, matching-critical
                // input pair (M1 against the sense reference).
                let (local_vth, local_drive) = match mc.as_deref_mut() {
                    Some(mc) => (
                        mc.sample_local_vth(self.m1_width, tech.min_length),
                        mc.sample_local_drive(self.m1_width, tech.min_length),
                    ),
                    None => (Voltage::zero(), 1.0),
                };
                let m1_model = tech.nmos.with_variation(
                    var.dvth_n + self.lvt_offset + local_vth,
                    var.drive_mult_n * local_drive,
                );
                let m1 = Device::new(MosKind::Nmos, m1_model, self.m1_width, tech.min_length);
                let m2_model = tech
                    .nmos
                    .with_variation(var.dvth_n + self.lvt_offset, var.drive_mult_n);
                let m2 = Device::new(MosKind::Nmos, m2_model, self.m2_width, tech.min_length);

                // Sensitivity margin: floor plus the keeper-ratio term
                // (a relatively stronger keeper demands more overdrive).
                let margin = self.sense_margin_floor
                    + self.sense_margin_coeff * (self.m2_width / self.m1_width);
                let sense_threshold = m1.vth() + margin;

                // Node X: standby at VDD − Vth(M2); the amplifier flips at
                // the CMOS midpoint of its (corner-shifted) devices.
                let x_standby = tech.vdd - m2.vth();
                let vth_n_eff = (tech.nmos.vth0 + var.dvth_n).volts();
                let vth_p_eff = (tech.pmos.vth0 + var.dvth_p).volts();
                let inv_threshold =
                    Voltage::from_volts(0.5 * (vth_n_eff + tech.vdd.volts() - vth_p_eff));
                let statically_sound = x_standby > inv_threshold + self.static_guard;
                let x_discharge_depth =
                    (x_standby - inv_threshold).max(Voltage::from_millivolts(20.0));

                // Node X loading: M1 drain, M2 source, amplifier input.
                let amp_input = Capacitance::from_femtofarads(0.9);
                let c_x = m1.drain_capacitance() + m2.drain_capacitance() + amp_input;

                // Fixed internal energy: X cycle, amplifier load, driver
                // input, delay-cell buffers.
                let c_buffers =
                    Capacitance::from_femtofarads(2.0 * self.delay_cell.buffers() as f64);
                let c_amp_load = Capacitance::from_femtofarads(2.0);
                let c_internal = c_x + driver.input_capacitance() + c_buffers + c_amp_load;
                let internal_energy_per_pulse = (c_internal * tech.vdd) * tech.vdd;

                // Keeper opposition during a discharge: M2's current at
                // half the discharge depth of gate overdrive (its source
                // follows X down while its gate stays at VDD).
                let half_depth = x_discharge_depth / 2.0;
                let keeper_current = m2.drain_current(m2.vth() + half_depth, tech.vdd / 2.0);

                // Standby leakage: M1 (gate low) plus one off device in
                // each inverter of the delay cell/amplifier/pre-driver
                // (~0.45 um each) plus the idle driver pull-up.
                let leaky_inverters = 2.0 * self.delay_cell.buffers() as f64 + 3.0;
                let reg_n = tech.nmos.with_variation(var.dvth_n, var.drive_mult_n);
                let inv_off = Device::new(
                    MosKind::Nmos,
                    reg_n,
                    Length::from_micrometers(0.45),
                    tech.min_length,
                )
                .off_current();
                let driver_off = Device::new(
                    MosKind::Nmos,
                    reg_n,
                    Length::from_micrometers(4.0),
                    tech.min_length,
                )
                .off_current();
                let leak_current = m1.off_current() + inv_off * leaky_inverters + driver_off;
                let leakage = tech.vdd * leak_current;

                SrlrStage {
                    index,
                    enabled: true,
                    vdd: tech.vdd,
                    m1_vth: m1.vth(),
                    keeper_current,
                    m1_drive_scale: tech.nmos.drive_factor.amperes()
                        * m1.ratio()
                        * var.drive_mult_n
                        * local_drive,
                    m1_alpha: tech.nmos.alpha,
                    m1_smooth: srlr_tech::mosfet::THERMAL_VOLTAGE.volts()
                        * tech.nmos.subthreshold_n,
                    sense_threshold,
                    c_x,
                    x_discharge_depth,
                    t_rise0,
                    t_fall,
                    delay: self.delay_cell.delay_for_stage(index, tech, var),
                    min_output_width: self.min_output_width,
                    drive_level,
                    charge_resistance: charge_r,
                    discharge_resistance: discharge_r,
                    wire_resistance: wire.resistance,
                    wire_capacitance: wire.capacitance,
                    internal_energy_per_pulse,
                    leakage,
                    statically_sound,
                }
            })
            .collect();

        SrlrChain {
            stages: built,
            segment_length: self.segment_length,
            launch_width: self.delay_cell.nominal_delay() * delay_mult,
        }
    }
}

/// A resolved chain of SRLR stages on one die.
#[derive(Debug, Clone, PartialEq)]
pub struct SrlrChain {
    stages: Vec<SrlrStage>,
    segment_length: Length,
    /// Width of the pulse the modulator launches on this die (the
    /// parity-free nominal delay-cell width, corner-scaled).
    launch_width: TimeInterval,
}

impl SrlrChain {
    /// The stages, in link order.
    pub fn stages(&self) -> &[SrlrStage] {
        &self.stages
    }

    /// Mutable access to the stages (e.g. to toggle EN for crossbar use).
    pub fn stages_mut(&mut self) -> &mut [SrlrStage] {
        &mut self.stages
    }

    /// Number of repeater stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` for a chain with no stages (cannot be constructed via
    /// [`SrlrDesign::instantiate`], but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Repeater insertion length.
    pub fn segment_length(&self) -> Length {
        self.segment_length
    }

    /// Total wire length spanned by the chain.
    pub fn total_length(&self) -> Length {
        self.segment_length * self.stages.len() as f64
    }

    /// The pulse the pulse modulator launches into the first stage: the
    /// stage-0 driver charging the first segment for the parity-free
    /// nominal delay-cell width.
    pub fn nominal_input_pulse(&self) -> PulseState {
        let s0 = &self.stages[0];
        PulseState::new(self.launch_width, s0.delivered_swing(self.launch_width))
    }

    /// Width of the modulator's launch pulse on this die.
    pub fn launch_width(&self) -> TimeInterval {
        self.launch_width
    }

    /// Propagates a pulse through every stage, returning the final state
    /// (dead as soon as any stage drops it).
    pub fn propagate(&self, input: PulseState) -> PulseState {
        let mut p = input;
        for stage in &self.stages {
            if !p.is_valid() {
                return PulseState::dead();
            }
            p = stage.process(p).output;
        }
        p
    }

    /// Propagates a pulse, recording the state *entering* each stage plus
    /// the final output (so the result has `len() + 1` entries). This is
    /// the trace behind the paper's eqs. (1)/(2).
    pub fn propagate_trace(&self, input: PulseState) -> Vec<PulseState> {
        let mut trace = Vec::with_capacity(self.stages.len() + 1);
        let mut p = input;
        trace.push(p);
        for stage in &self.stages {
            p = if p.is_valid() {
                stage.process(p).output
            } else {
                PulseState::dead()
            };
            trace.push(p);
        }
        trace
    }

    /// Total standby leakage of every stage in the chain.
    pub fn total_leakage(&self) -> srlr_units::Power {
        self.stages.iter().map(|s| s.leakage).sum()
    }

    /// Propagates a pulse and accumulates the total dynamic energy spent
    /// by all stages on it.
    pub fn propagate_with_energy(&self, input: PulseState) -> (PulseState, Energy) {
        let mut p = input;
        let mut energy = Energy::zero();
        for stage in &self.stages {
            if !p.is_valid() {
                return (PulseState::dead(), energy);
            }
            let StageOutcome {
                output, energy: e, ..
            } = stage.process(p);
            energy += e;
            p = output;
        }
        (p, energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlr_tech::{MonteCarlo, ProcessCorner};

    fn tech() -> Technology {
        Technology::soi45()
    }

    #[test]
    fn proposed_design_repeats_over_ten_stages() {
        let t = tech();
        let chain = SrlrDesign::paper_proposed(&t).instantiate(&t, &GlobalVariation::nominal(), 10);
        let out = chain.propagate(chain.nominal_input_pulse());
        assert!(out.is_valid(), "nominal 10-stage propagation failed: {out}");
    }

    #[test]
    fn straightforward_design_also_works_at_typical() {
        // Footnote 2: the single delay cell is the most reliable at the
        // *typical* condition — it must pass nominally.
        let t = tech();
        let chain =
            SrlrDesign::straightforward(&t).instantiate(&t, &GlobalVariation::nominal(), 10);
        let out = chain.propagate(chain.nominal_input_pulse());
        assert!(out.is_valid(), "straightforward nominal failed: {out}");
    }

    #[test]
    fn pulse_width_converges_to_a_fixed_point_nominally() {
        let t = tech();
        let chain = SrlrDesign::paper_proposed(&t).instantiate(&t, &GlobalVariation::nominal(), 40);
        let trace = chain.propagate_trace(chain.nominal_input_pulse());
        assert!(trace.iter().all(PulseState::is_valid));
        // Compare stages of equal parity deep in the chain: the map must
        // have settled (alternating designs settle to a 2-cycle).
        let w = |i: usize| trace[i].width.picoseconds();
        assert!((w(38) - w(36)).abs() < 1.0, "even parity not settled");
        assert!((w(39) - w(37)).abs() < 1.0, "odd parity not settled");
    }

    #[test]
    fn latency_accumulates_along_the_chain() {
        let t = tech();
        let chain = SrlrDesign::paper_proposed(&t).instantiate(&t, &GlobalVariation::nominal(), 10);
        let trace = chain.propagate_trace(chain.nominal_input_pulse());
        let mut last = TimeInterval::zero();
        for p in trace.iter().skip(1) {
            assert!(p.arrival > last);
            last = p.arrival;
        }
        // 10 mm in ~10 stage delays: tens to hundreds of ps.
        assert!(last.picoseconds() > 100.0 && last.nanoseconds() < 5.0);
    }

    #[test]
    fn adaptive_design_survives_slow_corner_where_fixed_dies() {
        let t = tech();
        let ss = ProcessCorner::SlowSlow.variation(&t);
        let proposed = SrlrDesign::paper_proposed(&t).instantiate(&t, &ss, 10);
        let out = proposed.propagate(proposed.nominal_input_pulse());
        assert!(out.is_valid(), "proposed design died at SS: {out}");

        let fixed = SrlrDesign::paper_proposed(&t)
            .with_adaptive_swing(false)
            .instantiate(&t, &ss, 10);
        let out_fixed = fixed.propagate(fixed.nominal_input_pulse());
        assert!(
            !out_fixed.is_valid(),
            "fixed-bias design should lose drive at the slow corner"
        );
    }

    #[test]
    fn commanded_drive_tracks_threshold_when_adaptive() {
        let t = tech();
        let d = SrlrDesign::paper_proposed(&t);
        let slow = GlobalVariation {
            dvth_n: Voltage::from_millivolts(60.0),
            ..GlobalVariation::nominal()
        };
        assert!(d.commanded_drive(&t, &slow) > d.nominal_swing);
        let fixed = d.with_adaptive_swing(false);
        assert!(fixed.commanded_drive(&t, &slow) < fixed.nominal_swing);
    }

    #[test]
    fn chain_geometry() {
        let t = tech();
        let chain = SrlrDesign::paper_proposed(&t).instantiate(&t, &GlobalVariation::nominal(), 10);
        assert_eq!(chain.len(), 10);
        assert!(!chain.is_empty());
        assert!((chain.total_length().millimeters() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_stage_count() {
        let t = tech();
        let design = SrlrDesign::paper_proposed(&t);
        let five = design.instantiate(&t, &GlobalVariation::nominal(), 5);
        let ten = design.instantiate(&t, &GlobalVariation::nominal(), 10);
        let (_, e5) = five.propagate_with_energy(five.nominal_input_pulse());
        let (_, e10) = ten.propagate_with_energy(ten.nominal_input_pulse());
        assert!(e10 > e5 * 1.8, "e5={e5} e10={e10}");
    }

    #[test]
    fn disabled_stage_kills_propagation() {
        let t = tech();
        let mut chain =
            SrlrDesign::paper_proposed(&t).instantiate(&t, &GlobalVariation::nominal(), 10);
        chain.stages_mut()[4].enabled = false;
        let out = chain.propagate(chain.nominal_input_pulse());
        assert!(!out.is_valid());
    }

    #[test]
    fn mismatch_instantiation_differs_per_stage() {
        let t = tech();
        let mut mc = MonteCarlo::new(&t, 3);
        let chain = SrlrDesign::paper_proposed(&t).instantiate_with_mismatch(
            &t,
            &GlobalVariation::nominal(),
            10,
            &mut mc,
        );
        let thresholds: Vec<f64> = chain
            .stages()
            .iter()
            .map(|s| s.sense_threshold.volts())
            .collect();
        let first = thresholds[0];
        assert!(
            thresholds.iter().any(|&v| (v - first).abs() > 1e-6),
            "local mismatch should scatter stage thresholds"
        );
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_chain_rejected() {
        let t = tech();
        let _ = SrlrDesign::paper_proposed(&t).instantiate(&t, &GlobalVariation::nominal(), 0);
    }
}
