//! One SRLR stage: detection at M1, the node-X discharge/reset cycle, the
//! output driver, and the 1 mm wire segment to the next stage — as a
//! calibrated pulse-domain map.
//!
//! The map implements the paper's Sec. III-A recurrence
//!
//! ```text
//! W_out,n = W_x,n − (t_rising,n − t_falling,n)
//! ```
//!
//! closed through the wire: the next stage's input swing is the RC step
//! response of the segment evaluated at the output pulse width
//! (`V = V_drive · (1 − e^(−W/τ))`), and the rising time grows as the
//! input swing (M1's overdrive) shrinks. Those two couplings create the
//! monotone pulse-width drift at global corners that the alternating delay
//! cell, NMOS driver and adaptive swing scheme are designed to contain.

use crate::kernel;
use crate::pulse::{PulseState, StageOutcome};
use srlr_units::{Capacitance, Energy, Resistance, TimeInterval, Voltage};

/// Everything one stage needs, with die-level variation already folded in.
///
/// Stages are produced by [`SrlrDesign::instantiate`]; the fields here are
/// *resolved* quantities (per-die resistances, thresholds, delays), not
/// design intent.
///
/// [`SrlrDesign::instantiate`]: crate::design::SrlrDesign::instantiate
#[derive(Debug, Clone, PartialEq)]
pub struct SrlrStage {
    /// Stage position in the chain (0-based), which selects the delay-cell
    /// parity in the alternating design.
    pub index: usize,
    /// Whether the EN port is asserted; a disabled stage (unselected
    /// crossbar crosspoint) passes nothing.
    pub enabled: bool,
    /// Supply voltage.
    pub vdd: Voltage,
    /// M1's effective threshold on this die (global + local variation).
    pub m1_vth: Voltage,
    /// M1's saturation current at 1 V of effective overdrive — the
    /// pre-resolved drive scale used for the discharge-time model.
    // srlr-lint: allow(raw-f64-api, reason = "drive multiplier is dimensionless")
    pub m1_drive_scale: f64,
    /// Alpha of M1's current law.
    // srlr-lint: allow(raw-f64-api, reason = "alpha-power exponent is dimensionless")
    pub m1_alpha: f64,
    /// Smoothing width of the subthreshold blend (volts).
    // srlr-lint: allow(raw-f64-api, reason = "smoothing parameter is dimensionless")
    pub m1_smooth: f64,
    /// Approximate minimum input swing that trips the stage (M1's
    /// threshold plus the keeper-ratio margin). Used for spurious-firing
    /// checks and margin reporting; actual detection emerges from the
    /// M1-versus-keeper current race below.
    pub sense_threshold: Voltage,
    /// Opposing current of the keeper M2 during an X discharge (evaluated
    /// at half the discharge depth). M1 must out-pull this for the stage
    /// to fire — the paper's M1/M2 sizing-ratio sensitivity rule.
    pub keeper_current: srlr_units::Current,
    /// Node X capacitance.
    pub c_x: Capacitance,
    /// Voltage X must lose before the amplifier flips
    /// (standby level minus amplifier threshold).
    pub x_discharge_depth: Voltage,
    /// Intrinsic amplifier rise time (excludes the X discharge time).
    pub t_rise0: TimeInterval,
    /// Amplifier fall time (approximately swing-independent).
    pub t_fall: TimeInterval,
    /// This stage's delay-cell contribution (`W_x`).
    pub delay: TimeInterval,
    /// Narrowest output pulse the following logic can still use.
    pub min_output_width: TimeInterval,
    /// Drive level launched onto the wire.
    pub drive_level: Voltage,
    /// Charging source resistance (driver pull-up).
    pub charge_resistance: Resistance,
    /// Discharging resistance (driver pull-down).
    pub discharge_resistance: Resistance,
    /// Outgoing wire segment resistance.
    pub wire_resistance: Resistance,
    /// Outgoing wire segment capacitance.
    pub wire_capacitance: Capacitance,
    /// Fixed per-pulse internal energy (node X, amplifier, delay cell,
    /// driver input), excluding the wire.
    pub internal_energy_per_pulse: Energy,
    /// Static leakage of the stage's devices (input pair, amplifier,
    /// delay cell, output driver) at the standby state.
    pub leakage: srlr_units::Power,
    /// `true` when the X standby level clears the amplifier threshold on
    /// this die (the static-soundness condition of Sec. II).
    pub statically_sound: bool,
}

impl SrlrStage {
    /// Charging time constant of the outgoing segment as seen from the
    /// far end (driver resistance plus half the distributed wire).
    #[inline]
    pub fn charge_tau(&self) -> TimeInterval {
        (self.charge_resistance + self.wire_resistance * 0.5) * self.wire_capacitance
    }

    /// Discharging time constant of the outgoing segment (pull-down plus
    /// half the wire) — governs inter-symbol interference.
    #[inline]
    pub fn discharge_tau(&self) -> TimeInterval {
        (self.discharge_resistance + self.wire_resistance * 0.5) * self.wire_capacitance
    }

    /// M1's discharge current at the given gate (input swing) voltage.
    #[inline]
    fn m1_current_amperes(&self, vgs: Voltage) -> f64 {
        kernel::m1_current_amperes(
            self.m1_vth.volts(),
            self.m1_smooth,
            self.m1_drive_scale,
            self.m1_alpha,
            vgs.volts(),
        )
    }

    /// Time for M1 to pull node X down through the amplifier threshold at
    /// the given input swing, fighting the keeper M2. Weak inputs give a
    /// net current near zero and an effectively unbounded discharge time —
    /// detection fails gracefully rather than at a hard threshold.
    #[inline]
    pub fn x_discharge_time(&self, input_swing: Voltage) -> TimeInterval {
        TimeInterval::from_seconds(kernel::x_discharge_seconds(
            self.m1_current_amperes(input_swing),
            self.keeper_current.amperes(),
            self.c_x.farads() * self.x_discharge_depth.volts(),
        ))
    }

    /// The amplifier rising time for a given input swing: intrinsic rise
    /// plus the swing-dependent X discharge (small swing → slow discharge
    /// → long rise; this is the feedback term of Sec. III-A).
    pub fn rise_time(&self, input_swing: Voltage) -> TimeInterval {
        self.t_rise0 + self.x_discharge_time(input_swing)
    }

    /// Far-end swing the outgoing segment delivers for an output pulse of
    /// width `w`.
    #[inline]
    pub fn delivered_swing(&self, w: TimeInterval) -> Voltage {
        Voltage::from_volts(kernel::delivered_swing_volts(
            self.drive_level.volts(),
            self.charge_tau().seconds().max(1e-15),
            w.seconds(),
        ))
    }

    /// Energy of transmitting one pulse: wire charge drawn from the rail
    /// plus the fixed internal switching energy.
    #[inline]
    pub fn pulse_energy(&self, w: TimeInterval) -> Energy {
        // Near-end charge: the wire charges toward the drive level with
        // the driver-dominated time constant.
        let tau_near =
            (self.charge_resistance + self.wire_resistance * 0.15) * self.wire_capacitance;
        let wire = Energy::from_joules(kernel::wire_energy_joules(
            self.drive_level.volts(),
            tau_near.seconds().max(1e-15),
            self.wire_capacitance.farads(),
            self.vdd.volts(),
            w.seconds(),
        ));
        wire + self.internal_energy_per_pulse
    }

    /// Processes one incoming pulse into the outgoing pulse.
    ///
    /// Failure paths (all produce a dead output):
    ///
    /// * the stage is disabled or statically unsound,
    /// * the input swing is below the sense threshold (bit-1 loss),
    /// * X cannot discharge within the input pulse width,
    /// * the self-reset arithmetic leaves no usable output width.
    pub fn process(&self, input: PulseState) -> StageOutcome {
        let dead = StageOutcome {
            output: PulseState::dead(),
            launched_drive: Voltage::zero(),
            energy: Energy::zero(),
        };
        if !self.enabled || !self.statically_sound || !input.is_valid() {
            return dead;
        }
        // Detection is a current race: M1 (driven by the input swing) must
        // pull X through the amplifier threshold against the keeper before
        // the pulse ends. There is no separate hard swing threshold — a
        // weak input simply discharges too slowly.
        let t_discharge = self.x_discharge_time(input.swing);
        if t_discharge > input.width {
            return dead;
        }
        let t_rise = self.t_rise0 + t_discharge;
        let w_out = self.delay - (t_rise - self.t_fall);
        if w_out < self.min_output_width {
            return dead;
        }
        let swing_next = self.delivered_swing(w_out);
        let wire_delay = TimeInterval::from_seconds(
            0.38 * self.wire_resistance.ohms() * self.wire_capacitance.farads(),
        );
        let latency = t_rise + wire_delay;
        StageOutcome {
            output: PulseState {
                width: w_out,
                swing: swing_next,
                arrival: input.arrival + latency,
            },
            launched_drive: self.drive_level,
            energy: self.pulse_energy(w_out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::SrlrDesign;
    use srlr_tech::{GlobalVariation, Technology};

    fn nominal_stage() -> SrlrStage {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let chain = design.instantiate(&tech, &GlobalVariation::nominal(), 1);
        chain.stages()[0].clone()
    }

    fn healthy_pulse() -> PulseState {
        PulseState::new(
            TimeInterval::from_picoseconds(110.0),
            Voltage::from_millivolts(300.0),
        )
    }

    #[test]
    fn nominal_pulse_is_repeated() {
        let stage = nominal_stage();
        let out = stage.process(healthy_pulse());
        assert!(out.output.is_valid(), "output: {}", out.output);
        assert!(out.energy.femtojoules() > 0.0);
        assert!(out.output.arrival.picoseconds() > 0.0);
    }

    #[test]
    fn subthreshold_swing_is_rejected() {
        // Well below M1's threshold the keeper wins the current race and
        // X never discharges within the pulse.
        let stage = nominal_stage();
        let weak = PulseState::new(
            TimeInterval::from_picoseconds(110.0),
            stage.m1_vth - Voltage::from_millivolts(20.0),
        );
        let out = stage.process(weak);
        assert!(!out.output.is_valid());
        assert_eq!(out.energy, Energy::zero());
    }

    #[test]
    fn detection_degrades_gradually_near_threshold() {
        // The sensing boundary is a race, not a cliff: discharge time must
        // grow monotonically as the swing falls toward the threshold.
        let stage = nominal_stage();
        let mut last = TimeInterval::zero();
        for mv in [350.0, 320.0, 300.0, 290.0, 285.0] {
            let t = stage.x_discharge_time(Voltage::from_millivolts(mv));
            assert!(t > last, "discharge time must grow as swing falls");
            last = t;
        }
    }

    #[test]
    fn very_narrow_pulse_dies() {
        let stage = nominal_stage();
        let narrow = PulseState::new(
            TimeInterval::from_femtoseconds(200.0),
            Voltage::from_millivolts(300.0),
        );
        assert!(!stage.process(narrow).output.is_valid());
    }

    #[test]
    fn disabled_stage_blocks() {
        let mut stage = nominal_stage();
        stage.enabled = false;
        assert!(!stage.process(healthy_pulse()).output.is_valid());
    }

    #[test]
    fn statically_unsound_stage_blocks() {
        let mut stage = nominal_stage();
        stage.statically_sound = false;
        assert!(!stage.process(healthy_pulse()).output.is_valid());
    }

    #[test]
    fn dead_input_stays_dead() {
        let stage = nominal_stage();
        assert!(!stage.process(PulseState::dead()).output.is_valid());
    }

    #[test]
    fn rise_time_grows_as_swing_shrinks() {
        let stage = nominal_stage();
        let fast = stage.rise_time(Voltage::from_millivolts(400.0));
        let slow = stage.rise_time(Voltage::from_millivolts(280.0));
        assert!(slow > fast, "rise time must grow at lower swing");
    }

    #[test]
    fn delivered_swing_saturates_with_width() {
        let stage = nominal_stage();
        let narrow = stage.delivered_swing(TimeInterval::from_picoseconds(30.0));
        let wide = stage.delivered_swing(TimeInterval::from_picoseconds(300.0));
        assert!(narrow < wide);
        assert!(wide <= stage.drive_level);
        assert_eq!(stage.delivered_swing(TimeInterval::zero()), Voltage::zero());
    }

    #[test]
    fn wider_pulse_costs_more_energy() {
        let stage = nominal_stage();
        let narrow = stage.pulse_energy(TimeInterval::from_picoseconds(40.0));
        let wide = stage.pulse_energy(TimeInterval::from_picoseconds(150.0));
        assert!(wide > narrow);
    }

    #[test]
    fn per_stage_energy_is_in_the_paper_ballpark() {
        // One repeated '1' through one 1 mm stage: the paper's 40.4
        // fJ/bit/mm with half-ones PRBS implies ~81 fJ per pulse per mm.
        let stage = nominal_stage();
        let out = stage.process(healthy_pulse());
        let e = out.energy.femtojoules();
        assert!(e > 30.0 && e < 200.0, "per-pulse energy {e} fJ");
    }

    #[test]
    fn charge_and_discharge_taus_are_plausible() {
        let stage = nominal_stage();
        let tc = stage.charge_tau().picoseconds();
        let td = stage.discharge_tau().picoseconds();
        assert!(tc > 20.0 && tc < 300.0, "charge tau {tc} ps");
        assert!(td > 20.0 && td < 300.0, "discharge tau {td} ps");
    }
}
