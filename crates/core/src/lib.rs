//! The self-resetting logic repeater (SRLR) — the paper's contribution.
//!
//! An SRLR is a 3-port (`IN`, `OUT`, `EN`) repeater for single-ended,
//! low-swing *pulses*. When a low-swing pulse arrives at the input NMOS
//! `M1`, the precharged internal node `X` discharges and the output goes
//! high; a self-reset loop through a delay cell recharges `X`, terminating
//! the output pulse; a keeper NMOS `M2` then settles `X` at `VDD − Vth`,
//! which raises the gain of the current-starved inverter amplifier for the
//! next pulse. Because the repeater is asynchronous (no clock, no sense
//! amplifier) and single-ended (one wire per bit), it beats differential
//! clocked low-swing signaling on energy at equal wire density.
//!
//! This crate models the SRLR at two levels:
//!
//! * **Transient level** ([`transient`]): the full circuit is elaborated
//!   into a [`srlr_circuit`] netlist (input device, keeper, amplifier,
//!   delay cell, output driver, RC wire) and integrated to regenerate the
//!   paper's Fig. 4 waveforms.
//! * **Pulse level** ([`pulse`], [`stage`]): each stage is a calibrated map
//!   from an incoming pulse `(width, swing)` to the outgoing pulse,
//!   implementing the Sec. III-A recurrence
//!   `W_out,n = W_x,n − (t_rise,n − t_fall,n)` together with the wire's
//!   swing attenuation. This is what makes 1000-die Monte Carlo and
//!   billion-bit BER experiments tractable.
//!
//! The three robustness techniques of Sec. III are first-class design
//! choices on [`SrlrDesign`]:
//! alternating delay cells ([`delay`]), NMOS-based output drivers
//! ([`driver`]) and the adaptive swing scheme (via
//! [`srlr_tech::AdaptiveSwingBias`]).
//!
//! # Examples
//!
//! ```
//! use srlr_core::{SrlrDesign, PulseState};
//! use srlr_tech::{GlobalVariation, Technology};
//!
//! let tech = Technology::soi45();
//! let design = SrlrDesign::paper_proposed(&tech);
//! let chain = design.instantiate(&tech, &GlobalVariation::nominal(), 10);
//!
//! // A healthy pulse survives ten 1 mm hops.
//! let input = chain.nominal_input_pulse();
//! let out = chain.propagate(input);
//! assert!(out.is_valid());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod batch;
pub mod crossbar;
pub mod delay;
pub mod design;
pub mod driver;
pub mod energy;
pub(crate) mod kernel;
pub mod modem;
pub mod pulse;
pub mod sizing;
pub mod stage;
pub mod transient;

pub use area::SrlrArea;
pub use batch::DieBatch;
pub use crossbar::SrlrCrossbar;
pub use delay::{DelayCellDesign, DelayCellKind};
pub use design::{SrlrChain, SrlrDesign};
pub use driver::DriverKind;
pub use energy::StageEnergyModel;
pub use modem::{Demodulator, PulseModulator};
pub use pulse::PulseState;
pub use stage::SrlrStage;
