//! The SRLR-based low-swing crossbar switch (paper Fig. 3).
//!
//! A 5-port mesh crossbar has 20 crosspoints (each input can reach each
//! of the other four outputs). The paper inserts a 3-port (`IN`, `OUT`,
//! `EN`) SRLR at every crosspoint of every bit lane — `64 × 20` SRLRs for
//! a 64-bit router — so the crossbar's wires also run at low swing, and
//! the crosspoint repeater doubles as the output driver of the row.
//! Because the SRLR insertion length equals the router-to-router
//! distance, the same cell drives either a crossbar row or an inter-router
//! link without resizing, which is what keeps the layout flat.
//!
//! This module models one bit-slice of that crossbar: crosspoint enables,
//! pulse propagation from an input port to the selected output port, and
//! the energy/area accounting of Sec. I.

use crate::design::{SrlrChain, SrlrDesign};
use crate::pulse::PulseState;
use srlr_tech::{GlobalVariation, Technology};
use srlr_units::Energy;

/// Number of router ports.
pub const PORTS: usize = 5;

/// One bit-slice of the SRLR crossbar: a 5x5 grid of EN-gated repeaters
/// (self-connections excluded, giving the paper's 20 crosspoints).
#[derive(Debug, Clone)]
pub struct SrlrCrossbar {
    /// One single-stage chain per (input, output) crosspoint; the unused
    /// diagonal holds `None`.
    crosspoints: Vec<Option<SrlrChain>>,
    /// Enable state per crosspoint.
    enabled: Vec<bool>,
}

impl SrlrCrossbar {
    /// Builds the crossbar for one bit lane on the given die.
    ///
    /// Each crosspoint is an independent SRLR stage driving a segment of
    /// the design's insertion length (the crossbar row is laid out to
    /// match the link pitch).
    pub fn new(tech: &Technology, design: &SrlrDesign, var: &GlobalVariation) -> Self {
        let crosspoints = (0..PORTS * PORTS)
            .map(|idx| {
                let (i, o) = (idx / PORTS, idx % PORTS);
                (i != o).then(|| design.instantiate(tech, var, 1))
            })
            .collect();
        Self {
            crosspoints,
            enabled: vec![false; PORTS * PORTS],
        }
    }

    /// Number of physical crosspoints (the paper's 20 for 5 ports).
    pub fn crosspoint_count(&self) -> usize {
        self.crosspoints.iter().flatten().count()
    }

    /// Enables exactly the `input -> output` crosspoint on the output's
    /// column, disabling every other input on that column (a column can
    /// carry one flow at a time — the switch-allocator contract).
    ///
    /// # Panics
    ///
    /// Panics if `input == output` or either index is out of range.
    pub fn select(&mut self, input: usize, output: usize) {
        assert!(input < PORTS && output < PORTS, "port out of range");
        assert_ne!(input, output, "a port cannot loop back to itself");
        for i in 0..PORTS {
            self.enabled[i * PORTS + output] = i == input;
        }
    }

    /// Releases an output column (all its crosspoints disabled).
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range.
    pub fn release(&mut self, output: usize) {
        assert!(output < PORTS, "port out of range");
        for i in 0..PORTS {
            self.enabled[i * PORTS + output] = false;
        }
    }

    /// Whether a crosspoint is currently enabled.
    pub fn is_enabled(&self, input: usize, output: usize) -> bool {
        self.enabled[input * PORTS + output]
    }

    /// Sends a pulse from `input` toward `output`, returning the pulse
    /// delivered at the output port (dead when the crosspoint is not
    /// selected — the EN-gated repeater simply does not fire) and the
    /// energy consumed.
    ///
    /// # Panics
    ///
    /// Panics if `input == output` or either index is out of range.
    pub fn traverse(&self, input: usize, output: usize, pulse: PulseState) -> (PulseState, Energy) {
        assert!(input < PORTS && output < PORTS, "port out of range");
        assert_ne!(input, output, "a port cannot loop back to itself");
        if !self.is_enabled(input, output) {
            return (PulseState::dead(), Energy::zero());
        }
        // Off-diagonal crosspoints are always populated by `new`; treat a
        // missing one as a disabled route rather than panicking.
        let Some(chain) = self.crosspoints[input * PORTS + output].as_ref() else {
            return (PulseState::dead(), Energy::zero());
        };
        let outcome = chain.stages()[0].process(pulse);
        (outcome.output, outcome.energy)
    }

    /// A healthy input pulse for this crossbar's design point.
    pub fn nominal_input_pulse(&self) -> PulseState {
        // A crossbar always has off-diagonal crosspoints; a (theoretical)
        // empty one yields a dead pulse instead of panicking.
        self.crosspoints
            .iter()
            .flatten()
            .next()
            .map_or_else(PulseState::dead, |chain| chain.nominal_input_pulse())
    }

    /// Total SRLRs of a full-width crossbar (`bits` lanes).
    pub fn srlr_count(bits: usize) -> usize {
        bits * (PORTS * PORTS - PORTS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crossbar() -> SrlrCrossbar {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        SrlrCrossbar::new(&tech, &design, &GlobalVariation::nominal())
    }

    #[test]
    fn has_the_papers_twenty_crosspoints() {
        assert_eq!(crossbar().crosspoint_count(), 20);
        // 64 lanes x 20 = 1280 SRLRs, the paper's "64 x 20 SRLRs in total".
        assert_eq!(SrlrCrossbar::srlr_count(64), 1280);
    }

    #[test]
    fn selected_crosspoint_repeats_the_pulse() {
        let mut xb = crossbar();
        xb.select(1, 3);
        let input = xb.nominal_input_pulse();
        let (out, energy) = xb.traverse(1, 3, input);
        assert!(out.is_valid(), "selected path must repeat: {out}");
        assert!(energy.femtojoules() > 0.0);
    }

    #[test]
    fn unselected_crosspoint_blocks_silently() {
        let mut xb = crossbar();
        xb.select(1, 3);
        let input = xb.nominal_input_pulse();
        // Same column, different input: disabled by the select.
        let (out, energy) = xb.traverse(2, 3, input);
        assert!(!out.is_valid());
        assert_eq!(energy, Energy::zero());
        // Different column entirely: never enabled.
        let (out, _) = xb.traverse(1, 2, input);
        assert!(!out.is_valid());
    }

    #[test]
    fn select_is_exclusive_per_output_column() {
        let mut xb = crossbar();
        xb.select(0, 4);
        assert!(xb.is_enabled(0, 4));
        xb.select(2, 4);
        assert!(xb.is_enabled(2, 4));
        assert!(!xb.is_enabled(0, 4), "reselect must displace the old input");
    }

    #[test]
    fn different_columns_are_independent() {
        let mut xb = crossbar();
        xb.select(0, 1);
        xb.select(2, 3);
        let p = xb.nominal_input_pulse();
        assert!(xb.traverse(0, 1, p).0.is_valid());
        assert!(xb.traverse(2, 3, p).0.is_valid());
    }

    #[test]
    fn release_clears_a_column() {
        let mut xb = crossbar();
        xb.select(0, 1);
        xb.release(1);
        assert!(!xb.is_enabled(0, 1));
        let p = xb.nominal_input_pulse();
        assert!(!xb.traverse(0, 1, p).0.is_valid());
    }

    #[test]
    #[should_panic(expected = "loop back")]
    fn self_loop_rejected() {
        let mut xb = crossbar();
        xb.select(2, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_port_rejected() {
        let mut xb = crossbar();
        xb.select(0, 7);
    }

    #[test]
    fn crossbar_then_link_composes() {
        // A pulse through a crosspoint then down a 10-stage link — the
        // crossbar output is a proper link input (Fig. 3's integration).
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let mut xb = SrlrCrossbar::new(&tech, &design, &GlobalVariation::nominal());
        xb.select(4, 0);
        let (pulse, _) = xb.traverse(4, 0, xb.nominal_input_pulse());
        assert!(pulse.is_valid());
        let link = design.instantiate(&tech, &GlobalVariation::nominal(), 10);
        let out = link.propagate(pulse);
        assert!(out.is_valid(), "crossbar output must survive the link");
    }
}
