//! Pulse modulator (PM) and demodulator (DM) — the only per-link overhead
//! the SRLR scheme adds (Sec. II).
//!
//! The PM converts a level-coded bit into a return-to-zero pulse launched
//! into the first wire segment; the DM at the far end converts a received
//! pulse back into a level. Because the signaling is asynchronous, the DM
//! is just a pulse-width/swing qualifier followed by a latch — no clock or
//! sense amplifier is needed.

use crate::pulse::PulseState;
use srlr_units::{TimeInterval, Voltage};

/// The pulse modulator: launches one pulse per `1` bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseModulator {
    /// Width of the launched pulse.
    pub pulse_width: TimeInterval,
    /// Swing delivered at the first repeater's input (after the first
    /// segment's attenuation).
    pub delivered_swing: Voltage,
}

impl PulseModulator {
    /// A modulator matched to a chain's nominal operating point.
    ///
    /// # Panics
    ///
    /// Panics if width or swing is not strictly positive.
    pub fn new(pulse_width: TimeInterval, delivered_swing: Voltage) -> Self {
        assert!(pulse_width.seconds() > 0.0, "pulse width must be positive");
        assert!(
            delivered_swing.volts() > 0.0,
            "delivered swing must be positive"
        );
        Self {
            pulse_width,
            delivered_swing,
        }
    }

    /// Encodes one bit: `1` launches a pulse, `0` launches nothing.
    pub fn encode(&self, bit: bool) -> PulseState {
        if bit {
            PulseState::new(self.pulse_width, self.delivered_swing)
        } else {
            PulseState::dead()
        }
    }

    /// Encodes a bit slice into launch pulses.
    pub fn encode_bits<'a>(&'a self, bits: &'a [bool]) -> impl Iterator<Item = PulseState> + 'a {
        bits.iter().map(|&b| self.encode(b))
    }
}

/// The demodulator: qualifies a received pulse into a bit decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demodulator {
    /// Narrowest pulse the DM latch can capture.
    pub min_width: TimeInterval,
    /// Smallest swing the DM input stage detects.
    pub min_swing: Voltage,
}

impl Demodulator {
    /// A demodulator with the given qualification limits.
    ///
    /// # Panics
    ///
    /// Panics if either limit is negative.
    pub fn new(min_width: TimeInterval, min_swing: Voltage) -> Self {
        assert!(min_width.seconds() >= 0.0, "min width must be non-negative");
        assert!(min_swing.volts() >= 0.0, "min swing must be non-negative");
        Self {
            min_width,
            min_swing,
        }
    }

    /// Decides the received bit: `true` iff the pulse is alive and clears
    /// both qualification limits.
    pub fn decide(&self, pulse: PulseState) -> bool {
        pulse.is_valid() && pulse.width >= self.min_width && pulse.swing >= self.min_swing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm() -> PulseModulator {
        PulseModulator::new(
            TimeInterval::from_picoseconds(110.0),
            Voltage::from_millivolts(300.0),
        )
    }

    fn dm() -> Demodulator {
        Demodulator::new(
            TimeInterval::from_picoseconds(20.0),
            Voltage::from_millivolts(250.0),
        )
    }

    #[test]
    fn one_becomes_pulse_zero_becomes_silence() {
        let m = pm();
        assert!(m.encode(true).is_valid());
        assert!(!m.encode(false).is_valid());
    }

    #[test]
    fn encode_bits_matches_pattern() {
        let m = pm();
        let bits = [true, false, true, true];
        let pulses: Vec<bool> = m.encode_bits(&bits).map(|p| p.is_valid()).collect();
        assert_eq!(pulses, vec![true, false, true, true]);
    }

    #[test]
    fn loopback_through_dm() {
        let m = pm();
        let d = dm();
        assert!(d.decide(m.encode(true)));
        assert!(!d.decide(m.encode(false)));
    }

    #[test]
    fn dm_rejects_narrow_pulse() {
        let d = dm();
        let narrow = PulseState::new(
            TimeInterval::from_picoseconds(5.0),
            Voltage::from_millivolts(300.0),
        );
        assert!(!d.decide(narrow));
    }

    #[test]
    fn dm_rejects_weak_pulse() {
        let d = dm();
        let weak = PulseState::new(
            TimeInterval::from_picoseconds(110.0),
            Voltage::from_millivolts(100.0),
        );
        assert!(!d.decide(weak));
    }

    #[test]
    fn dm_accepts_exactly_at_limits() {
        let d = dm();
        let edge = PulseState::new(d.min_width, d.min_swing);
        assert!(d.decide(edge));
    }

    #[test]
    #[should_panic(expected = "pulse width must be positive")]
    fn zero_width_modulator_rejected() {
        let _ = PulseModulator::new(TimeInterval::zero(), Voltage::from_millivolts(300.0));
    }
}
