//! Per-bit energy arithmetic for SRLR links.
//!
//! Pulse signaling only spends dynamic energy on `1` bits, so per-bit
//! numbers depend on the ones density of the traffic (PRBS is ½). This
//! module turns a chain's per-pulse energy into the paper's headline
//! metrics: fJ/bit, fJ/bit/mm and total link power.

use crate::design::SrlrChain;
use srlr_units::{DataRate, Energy, EnergyPerBit, EnergyPerBitLength, Length, Power};

/// Energy model of one resolved chain at its nominal operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageEnergyModel {
    /// Energy of repeating one pulse through the whole chain.
    pub chain_pulse_energy: Energy,
    /// Standby leakage of the whole chain.
    pub chain_leakage: Power,
    /// Wire length the chain spans.
    pub total_length: Length,
    /// Number of stages.
    pub stages: usize,
}

impl StageEnergyModel {
    /// Measures the chain's per-pulse energy at its nominal fixed point.
    ///
    /// # Panics
    ///
    /// Panics if the chain cannot propagate its own nominal pulse (a
    /// mis-designed chain has no meaningful energy number).
    pub fn from_chain(chain: &SrlrChain) -> Self {
        let (out, energy) = chain.propagate_with_energy(chain.nominal_input_pulse());
        assert!(
            out.is_valid(),
            "chain fails at its nominal operating point; energy undefined"
        );
        Self {
            chain_pulse_energy: energy,
            chain_leakage: chain.total_leakage(),
            total_length: chain.total_length(),
            stages: chain.len(),
        }
    }

    /// Energy per transmitted bit at the given ones density
    /// (0.5 for PRBS).
    ///
    /// # Panics
    ///
    /// Panics if `ones_density` is outside `(0, 1]`.
    // srlr-lint: allow(raw-f64-api, reason = "ones density is a dimensionless activity fraction")
    pub fn energy_per_bit(&self, ones_density: f64) -> EnergyPerBit {
        assert!(
            ones_density > 0.0 && ones_density <= 1.0,
            "ones density must be in (0, 1]"
        );
        EnergyPerBit::from_joules_per_bit(self.chain_pulse_energy.joules() * ones_density)
    }

    /// The paper's normalised metric: energy per bit per unit length.
    // srlr-lint: allow(raw-f64-api, reason = "ones density is a dimensionless activity fraction")
    pub fn energy_per_bit_per_length(&self, ones_density: f64) -> EnergyPerBitLength {
        self.energy_per_bit(ones_density) / self.total_length
    }

    /// Average *dynamic* link power at a data rate and ones density.
    // srlr-lint: allow(raw-f64-api, reason = "ones density is a dimensionless activity fraction")
    pub fn link_power(&self, rate: DataRate, ones_density: f64) -> Power {
        self.energy_per_bit(ones_density) * rate
    }

    /// Total link power: dynamic plus the chain's standby leakage.
    // srlr-lint: allow(raw-f64-api, reason = "ones density is a dimensionless activity fraction")
    pub fn total_power(&self, rate: DataRate, ones_density: f64) -> Power {
        self.link_power(rate, ones_density) + self.chain_leakage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::SrlrDesign;
    use srlr_tech::{GlobalVariation, Technology};

    fn model() -> StageEnergyModel {
        let tech = Technology::soi45();
        let chain =
            SrlrDesign::paper_proposed(&tech).instantiate(&tech, &GlobalVariation::nominal(), 10);
        StageEnergyModel::from_chain(&chain)
    }

    #[test]
    fn headline_energy_is_near_the_paper() {
        // Target: 40.4 fJ/bit/mm at PRBS (ones density 0.5).
        let m = model();
        let e = m.energy_per_bit_per_length(0.5);
        let fj = e.femtojoules_per_bit_per_millimeter();
        assert!(
            fj > 25.0 && fj < 60.0,
            "energy {fj} fJ/bit/mm is out of the calibration band"
        );
    }

    #[test]
    fn link_power_is_near_the_paper() {
        // Target: 1.66 mW at 4.1 Gb/s over 10 mm.
        let m = model();
        let p = m.link_power(DataRate::from_gigabits_per_second(4.1), 0.5);
        assert!(
            p.milliwatts() > 1.0 && p.milliwatts() < 2.6,
            "link power {p} out of calibration band"
        );
    }

    #[test]
    fn all_ones_doubles_prbs_energy() {
        let m = model();
        let prbs = m.energy_per_bit(0.5);
        let ones = m.energy_per_bit(1.0);
        assert!((ones.value() / prbs.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ones density")]
    fn zero_density_rejected() {
        let _ = model().energy_per_bit(0.0);
    }

    #[test]
    fn leakage_is_a_small_fraction_of_active_power() {
        // Tens of nA/um off-currents over ~11 um of devices per stage:
        // sub-uW per SRLR, single-digit uW per 10 mm link — well under a
        // percent of the 1.66 mW active power.
        let m = model();
        let leak = m.chain_leakage;
        assert!(leak.microwatts() > 0.1, "leakage {leak} too low");
        assert!(leak.microwatts() < 30.0, "leakage {leak} too high");
        let active = m.link_power(DataRate::from_gigabits_per_second(4.1), 0.5);
        assert!(leak.watts() / active.watts() < 0.02);
        let total = m.total_power(DataRate::from_gigabits_per_second(4.1), 0.5);
        assert!(total > active);
    }

    #[test]
    fn per_bit_times_length_consistent() {
        let m = model();
        let per_len = m.energy_per_bit_per_length(0.5);
        let recovered = per_len * m.total_length;
        assert!((recovered.value() - m.energy_per_bit(0.5).value()).abs() < 1e-24);
    }
}
