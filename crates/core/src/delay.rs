//! Self-reset delay cells: the single 6-buffer design and the proposed
//! alternating design (Sec. III-A).
//!
//! The delay cell sets how long node X stays discharged (`W_x`), which is
//! the dominant term of the output pulse width. With one delay everywhere,
//! a global corner perturbs every stage's pulse width in the same
//! direction and the drift accumulates monotonically down the link
//! (paper eqs. (1)/(2)). The alternating design gives odd stages an
//! intentionally longer delay and even stages a shorter one; together with
//! the nonlinearity of the width→swing→rise-time feedback this widens the
//! region of corners for which the two-stage composite map still has a
//! stable fixed point.

use srlr_tech::{GlobalVariation, Technology};
use srlr_units::TimeInterval;

/// Which delay-cell arrangement a design uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayCellKind {
    /// Every stage carries the same 6-buffer delay (the straightforward
    /// design, most reliable at the typical corner but drift-prone).
    Single,
    /// Odd stages delay `(1 + delta)`, even stages `(1 − delta)` of the
    /// nominal (the proposed design).
    Alternating {
        /// Fractional delay perturbation (0 < delta < 1).
        delta: f64,
    },
}

/// A delay-cell design: buffer count, per-buffer nominal delay and the
/// arrangement across stages.
///
/// # Examples
///
/// ```
/// use srlr_core::{DelayCellDesign, DelayCellKind};
/// use srlr_tech::{GlobalVariation, Technology};
///
/// let tech = Technology::soi45();
/// let cell = DelayCellDesign::alternating_paper();
/// let nominal = GlobalVariation::nominal();
/// let odd = cell.delay_for_stage(1, &tech, &nominal);
/// let even = cell.delay_for_stage(2, &tech, &nominal);
/// assert!(odd > even);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayCellDesign {
    kind: DelayCellKind,
    /// Number of buffers in the chain (the paper's baseline is 6).
    buffers: usize,
    /// Nominal delay of one buffer at the typical corner.
    buffer_delay: TimeInterval,
    /// Fraction of the CMOS corner-delay shift the chain experiences.
    /// Delay cells are drawn with long-channel devices, which makes them
    /// substantially less threshold-sensitive than the minimum-length
    /// amplifier (a shift of Vth moves a long-channel buffer's delay far
    /// less, relatively, than it moves M1's discharge current).
    tracking: f64,
}

impl DelayCellDesign {
    /// Nominal per-buffer delay used by both paper designs.
    const PAPER_BUFFER_DELAY_PS: f64 = 20.0;

    /// The single 6-buffer design ("most reliable repeated signaling at a
    /// typical process condition", footnote 2 of the paper).
    pub fn single_paper() -> Self {
        Self {
            kind: DelayCellKind::Single,
            buffers: 6,
            buffer_delay: TimeInterval::from_picoseconds(Self::PAPER_BUFFER_DELAY_PS),
            tracking: Self::PAPER_TRACKING,
        }
    }

    /// The proposed alternating design (±20 % about the same nominal).
    pub fn alternating_paper() -> Self {
        Self {
            kind: DelayCellKind::Alternating { delta: 0.10 },
            buffers: 6,
            buffer_delay: TimeInterval::from_picoseconds(Self::PAPER_BUFFER_DELAY_PS),
            tracking: Self::PAPER_TRACKING,
        }
    }

    /// Corner tracking of the paper designs' long-channel buffer chains.
    const PAPER_TRACKING: f64 = 0.4;

    /// Returns a copy with a different corner-tracking fraction.
    ///
    /// # Panics
    ///
    /// Panics if `tracking` is outside `[0, 1]`.
    #[must_use]
    // srlr-lint: allow(raw-f64-api, reason = "tracking coefficient is a dimensionless scale factor")
    pub fn with_tracking(mut self, tracking: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&tracking),
            "tracking must be in [0, 1]"
        );
        self.tracking = tracking;
        self
    }

    /// A custom design.
    ///
    /// # Panics
    ///
    /// Panics if `buffers` is zero, the buffer delay is not positive, or an
    /// alternating `delta` is outside `(0, 1)`.
    pub fn new(kind: DelayCellKind, buffers: usize, buffer_delay: TimeInterval) -> Self {
        assert!(buffers > 0, "delay cell needs at least one buffer");
        assert!(
            buffer_delay.seconds() > 0.0,
            "buffer delay must be positive"
        );
        if let DelayCellKind::Alternating { delta } = kind {
            assert!(
                delta > 0.0 && delta < 1.0,
                "alternating delta must be in (0, 1)"
            );
        }
        Self {
            kind,
            buffers,
            buffer_delay,
            tracking: Self::PAPER_TRACKING,
        }
    }

    /// The arrangement.
    pub fn kind(&self) -> DelayCellKind {
        self.kind
    }

    /// Buffer count.
    pub fn buffers(&self) -> usize {
        self.buffers
    }

    /// Nominal chain delay at the typical corner (stage parity ignored).
    pub fn nominal_delay(&self) -> TimeInterval {
        self.buffer_delay * self.buffers as f64
    }

    /// Multiplier a global corner applies to a CMOS buffer delay:
    /// raised thresholds and weakened drive slow the chain down.
    ///
    /// First-order: buffer delay ∝ `C·V / I ∝ 1/((1 − dVth/V_od)^alpha ·
    /// drive_mult)`, averaged over both flavours (a buffer stresses both).
    pub(crate) fn variation_multiplier(tech: &Technology, var: &GlobalVariation) -> f64 {
        let vdd = tech.vdd.volts();
        let od_n = (vdd - tech.nmos.vth0.volts()).max(0.05);
        let od_p = (vdd - tech.pmos.vth0.volts()).max(0.05);
        let n_term = ((od_n - var.dvth_n.volts()) / od_n)
            .max(0.1)
            .powf(tech.nmos.alpha);
        let p_term = ((od_p - var.dvth_p.volts()) / od_p)
            .max(0.1)
            .powf(tech.pmos.alpha);
        let n_mult = 1.0 / (n_term * var.drive_mult_n);
        let p_mult = 1.0 / (p_term * var.drive_mult_p);
        0.5 * (n_mult + p_mult)
    }

    /// The delay this cell contributes at stage `stage_index` (0-based) on
    /// a die with the given variation.
    pub fn delay_for_stage(
        &self,
        stage_index: usize,
        tech: &Technology,
        var: &GlobalVariation,
    ) -> TimeInterval {
        let full = Self::variation_multiplier(tech, var);
        let base = self.nominal_delay() * (1.0 + self.tracking * (full - 1.0));
        match self.kind {
            DelayCellKind::Single => base,
            DelayCellKind::Alternating { delta } => {
                // 0-based: odd stages get the long delay.
                if stage_index % 2 == 1 {
                    base * (1.0 + delta)
                } else {
                    base * (1.0 - delta)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlr_tech::ProcessCorner;
    use srlr_units::Voltage;

    fn tech() -> Technology {
        Technology::soi45()
    }

    #[test]
    fn paper_nominal_delay_is_six_buffers() {
        let cell = DelayCellDesign::single_paper();
        assert_eq!(cell.buffers(), 6);
        assert!((cell.nominal_delay().picoseconds() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn single_design_ignores_parity() {
        let cell = DelayCellDesign::single_paper();
        let t = tech();
        let v = GlobalVariation::nominal();
        assert_eq!(
            cell.delay_for_stage(0, &t, &v),
            cell.delay_for_stage(1, &t, &v)
        );
    }

    #[test]
    fn alternating_design_alternates() {
        let cell = DelayCellDesign::alternating_paper();
        let t = tech();
        let v = GlobalVariation::nominal();
        let d0 = cell.delay_for_stage(0, &t, &v);
        let d1 = cell.delay_for_stage(1, &t, &v);
        let d2 = cell.delay_for_stage(2, &t, &v);
        assert!(d1 > d0);
        assert_eq!(d0, d2);
        // Mean of the pair equals the single design's delay.
        let single = DelayCellDesign::single_paper().delay_for_stage(0, &t, &v);
        let mean = (d0 + d1) / 2.0;
        assert!((mean - single).abs().picoseconds() < 1e-6);
    }

    #[test]
    fn slow_corner_lengthens_delay() {
        let cell = DelayCellDesign::single_paper();
        let t = tech();
        let nominal = cell.delay_for_stage(0, &t, &GlobalVariation::nominal());
        let ss = cell.delay_for_stage(0, &t, &ProcessCorner::SlowSlow.variation(&t));
        let ff = cell.delay_for_stage(0, &t, &ProcessCorner::FastFast.variation(&t));
        assert!(ss > nominal, "SS should be slower");
        assert!(ff < nominal, "FF should be faster");
        // Corner shifts are tens of percent, not orders of magnitude.
        assert!(ss / nominal < 1.6);
        assert!(ff / nominal > 0.6);
    }

    #[test]
    fn vth_only_shift_slows_buffers() {
        let cell = DelayCellDesign::single_paper();
        let t = tech();
        let slow_vth = GlobalVariation {
            dvth_n: Voltage::from_millivolts(60.0),
            dvth_p: Voltage::from_millivolts(60.0),
            ..GlobalVariation::nominal()
        };
        assert!(
            cell.delay_for_stage(0, &t, &slow_vth)
                > cell.delay_for_stage(0, &t, &GlobalVariation::nominal())
        );
    }

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn bad_delta_rejected() {
        let _ = DelayCellDesign::new(
            DelayCellKind::Alternating { delta: 1.5 },
            6,
            TimeInterval::from_picoseconds(20.0),
        );
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn zero_buffers_rejected() {
        let _ = DelayCellDesign::new(
            DelayCellKind::Single,
            0,
            TimeInterval::from_picoseconds(20.0),
        );
    }
}
