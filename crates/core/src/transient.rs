//! Transistor-level elaboration of one SRLR stage for transient
//! simulation — the generator of the paper's Fig. 4 waveforms.
//!
//! Topology (matching Fig. 4's schematic description):
//!
//! ```text
//!                 VDD            VDD
//!                  |              |
//!              M2 (keeper)     reset NMOS <- rst (delayed OUT)
//!                  |              |
//!   IN ---- gate of M1       node X ----+---- current-starved INV --- OUT
//!                  |                    |         (EN-gated)           |
//!                 GND              (standby VDD-Vth)            6-buffer delay
//!                                                                      |
//!                                                                     rst
//!   OUT --> NMOS pull-up (from Vref) --+--> 1 mm RC ladder --> NEXT_IN
//!   OUT -> inv -> NMOS pull-down ------+
//! ```
//!
//! The reset device is an NMOS, so node X recharges only to `VDD − Vth` —
//! exactly the reduced standby level the paper exploits to raise the
//! amplifier gain; the keeper M2 then holds that level.

use crate::design::SrlrDesign;
use srlr_circuit::{LadderSpec, Netlist, NodeId, Stimulus, Transient, Waveform};
use srlr_tech::{Device, GlobalVariation, MosKind, Technology};
use srlr_units::{Capacitance, Length, TimeInterval, Voltage};
use std::collections::BTreeMap;

/// A single elaborated SRLR stage with its input stimulus port and output
/// wire, ready for transient simulation.
#[derive(Debug, Clone)]
pub struct SrlrTransientFixture {
    net: Netlist,
    /// The first stage's input (far end of the incoming wire).
    pub input: NodeId,
    /// The first stage's internal node X.
    pub node_x: NodeId,
    /// The first stage's amplifier output OUT.
    pub output: NodeId,
    /// The last stage's delivered output (far end of its 1 mm segment).
    pub next_input: NodeId,
    /// Per-stage probe nodes `(x, out, delivered)` in chain order.
    pub stage_nodes: Vec<(NodeId, NodeId, NodeId)>,
    initial: BTreeMap<NodeId, Voltage>,
}

/// Shared device context while elaborating stages.
struct StageContext<'a> {
    tech: &'a Technology,
    design: &'a SrlrDesign,
    var: &'a GlobalVariation,
    vdd: NodeId,
    en: NodeId,
    vref: NodeId,
}

/// The four waveforms of Fig. 4.
#[derive(Debug, Clone)]
pub struct Fig4Waveforms {
    /// Low-swing input pulses at the stage input.
    pub input: Waveform,
    /// Node X: discharge on detection, NMOS recharge to `VDD − Vth`.
    pub node_x: Waveform,
    /// Full-swing output pulse.
    pub output: Waveform,
    /// Low-swing pulse delivered at the next repeater, 1 mm away.
    pub next_input: Waveform,
}

impl SrlrTransientFixture {
    /// Elaborates one stage of `design` on a die with variation `var`,
    /// driving the input with low-swing pulses for the given bit pattern
    /// at the given bit period.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn build(
        tech: &Technology,
        design: &SrlrDesign,
        var: &GlobalVariation,
        bits: &[bool],
        bit_period: TimeInterval,
    ) -> Self {
        Self::build_chain(tech, design, var, bits, bit_period, 1)
    }

    /// Elaborates `stages` SRLR stages in series — each stage's 1 mm
    /// segment feeds the next stage's input NMOS — to observe the
    /// repeated signaling at transistor level.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or `stages` is zero.
    pub fn build_chain(
        tech: &Technology,
        design: &SrlrDesign,
        var: &GlobalVariation,
        bits: &[bool],
        bit_period: TimeInterval,
        stages: usize,
    ) -> Self {
        assert!(!bits.is_empty(), "need at least one stimulus bit");
        assert!(stages > 0, "need at least one stage");
        let mut net = Netlist::new();
        let vdd = net.rail("vdd", tech.vdd);
        let en = net.rail("en", tech.vdd);
        // The bias network uses a replica of the output follower, so the
        // rail it generates sits one follower drop above the target swing
        // (the drive the pulse-domain model calls `commanded`).
        let vref = net.rail(
            "vref",
            design.commanded_drive(tech, var) + Voltage::from_millivolts(100.0),
        );
        let ctx = StageContext {
            tech,
            design,
            var,
            vdd,
            en,
            vref,
        };

        // --- Input port: stimulus emulating the arriving low-swing pulse.
        let input = net.node("in");
        let chain = design.instantiate(tech, var, 1);
        let nominal = chain.nominal_input_pulse();
        net.force(
            input,
            Stimulus::pulse_train(
                bits,
                Voltage::zero(),
                nominal.swing,
                bit_period,
                nominal.width,
                TimeInterval::from_picoseconds(8.0),
            ),
        );

        let mut initial = BTreeMap::new();
        let mut stage_nodes = Vec::with_capacity(stages);
        let mut stage_in = input;
        for k in 0..stages {
            let nodes = Self::elaborate_stage(&mut net, &ctx, stage_in, k, &mut initial);
            stage_in = nodes.2;
            stage_nodes.push(nodes);
        }

        Self {
            net,
            input,
            node_x: stage_nodes[0].0,
            output: stage_nodes[0].1,
            next_input: stage_nodes[stages - 1].2,
            stage_nodes,
            initial,
        }
    }

    /// Adds one SRLR stage reading from `input`; returns its
    /// `(x, out, delivered)` nodes. Node names are prefixed `s{index}.`.
    fn elaborate_stage(
        net: &mut Netlist,
        ctx: &StageContext<'_>,
        input: NodeId,
        index: usize,
        initial: &mut BTreeMap<NodeId, Voltage>,
    ) -> (NodeId, NodeId, NodeId) {
        let (tech, design, var) = (ctx.tech, ctx.design, ctx.var);
        let l = tech.min_length;
        let lvt_n = tech
            .nmos
            .with_variation(var.dvth_n + design.lvt_offset, var.drive_mult_n);
        let reg_n = tech.nmos.with_variation(var.dvth_n, var.drive_mult_n);
        let reg_p = tech.pmos.with_variation(var.dvth_p, var.drive_mult_p);
        let pre = format!("s{index}");

        // --- Node X with M1, keeper M2 and the reset NMOS.
        let node_x = net.node(&format!("{pre}.x"));
        let m1 = Device::new(MosKind::Nmos, lvt_n, design.m1_width, l);
        net.add_mosfet(m1, node_x, input, NodeId::GROUND);
        let m2 = Device::new(MosKind::Nmos, lvt_n, design.m2_width, l);
        net.add_mosfet(m2, ctx.vdd, ctx.vdd, node_x);

        // --- Current-starved inverter amplifier (EN-gated tail).
        let output = net.node(&format!("{pre}.out"));
        let tail = net.node(&format!("{pre}.amp_tail"));
        let amp_p = Device::new(MosKind::Pmos, reg_p, Length::from_micrometers(1.2), l);
        let amp_n = Device::new(MosKind::Nmos, reg_n, Length::from_micrometers(0.4), l);
        let en_n = Device::new(MosKind::Nmos, reg_n, Length::from_micrometers(0.8), l);
        net.add_mosfet(amp_p, output, node_x, ctx.vdd);
        net.add_mosfet(amp_n, output, node_x, tail);
        net.add_mosfet(en_n, tail, ctx.en, NodeId::GROUND);
        net.add_capacitance(output, Capacitance::from_femtofarads(2.0));

        // --- Delay chain from OUT to the reset gate; the per-buffer load
        // realises this stage's (possibly alternating) delay.
        let inverters = design.delay_cell.buffers() * 2;
        let delay_here = design.delay_cell.delay_for_stage(index, tech, var);
        let delay_nom = design.delay_cell.nominal_delay();
        let load_ff = 5.5 * (delay_here / delay_nom);
        let mut chain_in = output;
        let mut rst = output;
        let mut dly_nodes = Vec::with_capacity(inverters);
        for k in 0..inverters {
            let out_k = net.node(&format!("{pre}.dly{k}"));
            let p = Device::new(MosKind::Pmos, reg_p, Length::from_micrometers(0.6), l);
            let n = Device::new(MosKind::Nmos, reg_n, Length::from_micrometers(0.3), l);
            net.add_mosfet(p, out_k, chain_in, ctx.vdd);
            net.add_mosfet(n, out_k, chain_in, NodeId::GROUND);
            net.add_capacitance(out_k, Capacitance::from_femtofarads(load_ff));
            dly_nodes.push(out_k);
            chain_in = out_k;
            rst = out_k;
        }
        // Reset NMOS: recharges X to VDD − Vth when the delayed OUT is high.
        let reset_n = Device::new(MosKind::Nmos, lvt_n, Length::from_micrometers(0.6), l);
        net.add_mosfet(reset_n, ctx.vdd, rst, node_x);

        // --- Output driver (NMOS pull-up from Vref, NMOS pull-down).
        let outb = net.node(&format!("{pre}.outb"));
        let pre_p = Device::new(MosKind::Pmos, reg_p, Length::from_micrometers(0.6), l);
        let pre_n = Device::new(MosKind::Nmos, reg_n, Length::from_micrometers(0.3), l);
        net.add_mosfet(pre_p, outb, output, ctx.vdd);
        net.add_mosfet(pre_n, outb, output, NodeId::GROUND);
        net.add_capacitance(outb, Capacitance::from_femtofarads(2.0));

        let wire_near = net.node(&format!("{pre}.wire_near"));
        let up = Device::new(MosKind::Nmos, reg_n, Length::from_micrometers(6.0), l);
        let down = Device::new(MosKind::Nmos, reg_n, Length::from_micrometers(4.0), l);
        net.add_mosfet(up, ctx.vref, output, wire_near);
        net.add_mosfet(down, wire_near, outb, NodeId::GROUND);

        // --- Outgoing 1 mm segment and the next stage's input load.
        let rc = design
            .wire
            .extract(design.segment_length)
            .with_variation(var.wire_r_mult, var.wire_c_mult);
        let delivered = LadderSpec::new(10).build(net, wire_near, rc, &format!("{pre}.seg"));
        let next_m1 = Device::new(MosKind::Nmos, lvt_n, design.m1_width, l);
        net.add_capacitance(delivered, next_m1.gate_capacitance());

        // --- Initial conditions: X at standby, delay chain settled for
        // OUT = 0 (odd inverters high), everything else low.
        let standby = tech.vdd - Voltage::from_volts(lvt_n.vth0.volts());
        initial.insert(node_x, standby);
        initial.insert(outb, tech.vdd);
        for (k, &n) in dly_nodes.iter().enumerate() {
            if k % 2 == 0 {
                initial.insert(n, tech.vdd);
            }
        }
        (node_x, output, delivered)
    }

    /// Read-only access to the elaborated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// The initial node voltages (standby levels) the simulation starts
    /// from.
    pub fn initial_conditions(&self) -> &BTreeMap<NodeId, Voltage> {
        &self.initial
    }

    /// Runs the transient for `duration` and returns the raw result for
    /// custom probing (e.g. multi-stage chains or VCD export).
    pub fn simulate_raw(&self, duration: TimeInterval) -> srlr_circuit::TransientResult {
        Transient::new(&self.net).run_from(duration, &self.initial)
    }

    /// Runs the transient for `duration` and returns the Fig. 4 waveform
    /// set.
    pub fn simulate(&self, duration: TimeInterval) -> Fig4Waveforms {
        self.simulate_observed(duration, &mut srlr_telemetry::Collector::disabled())
    }

    /// Like [`SrlrTransientFixture::simulate`], but also records the
    /// integrator's step-control statistics (step count, dv-target
    /// misses, stiffness caps, min/max dt, per-element eval counts) as
    /// `transient.*` metrics on `collector`. Free when the collector is
    /// disabled; the waveforms are bit-identical either way.
    pub fn simulate_observed(
        &self,
        duration: TimeInterval,
        collector: &mut srlr_telemetry::Collector,
    ) -> Fig4Waveforms {
        let result = Transient::new(&self.net).run_from(duration, &self.initial);
        result.stats().record_metrics(collector, "transient");
        if collector.is_enabled() {
            collector.set_metric(
                "transient.nodes",
                srlr_telemetry::Value::U64(self.net.node_count() as u64),
            );
            collector.set_metric(
                "transient.elements",
                srlr_telemetry::Value::U64(self.net.element_count() as u64),
            );
        }
        Fig4Waveforms {
            input: result.waveform(self.input),
            node_x: result.waveform(self.node_x),
            output: result.waveform(self.output),
            next_input: result.waveform(self.next_input),
        }
    }

    /// Convenience: the paper's Fig. 4 setup — the proposed design at the
    /// typical corner, a `1, 0, 1` pattern at 4.1 Gb/s.
    pub fn fig4(tech: &Technology) -> Fig4Waveforms {
        Self::fig4_observed(tech, &mut srlr_telemetry::Collector::disabled())
    }

    /// [`SrlrTransientFixture::fig4`] with integrator telemetry recorded
    /// on `collector` (see [`SrlrTransientFixture::simulate_observed`]).
    pub fn fig4_observed(
        tech: &Technology,
        collector: &mut srlr_telemetry::Collector,
    ) -> Fig4Waveforms {
        let design = SrlrDesign::paper_proposed(tech);
        let bit_period = TimeInterval::from_picoseconds(244.0);
        let fixture = Self::build(
            tech,
            &design,
            &GlobalVariation::nominal(),
            &[true, false, true],
            bit_period,
        );
        fixture.simulate_observed(TimeInterval::from_picoseconds(244.0 * 3.5), collector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn waves() -> Fig4Waveforms {
        SrlrTransientFixture::fig4(&Technology::soi45())
    }

    #[test]
    fn input_pulses_are_low_swing() {
        let w = waves();
        let peak = w.input.peak();
        assert!(
            peak.volts() < 0.5,
            "input should be low-swing, peak = {peak}"
        );
        assert!(
            peak.volts() > 0.15,
            "input must carry signal, peak = {peak}"
        );
    }

    #[test]
    fn node_x_discharges_and_recovers() {
        let w = waves();
        // Standby near VDD − Vth(lvt) = 0.55 V; a detection dip well below
        // the amplifier threshold; recovery before the next bit.
        let standby = w.node_x.value_at(TimeInterval::from_picoseconds(2.0));
        assert!((standby.volts() - 0.55).abs() < 0.08, "standby = {standby}");
        let dip = w.node_x.valley();
        assert!(dip.volts() < 0.3, "X never discharged, min = {dip}");
        let late = w.node_x.value_at(TimeInterval::from_picoseconds(230.0));
        assert!(late.volts() > 0.4, "X failed to recover: {late}");
    }

    #[test]
    fn output_produces_full_swing_pulses() {
        let w = waves();
        assert!(
            w.output.peak().volts() > 0.7,
            "OUT should swing to the rail, peak = {}",
            w.output.peak()
        );
        let widths = w.output.pulse_widths(Voltage::from_volts(0.4));
        assert_eq!(widths.len(), 2, "two '1' bits -> two output pulses");
    }

    #[test]
    fn next_input_receives_repeated_low_swing_pulses() {
        let w = waves();
        let peak = w.next_input.peak();
        assert!(peak.volts() < 0.55, "next input is low-swing: {peak}");
        assert!(peak.volts() > 0.2, "pulse must arrive: {peak}");
        // The '0' bit window stays quiet.
        let quiet = w
            .next_input
            .value_at(TimeInterval::from_picoseconds(244.0 + 200.0));
        assert!(quiet.volts() < 0.15, "ISI residue too high: {quiet}");
    }

    #[test]
    fn output_pulse_width_tracks_the_delay_cell() {
        let w = waves();
        let widths = w.output.pulse_widths(Voltage::from_volts(0.4));
        assert!(!widths.is_empty());
        let ps = widths[0].picoseconds();
        assert!(
            ps > 40.0 && ps < 220.0,
            "output width {ps} ps far from the designed window"
        );
    }

    #[test]
    fn observed_simulation_records_integrator_metrics() {
        use srlr_telemetry::{Collector, Value};
        let mut c = Collector::enabled("sim");
        let observed = SrlrTransientFixture::fig4_observed(&Technology::soi45(), &mut c);
        let steps = match c.metrics().get("transient.steps") {
            Some(&Value::U64(n)) => n,
            other => panic!("missing transient.steps metric: {other:?}"),
        };
        assert!(steps > 100, "fig4 takes thousands of steps, got {steps}");
        assert!(c.metrics().contains_key("transient.element_evals"));
        assert!(c.metrics().contains_key("transient.nodes"));
        // Observation must not perturb the simulation.
        let plain = waves();
        assert_eq!(
            observed.output.peak(),
            plain.output.peak(),
            "telemetry changed the simulation result"
        );
    }

    #[test]
    #[should_panic(expected = "at least one stimulus bit")]
    fn empty_pattern_rejected() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let _ = SrlrTransientFixture::build(
            &tech,
            &design,
            &GlobalVariation::nominal(),
            &[],
            TimeInterval::from_picoseconds(244.0),
        );
    }
}

#[cfg(test)]
mod chain_tests {
    use super::*;

    #[test]
    fn three_stage_chain_repeats_at_transistor_level() {
        // The Fig. 2 claim at circuit level: a pulse launched once is
        // regenerated by each repeater, arriving at every stage boundary
        // with a healthy low-swing amplitude.
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let fixture = SrlrTransientFixture::build_chain(
            &tech,
            &design,
            &GlobalVariation::nominal(),
            &[true, false],
            TimeInterval::from_picoseconds(244.0),
            3,
        );
        let result = srlr_circuit::Transient::new(fixture.netlist()).run_from(
            TimeInterval::from_picoseconds(244.0 * 2.5),
            &fixture.initial,
        );
        for (i, &(x, out, delivered)) in fixture.stage_nodes.iter().enumerate() {
            let out_peak = result.waveform(out).peak();
            assert!(
                out_peak.volts() > 0.65,
                "stage {i} OUT failed to fire: {out_peak}"
            );
            let arr = result.waveform(delivered).peak();
            assert!(
                arr.volts() > 0.2 && arr.volts() < 0.55,
                "stage {i} delivered swing out of band: {arr}"
            );
            let x_min = result.waveform(x).valley();
            assert!(x_min.volts() < 0.3, "stage {i} X never discharged");
        }
    }

    #[test]
    fn stage_nodes_match_single_stage_ports() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let f = SrlrTransientFixture::build(
            &tech,
            &design,
            &GlobalVariation::nominal(),
            &[true],
            TimeInterval::from_picoseconds(244.0),
        );
        assert_eq!(f.stage_nodes.len(), 1);
        assert_eq!(f.stage_nodes[0].0, f.node_x);
        assert_eq!(f.stage_nodes[0].1, f.output);
        assert_eq!(f.stage_nodes[0].2, f.next_input);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_chain_rejected() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let _ = SrlrTransientFixture::build_chain(
            &tech,
            &design,
            &GlobalVariation::nominal(),
            &[true],
            TimeInterval::from_picoseconds(244.0),
            0,
        );
    }
}
