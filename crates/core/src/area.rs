//! Area accounting for the SRLR datapath (Sec. I and Fig. 7).
//!
//! The paper reports each 1 mm SRLR occupying `10.2 × 4.7 = 47.9 um^2` of
//! active silicon. A 64-bit 5-port mesh router needs 4 SRLR columns per
//! port-bit (crossbar crosspoints along the datapath), so the full
//! low-swing datapath is `47.9 × 64 × 5 × 4 ≈ 0.061 mm^2` — about 18 % of
//! a 0.34 mm^2 three-stage router with 4 VCs and 16 buffers.

use srlr_units::{Area, Length};

/// Area model of the SRLR datapath inside a mesh router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrlrArea {
    /// Drawn SRLR cell width.
    pub cell_width: Length,
    /// Drawn SRLR cell height.
    pub cell_height: Length,
    /// Reference full-router area (3-stage, 4 VCs, 16 buffers, from
    /// DSENT-style synthesis in the same process).
    pub router_area: Area,
}

impl SrlrArea {
    /// The paper's numbers: a 10.2 um x 4.7 um cell and a 0.34 mm^2 router.
    pub fn paper_default() -> Self {
        Self {
            cell_width: Length::from_micrometers(10.2),
            cell_height: Length::from_micrometers(4.7),
            router_area: Area::from_square_millimeters(0.34),
        }
    }

    /// Active silicon area of one SRLR.
    pub fn cell_area(&self) -> Area {
        self.cell_width * self.cell_height
    }

    /// Area of a full low-swing datapath for a router with the given
    /// width (bits), port count and SRLR columns per crosspoint path.
    pub fn datapath_area(&self, bits: usize, ports: usize, columns: usize) -> Area {
        self.cell_area() * (bits * ports * columns) as f64
    }

    /// The paper's configuration: 64 bits, 5 ports, 4 columns.
    pub fn paper_datapath_area(&self) -> Area {
        self.datapath_area(64, 5, 4)
    }

    /// Datapath area as a fraction of the reference router area.
    // srlr-lint: allow(raw-f64-api, reason = "area fraction is a dimensionless ratio")
    pub fn datapath_fraction(&self, bits: usize, ports: usize, columns: usize) -> f64 {
        self.datapath_area(bits, ports, columns).square_meters() / self.router_area.square_meters()
    }
}

impl Default for SrlrArea {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_area_matches_paper() {
        let a = SrlrArea::paper_default();
        assert!((a.cell_area().square_micrometers() - 47.94).abs() < 0.01);
    }

    #[test]
    fn datapath_area_matches_paper() {
        // 47.9 x 64 x 5 x 4 = 0.0613 mm^2 (the paper rounds to 0.061).
        let a = SrlrArea::paper_default();
        let dp = a.paper_datapath_area();
        assert!(
            (dp.square_millimeters() - 0.0613).abs() < 0.001,
            "datapath = {} mm^2",
            dp.square_millimeters()
        );
    }

    #[test]
    fn datapath_fraction_is_about_18_percent() {
        let a = SrlrArea::paper_default();
        let frac = a.datapath_fraction(64, 5, 4);
        assert!((frac - 0.18).abs() < 0.01, "fraction = {frac}");
    }

    #[test]
    fn fraction_scales_with_bits() {
        let a = SrlrArea::paper_default();
        assert!(
            (a.datapath_fraction(32, 5, 4) - a.datapath_fraction(64, 5, 4) / 2.0).abs() < 1e-12
        );
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(SrlrArea::default(), SrlrArea::paper_default());
    }
}
