//! Transistor-sizing methodology (Sec. II): the M1/M2 ratio must give
//! enough input sensitivity at the design swing, while keeping node X's
//! standby level safe and the energy minimal.
//!
//! This module provides a small design-space explorer: it sweeps candidate
//! M1/M2 sizings, checks nominal and corner operation of a full chain, and
//! ranks the survivors by energy — the same procedure a designer would run
//! in SPICE, executed against the pulse-domain model.

use crate::design::SrlrDesign;
use crate::energy::StageEnergyModel;
use srlr_tech::{ProcessCorner, Technology};
use srlr_units::{EnergyPerBitLength, Length, Voltage};

/// One evaluated sizing point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingCandidate {
    /// Drawn M1 width.
    pub m1_width: Length,
    /// Drawn M2 width.
    pub m2_width: Length,
    /// Whether a 10-stage chain propagates at the typical corner.
    pub works_nominal: bool,
    /// Number of the five global corners at which the chain propagates.
    pub corners_passed: usize,
    /// Nominal sense margin: delivered swing minus the sense threshold.
    pub sense_margin: Voltage,
    /// Nominal PRBS energy metric (meaningless when `!works_nominal`).
    pub energy: EnergyPerBitLength,
}

impl SizingCandidate {
    /// A candidate is viable when it works nominally and at every corner.
    pub fn is_viable(&self) -> bool {
        self.works_nominal && self.corners_passed == ProcessCorner::ALL.len()
    }
}

/// Sweeps M1/M2 sizings for a design.
#[derive(Debug, Clone)]
pub struct SizingExplorer<'a> {
    tech: &'a Technology,
    design: SrlrDesign,
    stages: usize,
}

impl<'a> SizingExplorer<'a> {
    /// Creates an explorer for the given base design; candidate sizings
    /// replace the design's M1/M2 widths.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    pub fn new(tech: &'a Technology, design: SrlrDesign, stages: usize) -> Self {
        assert!(stages > 0, "explorer needs at least one stage");
        Self {
            tech,
            design,
            stages,
        }
    }

    /// Evaluates one sizing point.
    pub fn evaluate(&self, m1_width: Length, m2_width: Length) -> SizingCandidate {
        let design = SrlrDesign {
            m1_width,
            m2_width,
            ..self.design.clone()
        };
        let nominal = design.instantiate(
            self.tech,
            &srlr_tech::GlobalVariation::nominal(),
            self.stages,
        );
        let input = nominal.nominal_input_pulse();
        let works_nominal = nominal.propagate(input).is_valid();
        let sense_margin = input.swing - nominal.stages()[0].sense_threshold;

        let corners_passed = ProcessCorner::ALL
            .iter()
            .filter(|c| {
                let chain = design.instantiate(self.tech, &c.variation(self.tech), self.stages);
                chain.propagate(chain.nominal_input_pulse()).is_valid()
            })
            .count();

        let energy = if works_nominal {
            StageEnergyModel::from_chain(&nominal).energy_per_bit_per_length(0.5)
        } else {
            EnergyPerBitLength::zero()
        };

        SizingCandidate {
            m1_width,
            m2_width,
            works_nominal,
            corners_passed,
            sense_margin,
            energy,
        }
    }

    /// Evaluates the cartesian sweep of the given width lists.
    pub fn sweep(&self, m1_widths: &[Length], m2_widths: &[Length]) -> Vec<SizingCandidate> {
        let mut out = Vec::with_capacity(m1_widths.len() * m2_widths.len());
        for &w1 in m1_widths {
            for &w2 in m2_widths {
                out.push(self.evaluate(w1, w2));
            }
        }
        out
    }

    /// The lowest-energy viable candidate of a sweep, if any.
    pub fn best(&self, m1_widths: &[Length], m2_widths: &[Length]) -> Option<SizingCandidate> {
        self.sweep(m1_widths, m2_widths)
            .into_iter()
            .filter(SizingCandidate::is_viable)
            .min_by(|a, b| a.energy.value().total_cmp(&b.energy.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn explorer(tech: &Technology) -> SizingExplorer<'_> {
        SizingExplorer::new(tech, SrlrDesign::paper_proposed(tech), 10)
    }

    #[test]
    fn paper_sizing_is_viable() {
        let tech = Technology::soi45();
        let e = explorer(&tech);
        let c = e.evaluate(um(0.6), um(0.12));
        assert!(c.works_nominal, "paper sizing fails nominally");
        assert!(
            c.is_viable(),
            "paper sizing fails at {} corners",
            ProcessCorner::ALL.len() - c.corners_passed
        );
        assert!(c.sense_margin.volts() > 0.0);
    }

    #[test]
    fn undersized_m1_loses_sensitivity() {
        let tech = Technology::soi45();
        let e = explorer(&tech);
        let tiny = e.evaluate(um(0.05), um(0.12));
        let paper = e.evaluate(um(0.6), um(0.12));
        // A much smaller M1 discharges X more slowly and erodes margin.
        assert!(tiny.corners_passed <= paper.corners_passed);
    }

    #[test]
    fn oversized_keeper_raises_threshold() {
        let tech = Technology::soi45();
        let e = explorer(&tech);
        let strong_keeper = e.evaluate(um(0.6), um(1.2));
        let paper = e.evaluate(um(0.6), um(0.12));
        assert!(strong_keeper.sense_margin < paper.sense_margin);
    }

    #[test]
    fn best_picks_a_viable_low_energy_point() {
        let tech = Technology::soi45();
        let e = explorer(&tech);
        let m1 = [um(0.4), um(0.6), um(0.9)];
        let m2 = [um(0.12), um(0.24)];
        let best = e.best(&m1, &m2);
        let best = best.expect("at least the paper point should be viable");
        assert!(best.is_viable());
        // Every other viable candidate costs at least as much.
        for c in e.sweep(&m1, &m2) {
            if c.is_viable() {
                assert!(c.energy.value() >= best.energy.value() - 1e-24);
            }
        }
    }

    #[test]
    fn sweep_size_is_cartesian() {
        let tech = Technology::soi45();
        let e = explorer(&tech);
        assert_eq!(e.sweep(&[um(0.4), um(0.6)], &[um(0.12)]).len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_rejected() {
        let tech = Technology::soi45();
        let _ = SizingExplorer::new(&tech, SrlrDesign::paper_proposed(&tech), 0);
    }
}
