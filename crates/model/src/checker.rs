//! Exhaustive-state checker for the mesh link fault/retry protocol.
//!
//! # What is modelled
//!
//! One wormhole packet of `packet_len` flits travelling from a source
//! to a destination along the deterministic XY route, crossing `h`
//! links.  Each link crossing runs the *shared* retry automaton from
//! [`srlr_noc::protocol`] — the same `retry_step` the cycle simulator
//! folds its sampled outcomes through — so the checker and the
//! simulator cannot drift apart on protocol semantics.
//!
//! Nondeterminism is confined to the crossing outcome: a crossing
//! either delivers after `k` detected corruptions (`k = 0..=R`, each
//! with its accumulated NACK/backoff delay) or exhausts the retry
//! budget and poisons the packet.  Silent CRC escapes deliver with the
//! same attempt count and delay as a clean pass, so the two branches
//! reach identical successor states and are merged into one weighted
//! branch (see [`ModelConfig::silent_escape`]).
//!
//! # State, scheduling and canonicalization
//!
//! A state records, per flit, either `Done` or the next route link and
//! the cycle at which the flit is ready to cross it; per route link,
//! the `busy_until` watermark (latest granted arrival); and a
//! `poisoned` bit (some crossing exhausted its budget).  Flit `i`
//! injects at cycle `i` (one flit per cycle), a router adds one cycle
//! between links, and a crossing with `extra_delay` occupies the link
//! until [`srlr_noc::protocol::link_arrival`].
//!
//! Enabled crossings (flit at the head of its link, wormhole order
//! respected) always target *distinct* links, so they commute: the
//! checker explores the single representative interleaving that picks
//! the lowest `(ready, flit)` crossing first, which preserves both the
//! reachable per-link orderings and the product of crossing
//! probabilities.
//!
//! States are canonicalized before interning: ready times are shifted
//! so the earliest pending flit sits at cycle 1, and watermarks are
//! clamped from below to `base - 1` before the same shift.  The clamp
//! is a bisimulation: an arrival is always at least `base + 1`, so a
//! watermark at or below `base - 1` can neither change
//! `link_arrival` (the `ready + delay` arm wins the max) nor trip the
//! overtake predicate (`arrival <= busy`).  Terminal states discard
//! timing entirely, collapsing to two absorbing classes.
//!
//! # Proof obligations
//!
//! * **Termination / acyclicity** — every transition moves exactly one
//!   flit across exactly one link, so the progress measure
//!   `sum(links crossed)` strictly increases.  The checker asserts
//!   this on every edge; it bounds every run by `packet_len * h`
//!   crossings and makes BFS discovery order a topological order.
//! * **Deadlock-freedom** — every reachable non-terminal state has an
//!   enabled crossing.
//! * **No mid-wormhole overtaking** — no crossing arrives at or before
//!   the link's previously granted arrival.  The deliberately broken
//!   [`Variant::IgnoreBusyWatermark`] scheduler violates this and
//!   yields a replayable counterexample trace.
//!
//! # Exact delivery probability
//!
//! Weighting each branch by its probability turns the state graph into
//! an absorbing DTMC solved exactly by sparse Gaussian elimination
//! ([`crate::dtmc`]).  Because the graph is acyclic and assembled in
//! BFS order, the elimination incurs zero fill-in — reported and
//! asserted, not assumed.

use std::collections::{BTreeMap, VecDeque};

use srlr_noc::protocol::{link_arrival, retry_step, AttemptOutcome, RetryState, RetryStep};
use srlr_noc::{Coord, FaultConfig, Mesh};
use srlr_telemetry::{Collector, Value};

use crate::dtmc::SparseSystem;

/// Which link-scheduling rule the checker verifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The production rule: arrivals floor at `busy_until + 1`
    /// (`srlr_noc::protocol::link_arrival`).
    Correct,
    /// A deliberately broken rule that ignores the watermark and lets a
    /// retried head flit be overtaken by its own tail.  Exists so the
    /// checker's counterexample machinery is itself testable.
    IgnoreBusyWatermark,
}

impl Variant {
    /// Stable lowercase name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Correct => "correct",
            Variant::IgnoreBusyWatermark => "no-watermark",
        }
    }
}

/// Configuration of one model-checking run.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// The mesh whose XY routes are checked.
    pub mesh: Mesh,
    /// Flits per packet (wormhole length).
    pub packet_len: usize,
    /// Fault/retry parameters shared with the simulator.
    pub fault: FaultConfig,
    /// Conditional probability that a *corrupted* codeword passes the
    /// CRC undetected.  The CRC-16 in use has Hamming distance 4 over
    /// the 80-bit codeword, so at the BERs swept here the escape
    /// fraction is below `1e-9`; the default of `0.0` shifts the exact
    /// delivery probability by far less than a Monte Carlo confidence
    /// interval.  Kept as a knob so the sensitivity is measurable.
    pub silent_escape: f64,
    /// Scheduling rule under test.
    pub variant: Variant,
}

impl ModelConfig {
    /// Creates a configuration for the correct scheduler with no
    /// silent CRC escapes.
    ///
    /// # Panics
    ///
    /// Panics if `packet_len` is zero.
    pub fn new(mesh: Mesh, packet_len: usize, fault: FaultConfig) -> Self {
        assert!(packet_len > 0, "a packet needs at least one flit");
        ModelConfig {
            mesh,
            packet_len,
            fault,
            silent_escape: 0.0,
            variant: Variant::Correct,
        }
    }

    /// The 2x2 mesh configuration the paper-reproduction CI proves:
    /// four-flit packets with the given BER and retry budget.
    pub fn two_by_two(ber: f64, max_retries: u32) -> Self {
        ModelConfig::new(
            Mesh::new(2, 2),
            4,
            FaultConfig::new(ber).with_max_retries(max_retries),
        )
    }

    /// Replaces the scheduling rule under test.
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Replaces the packet length.
    ///
    /// # Panics
    ///
    /// Panics if `packet_len` is zero.
    pub fn with_packet_len(mut self, packet_len: usize) -> Self {
        assert!(packet_len > 0, "a packet needs at least one flit");
        self.packet_len = packet_len;
        self
    }

    /// Replaces the conditional silent-escape probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= silent_escape < 1`.
    pub fn with_silent_escape(mut self, silent_escape: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&silent_escape),
            "silent escape must be a probability below one"
        );
        self.silent_escape = silent_escape;
        self
    }

    /// Probability that one crossing attempt is *detected* as corrupt:
    /// the word-error probability minus the silent-escape slice.
    pub fn detected_probability(&self) -> f64 {
        self.fault.word_error_probability() * (1.0 - self.silent_escape)
    }
}

/// One terminal outcome of a single link crossing, derived by running
/// the shared retry automaton to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossingOutcome {
    /// Transmissions used (first try plus retries).
    pub attempts: u32,
    /// NACKs raised along the way.
    pub nacks: u32,
    /// Whether the flit crossed (clean or as a silent escape).
    pub delivered: bool,
    /// Extra cycles beyond the nominal link delay.
    pub extra_delay: u64,
    /// Probability of this outcome for one crossing.
    pub probability: f64,
}

/// Enumerates every terminal shape of one crossing, with its exact
/// probability: `k` detections then delivery for `k = 0..=R`, plus
/// budget exhaustion after `R + 1` detections.
pub fn crossing_outcomes(config: &ModelConfig) -> Vec<CrossingOutcome> {
    let detected = config.detected_probability();
    let mut outcomes = Vec::with_capacity(config.fault.max_retries as usize + 2);
    let mut state = RetryState::start();
    // Probability that every attempt so far was detected.
    let mut mass = 1.0;
    loop {
        // Delivery branch: clean pass and silent escape reach identical
        // successor states, so they are merged into one branch whose
        // weight is "this attempt was not detected".
        if let RetryStep::Done(tx) = retry_step(&config.fault, state, AttemptOutcome::Clean) {
            outcomes.push(CrossingOutcome {
                attempts: tx.attempts,
                nacks: tx.nacks,
                delivered: true,
                extra_delay: tx.extra_delay,
                probability: mass * (1.0 - detected),
            });
        }
        // Detection branch: either another retry round, or exhaustion.
        match retry_step(&config.fault, state, AttemptOutcome::Detected) {
            RetryStep::Continue(next) => {
                state = next;
                mass *= detected;
            }
            RetryStep::Done(tx) => {
                outcomes.push(CrossingOutcome {
                    attempts: tx.attempts,
                    nacks: tx.nacks,
                    delivered: false,
                    extra_delay: tx.extra_delay,
                    probability: mass * detected,
                });
                return outcomes;
            }
        }
    }
}

/// Where one flit is within its route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FlitPos {
    /// Waiting to cross route link `link`, ready at cycle `ready`.
    Pending {
        /// Index into the route's link list.
        link: u32,
        /// Cycle at which the flit may cross.
        ready: u64,
    },
    /// Ejected at the destination.
    Done,
}

/// A (possibly canonical) protocol state of one packet on one route.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    flits: Vec<FlitPos>,
    /// Per route link: latest granted arrival cycle.
    busy: Vec<u64>,
    /// Some crossing exhausted the retry budget.
    poisoned: bool,
}

impl State {
    fn initial(packet_len: usize, hops: usize) -> State {
        State {
            flits: (0..packet_len)
                .map(|i| FlitPos::Pending {
                    link: 0,
                    ready: i as u64,
                })
                .collect(),
            busy: vec![0; hops],
            poisoned: false,
        }
    }

    fn is_terminal(&self) -> bool {
        self.flits.iter().all(|f| *f == FlitPos::Done)
    }

    /// Total links crossed — the strictly increasing progress measure.
    fn progress(&self, hops: usize) -> u64 {
        self.flits
            .iter()
            .map(|f| match *f {
                FlitPos::Done => hops as u64,
                FlitPos::Pending { link, .. } => u64::from(link),
            })
            .sum()
    }

    /// The deterministic representative crossing: among flits whose
    /// wormhole predecessor is strictly ahead, the lowest
    /// `(ready, flit index)`.  Returns `(flit, link, ready)`.
    fn chosen(&self) -> Option<(usize, u32, u64)> {
        let mut best: Option<(u64, usize, u32)> = None;
        for (i, f) in self.flits.iter().enumerate() {
            let FlitPos::Pending { link, ready } = *f else {
                continue;
            };
            let predecessor_ahead = i == 0
                || match self.flits[i - 1] {
                    FlitPos::Done => true,
                    FlitPos::Pending { link: ahead, .. } => ahead > link,
                };
            if !predecessor_ahead {
                continue;
            }
            if best.is_none_or(|(r, idx, _)| (ready, i) < (r, idx)) {
                best = Some((ready, i, link));
            }
        }
        best.map(|(ready, i, link)| (i, link, ready))
    }

    /// Time-shift canonical form; see the module docs for why the
    /// watermark clamp is a bisimulation.
    fn canonicalize(mut self) -> State {
        let base = self
            .flits
            .iter()
            .filter_map(|f| match *f {
                FlitPos::Pending { ready, .. } => Some(ready),
                FlitPos::Done => None,
            })
            .min();
        match base {
            None => {
                // Terminal: only the poisoned bit matters.
                for b in &mut self.busy {
                    *b = 0;
                }
            }
            Some(base) => {
                for f in &mut self.flits {
                    if let FlitPos::Pending { ready, .. } = f {
                        *ready = *ready - base + 1;
                    }
                }
                for b in &mut self.busy {
                    // max(b, base - 1) - (base - 1), computed without
                    // underflow; watermarks below base - 1 are
                    // indistinguishable from base - 1.
                    *b = (*b + 1).saturating_sub(base);
                }
            }
        }
        self
    }
}

/// One concrete link crossing in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Flit index within the packet.
    pub flit: usize,
    /// Route link index (0 = first hop).
    pub link: u32,
    /// Upstream router of the link.
    pub from: Coord,
    /// Downstream router of the link.
    pub to: Coord,
    /// Transmissions used by this crossing.
    pub attempts: u32,
    /// NACKs raised by this crossing.
    pub nacks: u32,
    /// Whether the flit crossed.
    pub delivered: bool,
    /// Retry delay beyond the nominal link cycle.
    pub extra_delay: u64,
    /// Cycle the flit was ready to cross.
    pub sent: u64,
    /// Cycle the flit arrived downstream.
    pub arrival: u64,
    /// The link's watermark before this crossing was granted.
    pub busy_before: u64,
}

/// Kind of proof obligation a counterexample violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A reachable non-terminal state with no enabled crossing.
    Deadlock,
    /// A crossing arrived at or before the link's previous arrival.
    Overtaking,
    /// A transition failed to increase the progress measure.
    Progress,
}

impl ViolationKind {
    /// Stable rule identifier used in SARIF output.
    pub fn rule(self) -> &'static str {
        match self {
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::Overtaking => "no-overtaking",
            ViolationKind::Progress => "termination",
        }
    }
}

/// A violated proof obligation with a replayable counterexample.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which obligation failed.
    pub kind: ViolationKind,
    /// Route source.
    pub src: Coord,
    /// Route destination.
    pub dst: Coord,
    /// Outcome index chosen at each step from the initial state; feed
    /// to [`replay_choices`] to reproduce the trace.
    pub choices: Vec<usize>,
    /// The concrete crossings, in absolute cycles.
    pub trace: Vec<TraceStep>,
    /// Human-readable description of the failing step.
    pub message: String,
}

impl Violation {
    /// Renders the counterexample as indented text, one crossing per
    /// line, suitable for CLI output and SARIF messages.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} violated on route {} -> {}: {}\n",
            self.kind.rule(),
            self.src,
            self.dst,
            self.message
        );
        for step in &self.trace {
            out.push_str(&format!(
                "  flit {} link {} ({} -> {}): sent @{} arrived @{} \
                 (watermark {}), {} attempts, {} nacks, {}\n",
                step.flit,
                step.link,
                step.from,
                step.to,
                step.sent,
                step.arrival,
                step.busy_before,
                step.attempts,
                step.nacks,
                if step.delivered {
                    "delivered"
                } else {
                    "dropped"
                },
            ));
        }
        out
    }

    /// Emits the counterexample as telemetry events: one
    /// `model.violation` header followed by one `model.crossing` per
    /// trace step (timestamped by step index).
    pub fn emit(&self, collector: &mut Collector) {
        collector.event(
            "model.violation",
            0.0,
            &[
                ("rule", Value::Str(self.kind.rule().to_string())),
                ("src", Value::Str(self.src.to_string())),
                ("dst", Value::Str(self.dst.to_string())),
                ("message", Value::Str(self.message.clone())),
                ("steps", Value::U64(self.trace.len() as u64)),
            ],
        );
        for (i, step) in self.trace.iter().enumerate() {
            collector.event(
                "model.crossing",
                i as f64,
                &[
                    ("flit", Value::U64(step.flit as u64)),
                    ("link", Value::U64(u64::from(step.link))),
                    ("from", Value::Str(step.from.to_string())),
                    ("to", Value::Str(step.to.to_string())),
                    ("sent", Value::U64(step.sent)),
                    ("arrival", Value::U64(step.arrival)),
                    ("busy_before", Value::U64(step.busy_before)),
                    ("attempts", Value::U64(u64::from(step.attempts))),
                    ("nacks", Value::U64(u64::from(step.nacks))),
                    ("delivered", Value::Bool(step.delivered)),
                ],
            );
        }
    }
}

/// Result of exhaustively checking one (source, destination) route.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// Route source.
    pub src: Coord,
    /// Route destination.
    pub dst: Coord,
    /// Links on the XY route.
    pub hops: usize,
    /// Reachable canonical states (including the absorbing classes).
    pub states: usize,
    /// Explored transitions.
    pub transitions: usize,
    /// Transient (non-terminal) states — the DTMC system size.
    pub transient: usize,
    /// Exact probability the packet is delivered (reaches `Delivered`).
    pub deliver_probability: f64,
    /// Whether the linear solve succeeded (a DAG chain always does).
    pub solved: bool,
    /// Matrix entries created during elimination; zero in BFS order.
    pub fill_in: usize,
    /// The `Delivered` absorbing state is reachable.
    pub delivered_reachable: bool,
    /// The `CountedDrop` absorbing state is reachable.
    pub drop_reachable: bool,
    /// Every reachable non-terminal state has an enabled crossing.
    pub deadlock_free: bool,
    /// No crossing arrived at or before a previously granted arrival.
    pub no_overtaking: bool,
    /// Every transition increased the progress measure by one.
    pub progress_monotone: bool,
    /// Counterexamples (traces kept for the first few per kind).
    pub violations: Vec<Violation>,
}

impl PairResult {
    /// All three qualitative obligations hold for this route.
    pub fn all_proven(&self) -> bool {
        self.deadlock_free && self.no_overtaking && self.progress_monotone
    }
}

/// Full traces kept per violation kind per pair; further violations
/// are still *counted* via the proof flags but not materialized.
const TRACES_PER_KIND: usize = 3;

struct Applied {
    state: State,
    step: TraceStep,
    overtake: bool,
}

/// Applies one crossing outcome to `state` (absolute or canonical —
/// the arithmetic is shift-invariant).
fn apply(
    config: &ModelConfig,
    route: &[(Coord, Coord)],
    state: &State,
    flit: usize,
    link: u32,
    ready: u64,
    outcome: &CrossingOutcome,
) -> Applied {
    let hops = route.len();
    let li = link as usize;
    let delay = 1 + outcome.extra_delay;
    let busy_before = state.busy[li];
    let arrival = match config.variant {
        Variant::Correct => link_arrival(ready, delay, busy_before),
        Variant::IgnoreBusyWatermark => ready + delay,
    };
    let overtake = arrival <= busy_before;
    let mut next = state.clone();
    // Track the max so later overtakes under the broken variant are
    // still judged against the true latest granted arrival.
    next.busy[li] = busy_before.max(arrival);
    next.flits[flit] = if li + 1 == hops {
        FlitPos::Done
    } else {
        FlitPos::Pending {
            link: link + 1,
            ready: arrival + 1,
        }
    };
    next.poisoned |= !outcome.delivered;
    let (from, to) = route[li];
    Applied {
        state: next,
        step: TraceStep {
            flit,
            link,
            from,
            to,
            attempts: outcome.attempts,
            nacks: outcome.nacks,
            delivered: outcome.delivered,
            extra_delay: outcome.extra_delay,
            sent: ready,
            arrival,
            busy_before,
        },
        overtake,
    }
}

fn route_links(mesh: Mesh, src: Coord, dst: Coord) -> Vec<(Coord, Coord)> {
    let path = mesh.xy_path(src, dst);
    path.windows(2).map(|w| (w[0], w[1])).collect()
}

/// The result of replaying a choice sequence or an outcome oracle.
#[derive(Debug, Clone)]
pub struct Replayed {
    /// The packet reached the destination unpoisoned.
    pub delivered: bool,
    /// Whether the replay reached a terminal state.
    pub terminal: bool,
    /// Concrete crossings in absolute cycles.
    pub steps: Vec<TraceStep>,
    /// Total transmissions across all crossings.
    pub attempts: u64,
    /// Total NACKs across all crossings.
    pub nacks: u64,
}

/// Replays the deterministic schedule from the initial state, asking
/// `oracle(flit, link)` for the outcome index of each crossing (out of
/// range indices select the exhaustion branch).  Runs until terminal.
pub fn replay<F: FnMut(usize, u32) -> usize>(
    config: &ModelConfig,
    src: Coord,
    dst: Coord,
    mut oracle: F,
) -> Replayed {
    let route = route_links(config.mesh, src, dst);
    let outcomes = crossing_outcomes(config);
    let mut state = State::initial(config.packet_len, route.len().max(1));
    let mut steps = Vec::new();
    let (mut attempts, mut nacks) = (0u64, 0u64);
    if route.is_empty() {
        // Degenerate src == dst route: immediately delivered.
        for f in &mut state.flits {
            *f = FlitPos::Done;
        }
    }
    while let Some((flit, link, ready)) = state.chosen() {
        let pick = oracle(flit, link).min(outcomes.len() - 1);
        let applied = apply(config, &route, &state, flit, link, ready, &outcomes[pick]);
        attempts += u64::from(applied.step.attempts);
        nacks += u64::from(applied.step.nacks);
        steps.push(applied.step);
        state = applied.state;
    }
    Replayed {
        delivered: state.is_terminal() && !state.poisoned,
        terminal: state.is_terminal(),
        steps,
        attempts,
        nacks,
    }
}

/// Replays a recorded counterexample prefix: feeds `choices` in order
/// and stops when they run out (the trace may end mid-flight).
pub fn replay_choices(config: &ModelConfig, src: Coord, dst: Coord, choices: &[usize]) -> Replayed {
    let route = route_links(config.mesh, src, dst);
    let outcomes = crossing_outcomes(config);
    let mut state = State::initial(config.packet_len, route.len().max(1));
    let mut steps = Vec::new();
    let (mut attempts, mut nacks) = (0u64, 0u64);
    for &pick in choices {
        let Some((flit, link, ready)) = state.chosen() else {
            break;
        };
        if route.is_empty() {
            break;
        }
        let pick = pick.min(outcomes.len() - 1);
        let applied = apply(config, &route, &state, flit, link, ready, &outcomes[pick]);
        attempts += u64::from(applied.step.attempts);
        nacks += u64::from(applied.step.nacks);
        steps.push(applied.step);
        state = applied.state;
    }
    Replayed {
        delivered: state.is_terminal() && !state.poisoned,
        terminal: state.is_terminal(),
        steps,
        attempts,
        nacks,
    }
}

/// Exhaustively checks one route: BFS over canonical states, proof
/// obligations, and the exact absorbing-DTMC delivery probability.
pub fn check_pair(config: &ModelConfig, src: Coord, dst: Coord) -> PairResult {
    check_pair_profiled(config, src, dst, &mut srlr_telemetry::Profiler::disabled())
}

/// [`check_pair`] with profiling: the state-space exploration lands as
/// a `model.bfs` frame and the absorbing-chain assembly + solve as a
/// `model.dtmc` frame. A disabled profiler costs one branch per frame;
/// this *is* the unprofiled path — same code, same result.
pub fn check_pair_profiled(
    config: &ModelConfig,
    src: Coord,
    dst: Coord,
    prof: &mut srlr_telemetry::Profiler,
) -> PairResult {
    let route = route_links(config.mesh, src, dst);
    let hops = route.len();
    let outcomes = crossing_outcomes(config);

    if hops == 0 {
        // src == dst: nothing to cross, trivially delivered.
        return PairResult {
            src,
            dst,
            hops,
            states: 1,
            transitions: 0,
            transient: 0,
            deliver_probability: 1.0,
            solved: true,
            fill_in: 0,
            delivered_reachable: true,
            drop_reachable: false,
            deadlock_free: true,
            no_overtaking: true,
            progress_monotone: true,
            violations: Vec::new(),
        };
    }

    let mut ids: BTreeMap<State, usize> = BTreeMap::new();
    let mut states: Vec<State> = Vec::new();
    let mut parents: Vec<Option<(usize, usize)>> = Vec::new();
    let mut succs: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    let initial = State::initial(config.packet_len, hops).canonicalize();
    ids.insert(initial.clone(), 0);
    states.push(initial);
    parents.push(None);
    succs.push(Vec::new());
    queue.push_back(0);

    let mut transitions = 0usize;
    let mut delivered_reachable = false;
    let mut drop_reachable = false;
    let mut deadlock_free = true;
    let mut no_overtaking = true;
    let mut progress_monotone = true;
    let mut violations: Vec<Violation> = Vec::new();
    let mut kept = BTreeMap::<&'static str, usize>::new();

    // Reconstructs the outcome choices leading to state `id`.
    let path_to = |parents: &[Option<(usize, usize)>], mut id: usize| -> Vec<usize> {
        let mut choices = Vec::new();
        while let Some((parent, pick)) = parents[id] {
            choices.push(pick);
            id = parent;
        }
        choices.reverse();
        choices
    };

    let record = |kind: ViolationKind,
                  choices: Vec<usize>,
                  message: String,
                  kept: &mut BTreeMap<&'static str, usize>,
                  violations: &mut Vec<Violation>| {
        let slot = kept.entry(kind.rule()).or_insert(0);
        if *slot < TRACES_PER_KIND {
            *slot += 1;
            let trace = replay_choices(config, src, dst, &choices).steps;
            violations.push(Violation {
                kind,
                src,
                dst,
                choices,
                trace,
                message,
            });
        }
    };

    prof.enter("model.bfs");
    while let Some(id) = queue.pop_front() {
        let state = states[id].clone();
        if state.is_terminal() {
            if state.poisoned {
                drop_reachable = true;
            } else {
                delivered_reachable = true;
            }
            continue;
        }
        let Some((flit, link, ready)) = state.chosen() else {
            deadlock_free = false;
            let choices = path_to(&parents, id);
            record(
                ViolationKind::Deadlock,
                choices,
                format!("no crossing is enabled with {} flits in flight", {
                    state.flits.iter().filter(|f| **f != FlitPos::Done).count()
                }),
                &mut kept,
                &mut violations,
            );
            continue;
        };
        let progress_here = state.progress(hops);
        for (pick, outcome) in outcomes.iter().enumerate() {
            let applied = apply(config, &route, &state, flit, link, ready, outcome);
            transitions += 1;
            if applied.overtake {
                no_overtaking = false;
                let mut choices = path_to(&parents, id);
                choices.push(pick);
                record(
                    ViolationKind::Overtaking,
                    choices,
                    format!(
                        "flit {} arrived at cycle {} on link {} whose watermark \
                         was already {}",
                        applied.step.flit, applied.step.arrival, link, applied.step.busy_before
                    ),
                    &mut kept,
                    &mut violations,
                );
            }
            if applied.state.progress(hops) != progress_here + 1 {
                progress_monotone = false;
                let mut choices = path_to(&parents, id);
                choices.push(pick);
                record(
                    ViolationKind::Progress,
                    choices,
                    "a transition failed to cross exactly one link".to_string(),
                    &mut kept,
                    &mut violations,
                );
            }
            let canonical = applied.state.canonicalize();
            let next_id = match ids.get(&canonical) {
                Some(&existing) => existing,
                None => {
                    let fresh = states.len();
                    ids.insert(canonical.clone(), fresh);
                    states.push(canonical);
                    parents.push(Some((id, pick)));
                    succs.push(Vec::new());
                    queue.push_back(fresh);
                    fresh
                }
            };
            succs[id].push((next_id, outcome.probability));
        }
    }
    prof.exit();

    prof.enter("model.dtmc");
    // Absorbing-DTMC solve: x_t = sum_succ p * (x_succ | [delivered]).
    let mut transient_index: Vec<Option<usize>> = vec![None; states.len()];
    let mut transient = 0usize;
    for (id, state) in states.iter().enumerate() {
        if !state.is_terminal() {
            transient_index[id] = Some(transient);
            transient += 1;
        }
    }
    let mut system = SparseSystem::new(transient);
    for (id, edges) in succs.iter().enumerate() {
        let Some(row) = transient_index[id] else {
            continue;
        };
        system.add(row, row, 1.0);
        for &(next_id, p) in edges {
            match transient_index[next_id] {
                Some(col) => system.add(row, col, -p),
                None => {
                    if !states[next_id].poisoned {
                        system.add_rhs(row, p);
                    }
                }
            }
        }
    }
    let (deliver_probability, solved, fill_in) = if transient == 0 {
        (if drop_reachable { 0.0 } else { 1.0 }, true, 0)
    } else {
        match system.solve() {
            Some(solution) => (solution.x[0], true, solution.fill_in),
            None => (f64::NAN, false, 0),
        }
    };
    prof.exit();

    PairResult {
        src,
        dst,
        hops,
        states: states.len(),
        transitions,
        transient,
        deliver_probability,
        solved,
        fill_in,
        delivered_reachable,
        drop_reachable,
        deadlock_free,
        no_overtaking,
        progress_monotone,
        violations,
    }
}

/// Aggregate verification verdict over every ordered route of a mesh.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// The configuration that was checked.
    pub config: ModelConfig,
    /// One result per ordered (src, dst) pair with `src != dst`.
    pub pairs: Vec<PairResult>,
    /// Reachable canonical states summed over pairs.
    pub total_states: usize,
    /// Transitions summed over pairs.
    pub total_transitions: usize,
    /// Mean exact delivery probability over ordered pairs — the
    /// quantity uniform-random traffic estimates by Monte Carlo.
    pub deliver_probability: f64,
    /// Deadlock-freedom holds on every route.
    pub deadlock_free: bool,
    /// No-overtaking holds on every route.
    pub no_overtaking: bool,
    /// The progress measure increased on every transition.
    pub terminates: bool,
}

impl VerifyReport {
    /// All qualitative obligations hold on every route.
    pub fn all_proven(&self) -> bool {
        self.deadlock_free && self.no_overtaking && self.terminates
    }

    /// Every recorded counterexample across all pairs.
    pub fn violations(&self) -> impl Iterator<Item = &Violation> {
        self.pairs.iter().flat_map(|p| p.violations.iter())
    }
}

/// Checks every ordered (src, dst) route of the configured mesh.
pub fn verify(config: &ModelConfig) -> VerifyReport {
    verify_profiled(config, &mut srlr_telemetry::Profiler::disabled())
}

/// [`verify`] with profiling: one `model.verify` frame whose
/// `model.bfs` / `model.dtmc` children aggregate the exploration and
/// solve phases over every ordered route. A disabled profiler costs
/// one branch per frame; this *is* the unprofiled path.
pub fn verify_profiled(config: &ModelConfig, prof: &mut srlr_telemetry::Profiler) -> VerifyReport {
    let mesh = config.mesh;
    let mut pairs = Vec::new();
    prof.enter("model.verify");
    for s in 0..mesh.len() {
        for d in 0..mesh.len() {
            if s == d {
                continue;
            }
            let src = mesh.coord_of(s);
            let dst = mesh.coord_of(d);
            pairs.push(check_pair_profiled(config, src, dst, prof));
        }
    }
    prof.exit();
    let total_states = pairs.iter().map(|p| p.states).sum();
    let total_transitions = pairs.iter().map(|p| p.transitions).sum();
    let deliver_probability = if pairs.is_empty() {
        1.0
    } else {
        pairs.iter().map(|p| p.deliver_probability).sum::<f64>() / pairs.len() as f64
    };
    VerifyReport {
        config: config.clone(),
        deadlock_free: pairs.iter().all(|p| p.deadlock_free),
        no_overtaking: pairs.iter().all(|p| p.no_overtaking),
        terminates: pairs.iter().all(|p| p.progress_monotone),
        total_states,
        total_transitions,
        deliver_probability,
        pairs,
    }
}

/// The closed-form delivery probability the DTMC must reproduce: each
/// of the `packet_len * hops` crossings independently survives with
/// probability `1 - D^(R+1)`, averaged over ordered pairs.
pub fn closed_form_delivery(config: &ModelConfig) -> f64 {
    let detected = config.detected_probability();
    // srlr-lint: allow(lossy-cast, reason = "powi takes i32; max_retries is a small retry budget (u8-scale), nowhere near i32::MAX")
    let exhaust = detected.powi(config.fault.max_retries as i32 + 1);
    let survive = 1.0 - exhaust;
    let mesh = config.mesh;
    let mut total = 0.0;
    let mut count = 0usize;
    for s in 0..mesh.len() {
        for d in 0..mesh.len() {
            if s == d {
                continue;
            }
            let hops = mesh.coord_of(s).hop_distance(mesh.coord_of(d));
            // srlr-lint: allow(lossy-cast, reason = "packet lengths are flit counts, far below u32::MAX")
            let crossings = (config.packet_len as u32) * hops;
            // srlr-lint: allow(lossy-cast, reason = "powi takes i32; crossings = packet_len * hops stays far below i32::MAX for any real mesh")
            total += survive.powi(crossings as i32);
            count += 1;
        }
    }
    if count == 0 {
        1.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ber: f64, retries: u32) -> ModelConfig {
        ModelConfig::two_by_two(ber, retries)
    }

    #[test]
    fn crossing_outcomes_cover_the_probability_space() {
        let config = cfg(0.002, 3);
        let outs = crossing_outcomes(&config);
        // R + 2 branches: delivered after 0..=3 detections, exhausted.
        assert_eq!(outs.len(), 5);
        let mass: f64 = outs.iter().map(|o| o.probability).sum();
        assert!((mass - 1.0).abs() < 1e-12, "mass {mass}");
        assert!(outs[..4].iter().all(|o| o.delivered));
        assert!(!outs[4].delivered);
        // Delays follow ack_timeout + backoff accumulation: 0, 2, 5, 9.
        let delays: Vec<u64> = outs[..4].iter().map(|o| o.extra_delay).collect();
        assert_eq!(delays, vec![0, 2, 5, 9]);
        // Exhaustion probability is D^(R+1).
        let d = config.detected_probability();
        assert!((outs[4].probability - d.powi(4)).abs() < 1e-15);
    }

    #[test]
    fn profiled_verify_matches_unprofiled_and_frames_the_phases() {
        use srlr_telemetry::{Clock, Profiler};
        let config = cfg(0.01, 2);
        let plain = verify(&config);
        let mut prof = Profiler::enabled(Clock::tick(1.0));
        let profiled = verify_profiled(&config, &mut prof);
        assert_eq!(plain.total_states, profiled.total_states);
        assert_eq!(plain.total_transitions, profiled.total_transitions);
        assert_eq!(
            plain.deliver_probability.to_bits(),
            profiled.deliver_probability.to_bits(),
            "profiling must not perturb the solve"
        );
        let profile = prof.snapshot();
        let node = |name: &str| {
            profile
                .nodes
                .iter()
                .find(|n| n.name == name)
                .unwrap_or_else(|| panic!("missing frame {name}"))
        };
        // One verify frame; every ordered pair contributes one BFS and
        // one DTMC invocation, aggregated under it (12 ordered pairs on
        // the 2x2 mesh).
        assert_eq!(node("model.verify").count, 1);
        assert_eq!(node("model.bfs").count, 12);
        assert_eq!(node("model.dtmc").count, 12);
        assert_eq!(node("model.bfs").parent, node("model.dtmc").parent);
    }

    #[test]
    fn zero_ber_has_a_single_reachable_terminal() {
        let config = cfg(0.0, 3);
        let report = verify(&config);
        assert!(report.all_proven());
        assert!((report.deliver_probability - 1.0).abs() < 1e-12);
        for pair in &report.pairs {
            assert!(pair.delivered_reachable);
            // With BER 0 the drop branch has probability 0 but is still
            // *enumerated* (nondeterministic semantics), so it remains
            // reachable in the qualitative graph.
            assert!(pair.drop_reachable);
            assert!(pair.solved);
        }
    }

    #[test]
    fn the_correct_scheduler_is_proven_at_the_issue_retry_budgets() {
        for retries in [0u32, 1, 3] {
            let report = verify(&cfg(0.01, retries));
            assert!(report.all_proven(), "budget {retries} failed");
            assert!(report.deadlock_free);
            assert!(report.no_overtaking);
            assert!(report.terminates);
            assert!(report.violations().next().is_none());
            assert!(report.total_states > 0);
        }
    }

    #[test]
    fn dtmc_matches_the_closed_form_on_every_pair() {
        for (ber, retries) in [(0.001, 0), (0.003, 1), (0.01, 3)] {
            let config = cfg(ber, retries);
            let detected = config.detected_probability();
            let survive = 1.0 - detected.powi(retries as i32 + 1);
            let report = verify(&config);
            for pair in &report.pairs {
                assert!(pair.solved);
                let crossings = (config.packet_len * pair.hops) as i32;
                let expect = survive.powi(crossings);
                assert!(
                    (pair.deliver_probability - expect).abs() < 1e-12,
                    "pair {} -> {}: dtmc {} closed {}",
                    pair.src,
                    pair.dst,
                    pair.deliver_probability,
                    expect
                );
            }
            let aggregate = closed_form_delivery(&config);
            assert!((report.deliver_probability - aggregate).abs() < 1e-12);
        }
    }

    #[test]
    fn bfs_order_incurs_zero_fill_in() {
        let report = verify(&cfg(0.01, 3));
        for pair in &report.pairs {
            assert_eq!(pair.fill_in, 0, "fill-in on {} -> {}", pair.src, pair.dst);
        }
    }

    #[test]
    fn the_broken_scheduler_yields_an_overtaking_counterexample() {
        let config = cfg(0.01, 3).with_variant(Variant::IgnoreBusyWatermark);
        let report = verify(&config);
        assert!(!report.no_overtaking);
        // Deadlock-freedom and termination are unaffected by the
        // scheduling bug.
        assert!(report.deadlock_free);
        assert!(report.terminates);
        let violation = report
            .violations()
            .find(|v| v.kind == ViolationKind::Overtaking)
            .expect("counterexample");
        // The recorded choice sequence replays to the same trace and
        // its final step is the overtake.
        let replayed = replay_choices(&config, violation.src, violation.dst, &violation.choices);
        assert_eq!(replayed.steps, violation.trace);
        let last = violation.trace.last().expect("non-empty trace");
        assert!(last.arrival <= last.busy_before);
    }

    #[test]
    fn overtaking_requires_a_nonzero_retry_budget() {
        // With no retries every crossing takes exactly one cycle, so
        // even the broken scheduler cannot reorder flits.
        let config = cfg(0.01, 0).with_variant(Variant::IgnoreBusyWatermark);
        let report = verify(&config);
        assert!(report.no_overtaking);
    }

    #[test]
    fn canonicalization_is_shift_invariant() {
        let a = State {
            flits: vec![
                FlitPos::Pending { link: 1, ready: 7 },
                FlitPos::Pending { link: 0, ready: 5 },
            ],
            busy: vec![6, 2],
            poisoned: false,
        };
        let mut b = a.clone();
        for f in &mut b.flits {
            if let FlitPos::Pending { ready, .. } = f {
                *ready += 13;
            }
        }
        for w in &mut b.busy {
            *w += 13;
        }
        assert_eq!(a.clone().canonicalize(), b.canonicalize());
        // The watermark below base - 1 clamps to the same bucket as
        // base - 1 exactly.
        let mut c = a.clone();
        c.busy[1] = 0;
        let mut d = a;
        d.busy[1] = 4; // base 5 -> base - 1 = 4
        assert_eq!(c.canonicalize(), d.canonicalize());
    }

    #[test]
    fn replay_reaches_a_terminal_state_for_any_oracle() {
        let config = cfg(0.01, 2);
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 1);
        // Always-clean oracle.
        let clean = replay(&config, src, dst, |_, _| 0);
        assert!(clean.terminal && clean.delivered);
        assert_eq!(clean.steps.len(), config.packet_len * 2);
        // Always-exhaust oracle: poisoned but still terminates.
        let poisoned = replay(&config, src, dst, |_, _| usize::MAX);
        assert!(poisoned.terminal && !poisoned.delivered);
    }

    #[test]
    fn state_space_is_shared_across_equivalent_timings() {
        // A modest budget keeps the canonical space small; the point is
        // that it is *much* smaller than the 5^8 outcome tree.
        let report = verify(&cfg(0.01, 3));
        for pair in &report.pairs {
            let tree: usize = (5usize).pow((4 * pair.hops) as u32);
            assert!(
                pair.states * 20 < tree,
                "canonicalization failed to merge: {} states vs {} paths",
                pair.states,
                tree
            );
        }
    }
}
