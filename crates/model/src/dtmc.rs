//! Sparse linear algebra for absorbing discrete-time Markov chains.
//!
//! The model checker turns the reachable state graph of a (source,
//! destination) pair into an absorbing DTMC: transient states are the
//! non-terminal canonical states, the two absorbing classes are
//! `Delivered` and `CountedDrop`.  The absorption probability vector
//! `x` (probability of ending in `Delivered` from each transient
//! state) solves the linear system `(I - Q) x = b`, where `Q` is the
//! transient-to-transient transition matrix and `b` accumulates the
//! one-step probabilities of jumping straight into `Delivered`.
//!
//! Because every protocol transition strictly increases the progress
//! measure (total links crossed), the state graph is acyclic and the
//! BFS discovery order is a topological order.  Eliminating unknowns
//! in that order therefore produces *zero fill-in*: `(I - Q)` is
//! upper-triangular up to the diagonal when rows and columns are
//! numbered by discovery.  The solver still runs a general sparse
//! Gaussian elimination with partial pivoting — the triangularity is
//! an emergent property we report (`fill_in`) and assert in tests,
//! not an assumption baked into the algorithm.

use std::collections::BTreeMap;

/// Pivots with absolute value below this are treated as singular.
const PIVOT_FLOOR: f64 = 1.0e-300;

/// A sparse square system `A x = rhs` with rows stored as ordered maps.
#[derive(Debug, Clone)]
pub struct SparseSystem {
    n: usize,
    rows: Vec<BTreeMap<usize, f64>>,
    rhs: Vec<f64>,
}

/// Outcome of a successful solve.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The solution vector `x`.
    pub x: Vec<f64>,
    /// Number of matrix entries *created* during elimination (entries
    /// that were structurally zero in the assembled system).  Zero for
    /// systems assembled in topological order.
    pub fill_in: usize,
}

impl SparseSystem {
    /// Creates an `n`-by-`n` system with all coefficients zero.
    pub fn new(n: usize) -> Self {
        SparseSystem {
            n,
            rows: vec![BTreeMap::new(); n],
            rhs: vec![0.0; n],
        }
    }

    /// Number of unknowns.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the system has no unknowns.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `coeff` to `A[row][col]`.  Out-of-range indices are ignored
    /// so that callers can assemble defensively.
    pub fn add(&mut self, row: usize, col: usize, coeff: f64) {
        if row < self.n && col < self.n {
            *self.rows[row].entry(col).or_insert(0.0) += coeff;
        }
    }

    /// Adds `value` to `rhs[row]`.  Out-of-range indices are ignored.
    pub fn add_rhs(&mut self, row: usize, value: f64) {
        if row < self.n {
            self.rhs[row] += value;
        }
    }

    /// Number of structurally non-zero coefficients currently stored.
    pub fn nonzeros(&self) -> usize {
        self.rows.iter().map(BTreeMap::len).sum()
    }

    /// Solves the system by sparse Gaussian elimination with partial
    /// (max-magnitude) pivoting, consuming the assembled coefficients.
    ///
    /// Returns `None` when a pivot column is numerically singular.
    pub fn solve(mut self) -> Option<Solution> {
        let n = self.n;
        let assembled = self.nonzeros();
        let mut created = 0usize;
        for k in 0..n {
            // Partial pivoting: pick the row at or below k with the
            // largest magnitude in column k.
            let mut best = k;
            let mut best_mag = self.rows[k].get(&k).map_or(0.0, |v| v.abs());
            for (offset, row) in self.rows[k + 1..].iter().enumerate() {
                let mag = row.get(&k).map_or(0.0, |v| v.abs());
                if mag > best_mag {
                    best_mag = mag;
                    best = k + 1 + offset;
                }
            }
            if best_mag < PIVOT_FLOOR {
                return None;
            }
            if best != k {
                self.rows.swap(k, best);
                self.rhs.swap(k, best);
            }
            let pivot = *self.rows[k].get(&k)?;
            // Eliminate column k from every later row that carries it.
            let pivot_row: Vec<(usize, f64)> =
                self.rows[k].range(k + 1..).map(|(&c, &v)| (c, v)).collect();
            let pivot_rhs = self.rhs[k];
            for r in k + 1..n {
                let factor = match self.rows[r].remove(&k) {
                    Some(v) => v / pivot,
                    None => continue,
                };
                for &(c, v) in &pivot_row {
                    let slot = self.rows[r].entry(c).or_insert_with(|| {
                        created += 1;
                        0.0
                    });
                    *slot -= factor * v;
                }
                self.rhs[r] -= factor * pivot_rhs;
            }
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut acc = self.rhs[k];
            for (&c, &v) in self.rows[k].range(k + 1..) {
                acc -= v * x[c];
            }
            let pivot = *self.rows[k].get(&k)?;
            x[k] = acc / pivot;
        }
        let _ = assembled;
        Some(Solution {
            x,
            fill_in: created,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_a_dense_3x3_system() {
        // 2x + y = 5 ; x + 3y + z = 10 ; y + 2z = 7  ->  x=2, y=1, z=3... check:
        // 2*2+1=5 ok; 2+3+3=8 not 10.  Pick an exact one instead:
        // x + y = 3 ; 2y + z = 5 ; 4z = 4  ->  z=1, y=2, x=1.
        let mut sys = SparseSystem::new(3);
        sys.add(0, 0, 1.0);
        sys.add(0, 1, 1.0);
        sys.add_rhs(0, 3.0);
        sys.add(1, 1, 2.0);
        sys.add(1, 2, 1.0);
        sys.add_rhs(1, 5.0);
        sys.add(2, 2, 4.0);
        sys.add_rhs(2, 4.0);
        let sol = sys.solve().expect("nonsingular");
        assert!((sol.x[0] - 1.0).abs() < 1e-12);
        assert!((sol.x[1] - 2.0).abs() < 1e-12);
        assert!((sol.x[2] - 1.0).abs() < 1e-12);
        // Upper triangular already: no fill-in.
        assert_eq!(sol.fill_in, 0);
    }

    #[test]
    fn pivots_when_the_diagonal_is_zero() {
        // 0x + y = 2 ; x + y = 3  ->  x=1, y=2 (requires a row swap).
        let mut sys = SparseSystem::new(2);
        sys.add(0, 1, 1.0);
        sys.add_rhs(0, 2.0);
        sys.add(1, 0, 1.0);
        sys.add(1, 1, 1.0);
        sys.add_rhs(1, 3.0);
        let sol = sys.solve().expect("nonsingular after pivot");
        assert!((sol.x[0] - 1.0).abs() < 1e-12);
        assert!((sol.x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reports_singular_systems() {
        let mut sys = SparseSystem::new(2);
        sys.add(0, 0, 1.0);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, 1.0);
        sys.add(1, 1, 1.0);
        assert!(sys.solve().is_none());
    }

    #[test]
    fn counts_fill_in_on_a_lower_triangle() {
        // A dense lower-triangular-plus-band system forces fill when a
        // row below the pivot lacks entries the pivot row has.
        let mut sys = SparseSystem::new(3);
        sys.add(0, 0, 2.0);
        sys.add(0, 2, 1.0);
        sys.add_rhs(0, 4.0);
        sys.add(1, 0, 1.0);
        sys.add(1, 1, 1.0);
        sys.add_rhs(1, 3.0);
        sys.add(2, 1, 1.0);
        sys.add(2, 2, 1.0);
        sys.add_rhs(2, 3.0);
        let sol = sys.solve().expect("nonsingular");
        // Row 1 gains a column-2 entry from the elimination of column 0.
        assert!(sol.fill_in > 0);
        // Residual check instead of hand-solving.
        let (x, y, z) = (sol.x[0], sol.x[1], sol.x[2]);
        assert!((2.0 * x + z - 4.0).abs() < 1e-12);
        assert!((x + y - 3.0).abs() < 1e-12);
        assert!((y + z - 3.0).abs() < 1e-12);
    }

    #[test]
    fn an_absorbing_chain_absorbs_with_probability_one() {
        // Two transient states: s0 -> s1 (p=0.5) or Delivered (0.5);
        // s1 -> Delivered (0.7) or Dropped (0.3).
        // x0 = 0.5 + 0.5 * x1 ; x1 = 0.7.
        let mut sys = SparseSystem::new(2);
        sys.add(0, 0, 1.0);
        sys.add(0, 1, -0.5);
        sys.add_rhs(0, 0.5);
        sys.add(1, 1, 1.0);
        sys.add_rhs(1, 0.7);
        let sol = sys.solve().expect("nonsingular");
        assert!((sol.x[1] - 0.7).abs() < 1e-15);
        assert!((sol.x[0] - 0.85).abs() < 1e-15);
        assert_eq!(sol.fill_in, 0);
    }
}
