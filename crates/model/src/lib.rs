//! # srlr-model — exhaustive-state verification of the NoC retry protocol
//!
//! The cycle simulator in `srlr-noc` *samples* the link fault/retry
//! protocol; this crate *proves* it.  A discrete-state model checker
//! enumerates every reachable state of a wormhole packet crossing a
//! mesh under the PR 2 fault model — per-crossing CRC outcome, NACK,
//! bounded retry budget, `link_busy_until` watermark, drop at budget
//! exhaustion — and discharges three obligations on each XY route:
//!
//! 1. **Deadlock-freedom** — every non-terminal state has an enabled
//!    crossing;
//! 2. **No mid-wormhole overtaking** — a retried head flit is never
//!    overtaken by its own tail (the watermark invariant);
//! 3. **Termination** — every run ends in `Delivered` or
//!    `CountedDrop`, proven by a strictly increasing progress measure.
//!
//! Both the checker and the simulator drive the *same* pure transition
//! function, [`srlr_noc::protocol::retry_step`], so a semantics change
//! in one is a semantics change in both.
//!
//! The same state graph, weighted by per-crossing outcome
//! probabilities, is an absorbing discrete-time Markov chain.  Solving
//! `(I - Q) x = b` by sparse Gaussian elimination ([`dtmc`]) yields
//! the *exact* delivery probability, which integration tests pin
//! inside the Monte Carlo Wilson interval of `ber_sweep` at every
//! swept BER.
//!
//! Failures are not booleans: a violated obligation carries a
//! replayable counterexample trace ([`Violation`]) that can be
//! re-executed step by step ([`replay_choices`]) and emitted through
//! `srlr-telemetry` for SARIF reporting in the CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod dtmc;

pub use checker::{
    check_pair, check_pair_profiled, closed_form_delivery, crossing_outcomes, replay,
    replay_choices, verify, verify_profiled, CrossingOutcome, ModelConfig, PairResult, Replayed,
    TraceStep, Variant, VerifyReport, Violation, ViolationKind,
};
pub use dtmc::{Solution, SparseSystem};
