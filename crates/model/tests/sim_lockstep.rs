//! Lockstep bridge between the cycle simulator and the model checker.
//!
//! A single packet is run through the full `srlr-noc` simulator while a
//! shadow `FaultModel` — same seed, same per-link RNG streams, same
//! flit payloads — replays each link crossing to extract the concrete
//! outcome sequence.  Feeding those outcomes into the checker's
//! deterministic replay must reproduce the simulator's verdict exactly:
//! delivered/dropped, total retransmissions, and total NACKs.  Because
//! both sides fold outcomes through the one shared
//! `srlr_noc::protocol::retry_step`, any drift here is a semantics bug.

use srlr_model::{replay, ModelConfig};
use srlr_noc::{
    Coord, FaultConfig, FaultModel, LinkTransmission, Mesh, Network, NocConfig, Packet, PacketId,
};

const PACKET_LEN: usize = 4;

/// Runs the shadow fault model over every (link, flit) crossing of the
/// route in the simulator's per-link order (flit order — a single
/// wormhole packet crosses each link head to tail).
fn shadow_outcomes(
    fault: FaultConfig,
    mesh: Mesh,
    src: Coord,
    dst: Coord,
    packet: &Packet,
) -> Vec<Vec<LinkTransmission>> {
    let mut shadow = FaultModel::new(fault, mesh);
    let flits = packet.flits(dst);
    let path = mesh.xy_path(src, dst);
    path.windows(2)
        .map(|w| {
            let dir = mesh.xy_route(w[0], dst);
            flits
                .iter()
                .map(|f| shadow.transmit(w[0], dir, f))
                .collect()
        })
        .collect()
}

#[test]
fn simulator_and_checker_agree_on_every_seeded_run() {
    let mesh = Mesh::new(2, 2);
    let src = Coord::new(0, 0);
    let dst = Coord::new(1, 1);
    let (mut delivered_runs, mut dropped_runs, mut retried_runs) = (0u32, 0u32, 0u32);

    for seed in 0..60u64 {
        let fault = FaultConfig::new(0.002).with_seed(seed).with_max_retries(1);

        // Full simulator run: one packet, no competing traffic.
        let mut net = Network::new(
            NocConfig::paper_default()
                .with_size(2, 2)
                .with_packet_len(PACKET_LEN)
                .with_faults(fault),
        );
        let packet = Packet::unicast(PacketId(1), src, dst, PACKET_LEN, 0);
        net.enqueue(packet.clone());
        let done = net
            .run_until_delivered(1, 10_000)
            .expect("single packet terminates");
        let sim_delivered = !done.is_empty();
        assert_eq!(net.packets_dropped() > 0, !sim_delivered);
        let sim_retries = net.counters().retry_hops;
        let sim_nacks = net.counters().nacks;

        // Shadow replay: same seed, same streams, same flit payloads.
        let outcomes = shadow_outcomes(fault, mesh, src, dst, &packet);
        let config = ModelConfig::new(mesh, PACKET_LEN, fault);
        let replayed = replay(&config, src, dst, |flit, link| {
            let tx = &outcomes[link as usize][flit];
            if tx.delivered {
                (tx.attempts - 1) as usize
            } else {
                usize::MAX // exhaustion branch
            }
        });

        assert!(replayed.terminal, "seed {seed}: replay must terminate");
        assert_eq!(
            replayed.delivered, sim_delivered,
            "seed {seed}: verdict mismatch"
        );
        assert_eq!(
            replayed.attempts - replayed.steps.len() as u64,
            sim_retries,
            "seed {seed}: retransmission count mismatch"
        );
        assert_eq!(
            replayed.nacks, sim_nacks,
            "seed {seed}: NACK count mismatch"
        );
        assert_eq!(replayed.steps.len(), PACKET_LEN * 2);

        delivered_runs += u32::from(sim_delivered);
        dropped_runs += u32::from(!sim_delivered);
        retried_runs += u32::from(sim_retries > 0);
    }

    // The seed range must actually exercise all three behaviours, or
    // the lockstep assertions above prove nothing.
    assert!(delivered_runs > 0, "no run delivered");
    assert!(dropped_runs > 0, "no run dropped");
    assert!(retried_runs > 10, "too few runs retried: {retried_runs}");
}

#[test]
fn shadow_outcomes_match_the_simulators_fault_tally() {
    // Aggregate cross-check on a different (ber, budget) point: the
    // shadow's attempt arithmetic must match the simulator's tally of
    // retransmitted flits and exhausted crossings.
    let mesh = Mesh::new(2, 2);
    let src = Coord::new(1, 1);
    let dst = Coord::new(0, 0);
    for seed in [3u64, 17, 90] {
        let fault = FaultConfig::new(0.004).with_seed(seed).with_max_retries(2);
        let mut net = Network::new(
            NocConfig::paper_default()
                .with_size(2, 2)
                .with_packet_len(PACKET_LEN)
                .with_faults(fault),
        );
        let packet = Packet::unicast(PacketId(9), src, dst, PACKET_LEN, 0);
        net.enqueue(packet.clone());
        net.run_until_delivered(1, 10_000)
            .expect("single packet terminates");

        let outcomes = shadow_outcomes(fault, mesh, src, dst, &packet);
        let shadow_retries: u64 = outcomes
            .iter()
            .flatten()
            .map(|tx| u64::from(tx.attempts - 1))
            .sum();
        let shadow_exhausted = outcomes.iter().flatten().filter(|tx| !tx.delivered).count() as u64;
        assert_eq!(shadow_retries, net.counters().retry_hops, "seed {seed}");
        assert_eq!(
            shadow_exhausted > 0,
            net.packets_dropped() > 0,
            "seed {seed}"
        );
    }
}
