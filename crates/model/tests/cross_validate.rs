//! Cross-validation of the exact DTMC against Monte Carlo (ISSUE 8
//! acceptance): at every BER in the swept grid, the model's exact
//! delivery probability must fall inside the simulator's 95% Wilson
//! interval.
//!
//! The sweep runs the real `ber_sweep` harness on a 2x2 mesh under
//! uniform-random traffic (destination uniform over the other three
//! nodes, i.e. the 12 ordered pairs the checker enumerates).  The
//! model side is `verify(...)`, whose aggregate is the mean of the
//! per-pair absorption probabilities — the same quantity the sampled
//! delivered fraction estimates.

use srlr_model::{closed_form_delivery, verify, ModelConfig};
use srlr_noc::traffic::Pattern;
use srlr_noc::{ber_sweep, FaultConfig, NocConfig};

const PACKET_LEN: usize = 4;
const MAX_RETRIES: u32 = 1;
const BERS: [f64; 5] = [0.0, 5.0e-4, 1.0e-3, 2.0e-3, 4.0e-3];

#[test]
fn exact_delivery_probability_lies_inside_the_wilson_interval_at_every_ber() {
    let base = NocConfig::paper_default()
        .with_size(2, 2)
        .with_packet_len(PACKET_LEN);
    let template = FaultConfig::new(0.0)
        .with_seed(0x5EED)
        .with_max_retries(MAX_RETRIES);
    let points = ber_sweep(
        base,
        template,
        Pattern::UniformRandom,
        0.10,
        500,
        6_000,
        &BERS,
        Some(1),
    );
    assert_eq!(points.len(), BERS.len());

    for point in &points {
        let config = ModelConfig::new(
            srlr_noc::Mesh::new(2, 2),
            PACKET_LEN,
            FaultConfig::new(point.ber).with_max_retries(MAX_RETRIES),
        );
        let report = verify(&config);
        assert!(
            report.all_proven(),
            "qualitative obligations failed at ber {}",
            point.ber
        );
        let exact = report.deliver_probability;

        let (lo, hi) = point
            .stats
            .delivered_interval_95()
            .expect("measured window terminated packets");
        assert!(
            lo <= exact && exact <= hi,
            "ber {}: exact {exact} outside Wilson interval [{lo}, {hi}] \
             (MC delivered fraction {})",
            point.ber,
            point.stats.delivered_fraction(),
        );

        // The DTMC agrees with the independent closed form, so the
        // interval check above is not vacuous about the solver.
        let closed = closed_form_delivery(&config);
        assert!(
            (exact - closed).abs() < 1e-12,
            "ber {}: dtmc {exact} vs closed form {closed}",
            point.ber
        );
    }

    // The grid must include points with real attrition, otherwise the
    // interval containment is trivial.
    let worst = points
        .last()
        .map(|p| p.stats.delivered_fraction())
        .unwrap_or(1.0);
    assert!(worst < 0.9, "sweep too benign: {worst}");
}
