//! The batched-engine contract, probed at the awkward boundaries: for
//! every batch width and thread count, [`McEngine::Batched`] must return
//! exactly what the scalar serial reference returns — results *and*
//! telemetry bytes (PR 4's determinism contract extends to the engine
//! choice).

use srlr_core::SrlrDesign;
use srlr_link::{LinkConfig, McEngine, McExperiment};
use srlr_tech::Technology;
use srlr_telemetry::{Collector, Obs};
use srlr_units::Voltage;

/// Swings that land in the failing, marginal and healthy regions, so
/// both the certificate fast path and the DieBatch fallback are hit.
fn sweep_swings() -> Vec<Voltage> {
    [300.0, 400.0, 500.0]
        .iter()
        .map(|&mv| Voltage::from_millivolts(mv))
        .collect()
}

#[test]
fn batched_matches_scalar_at_awkward_widths_and_thread_counts() {
    // 37 runs is a multiple of no batch width in the set, so every
    // configuration exercises a ragged final batch (and width 1 the
    // one-lane degenerate case).
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let base = McExperiment::paper_default(&tech).with_runs(37);
    let reference = base
        .clone()
        .with_engine(McEngine::Scalar)
        .with_threads(Some(1))
        .swing_sweep(&design, &sweep_swings());
    for width in [1usize, 4, 8] {
        for threads in [1usize, 2, 8] {
            let batched = base
                .clone()
                .with_batch_width(width)
                .with_threads(Some(threads))
                .swing_sweep(&design, &sweep_swings());
            assert_eq!(
                reference, batched,
                "width {width} × threads {threads} diverged from the scalar serial sweep"
            );
        }
    }
}

#[test]
fn batched_matches_scalar_with_no_prbs_stimulus() {
    // prbs_bits = 0: only the deterministic worst-case patterns run, and
    // the per-lane PRBS phase must be skipped entirely.
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let mut base = McExperiment::paper_default(&tech).with_runs(30);
    base.prbs_bits = 0;
    let scalar = base
        .clone()
        .with_engine(McEngine::Scalar)
        .with_threads(Some(1))
        .swing_sweep(&design, &sweep_swings());
    let batched = base
        .with_batch_width(4)
        .swing_sweep(&design, &sweep_swings());
    assert_eq!(scalar, batched);
}

#[test]
fn batched_matches_scalar_on_a_single_stage_link() {
    // One stage: the launcher bookkeeping degenerates (the PM mirrors
    // the only stage, which also drives the demodulator directly).
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let config = LinkConfig {
        stages: 1,
        ..LinkConfig::paper_default()
    };
    let base = McExperiment::paper_default(&tech)
        .with_config(config)
        .with_runs(25);
    let scalar = base
        .clone()
        .with_engine(McEngine::Scalar)
        .with_threads(Some(1))
        .swing_sweep(&design, &sweep_swings());
    let batched = base
        .with_batch_width(8)
        .swing_sweep(&design, &sweep_swings());
    assert_eq!(scalar, batched);
}

#[test]
fn telemetry_bytes_are_identical_across_engines_widths_and_threads() {
    // The strong form of the contract: the JSONL event stream and the
    // chrome trace emitted by an observed sweep are byte-identical no
    // matter which engine, batch width, or thread count produced them.
    let tech = Technology::soi45();
    let design = SrlrDesign::paper_proposed(&tech);
    let run = |engine: McEngine, width: usize, threads: usize| {
        let exp = McExperiment::paper_default(&tech)
            .with_runs(21)
            .with_engine(engine)
            .with_batch_width(width)
            .with_threads(Some(threads));
        let mut obs = Obs {
            collector: Collector::enabled("batch-identity"),
            ..Obs::default()
        };
        let sweep = exp.swing_sweep_observed(&design, &sweep_swings(), &mut obs);
        let mut jsonl = Vec::new();
        obs.collector
            .write_events_jsonl(&mut jsonl)
            .expect("vec write");
        (sweep, jsonl, obs.collector.chrome_trace_json())
    };
    let (sweep_ref, jsonl_ref, chrome_ref) = run(McEngine::Scalar, 1, 1);
    for (engine, width, threads) in [
        (McEngine::Scalar, 1, 8),
        (McEngine::Batched, 1, 1),
        (McEngine::Batched, 4, 2),
        (McEngine::Batched, 8, 8),
        (McEngine::Batched, 64, 2),
    ] {
        let (sweep, jsonl, chrome) = run(engine, width, threads);
        assert_eq!(
            sweep_ref, sweep,
            "{engine:?} width {width} threads {threads}: results diverged"
        );
        assert_eq!(
            jsonl_ref, jsonl,
            "{engine:?} width {width} threads {threads}: JSONL diverged"
        );
        assert_eq!(
            chrome_ref, chrome,
            "{engine:?} width {width} threads {threads}: trace diverged"
        );
    }
}

#[test]
fn error_probability_matches_across_engines_at_width_one() {
    // Width 1 runs the full certificate + single-lane DieBatch machinery
    // per die — the slowest but most direct equivalence check.
    let tech = Technology::soi45();
    let design =
        SrlrDesign::paper_proposed(&tech).with_nominal_swing(Voltage::from_millivolts(400.0));
    let base = McExperiment::paper_default(&tech).with_runs(37);
    let scalar = base
        .clone()
        .with_engine(McEngine::Scalar)
        .with_threads(Some(1))
        .error_probability(&design);
    for threads in [1usize, 2, 8] {
        let batched = base
            .clone()
            .with_batch_width(1)
            .with_threads(Some(threads))
            .error_probability(&design);
        assert_eq!(scalar, batched, "threads {threads} diverged at width 1");
    }
}
