//! The deterministic parallel sweep engine shared by every experiment in
//! this crate.
//!
//! All Monte Carlo and sweep experiments ([`crate::montecarlo`],
//! [`crate::shmoo`], [`crate::bathtub`], [`crate::bundle`]) are
//! embarrassingly parallel across trials: each die / shmoo cell / rate
//! point is a pure function of the experiment seed and the trial index,
//! thanks to the counter-based RNG streams in
//! [`srlr_tech::MonteCarlo::die_rng`] and
//! [`crate::Prbs::prbs15_for_stream`]. That makes parallelism a pure
//! scheduling concern:
//!
//! * [`par_map_indexed`] evaluates `f(0..n)` on a worker pool and always
//!   returns results in index order, so parallel output is **bit-identical**
//!   to the serial loop at every thread count (enforced by tests at 1, 2,
//!   and 8 threads).
//! * [`resolve_threads`] picks the worker count: an explicit request wins,
//!   then the `SRLR_THREADS` environment variable, then the machine's
//!   available parallelism. `1` (or a single-item workload) degenerates to
//!   a plain serial loop with no thread overhead.
//!
//! # Examples
//!
//! ```
//! use srlr_link::engine;
//!
//! let serial: Vec<u64> = (0..100u64).map(|i| i * i).collect();
//! let parallel = engine::par_map_indexed(100, 4, |i| (i as u64) * (i as u64));
//! assert_eq!(serial, parallel);
//! ```

pub use srlr_parallel::{
    available_threads, par_count, par_map_indexed, resolve_threads, THREADS_ENV,
};
