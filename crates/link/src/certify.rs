//! Conservative clean-link certificate: a per-die static analysis that
//! proves (with margin) that a link transmits **every** bit pattern
//! cleanly, so the batched Monte Carlo engine can skip exact simulation
//! for the overwhelmingly common robust dice.
//!
//! # The two monotone bounds
//!
//! The pulse-domain stage map is monotone in the quantities that matter:
//!
//! * The peak seen by stage `i` is `b + d·(1 − b/V)` with `d ≤ V`, which
//!   is non-decreasing in both the ISI baseline `b` and the launcher's
//!   delivered swing `d`; M1's current grows with the peak, so the X
//!   discharge time shrinks and the output width grows. Hence the
//!   **zero-baseline chain is the exact worst case for `1`-bit
//!   propagation**: if a solitary `1` on fully drained segments makes it
//!   to the demodulator with margin, every `1` in every pattern does.
//! * Residues only threaten `0`-bits by firing a repeater spuriously.
//!   With every slot carrying the widest possible pulse, the per-segment
//!   residue recurrence `b' = (b + d_max)·decay` has the fixed point
//!   `b* = d_max·decay/(1 − decay)` (an upper bound of all reachable
//!   baselines when `decay < 1`). A few rounds of interval iteration
//!   tighten the width/peak bounds; if the final `b*` stays below every
//!   sense threshold, **no pattern can fire a stage spuriously**.
//!
//! Every comparison carries a relative guard band ([`REL`] = 1e-9, many
//! orders above f64 rounding) on the *conservative* side, so a certified
//! die is clean for the exact evaluator, not merely for real arithmetic.
//! Failing to certify proves nothing — callers fall back to exact
//! (batched) simulation, which is what keeps the batched engine
//! bit-identical to the scalar path: the certificate only selects *which*
//! evaluator runs, never what it computes.

use crate::link::SrlrLink;
use srlr_units::{TimeInterval, Voltage};

/// Relative guard band applied on the conservative side of every
/// certificate comparison. f64 evaluation of the stage map differs from
/// real arithmetic by ~1e-13 relative at worst; 1e-9 swamps that while
/// costing a negligible sliver of certifiable dice.
const REL: f64 = 1e-9;

/// Interval-iteration rounds tightening the (width, residue) bounds.
/// Round 1 starts from `peak ≤ V_drive` (always true); each round is a
/// sound refinement, and four are enough to certify essentially every
/// die that the exact evaluator passes at the paper's operating points.
const ROUNDS: usize = 4;

/// `true` when this die provably transmits every bit pattern cleanly at
/// the link's configured rate (see the module docs for the argument).
/// `false` means "unproven", not "failing".
pub(crate) fn robustly_clean(link: &SrlrLink) -> bool {
    let stages = link.chain().stages();
    let n = stages.len();
    let t_bit = link.config().data_rate.bit_period().seconds();
    let demod_min = link.config().demod_min_width.seconds();
    let launch_w = link.chain().launch_width().seconds();

    // ---- 1-bit propagation: the zero-baseline chain, with margin. ----
    let mut w = launch_w;
    let mut launcher = &stages[0];
    for stage in stages {
        if !stage.enabled || !stage.statically_sound {
            return false;
        }
        if w <= 0.0 {
            return false;
        }
        let peak = launcher
            .delivered_swing(TimeInterval::from_seconds(w))
            .volts();
        if peak <= 0.0 {
            return false;
        }
        let t_d = stage.x_discharge_time(Voltage::from_volts(peak)).seconds();
        if t_d * (1.0 + REL) > w {
            return false;
        }
        let w_out =
            stage.delay.seconds() - (stage.t_rise0.seconds() + t_d - stage.t_fall.seconds());
        if w_out < stage.min_output_width.seconds() * (1.0 + REL) + 1e-18 {
            return false;
        }
        w = w_out;
        launcher = stage;
    }
    if w * (1.0 - REL) < demod_min {
        return false;
    }

    // ---- 0-bit safety: bound every reachable ISI residue below the ----
    // ---- sense thresholds via interval iteration.                  ----
    //
    // Segment `i` is driven by stage `i − 1` (the PM mirrors stage 0 for
    // segment 0, and its pulses have exactly the launch width).
    let launcher_of = |i: usize| if i == 0 { &stages[0] } else { &stages[i - 1] };
    let mut peak_max: Vec<f64> = (0..n).map(|i| launcher_of(i).drive_level.volts()).collect();
    let mut w_max = vec![0.0; n];
    let mut b_star = vec![0.0; n];
    for _ in 0..ROUNDS {
        // Widest output pulse stage `i` can emit given the peak bound
        // (larger peak → faster X discharge → wider output).
        for i in 0..n {
            let t_d_min = stages[i]
                .x_discharge_time(Voltage::from_volts(peak_max[i]))
                .seconds()
                * (1.0 - REL);
            let widest = stages[i].delay.seconds() - stages[i].t_rise0.seconds()
                + stages[i].t_fall.seconds();
            w_max[i] = (widest - t_d_min).max(0.0);
        }
        // Residue fixed point and refined peak bound per segment.
        for i in 0..n {
            let l = launcher_of(i);
            let wl = if i == 0 { launch_w } else { w_max[i - 1] };
            let gap_min = t_bit - wl;
            if gap_min <= 0.0 {
                // Pulses can outlast the bit slot: no drain window, the
                // geometric-residue argument does not apply.
                return false;
            }
            let decay = (-gap_min / l.discharge_tau().seconds()).exp() * (1.0 + REL);
            if decay >= 1.0 - 1e-6 {
                return false;
            }
            let d_max = l.delivered_swing(TimeInterval::from_seconds(wl)).volts() * (1.0 + REL);
            b_star[i] = d_max * decay / (1.0 - decay);
            peak_max[i] = (b_star[i] + d_max).min(l.drive_level.volts());
        }
    }
    (0..n).all(|i| b_star[i] * (1.0 + REL) < stages[i].sense_threshold.volts() * (1.0 - 1e-6))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::prbs::Prbs;
    use srlr_core::SrlrDesign;
    use srlr_tech::{GlobalVariation, MonteCarlo, Technology};
    use srlr_units::DataRate;

    /// Exhaustive-ish stress check mirroring the Monte Carlo trial.
    fn passes_stress(link: &SrlrLink, seed: u64, trial: u64) -> bool {
        let patterns: [&[bool]; 3] = [
            &[true, false, true, false, true, false, true, false],
            &[true, true, true, true, false, true, true, true, true, false],
            &[true; 16],
        ];
        patterns.iter().all(|p| link.transmits_cleanly(p))
            && link.transmits_cleanly(&Prbs::prbs15_for_stream(seed, trial).take_bits(256))
    }

    #[test]
    fn certificate_is_sound_across_dice_and_swings() {
        // The contract that matters: certified ⇒ the exact evaluator
        // agrees, across failing (300 mV), marginal (400 mV) and healthy
        // (500 mV) operating points.
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let mc = MonteCarlo::new(&tech, 2013);
        let config = LinkConfig::paper_default();
        let mut certified_any = false;
        for mv in [300.0, 400.0, 500.0] {
            let d = design.with_nominal_swing(srlr_units::Voltage::from_millivolts(mv));
            for trial in 0..60 {
                let mut die = mc.die(trial);
                let var = die.global_variation();
                let link = SrlrLink::on_die_with_mismatch(&tech, &d, config, &var, &mut die);
                if link.robustly_clean() {
                    certified_any = true;
                    assert!(
                        passes_stress(&link, 2013, trial),
                        "unsound certificate at {mv} mV, trial {trial}"
                    );
                }
            }
        }
        assert!(certified_any, "healthy dice must be certifiable");
    }

    #[test]
    fn nominal_paper_link_is_certified() {
        let link = SrlrLink::paper_test_chip(&Technology::soi45());
        assert!(link.robustly_clean());
    }

    #[test]
    fn absurd_rate_is_not_certified() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let config =
            LinkConfig::paper_default().with_data_rate(DataRate::from_gigabits_per_second(12.0));
        let link = SrlrLink::on_die(&tech, &design, config, &GlobalVariation::nominal());
        assert!(!link.robustly_clean());
    }

    #[test]
    fn single_stage_link_certifies() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let config = LinkConfig {
            stages: 1,
            ..LinkConfig::paper_default()
        };
        let link = SrlrLink::on_die(&tech, &design, config, &GlobalVariation::nominal());
        assert!(link.robustly_clean());
        assert!(link.transmits_cleanly(&[true, true, false, true]));
    }
}
