//! Bit-error-rate measurement and the maximum-data-rate search.
//!
//! The test chip's measurement circuit transmits on-chip PRBS data,
//! compares at the far end and counts errors; BER < 1e-9 was established
//! by observing zero errors over more than 1e9 bits. [`BerTester`] is that
//! protocol; since a zero-error run only *bounds* the BER, reports carry a
//! Wilson-score upper bound alongside the point estimate.

use crate::link::{LinkConfig, SrlrLink};
use crate::prbs::Prbs;
use srlr_core::SrlrDesign;
use srlr_tech::{GlobalVariation, Technology};
use srlr_units::{DataRate, Energy, EnergyPerBit};

/// The result of one BER run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerReport {
    /// Bits transmitted.
    pub bits: usize,
    /// Bits received in error.
    pub errors: usize,
    /// Total dynamic energy of the run.
    pub energy: Energy,
    /// Data rate of the run.
    pub data_rate: DataRate,
}

impl BerReport {
    /// Point estimate of the BER.
    ///
    /// # Panics
    ///
    /// Panics if the run had zero bits.
    // srlr-lint: allow(raw-f64-api, reason = "bit-error ratio is a dimensionless probability")
    pub fn ber(&self) -> f64 {
        assert!(self.bits > 0, "BER of an empty run");
        self.errors as f64 / self.bits as f64
    }

    /// Wilson-score 95 % upper bound on the BER — the honest claim after
    /// a zero-error run.
    // srlr-lint: allow(raw-f64-api, reason = "bit-error ratio is a dimensionless probability")
    pub fn ber_upper_bound(&self) -> f64 {
        srlr_tech::montecarlo::ErrorProbability {
            failures: self.errors,
            trials: self.bits,
        }
        .upper_bound_95()
    }

    /// Measured energy per transmitted bit.
    pub fn energy_per_bit(&self) -> EnergyPerBit {
        EnergyPerBit::from_joules_per_bit(self.energy.joules() / self.bits as f64)
    }

    /// `true` when the run saw no errors.
    pub fn error_free(&self) -> bool {
        self.errors == 0
    }
}

impl core::fmt::Display for BerReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} errors / {} bits at {} (BER <= {:.2e})",
            self.errors,
            self.bits,
            self.data_rate,
            self.ber_upper_bound()
        )
    }
}

/// PRBS-driven BER measurement over an [`SrlrLink`].
#[derive(Debug, Clone)]
pub struct BerTester {
    prbs: Prbs,
}

impl BerTester {
    /// A tester drawing stimulus from the given PRBS generator.
    pub fn new(prbs: Prbs) -> Self {
        Self { prbs }
    }

    /// The default tester: PRBS-15 (long enough to exercise every run
    /// length that matters at link time constants).
    pub fn prbs15() -> Self {
        Self::new(Prbs::prbs15())
    }

    /// Transmits `bits` bits through `link` and reports.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn run(&mut self, link: &SrlrLink, bits: usize) -> BerReport {
        assert!(bits > 0, "need at least one bit");
        let tx = self.prbs.take_bits(bits);
        let outcome = link.transmit(&tx);
        let errors = tx
            .iter()
            .zip(&outcome.received)
            .filter(|(a, b)| a != b)
            .count();
        BerReport {
            bits,
            errors,
            energy: outcome.energy,
            data_rate: link.config().data_rate,
        }
    }
}

/// Stress patterns used by the max-rate search: the worst cases for
/// pulse-width drift (`1010`), ISI accumulation (`11110`, all-ones) and
/// general traffic (PRBS).
fn stress_patterns(prbs_bits: usize) -> Vec<Vec<bool>> {
    let mut patterns = vec![
        [true, false].repeat(64),
        [true, true, true, true, false].repeat(26),
        vec![true; 128],
    ];
    let mut gen = Prbs::prbs15();
    patterns.push(gen.take_bits(prbs_bits));
    patterns
}

/// Finds the highest data rate (to `resolution`) at which a link of
/// `design` on die `var` transmits every stress pattern error-free.
/// Returns `None` if even `lo` fails.
///
/// # Panics
///
/// Panics if the bracket or resolution is non-positive or inverted.
pub fn max_data_rate(
    tech: &Technology,
    design: &SrlrDesign,
    base: LinkConfig,
    var: &GlobalVariation,
    lo: DataRate,
    hi: DataRate,
    resolution: DataRate,
) -> Option<DataRate> {
    let (lo_gbps, hi_gbps, resolution_gbps) = (
        lo.gigabits_per_second(),
        hi.gigabits_per_second(),
        resolution.gigabits_per_second(),
    );
    assert!(
        lo_gbps > 0.0 && hi_gbps > lo_gbps && resolution_gbps > 0.0,
        "invalid rate bracket"
    );
    let passes = |gbps: f64| {
        let config = base.with_data_rate(DataRate::from_gigabits_per_second(gbps));
        let link = SrlrLink::on_die(tech, design, config, var);
        stress_patterns(2_048)
            .iter()
            .all(|p| link.transmit(p).received == *p)
    };
    if !passes(lo_gbps) {
        return None;
    }
    let (mut lo, mut hi) = (lo_gbps, hi_gbps);
    if passes(hi) {
        return Some(DataRate::from_gigabits_per_second(hi));
    }
    while hi - lo > resolution_gbps {
        let mid = 0.5 * (lo + hi);
        if passes(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(DataRate::from_gigabits_per_second(lo))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::soi45()
    }

    #[test]
    fn nominal_link_is_error_free_at_paper_rate() {
        let link = SrlrLink::paper_test_chip(&tech());
        let report = BerTester::prbs15().run(&link, 30_000);
        assert!(report.error_free(), "{report}");
        assert!(report.ber() == 0.0);
        assert!(report.ber_upper_bound() < 2e-4);
    }

    #[test]
    fn max_rate_is_near_the_paper() {
        // The paper measures 4.1 Gb/s; the calibrated model should land in
        // the same few-Gb/s regime.
        let t = tech();
        let design = SrlrDesign::paper_proposed(&t);
        let rate = max_data_rate(
            &t,
            &design,
            LinkConfig::paper_default(),
            &GlobalVariation::nominal(),
            DataRate::from_gigabits_per_second(1.0),
            DataRate::from_gigabits_per_second(10.0),
            DataRate::from_gigabits_per_second(0.1),
        )
        .expect("link must work at 1 Gb/s");
        let gbps = rate.gigabits_per_second();
        assert!(gbps > 2.5 && gbps < 7.0, "max rate {gbps} Gb/s");
    }

    #[test]
    fn max_rate_none_when_even_low_rate_fails() {
        let t = tech();
        // A fixed-bias die at the slow corner cannot signal at all.
        let design = SrlrDesign::paper_proposed(&t).with_adaptive_swing(false);
        let ss = srlr_tech::ProcessCorner::SlowSlow.variation(&t);
        let rate = max_data_rate(
            &t,
            &design,
            LinkConfig::paper_default(),
            &ss,
            DataRate::from_gigabits_per_second(1.0),
            DataRate::from_gigabits_per_second(6.0),
            DataRate::from_gigabits_per_second(0.25),
        );
        assert!(rate.is_none());
    }

    #[test]
    fn report_energy_per_bit_positive() {
        let link = SrlrLink::paper_test_chip(&tech());
        let report = BerTester::prbs15().run(&link, 5_000);
        assert!(report.energy_per_bit().femtojoules_per_bit() > 0.0);
    }

    #[test]
    fn report_display_mentions_errors_and_rate() {
        let link = SrlrLink::paper_test_chip(&tech());
        let report = link.ber_quick_check(1_000, 1);
        let s = report.to_string();
        assert!(s.contains("errors"));
        assert!(s.contains("Gb/s"));
    }

    #[test]
    #[should_panic(expected = "invalid rate bracket")]
    fn inverted_bracket_rejected() {
        let t = tech();
        let _ = max_data_rate(
            &t,
            &SrlrDesign::paper_proposed(&t),
            LinkConfig::paper_default(),
            &GlobalVariation::nominal(),
            DataRate::from_gigabits_per_second(5.0),
            DataRate::from_gigabits_per_second(2.0),
            DataRate::from_gigabits_per_second(0.1),
        );
    }
}
