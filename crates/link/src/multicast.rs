//! Free 1-to-N multicast over an SRLR link (Sec. II).
//!
//! Every intermediate SRLR regenerates a full-swing pulse at its output,
//! so any stage along the path can sample the passing data at no extra
//! transmission energy — unlike equalized point-to-point links, where
//! reaching N destinations costs N separate traversals.

use crate::link::{SrlrLink, TransmitOutcome};
use srlr_core::PulseState;
use srlr_units::Energy;

/// An SRLR link with multicast taps at chosen stages.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticastLink {
    link: SrlrLink,
    taps: Vec<usize>,
}

impl MulticastLink {
    /// Wraps a link with taps at the given (0-based, strictly increasing)
    /// stage indices. A tap at stage `i` samples that stage's full-swing
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty, not strictly increasing, or indexes past
    /// the last stage.
    pub fn new(link: SrlrLink, taps: Vec<usize>) -> Self {
        assert!(!taps.is_empty(), "multicast needs at least one tap");
        for w in taps.windows(2) {
            assert!(w[1] > w[0], "taps must be strictly increasing");
        }
        let n = link.chain().len();
        assert!(taps.iter().all(|&t| t < n), "tap index out of range");
        Self { link, taps }
    }

    /// The underlying link.
    pub fn link(&self) -> &SrlrLink {
        &self.link
    }

    /// Tap positions.
    pub fn taps(&self) -> &[usize] {
        &self.taps
    }

    /// Whether a single nominal pulse reaches every tap (each tap sees the
    /// pulse that its stage regenerated).
    pub fn all_taps_reached(&self) -> bool {
        let trace = self
            .link
            .chain()
            .propagate_trace(self.link.chain().nominal_input_pulse());
        self.taps.iter().all(|&t| trace[t + 1].is_valid())
    }

    /// Transmits `bits` once down the shared path; every tap receives the
    /// same stream (validity checked via [`Self::all_taps_reached`]).
    pub fn transmit(&self, bits: &[bool]) -> TransmitOutcome {
        self.link.transmit(bits)
    }

    /// Energy of delivering one pulse to *all* taps using the inherent
    /// multicast: one traversal to the furthest tap.
    pub fn multicast_pulse_energy(&self) -> Energy {
        // `new` guarantees at least one tap; no taps cost no energy.
        let Some(&furthest) = self.taps.last() else {
            return Energy::zero();
        };
        self.prefix_pulse_energy(furthest)
    }

    /// Energy of delivering one pulse to all taps with separate unicasts
    /// (what a point-to-point link technology would pay).
    pub fn unicast_clone_pulse_energy(&self) -> Energy {
        self.taps.iter().map(|&t| self.prefix_pulse_energy(t)).sum()
    }

    /// The multicast saving factor: unicast-clone energy over multicast
    /// energy (≥ 1, grows with tap count).
    // srlr-lint: allow(raw-f64-api, reason = "energy saving is a dimensionless fraction")
    pub fn multicast_saving(&self) -> f64 {
        self.unicast_clone_pulse_energy() / self.multicast_pulse_energy()
    }

    /// Energy of one nominal pulse traversing stages `0..=last`.
    fn prefix_pulse_energy(&self, last: usize) -> Energy {
        let chain = self.link.chain();
        let mut p: PulseState = chain.nominal_input_pulse();
        let mut energy = Energy::zero();
        for stage in &chain.stages()[..=last] {
            if !p.is_valid() {
                break;
            }
            let out = stage.process(p);
            energy += out.energy;
            p = out.output;
        }
        energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlr_tech::Technology;

    fn mlink(taps: Vec<usize>) -> MulticastLink {
        MulticastLink::new(SrlrLink::paper_test_chip(&Technology::soi45()), taps)
    }

    #[test]
    fn all_intermediate_taps_see_the_pulse() {
        // Fig. 2's example: data to the 10th SRLR is sampled at the 5th,
        // 6th, 7th, ... along the way.
        let m = mlink(vec![4, 5, 6, 9]);
        assert!(m.all_taps_reached());
    }

    #[test]
    fn multicast_energy_equals_single_traversal() {
        let unicast_to_end = mlink(vec![9]).multicast_pulse_energy();
        let multicast = mlink(vec![2, 5, 9]).multicast_pulse_energy();
        assert_eq!(multicast, unicast_to_end, "multicast must be free");
    }

    #[test]
    fn saving_grows_with_tap_count() {
        let two = mlink(vec![4, 9]).multicast_saving();
        let four = mlink(vec![2, 4, 6, 9]).multicast_saving();
        assert!(two > 1.0);
        assert!(four > two);
    }

    #[test]
    fn transmit_delivers_shared_stream() {
        let m = mlink(vec![3, 7]);
        let bits = [true, false, true, true, false];
        assert_eq!(m.transmit(&bits).received, bits);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_taps_rejected() {
        let _ = mlink(vec![5, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tap_rejected() {
        let _ = mlink(vec![10]);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_rejected() {
        let _ = mlink(vec![]);
    }
}
