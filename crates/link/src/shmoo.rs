//! Shmoo characterisation: the pass/fail map over (data rate, swing) that
//! silicon bring-up produces on day one.
//!
//! Each cell of the map builds the link at that design point and runs the
//! stress patterns; the rendered plot makes the operating region and its
//! boundaries (ISI ceiling, sensitivity floor) visible at a glance.

use crate::engine;
use crate::link::{LinkConfig, SrlrLink};
use crate::lockstep::Lockstep;
use crate::prbs::Prbs;
use srlr_core::SrlrDesign;
use srlr_tech::{GlobalVariation, Technology};
use srlr_units::{DataRate, Voltage};

/// The pass/fail map.
#[derive(Debug, Clone, PartialEq)]
pub struct ShmooPlot {
    /// Swing axis (rows, ascending).
    pub swings: Vec<Voltage>,
    /// Rate axis (columns, ascending).
    pub rates: Vec<DataRate>,
    /// `pass[row][col]`.
    pub pass: Vec<Vec<bool>>,
}

impl ShmooPlot {
    /// Characterises `design` over the given axes on one die.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty.
    pub fn measure(
        tech: &Technology,
        design: &SrlrDesign,
        var: &GlobalVariation,
        swings: Vec<Voltage>,
        rates: Vec<DataRate>,
        prbs_bits: usize,
    ) -> Self {
        Self::measure_with_threads(tech, design, var, swings, rates, prbs_bits, None)
    }

    /// [`ShmooPlot::measure`] with an explicit worker-thread count
    /// (`None` defers to `SRLR_THREADS` / the machine). Cells are
    /// independent design points, so the map is evaluated as one flat
    /// parallel workload; the result is identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty.
    #[allow(clippy::too_many_arguments)]
    pub fn measure_with_threads(
        tech: &Technology,
        design: &SrlrDesign,
        var: &GlobalVariation,
        swings: Vec<Voltage>,
        rates: Vec<DataRate>,
        prbs_bits: usize,
        threads: Option<usize>,
    ) -> Self {
        assert!(
            !swings.is_empty() && !rates.is_empty(),
            "shmoo axes must be non-empty"
        );
        let mut stress: Vec<Vec<bool>> = vec![
            [true, false].repeat(32),
            [true, true, true, true, false].repeat(13),
            vec![true; 64],
        ];
        stress.push(Prbs::prbs15().take_bits(prbs_bits));

        // Per-row design elaboration is invariant across the rate axis:
        // hoist it so each design is swing-adjusted once, not per cell.
        let row_designs: Vec<SrlrDesign> = swings
            .iter()
            .map(|&swing| design.with_nominal_swing(swing))
            .collect();

        // Cells are evaluated in certificate-screened batches: proven
        // clean dies skip simulation, the rest run the stress patterns
        // in one lockstep DieBatch per work item. Identical verdicts to
        // per-cell `transmits_cleanly` (the batched-engine contract).
        const BATCH_WIDTH: usize = 32;
        let cols = rates.len();
        let total = swings.len() * cols;
        let n_threads = engine::resolve_threads(threads);
        let n_batches = total.div_ceil(BATCH_WIDTH);
        let chunks = engine::par_map_indexed(n_batches, n_threads, |b| {
            let first = b * BATCH_WIDTH;
            let count = BATCH_WIDTH.min(total - first);
            let mut pass = vec![false; count];
            let mut lanes: Vec<(usize, SrlrLink)> = Vec::new();
            for (k, slot) in pass.iter_mut().enumerate() {
                let i = first + k;
                let (row, col) = (i / cols, i % cols);
                let config = LinkConfig::paper_default().with_data_rate(rates[col]);
                let link = SrlrLink::on_die(tech, &row_designs[row], config, var);
                if link.robustly_clean() {
                    *slot = true;
                } else {
                    lanes.push((k, link));
                }
            }
            if !lanes.is_empty() {
                let mut run = Lockstep::new(&lanes);
                let mut prof = srlr_telemetry::Profiler::disabled();
                for p in &stress {
                    run.check_shared(p, &mut prof);
                }
                for (lane, (k, _)) in lanes.iter().enumerate() {
                    pass[*k] = run.verdicts()[lane];
                }
            }
            pass
        });
        let cells = chunks.concat();
        let pass = cells.chunks(cols).map(<[bool]>::to_vec).collect();
        Self {
            swings,
            rates,
            pass,
        }
    }

    /// Fraction of passing cells.
    // srlr-lint: allow(raw-f64-api, reason = "pass fraction is dimensionless")
    pub fn pass_fraction(&self) -> f64 {
        let total = self.swings.len() * self.rates.len();
        let passing: usize = self
            .pass
            .iter()
            .map(|r| r.iter().filter(|&&b| b).count())
            .sum();
        passing as f64 / total as f64
    }

    /// Whether a specific cell passes.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn passes(&self, swing_idx: usize, rate_idx: usize) -> bool {
        self.pass[swing_idx][rate_idx]
    }

    /// Renders the classic shmoo: swing rows (descending), rate columns,
    /// `+` pass / `.` fail.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (row, &swing) in self.swings.iter().enumerate().rev() {
            out.push_str(&format!("{:>7.0} mV |", swing.millivolts()));
            for cell in &self.pass[row] {
                out.push(if *cell { '+' } else { '.' });
            }
            out.push('\n');
        }
        out.push_str(&format!("{:>10} +", ""));
        out.push_str(&"-".repeat(self.rates.len()));
        out.push('\n');
        out.push_str(&format!(
            "{:>12}{:.1} .. {:.1} Gb/s\n",
            "",
            self.rates[0].gigabits_per_second(),
            self.rates[self.rates.len() - 1].gigabits_per_second()
        ));
        out
    }
}

/// The paper design's default shmoo axes: swings 250–600 mV, rates
/// 1–8 Gb/s.
pub fn paper_shmoo(tech: &Technology, prbs_bits: usize) -> ShmooPlot {
    paper_shmoo_with_threads(tech, prbs_bits, None)
}

/// [`paper_shmoo`] with an explicit worker-thread count (`None` defers
/// to `SRLR_THREADS` / the machine).
pub fn paper_shmoo_with_threads(
    tech: &Technology,
    prbs_bits: usize,
    threads: Option<usize>,
) -> ShmooPlot {
    let design = SrlrDesign::paper_proposed(tech);
    let swings: Vec<Voltage> = (5..=12)
        .map(|i| Voltage::from_millivolts(f64::from(i) * 50.0))
        .collect();
    let rates: Vec<DataRate> = (2..=16)
        .map(|i| DataRate::from_gigabits_per_second(f64::from(i) * 0.5))
        .collect();
    ShmooPlot::measure_with_threads(
        tech,
        &design,
        &GlobalVariation::nominal(),
        swings,
        rates,
        prbs_bits,
        threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plot() -> ShmooPlot {
        paper_shmoo(&Technology::soi45(), 256)
    }

    #[test]
    fn paper_point_is_inside_the_passing_region() {
        let p = plot();
        // swing 450 mV = row index 4 (250 + 4*50); rate 4.0 Gb/s = col 6.
        let row = p
            .swings
            .iter()
            .position(|s| (s.millivolts() - 450.0).abs() < 1.0)
            .expect("450 mV on the axis");
        let col = p
            .rates
            .iter()
            .position(|r| (r.gigabits_per_second() - 4.0).abs() < 0.01)
            .expect("4 Gb/s on the axis");
        assert!(p.passes(row, col), "\n{}", p.render());
    }

    #[test]
    fn low_swing_floor_fails() {
        let p = plot();
        assert!(!p.passes(0, 0), "250 mV cannot signal:\n{}", p.render());
    }

    #[test]
    fn extreme_rate_ceiling_fails() {
        let p = plot();
        let last_rate = p.rates.len() - 1;
        // 8 Gb/s is beyond the cliff at every swing.
        assert!(
            (0..p.swings.len()).all(|r| !p.passes(r, last_rate)),
            "\n{}",
            p.render()
        );
    }

    #[test]
    fn passing_region_is_rate_monotone_per_swing() {
        // Within one swing row, once the rate fails it stays failed.
        let p = plot();
        for row in 0..p.swings.len() {
            let mut failed = false;
            for col in 0..p.rates.len() {
                if !p.passes(row, col) {
                    failed = true;
                } else {
                    assert!(!failed, "pass after fail at row {row}:\n{}", p.render());
                }
            }
        }
    }

    #[test]
    fn pass_fraction_is_sane() {
        let f = plot().pass_fraction();
        assert!(f > 0.1 && f < 0.9, "pass fraction {f}");
    }

    #[test]
    fn parallel_shmoo_matches_serial() {
        let tech = Technology::soi45();
        let serial = paper_shmoo_with_threads(&tech, 128, Some(1));
        for threads in [2usize, 8] {
            assert_eq!(
                serial,
                paper_shmoo_with_threads(&tech, 128, Some(threads)),
                "threads={threads} diverged from the serial shmoo"
            );
        }
    }

    #[test]
    fn batched_shmoo_matches_per_cell_scalar_transmission() {
        // Every cell of the batched map must equal the straightforward
        // one-link-at-a-time stress check it replaced.
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let var = GlobalVariation::nominal();
        let prbs_bits = 64;
        let p = paper_shmoo(&tech, prbs_bits);
        let mut stress: Vec<Vec<bool>> = vec![
            [true, false].repeat(32),
            [true, true, true, true, false].repeat(13),
            vec![true; 64],
        ];
        stress.push(Prbs::prbs15().take_bits(prbs_bits));
        for (row, &swing) in p.swings.iter().enumerate() {
            let d = design.with_nominal_swing(swing);
            for (col, &rate) in p.rates.iter().enumerate() {
                let config = LinkConfig::paper_default().with_data_rate(rate);
                let link = SrlrLink::on_die(&tech, &d, config, &var);
                let scalar = stress.iter().all(|s| link.transmits_cleanly(s));
                assert_eq!(
                    p.passes(row, col),
                    scalar,
                    "cell ({row}, {col}) diverged from the scalar stress check"
                );
            }
        }
    }

    #[test]
    fn render_shape() {
        let p = plot();
        let text = p.render();
        assert!(text.contains('+') && text.contains('.'));
        assert_eq!(text.lines().count(), p.swings.len() + 2);
    }

    #[test]
    #[should_panic(expected = "axes must be non-empty")]
    fn empty_axes_rejected() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let _ = ShmooPlot::measure(
            &tech,
            &design,
            &GlobalVariation::nominal(),
            vec![],
            vec![DataRate::from_gigabits_per_second(4.0)],
            64,
        );
    }
}
