//! A reusable bit-error-rate model the network layer can consume.
//!
//! [`crate::ber::BerTester`] measures a single link; the mesh simulator
//! (`srlr-noc`) wants one number per *design point*: "what BER should my
//! fault injector run at for this swing?". [`LinkErrorModel`] is that
//! bridge. It aggregates bit errors over a population of Monte Carlo
//! dice — global variation plus per-stage mismatch, the same sampling as
//! [`crate::montecarlo::McExperiment`] — and reports an *effective* BER:
//! the point estimate when errors were observed, and the Wilson-score
//! 95 % upper bound when the run was error-free (an honest, conservative
//! stand-in for "we saw nothing").
//!
//! Like every experiment in this crate, measurement is a pure function
//! of `(seed, trial)` and fans out over the deterministic parallel
//! engine, so results are bit-identical at any thread count.

use crate::ber::BerReport;
use crate::engine;
use crate::link::{LinkConfig, SrlrLink};
use crate::prbs::Prbs;
use srlr_core::SrlrDesign;
use srlr_tech::montecarlo::ErrorProbability;
use srlr_tech::{MonteCarlo, Technology};

/// Aggregated bit-error statistics of a link design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkErrorModel {
    /// Total bits transmitted across all sampled dice.
    pub bits: usize,
    /// Total bit errors observed.
    pub errors: usize,
}

impl LinkErrorModel {
    /// Wraps the counts of a single [`BerReport`].
    pub fn from_report(report: &BerReport) -> Self {
        Self {
            bits: report.bits,
            errors: report.errors,
        }
    }

    /// Point estimate of the BER.
    ///
    /// # Panics
    ///
    /// Panics if the model holds zero bits.
    // srlr-lint: allow(raw-f64-api, reason = "bit-error ratio is a dimensionless probability")
    pub fn ber(&self) -> f64 {
        assert!(self.bits > 0, "BER of an empty measurement");
        self.errors as f64 / self.bits as f64
    }

    /// Wilson-score 95 % upper bound on the BER.
    // srlr-lint: allow(raw-f64-api, reason = "bit-error ratio is a dimensionless probability")
    pub fn ber_upper_bound(&self) -> f64 {
        ErrorProbability {
            failures: self.errors,
            trials: self.bits,
        }
        .upper_bound_95()
    }

    /// `true` when no errors were observed — [`Self::effective_ber`] is
    /// then a bound, not an estimate.
    pub fn is_bounded(&self) -> bool {
        self.errors == 0
    }

    /// The BER a downstream fault injector should run at: the point
    /// estimate when errors were observed, otherwise the Wilson upper
    /// bound (a zero-error run proves nothing about zero).
    // srlr-lint: allow(raw-f64-api, reason = "bit-error ratio is a dimensionless probability")
    pub fn effective_ber(&self) -> f64 {
        if self.is_bounded() {
            self.ber_upper_bound()
        } else {
            self.ber()
        }
    }

    /// Measures a design point over `dice` Monte Carlo dice (global
    /// variation + per-stage mismatch), transmitting `bits_per_die`
    /// PRBS-15 bits on each. `threads: None` defers to `SRLR_THREADS` /
    /// the machine; results are bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `dice` or `bits_per_die` is zero.
    pub fn measure(
        tech: &Technology,
        design: &SrlrDesign,
        config: LinkConfig,
        dice: usize,
        bits_per_die: usize,
        seed: u64,
        threads: Option<usize>,
    ) -> Self {
        assert!(dice > 0, "need at least one die");
        assert!(bits_per_die > 0, "need at least one bit per die");
        let mc = MonteCarlo::new(tech, seed);
        let workers = engine::resolve_threads(threads);
        let errors_per_die = engine::par_map_indexed(dice, workers, |trial| {
            let mut die = mc.die(trial as u64);
            let var = die.global_variation();
            let link = SrlrLink::on_die_with_mismatch(tech, design, config, &var, &mut die);
            let tx = Prbs::prbs15_for_stream(seed, trial as u64).take_bits(bits_per_die);
            let outcome = link.transmit(&tx);
            tx.iter()
                .zip(&outcome.received)
                .filter(|(a, b)| a != b)
                .count()
        });
        Self {
            bits: dice * bits_per_die,
            errors: errors_per_die.iter().sum(),
        }
    }
}

impl core::fmt::Display for LinkErrorModel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_bounded() {
            write!(
                f,
                "0 errors / {} bits (BER <= {:.2e}, Wilson 95 %)",
                self.bits,
                self.ber_upper_bound()
            )
        } else {
            write!(
                f,
                "{} errors / {} bits (BER {:.2e})",
                self.errors,
                self.bits,
                self.ber()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlr_units::Voltage;

    fn tech() -> Technology {
        Technology::soi45()
    }

    #[test]
    fn zero_error_model_reports_the_wilson_bound() {
        let m = LinkErrorModel {
            bits: 1_000_000,
            errors: 0,
        };
        assert!(m.is_bounded());
        assert_eq!(m.ber(), 0.0);
        assert!(m.effective_ber() > 0.0, "bound must be conservative");
        assert_eq!(m.effective_ber(), m.ber_upper_bound());
        assert!(m.to_string().contains("Wilson"));
    }

    #[test]
    fn nominal_population_ber_is_small() {
        // A mismatch population includes a few marginal dice, so the
        // aggregate BER is rarely exactly zero — but it must be small,
        // and far below a starved-swing design's.
        let t = tech();
        let m = LinkErrorModel::measure(
            &t,
            &SrlrDesign::paper_proposed(&t),
            LinkConfig::paper_default(),
            20,
            400,
            7,
            Some(1),
        );
        assert_eq!(m.bits, 8000);
        assert!(m.effective_ber() < 0.05, "{m}");
    }

    #[test]
    fn starved_swing_produces_real_errors() {
        let t = tech();
        let design = SrlrDesign::paper_proposed(&t)
            .with_adaptive_swing(false)
            .with_nominal_swing(Voltage::from_millivolts(80.0));
        let m = LinkErrorModel::measure(
            &t,
            &design,
            LinkConfig::paper_default(),
            20,
            400,
            7,
            Some(1),
        );
        assert!(m.errors > 0, "80 mV swing must corrupt bits: {m}");
        assert_eq!(m.effective_ber(), m.ber());
        assert!(!m.is_bounded());
    }

    #[test]
    fn measurement_is_thread_count_invariant() {
        let t = tech();
        let design = SrlrDesign::paper_proposed(&t);
        let run = |threads: usize| {
            LinkErrorModel::measure(
                &t,
                &design,
                LinkConfig::paper_default(),
                24,
                200,
                11,
                Some(threads),
            )
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn from_report_round_trips_counts() {
        let link = SrlrLink::paper_test_chip(&tech());
        let report = crate::ber::BerTester::prbs15().run(&link, 2_000);
        let m = LinkErrorModel::from_report(&report);
        assert_eq!(m.bits, 2_000);
        assert_eq!(m.errors, report.errors);
        assert_eq!(m.ber_upper_bound(), report.ber_upper_bound());
    }

    #[test]
    #[should_panic(expected = "at least one die")]
    fn zero_dice_rejected() {
        let t = tech();
        let _ = LinkErrorModel::measure(
            &t,
            &SrlrDesign::paper_proposed(&t),
            LinkConfig::paper_default(),
            0,
            100,
            1,
            Some(1),
        );
    }
}
