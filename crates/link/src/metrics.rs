//! The paper's headline metrics for a link: data rate, bandwidth density,
//! per-bit-per-length energy and total power.

use crate::link::SrlrLink;
use srlr_core::StageEnergyModel;
use srlr_units::{BandwidthDensity, DataRate, EnergyPerBitLength, Length, Power};

/// Measured metrics of one link design point (one row of Table I, one
/// point of Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkMetrics {
    /// Signaling data rate.
    pub data_rate: DataRate,
    /// Wire pitch (width + space).
    pub pitch: Length,
    /// Link length.
    pub length: Length,
    /// Bandwidth density: data rate per unit pitch.
    pub bandwidth_density: BandwidthDensity,
    /// Link-traversal energy, normalised per bit and unit length (PRBS
    /// ones density ½).
    pub energy: EnergyPerBitLength,
    /// Average link power at the data rate.
    pub power: Power,
}

impl LinkMetrics {
    /// Measures a link at its configured rate with PRBS traffic, assuming
    /// the workspace default wire pitch. Use [`Self::measure_with_pitch`]
    /// when the design swept the wire geometry.
    pub fn measure(link: &SrlrLink) -> Self {
        Self::measure_with_pitch(link, srlr_tech::WireGeometry::paper_default().pitch())
    }

    /// Measures a link, supplying the wire pitch explicitly (needed when
    /// the design used a non-default geometry, e.g. the Fig. 8 spacing
    /// sweep).
    ///
    /// # Panics
    ///
    /// Panics if the pitch is not strictly positive or the link fails at
    /// its nominal operating point.
    pub fn measure_with_pitch(link: &SrlrLink, pitch: Length) -> Self {
        assert!(pitch.meters() > 0.0, "pitch must be positive");
        let model = StageEnergyModel::from_chain(link.chain());
        let rate = link.config().data_rate;
        let energy = model.energy_per_bit_per_length(0.5);
        Self {
            data_rate: rate,
            pitch,
            length: link.chain().total_length(),
            bandwidth_density: rate / pitch,
            energy,
            power: model.link_power(rate, 0.5),
        }
    }
}

impl core::fmt::Display for LinkMetrics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:.2} Gb/s, {:.2} Gb/s/um, {:.1} fJ/bit/mm, {:.2} mW over {:.0} mm",
            self.data_rate.gigabits_per_second(),
            self.bandwidth_density.gigabits_per_second_per_micrometer(),
            self.energy.femtojoules_per_bit_per_millimeter(),
            self.power.milliwatts(),
            self.length.millimeters(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::SrlrLink;
    use srlr_tech::Technology;

    fn metrics() -> LinkMetrics {
        SrlrLink::paper_test_chip(&Technology::soi45()).metrics()
    }

    #[test]
    fn headline_numbers_land_in_the_paper_band() {
        let m = metrics();
        // Paper: 4.1 Gb/s, 6.83 Gb/s/um, 40.4 fJ/bit/mm, 1.66 mW.
        assert!((m.data_rate.gigabits_per_second() - 4.1).abs() < 1e-9);
        let bw = m.bandwidth_density.gigabits_per_second_per_micrometer();
        assert!((bw - 6.83).abs() < 0.01, "bandwidth density {bw}");
        let e = m.energy.femtojoules_per_bit_per_millimeter();
        assert!(e > 25.0 && e < 60.0, "energy {e} fJ/bit/mm");
        let p = m.power.milliwatts();
        assert!(p > 1.0 && p < 2.6, "power {p} mW");
    }

    #[test]
    fn power_is_consistent_with_energy_and_rate() {
        // fJ/bit/mm * mm * Gb/s = 1e-15 J * 1e9 /s = 1e-6 W, i.e. 1e-3 mW.
        let m = metrics();
        let expect_mw = m.energy.femtojoules_per_bit_per_millimeter()
            * m.length.millimeters()
            * m.data_rate.gigabits_per_second()
            * 1e-3;
        assert!(
            (m.power.milliwatts() - expect_mw).abs() < 0.01,
            "power {} mW vs derived {expect_mw} mW",
            m.power.milliwatts(),
        );
    }

    #[test]
    fn display_mentions_all_metrics() {
        let s = metrics().to_string();
        assert!(s.contains("Gb/s"));
        assert!(s.contains("fJ/bit/mm"));
        assert!(s.contains("mW"));
    }
}
