//! The Fig. 6 experiment: Monte Carlo error probability of a 10 mm link
//! versus the design's swing voltage.
//!
//! Each trial samples one die (global variation) plus per-stage local
//! mismatch, builds the link, and transmits the stress patterns (worst
//! cases for drift and ISI, plus PRBS). A die that corrupts any bit
//! counts as a failure; the error probability is the failing fraction of
//! dice, exactly as the paper's 1000-run Monte Carlo reports it.
//!
//! Trials are evaluated by the deterministic parallel engine
//! ([`crate::engine`]): die `i` draws its mismatch from the counter-based
//! stream [`MonteCarlo::die`]`(i)` and its PRBS stimulus from
//! [`Prbs::prbs15_for_stream`]`(seed, i)`, so every trial is a pure
//! function of `(seed, i)` and the result is bit-identical at any thread
//! count.

use crate::engine;
use crate::link::{LinkConfig, SrlrLink};
use crate::prbs::Prbs;
use srlr_core::SrlrDesign;
use srlr_tech::montecarlo::ErrorProbability;
use srlr_tech::{MonteCarlo, Technology};
use srlr_units::Voltage;

/// The Sec. III-B deterministic worst-case stress patterns, shared by
/// every trial (hoisted out of the per-die hot loop).
const WORST_PATTERNS: [&[bool]; 3] = [
    &[true, false, true, false, true, false, true, false],
    // The Sec. III-B worst case.
    &[true, true, true, true, false, true, true, true, true, false],
    &[true; 16],
];

/// The Monte Carlo link-failure experiment.
#[derive(Debug, Clone)]
pub struct McExperiment<'a> {
    tech: &'a Technology,
    config: LinkConfig,
    /// Number of dice per evaluation (the paper uses 1000).
    pub runs: usize,
    /// RNG seed (same seed = same dice across designs, a paired
    /// comparison).
    pub seed: u64,
    /// PRBS bits per die in addition to the deterministic worst cases.
    pub prbs_bits: usize,
    /// Worker threads: `Some(n)` forces `n`, `None` defers to the
    /// `SRLR_THREADS` environment variable (and ultimately the machine).
    pub threads: Option<usize>,
}

impl<'a> McExperiment<'a> {
    /// A paper-sized experiment: 1000 dice.
    pub fn paper_default(tech: &'a Technology) -> Self {
        Self {
            tech,
            config: LinkConfig::paper_default(),
            runs: 1000,
            seed: 2013,
            prbs_bits: 256,
            threads: None,
        }
    }

    /// Overrides the number of dice (smaller for quick tests).
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    #[must_use]
    pub fn with_runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "need at least one run");
        self.runs = runs;
        self
    }

    /// Forces the worker-thread count (`1` = serial). `None` (the
    /// default) defers to `SRLR_THREADS` / the machine; results are
    /// identical either way.
    #[must_use]
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Whether die `trial` of this experiment, built for `design`,
    /// transmits all stress patterns without error.
    ///
    /// This is the per-trial unit of work: a pure function of
    /// `(self.seed, trial)`, independent of every other trial.
    fn trial_passes(&self, design: &SrlrDesign, mc: &MonteCarlo, trial: u64) -> bool {
        let mut die = mc.die(trial);
        let var = die.global_variation();
        let link = SrlrLink::on_die_with_mismatch(self.tech, design, self.config, &var, &mut die);
        for p in WORST_PATTERNS {
            if !link.transmits_cleanly(p) {
                return false;
            }
        }
        let bits = Prbs::prbs15_for_stream(self.seed, trial).take_bits(self.prbs_bits);
        link.transmits_cleanly(&bits)
    }

    /// Runs the experiment for one design, returning the error
    /// probability over the sampled dice.
    pub fn error_probability(&self, design: &SrlrDesign) -> ErrorProbability {
        let mc = MonteCarlo::new(self.tech, self.seed);
        let threads = engine::resolve_threads(self.threads);
        let failures = engine::par_count(self.runs, threads, |trial| {
            !self.trial_passes(design, &mc, trial as u64)
        });
        ErrorProbability {
            failures,
            trials: self.runs,
        }
    }

    /// The Fig. 6 sweep: error probability of a design across swing
    /// voltages.
    ///
    /// All `swings.len() * runs` dice are flattened into one parallel
    /// workload so small sweeps still saturate the worker pool.
    pub fn swing_sweep(
        &self,
        design: &SrlrDesign,
        swings: &[Voltage],
    ) -> Vec<(Voltage, ErrorProbability)> {
        let designs: Vec<SrlrDesign> = swings
            .iter()
            .map(|&s| design.with_nominal_swing(s))
            .collect();
        let mc = MonteCarlo::new(self.tech, self.seed);
        let threads = engine::resolve_threads(self.threads);
        let passes = engine::par_map_indexed(swings.len() * self.runs, threads, |i| {
            let (point, trial) = (i / self.runs, i % self.runs);
            self.trial_passes(&designs[point], &mc, trial as u64)
        });
        swings
            .iter()
            .zip(passes.chunks(self.runs))
            .map(|(&s, chunk)| {
                (
                    s,
                    ErrorProbability {
                        failures: chunk.iter().filter(|&&ok| !ok).count(),
                        trials: self.runs,
                    },
                )
            })
            .collect()
    }

    /// The paper's headline robustness claim: the immunity ratio between
    /// the straightforward and the proposed design at the fabrication
    /// swing (the paper reports ≈3.7x).
    ///
    /// Returns `(proposed, straightforward, ratio)`; the ratio is
    /// `straightforward / proposed` failure probabilities, `inf` when the
    /// proposed design never failed.
    pub fn immunity_ratio(&self) -> (ErrorProbability, ErrorProbability, f64) {
        let proposed = self.error_probability(&SrlrDesign::paper_proposed(self.tech));
        let straightforward = self.error_probability(&SrlrDesign::straightforward(self.tech));
        let ratio = if proposed.failures == 0 {
            f64::INFINITY
        } else {
            straightforward.estimate() / proposed.estimate()
        };
        (proposed, straightforward, ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_design_fails_rarely() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(200);
        let p = exp.error_probability(&SrlrDesign::paper_proposed(&tech));
        assert!(
            p.estimate() < 0.15,
            "proposed design failure probability too high: {p}"
        );
    }

    #[test]
    fn straightforward_fails_more_often_than_proposed() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(200);
        let (proposed, straightforward, ratio) = exp.immunity_ratio();
        assert!(
            straightforward.failures > proposed.failures,
            "proposed {proposed} vs straightforward {straightforward}"
        );
        assert!(ratio > 1.5, "immunity ratio {ratio} too small");
    }

    #[test]
    fn lower_swing_is_less_robust() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(150);
        let design = SrlrDesign::paper_proposed(&tech);
        let sweep = exp.swing_sweep(
            &design,
            &[
                Voltage::from_millivolts(300.0),
                Voltage::from_millivolts(450.0),
            ],
        );
        assert!(
            sweep[0].1.failures >= sweep[1].1.failures,
            "300 mV should fail at least as often as 450 mV: {:?}",
            sweep
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(60);
        let design = SrlrDesign::paper_proposed(&tech);
        assert_eq!(
            exp.error_probability(&design),
            exp.error_probability(&design)
        );
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        // The tentpole contract: the error probability over 200 dice is
        // identical at 1, 2, and 8 threads because each die is a pure
        // function of (seed, trial index).
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let base = McExperiment::paper_default(&tech).with_runs(200);
        let serial = base
            .clone()
            .with_threads(Some(1))
            .error_probability(&design);
        for threads in [2usize, 8] {
            let parallel = base
                .clone()
                .with_threads(Some(threads))
                .error_probability(&design);
            assert_eq!(
                serial, parallel,
                "threads={threads} diverged from the serial run"
            );
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let swings = [
            Voltage::from_millivolts(300.0),
            Voltage::from_millivolts(450.0),
        ];
        let base = McExperiment::paper_default(&tech).with_runs(50);
        let serial = base
            .clone()
            .with_threads(Some(1))
            .swing_sweep(&design, &swings);
        let parallel = base.with_threads(Some(8)).swing_sweep(&design, &swings);
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let tech = Technology::soi45();
        let _ = McExperiment::paper_default(&tech).with_runs(0);
    }
}
