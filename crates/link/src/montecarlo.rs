//! The Fig. 6 experiment: Monte Carlo error probability of a 10 mm link
//! versus the design's swing voltage.
//!
//! Each trial samples one die (global variation) plus per-stage local
//! mismatch, builds the link, and transmits the stress patterns (worst
//! cases for drift and ISI, plus PRBS). A die that corrupts any bit
//! counts as a failure; the error probability is the failing fraction of
//! dice, exactly as the paper's 1000-run Monte Carlo reports it.

use crate::link::{LinkConfig, SrlrLink};
use crate::prbs::Prbs;
use srlr_core::SrlrDesign;
use srlr_tech::montecarlo::ErrorProbability;
use srlr_tech::{MonteCarlo, Technology};
use srlr_units::Voltage;

/// The Monte Carlo link-failure experiment.
#[derive(Debug, Clone)]
pub struct McExperiment<'a> {
    tech: &'a Technology,
    config: LinkConfig,
    /// Number of dice per evaluation (the paper uses 1000).
    pub runs: usize,
    /// RNG seed (same seed = same dice across designs, a paired
    /// comparison).
    pub seed: u64,
    /// PRBS bits per die in addition to the deterministic worst cases.
    pub prbs_bits: usize,
}

impl<'a> McExperiment<'a> {
    /// A paper-sized experiment: 1000 dice.
    pub fn paper_default(tech: &'a Technology) -> Self {
        Self {
            tech,
            config: LinkConfig::paper_default(),
            runs: 1000,
            seed: 2013,
            prbs_bits: 256,
        }
    }

    /// Overrides the number of dice (smaller for quick tests).
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    #[must_use]
    pub fn with_runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "need at least one run");
        self.runs = runs;
        self
    }

    /// Whether one specific die (with mismatch already drawn into `link`)
    /// transmits all stress patterns without error.
    fn die_passes(&self, link: &SrlrLink, prbs: &mut Prbs) -> bool {
        let worst: [&[bool]; 3] = [
            &[true, false, true, false, true, false, true, false],
            // The Sec. III-B worst case.
            &[true, true, true, true, false, true, true, true, true, false],
            &[true; 16],
        ];
        for p in worst {
            if link.transmit(p).received != p {
                return false;
            }
        }
        let bits = prbs.take_bits(self.prbs_bits);
        link.transmit(&bits).received == bits
    }

    /// Runs the experiment for one design, returning the error
    /// probability over the sampled dice.
    pub fn error_probability(&self, design: &SrlrDesign) -> ErrorProbability {
        let mut mc = MonteCarlo::new(self.tech, self.seed);
        let mut prbs = Prbs::prbs15();
        let mut failures = 0usize;
        for _ in 0..self.runs {
            let var = mc.sample_die();
            let link =
                SrlrLink::on_die_with_mismatch(self.tech, design, self.config, &var, &mut mc);
            if !self.die_passes(&link, &mut prbs) {
                failures += 1;
            }
        }
        ErrorProbability {
            failures,
            trials: self.runs,
        }
    }

    /// The Fig. 6 sweep: error probability of a design across swing
    /// voltages.
    pub fn swing_sweep(
        &self,
        design: &SrlrDesign,
        swings: &[Voltage],
    ) -> Vec<(Voltage, ErrorProbability)> {
        swings
            .iter()
            .map(|&s| {
                let d = design.with_nominal_swing(s);
                (s, self.error_probability(&d))
            })
            .collect()
    }

    /// The paper's headline robustness claim: the immunity ratio between
    /// the straightforward and the proposed design at the fabrication
    /// swing (the paper reports ≈3.7x).
    ///
    /// Returns `(proposed, straightforward, ratio)`; the ratio is
    /// `straightforward / proposed` failure probabilities, `inf` when the
    /// proposed design never failed.
    pub fn immunity_ratio(&self) -> (ErrorProbability, ErrorProbability, f64) {
        let proposed = self.error_probability(&SrlrDesign::paper_proposed(self.tech));
        let straightforward = self.error_probability(&SrlrDesign::straightforward(self.tech));
        let ratio = if proposed.failures == 0 {
            f64::INFINITY
        } else {
            straightforward.estimate() / proposed.estimate()
        };
        (proposed, straightforward, ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_design_fails_rarely() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(200);
        let p = exp.error_probability(&SrlrDesign::paper_proposed(&tech));
        assert!(
            p.estimate() < 0.15,
            "proposed design failure probability too high: {p}"
        );
    }

    #[test]
    fn straightforward_fails_more_often_than_proposed() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(200);
        let (proposed, straightforward, ratio) = exp.immunity_ratio();
        assert!(
            straightforward.failures > proposed.failures,
            "proposed {proposed} vs straightforward {straightforward}"
        );
        assert!(ratio > 1.5, "immunity ratio {ratio} too small");
    }

    #[test]
    fn lower_swing_is_less_robust() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(150);
        let design = SrlrDesign::paper_proposed(&tech);
        let sweep = exp.swing_sweep(
            &design,
            &[
                Voltage::from_millivolts(300.0),
                Voltage::from_millivolts(450.0),
            ],
        );
        assert!(
            sweep[0].1.failures >= sweep[1].1.failures,
            "300 mV should fail at least as often as 450 mV: {:?}",
            sweep
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(60);
        let design = SrlrDesign::paper_proposed(&tech);
        assert_eq!(
            exp.error_probability(&design),
            exp.error_probability(&design)
        );
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let tech = Technology::soi45();
        let _ = McExperiment::paper_default(&tech).with_runs(0);
    }
}
