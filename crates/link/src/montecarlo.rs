//! The Fig. 6 experiment: Monte Carlo error probability of a 10 mm link
//! versus the design's swing voltage.
//!
//! Each trial samples one die (global variation) plus per-stage local
//! mismatch, builds the link, and transmits the stress patterns (worst
//! cases for drift and ISI, plus PRBS). A die that corrupts any bit
//! counts as a failure; the error probability is the failing fraction of
//! dice, exactly as the paper's 1000-run Monte Carlo reports it.
//!
//! Trials are evaluated by the deterministic parallel engine
//! ([`crate::engine`]): die `i` draws its mismatch from the counter-based
//! stream [`MonteCarlo::die`]`(i)` and its PRBS stimulus from
//! [`Prbs::prbs15_for_stream`]`(seed, i)`, so every trial is a pure
//! function of `(seed, i)` and the result is bit-identical at any thread
//! count.

use crate::engine;
use crate::link::{LinkConfig, SrlrLink};
use crate::prbs::Prbs;
use srlr_core::SrlrDesign;
use srlr_tech::montecarlo::ErrorProbability;
use srlr_tech::{MonteCarlo, Technology};
use srlr_telemetry::{Obs, Value};
use srlr_units::Voltage;

/// The Sec. III-B deterministic worst-case stress patterns, shared by
/// every trial (hoisted out of the per-die hot loop).
const WORST_PATTERNS: [&[bool]; 3] = [
    &[true, false, true, false, true, false, true, false],
    // The Sec. III-B worst case.
    &[true, true, true, true, false, true, true, true, true, false],
    &[true; 16],
];

/// The Monte Carlo link-failure experiment.
#[derive(Debug, Clone)]
pub struct McExperiment<'a> {
    tech: &'a Technology,
    config: LinkConfig,
    /// Number of dice per evaluation (the paper uses 1000).
    pub runs: usize,
    /// RNG seed (same seed = same dice across designs, a paired
    /// comparison).
    pub seed: u64,
    /// PRBS bits per die in addition to the deterministic worst cases.
    pub prbs_bits: usize,
    /// Worker threads: `Some(n)` forces `n`, `None` defers to the
    /// `SRLR_THREADS` environment variable (and ultimately the machine).
    pub threads: Option<usize>,
}

impl<'a> McExperiment<'a> {
    /// A paper-sized experiment: 1000 dice.
    pub fn paper_default(tech: &'a Technology) -> Self {
        Self {
            tech,
            config: LinkConfig::paper_default(),
            runs: 1000,
            seed: 2013,
            prbs_bits: 256,
            threads: None,
        }
    }

    /// Overrides the number of dice (smaller for quick tests).
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    #[must_use]
    pub fn with_runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "need at least one run");
        self.runs = runs;
        self
    }

    /// Forces the worker-thread count (`1` = serial). `None` (the
    /// default) defers to `SRLR_THREADS` / the machine; results are
    /// identical either way.
    #[must_use]
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Whether die `trial` of this experiment, built for `design`,
    /// transmits all stress patterns without error.
    ///
    /// This is the per-trial unit of work: a pure function of
    /// `(self.seed, trial)`, independent of every other trial.
    fn trial_passes(&self, design: &SrlrDesign, mc: &MonteCarlo, trial: u64) -> bool {
        let mut die = mc.die(trial);
        let var = die.global_variation();
        let link = SrlrLink::on_die_with_mismatch(self.tech, design, self.config, &var, &mut die);
        for p in WORST_PATTERNS {
            if !link.transmits_cleanly(p) {
                return false;
            }
        }
        let bits = Prbs::prbs15_for_stream(self.seed, trial).take_bits(self.prbs_bits);
        link.transmits_cleanly(&bits)
    }

    /// Runs the experiment for one design, returning the error
    /// probability over the sampled dice.
    pub fn error_probability(&self, design: &SrlrDesign) -> ErrorProbability {
        self.error_probability_observed(design, &mut Obs::none())
    }

    /// [`McExperiment::error_probability`] with observability: each die
    /// becomes a `trial` span (timestamped by its trial index, the
    /// experiment's logical clock), per-run totals land as `mc.*`
    /// metrics, and `obs.progress` ticks once per die.
    ///
    /// When `obs` is inactive this *is* the untraced path — same code,
    /// no allocation, bit-identical result. When active, workers record
    /// into per-trial child collectors that are merged back in trial
    /// order, so the telemetry bytes are identical at any thread count.
    pub fn error_probability_observed(
        &self,
        design: &SrlrDesign,
        obs: &mut Obs,
    ) -> ErrorProbability {
        let mc = MonteCarlo::new(self.tech, self.seed);
        let threads = engine::resolve_threads(self.threads);
        if !obs.is_active() {
            let failures = engine::par_count(self.runs, threads, |trial| {
                !self.trial_passes(design, &mc, trial as u64)
            });
            return ErrorProbability {
                failures,
                trials: self.runs,
            };
        }
        let (collector, progress) = (&obs.collector, &obs.progress);
        let outcomes = engine::par_map_indexed(self.runs, threads, |trial| {
            let pass = self.trial_passes(design, &mc, trial as u64);
            progress.tick();
            let mut child = collector.child();
            child.span(
                "trial",
                "mc",
                trial as f64,
                1.0,
                0,
                &[
                    ("trial", Value::U64(trial as u64)),
                    ("pass", Value::Bool(pass)),
                ],
            );
            (pass, child)
        });
        let mut failures = 0usize;
        for (pass, child) in outcomes {
            obs.collector.merge(child);
            failures += usize::from(!pass);
        }
        obs.collector.add("mc.trials", self.runs as u64);
        obs.collector.add("mc.failures", failures as u64);
        obs.collector.set_metric(
            "mc.error_probability",
            Value::F64(failures as f64 / self.runs as f64),
        );
        ErrorProbability {
            failures,
            trials: self.runs,
        }
    }

    /// The Fig. 6 sweep: error probability of a design across swing
    /// voltages.
    ///
    /// All `swings.len() * runs` dice are flattened into one parallel
    /// workload so small sweeps still saturate the worker pool.
    pub fn swing_sweep(
        &self,
        design: &SrlrDesign,
        swings: &[Voltage],
    ) -> Vec<(Voltage, ErrorProbability)> {
        self.swing_sweep_observed(design, swings, &mut Obs::none())
    }

    /// [`McExperiment::swing_sweep`] with observability (see
    /// [`McExperiment::error_probability_observed`]): each die becomes a
    /// `trial` span on the track of its sweep point, per-point tallies
    /// land as `mc.point.NNN.*` metrics, and `obs.progress` ticks once
    /// per die across the whole flattened workload.
    pub fn swing_sweep_observed(
        &self,
        design: &SrlrDesign,
        swings: &[Voltage],
        obs: &mut Obs,
    ) -> Vec<(Voltage, ErrorProbability)> {
        let designs: Vec<SrlrDesign> = swings
            .iter()
            .map(|&s| design.with_nominal_swing(s))
            .collect();
        let mc = MonteCarlo::new(self.tech, self.seed);
        let threads = engine::resolve_threads(self.threads);
        let passes = if obs.is_active() {
            let (collector, progress) = (&obs.collector, &obs.progress);
            let outcomes = engine::par_map_indexed(swings.len() * self.runs, threads, |i| {
                let (point, trial) = (i / self.runs, i % self.runs);
                let pass = self.trial_passes(&designs[point], &mc, trial as u64);
                progress.tick();
                let mut child = collector.child();
                child.span(
                    "trial",
                    "mc.sweep",
                    i as f64,
                    1.0,
                    point as u64,
                    &[
                        ("point", Value::U64(point as u64)),
                        ("trial", Value::U64(trial as u64)),
                        ("pass", Value::Bool(pass)),
                    ],
                );
                (pass, child)
            });
            let mut passes = Vec::with_capacity(outcomes.len());
            for (pass, child) in outcomes {
                obs.collector.merge(child);
                passes.push(pass);
            }
            passes
        } else {
            engine::par_map_indexed(swings.len() * self.runs, threads, |i| {
                let (point, trial) = (i / self.runs, i % self.runs);
                self.trial_passes(&designs[point], &mc, trial as u64)
            })
        };
        let sweep: Vec<(Voltage, ErrorProbability)> = swings
            .iter()
            .zip(passes.chunks(self.runs))
            .map(|(&s, chunk)| {
                (
                    s,
                    ErrorProbability {
                        failures: chunk.iter().filter(|&&ok| !ok).count(),
                        trials: self.runs,
                    },
                )
            })
            .collect();
        if obs.collector.is_enabled() {
            obs.collector
                .add("mc.trials", (swings.len() * self.runs) as u64);
            for (point, (swing, p)) in sweep.iter().enumerate() {
                let prefix = format!("mc.point.{point:03}");
                obs.collector.set_metric(
                    &format!("{prefix}.swing_mv"),
                    Value::F64(swing.millivolts()),
                );
                obs.collector
                    .set_metric(&format!("{prefix}.failures"), Value::U64(p.failures as u64));
                obs.collector
                    .set_metric(&format!("{prefix}.trials"), Value::U64(p.trials as u64));
            }
        }
        sweep
    }

    /// The paper's headline robustness claim: the immunity ratio between
    /// the straightforward and the proposed design at the fabrication
    /// swing (the paper reports ≈3.7x).
    ///
    /// Returns `(proposed, straightforward, ratio)`; the ratio is
    /// `straightforward / proposed` failure probabilities, `inf` when the
    /// proposed design never failed.
    // srlr-lint: allow(raw-f64-api, reason = "immunity ratio is a dimensionless quotient of probabilities")
    pub fn immunity_ratio(&self) -> (ErrorProbability, ErrorProbability, f64) {
        let proposed = self.error_probability(&SrlrDesign::paper_proposed(self.tech));
        let straightforward = self.error_probability(&SrlrDesign::straightforward(self.tech));
        let ratio = if proposed.failures == 0 {
            f64::INFINITY
        } else {
            straightforward.estimate() / proposed.estimate()
        };
        (proposed, straightforward, ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_design_fails_rarely() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(200);
        let p = exp.error_probability(&SrlrDesign::paper_proposed(&tech));
        assert!(
            p.estimate() < 0.15,
            "proposed design failure probability too high: {p}"
        );
    }

    #[test]
    fn straightforward_fails_more_often_than_proposed() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(200);
        let (proposed, straightforward, ratio) = exp.immunity_ratio();
        assert!(
            straightforward.failures > proposed.failures,
            "proposed {proposed} vs straightforward {straightforward}"
        );
        assert!(ratio > 1.5, "immunity ratio {ratio} too small");
    }

    #[test]
    fn lower_swing_is_less_robust() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(150);
        let design = SrlrDesign::paper_proposed(&tech);
        let sweep = exp.swing_sweep(
            &design,
            &[
                Voltage::from_millivolts(300.0),
                Voltage::from_millivolts(450.0),
            ],
        );
        assert!(
            sweep[0].1.failures >= sweep[1].1.failures,
            "300 mV should fail at least as often as 450 mV: {:?}",
            sweep
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(60);
        let design = SrlrDesign::paper_proposed(&tech);
        assert_eq!(
            exp.error_probability(&design),
            exp.error_probability(&design)
        );
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        // The tentpole contract: the error probability over 200 dice is
        // identical at 1, 2, and 8 threads because each die is a pure
        // function of (seed, trial index).
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let base = McExperiment::paper_default(&tech).with_runs(200);
        let serial = base
            .clone()
            .with_threads(Some(1))
            .error_probability(&design);
        for threads in [2usize, 8] {
            let parallel = base
                .clone()
                .with_threads(Some(threads))
                .error_probability(&design);
            assert_eq!(
                serial, parallel,
                "threads={threads} diverged from the serial run"
            );
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let swings = [
            Voltage::from_millivolts(300.0),
            Voltage::from_millivolts(450.0),
        ];
        let base = McExperiment::paper_default(&tech).with_runs(50);
        let serial = base
            .clone()
            .with_threads(Some(1))
            .swing_sweep(&design, &swings);
        let parallel = base.with_threads(Some(8)).swing_sweep(&design, &swings);
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let tech = Technology::soi45();
        let _ = McExperiment::paper_default(&tech).with_runs(0);
    }

    #[test]
    fn observed_run_matches_unobserved_bit_for_bit() {
        use srlr_telemetry::Collector;
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let exp = McExperiment::paper_default(&tech).with_runs(60);
        let plain = exp.error_probability(&design);
        let mut obs = Obs {
            collector: Collector::enabled("trial-index"),
            ..Obs::default()
        };
        let traced = exp.error_probability_observed(&design, &mut obs);
        assert_eq!(plain, traced, "telemetry must not perturb the result");
        assert_eq!(obs.collector.spans().len(), 60, "one span per die");
        assert_eq!(obs.collector.counter("mc.trials"), 60);
        assert_eq!(obs.collector.counter("mc.failures"), plain.failures as u64);
    }

    #[test]
    fn telemetry_is_bit_identical_across_thread_counts() {
        use srlr_telemetry::Collector;
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let swings = [
            Voltage::from_millivolts(300.0),
            Voltage::from_millivolts(450.0),
        ];
        let jsonl_at = |threads: usize| {
            let exp = McExperiment::paper_default(&tech)
                .with_runs(40)
                .with_threads(Some(threads));
            let mut obs = Obs {
                collector: Collector::enabled("trial-index"),
                ..Obs::default()
            };
            let sweep = exp.swing_sweep_observed(&design, &swings, &mut obs);
            let mut buf = Vec::new();
            obs.collector
                .write_events_jsonl(&mut buf)
                .expect("vec write");
            (sweep, buf, obs.collector.chrome_trace_json())
        };
        let (sweep1, jsonl1, chrome1) = jsonl_at(1);
        for threads in [2usize, 8] {
            let (sweep_n, jsonl_n, chrome_n) = jsonl_at(threads);
            assert_eq!(sweep1, sweep_n, "results diverged at {threads} threads");
            assert_eq!(jsonl1, jsonl_n, "JSONL diverged at {threads} threads");
            assert_eq!(chrome1, chrome_n, "trace diverged at {threads} threads");
        }
        // Spans arrive in flattened-index order regardless of threads.
        let text = String::from_utf8(jsonl1).expect("utf8");
        assert_eq!(text.lines().filter(|l| l.contains("\"span\"")).count(), 80);
    }
}
