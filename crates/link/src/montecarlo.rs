//! The Fig. 6 experiment: Monte Carlo error probability of a 10 mm link
//! versus the design's swing voltage.
//!
//! Each trial samples one die (global variation) plus per-stage local
//! mismatch, builds the link, and transmits the stress patterns (worst
//! cases for drift and ISI, plus PRBS). A die that corrupts any bit
//! counts as a failure; the error probability is the failing fraction of
//! dice, exactly as the paper's 1000-run Monte Carlo reports it.
//!
//! Trials are evaluated by the deterministic parallel engine
//! ([`crate::engine`]): die `i` draws its mismatch from the counter-based
//! stream [`MonteCarlo::die`]`(i)` and its PRBS stimulus from
//! [`Prbs::prbs15_for_stream`]`(seed, i)`, so every trial is a pure
//! function of `(seed, i)` and the result is bit-identical at any thread
//! count.
//!
//! # The batched hot path
//!
//! By default ([`McEngine::Batched`]) trials are evaluated in batches of
//! [`McExperiment::batch_width`] dice: each die is first screened by the
//! conservative clean-link certificate ([`SrlrLink::robustly_clean`]),
//! and only the unproven dice are packed into a structure-of-arrays
//! [`srlr_core::DieBatch`] that advances all of them through the stage map one bit
//! slot at a time, with a per-lane alive mask standing in for the scalar
//! early exit. Because the certificate is conservative and the batch
//! evaluator shares its arithmetic with the scalar stage map (see
//! [`srlr_core::batch`]), the batched engine is **bit-identical** to
//! [`McEngine::Scalar`] — results and telemetry bytes — at every batch
//! width and thread count, which the crate's identity tests assert.

use crate::engine;
use crate::link::{LinkConfig, SrlrLink};
use crate::lockstep::Lockstep;
use crate::prbs::Prbs;
use srlr_core::SrlrDesign;
use srlr_tech::montecarlo::ErrorProbability;
use srlr_tech::{MonteCarlo, Technology};
use srlr_telemetry::{Collector, Obs, Profiler, Value};
use srlr_units::Voltage;

/// The Sec. III-B deterministic worst-case stress patterns, shared by
/// every trial (hoisted out of the per-die hot loop).
const WORST_PATTERNS: [&[bool]; 3] = [
    &[true, false, true, false, true, false, true, false],
    // The Sec. III-B worst case.
    &[true, true, true, true, false, true, true, true, true, false],
    &[true; 16],
];

/// Which evaluator runs the per-die stress test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McEngine {
    /// One die at a time through the scalar stage map — the reference
    /// implementation every batched result is checked against.
    Scalar,
    /// Certificate-screened, structure-of-arrays batches (the default):
    /// an order of magnitude faster, bit-identical by contract.
    Batched,
}

/// How a trial's telemetry span is shaped (single-design runs put every
/// die on track 0; sweeps put each die on its sweep point's track).
#[derive(Debug, Clone, Copy)]
enum TrialSpanShape {
    Single,
    Sweep,
}

/// The Monte Carlo link-failure experiment.
#[derive(Debug, Clone)]
pub struct McExperiment<'a> {
    tech: &'a Technology,
    config: LinkConfig,
    /// Number of dice per evaluation (the paper uses 1000).
    pub runs: usize,
    /// RNG seed (same seed = same dice across designs, a paired
    /// comparison).
    pub seed: u64,
    /// PRBS bits per die in addition to the deterministic worst cases.
    pub prbs_bits: usize,
    /// Worker threads: `Some(n)` forces `n`, `None` defers to the
    /// `SRLR_THREADS` environment variable (and ultimately the machine).
    pub threads: Option<usize>,
    /// Which evaluator runs the trials (default [`McEngine::Batched`]).
    pub engine: McEngine,
    /// Dice per [`srlr_core::DieBatch`] in the batched engine. Any width gives
    /// identical results; it only trades scheduling granularity against
    /// batching efficiency.
    pub batch_width: usize,
}

impl<'a> McExperiment<'a> {
    /// A paper-sized experiment: 1000 dice.
    pub fn paper_default(tech: &'a Technology) -> Self {
        Self {
            tech,
            config: LinkConfig::paper_default(),
            runs: 1000,
            seed: 2013,
            prbs_bits: 256,
            threads: None,
            engine: McEngine::Batched,
            batch_width: 32,
        }
    }

    /// Overrides the number of dice (smaller for quick tests).
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    #[must_use]
    pub fn with_runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "need at least one run");
        self.runs = runs;
        self
    }

    /// Overrides the link configuration (data rate, stage count,
    /// thresholds) the dice are built with.
    #[must_use]
    pub fn with_config(mut self, config: LinkConfig) -> Self {
        self.config = config;
        self
    }

    /// Forces the worker-thread count (`1` = serial). `None` (the
    /// default) defers to `SRLR_THREADS` / the machine; results are
    /// identical either way.
    #[must_use]
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the evaluator (default [`McEngine::Batched`]); results
    /// are bit-identical either way.
    #[must_use]
    pub fn with_engine(mut self, engine: McEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the batched engine's dice-per-batch width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn with_batch_width(mut self, width: usize) -> Self {
        assert!(width > 0, "batch width must be at least one");
        self.batch_width = width;
        self
    }

    /// Whether die `trial` of this experiment, built for `design`,
    /// transmits all stress patterns without error.
    ///
    /// This is the per-trial unit of work: a pure function of
    /// `(self.seed, trial)`, independent of every other trial.
    fn trial_passes(&self, design: &SrlrDesign, mc: &MonteCarlo, trial: u64) -> bool {
        let mut die = mc.die(trial);
        let var = die.global_variation();
        let link = SrlrLink::on_die_with_mismatch(self.tech, design, self.config, &var, &mut die);
        for p in WORST_PATTERNS {
            if !link.transmits_cleanly(p) {
                return false;
            }
        }
        let bits = Prbs::prbs15_for_stream(self.seed, trial).take_bits(self.prbs_bits);
        link.transmits_cleanly(&bits)
    }

    /// Records one die's telemetry span, identically for both engines.
    fn emit_trial_span(&self, child: &mut Collector, shape: TrialSpanShape, i: usize, pass: bool) {
        match shape {
            TrialSpanShape::Single => child.span(
                "trial",
                "mc",
                i as f64,
                1.0,
                0,
                &[("trial", Value::U64(i as u64)), ("pass", Value::Bool(pass))],
            ),
            TrialSpanShape::Sweep => {
                let (point, trial) = (i / self.runs, i % self.runs);
                child.span(
                    "trial",
                    "mc.sweep",
                    i as f64,
                    1.0,
                    point as u64,
                    &[
                        ("point", Value::U64(point as u64)),
                        ("trial", Value::U64(trial as u64)),
                        ("pass", Value::Bool(pass)),
                    ],
                );
            }
        }
    }

    /// Pass/fail of every die in the flattened `designs × runs` workload,
    /// dispatched to the configured engine.
    fn flat_passes(
        &self,
        designs: &[SrlrDesign],
        shape: TrialSpanShape,
        obs: &mut Obs,
    ) -> Vec<bool> {
        match self.engine {
            McEngine::Scalar => self.flat_passes_scalar(designs, shape, obs),
            McEngine::Batched => self.flat_passes_batched(designs, shape, obs),
        }
    }

    /// The scalar reference: one die per work item.
    fn flat_passes_scalar(
        &self,
        designs: &[SrlrDesign],
        shape: TrialSpanShape,
        obs: &mut Obs,
    ) -> Vec<bool> {
        let mc = MonteCarlo::new(self.tech, self.seed);
        let threads = engine::resolve_threads(self.threads);
        let total = designs.len() * self.runs;
        if !obs.is_active() {
            return engine::par_map_indexed(total, threads, |i| {
                self.trial_passes(&designs[i / self.runs], &mc, (i % self.runs) as u64)
            });
        }
        let (collector, progress, profiler) = (&obs.collector, &obs.progress, &obs.profiler);
        let outcomes = engine::par_map_indexed(total, threads, |i| {
            let mut prof = profiler.child();
            prof.enter("mc.trial");
            let pass = self.trial_passes(&designs[i / self.runs], &mc, (i % self.runs) as u64);
            prof.exit();
            progress.tick();
            let mut child = collector.child();
            self.emit_trial_span(&mut child, shape, i, pass);
            (pass, child, prof)
        });
        let mut passes = Vec::with_capacity(total);
        for (pass, child, prof) in outcomes {
            obs.collector.merge(child);
            obs.profiler.merge(prof);
            passes.push(pass);
        }
        passes
    }

    /// The batched engine: one [`DieBatch`] per work item. Workers
    /// record per-lane spans in flattened-index order into one child
    /// collector per batch; children merge back in batch order, so the
    /// telemetry byte stream equals the scalar engine's.
    fn flat_passes_batched(
        &self,
        designs: &[SrlrDesign],
        shape: TrialSpanShape,
        obs: &mut Obs,
    ) -> Vec<bool> {
        let mc = MonteCarlo::new(self.tech, self.seed);
        let threads = engine::resolve_threads(self.threads);
        let total = designs.len() * self.runs;
        let width = self.batch_width;
        let n_batches = total.div_ceil(width);
        if !obs.is_active() {
            let chunks = engine::par_map_indexed(n_batches, threads, |b| {
                let first = b * width;
                self.eval_batch(
                    designs,
                    &mc,
                    first,
                    width.min(total - first),
                    &mut Profiler::disabled(),
                )
            });
            return chunks.concat();
        }
        let (collector, progress, profiler) = (&obs.collector, &obs.progress, &obs.profiler);
        let outcomes = engine::par_map_indexed(n_batches, threads, |b| {
            let first = b * width;
            let mut prof = profiler.child();
            let passes = self.eval_batch(designs, &mc, first, width.min(total - first), &mut prof);
            let mut child = collector.child();
            for (k, &pass) in passes.iter().enumerate() {
                progress.tick();
                self.emit_trial_span(&mut child, shape, first + k, pass);
            }
            (passes, child, prof)
        });
        let mut passes = Vec::with_capacity(total);
        for (chunk, child, prof) in outcomes {
            obs.collector.merge(child);
            obs.profiler.merge(prof);
            passes.extend(chunk);
        }
        passes
    }

    /// Evaluates the flattened trials `first..first + count` as one
    /// batch: certificate-screen each die, then advance the unproven
    /// ones in lockstep through the stress patterns.
    ///
    /// Profiling lands in `prof` (free when disabled): an `mc.batch`
    /// frame wrapping per-die `elaborate`/`certify` frames with
    /// `cert_hit`/`cert_miss` tallies (batch occupancy = misses per
    /// batch), and a `kernel` frame whose `bit_slot`/`lane_kill`
    /// children come from the lockstep harness. The timing sink is
    /// exempt from the engine's telemetry-byte-identity contract — the
    /// scalar engine has no batches to profile.
    fn eval_batch(
        &self,
        designs: &[SrlrDesign],
        mc: &MonteCarlo,
        first: usize,
        count: usize,
        prof: &mut Profiler,
    ) -> Vec<bool> {
        let mut pass = vec![false; count];
        prof.enter("mc.batch");
        // Build each die exactly as the scalar trial does; certified
        // dice are proven clean for every pattern and skip simulation.
        let mut lanes: Vec<(usize, SrlrLink)> = Vec::new();
        for (k, slot) in pass.iter_mut().enumerate() {
            let i = first + k;
            let (point, trial) = (i / self.runs, (i % self.runs) as u64);
            prof.enter("elaborate");
            let mut die = mc.die(trial);
            let var = die.global_variation();
            let link = SrlrLink::on_die_with_mismatch(
                self.tech,
                &designs[point],
                self.config,
                &var,
                &mut die,
            );
            prof.exit();
            prof.enter("certify");
            let certified = link.robustly_clean();
            prof.exit();
            if certified {
                prof.count("cert_hit");
                *slot = true;
            } else {
                prof.count("cert_miss");
                lanes.push((k, link));
            }
        }
        if lanes.is_empty() {
            prof.exit();
            return pass;
        }

        prof.enter("kernel");
        let mut run = Lockstep::new(&lanes);
        for p in WORST_PATTERNS {
            run.check_shared(p, prof);
        }
        prof.exit();
        if self.prbs_bits > 0 && run.any_contending() {
            // Per-lane PRBS stimulus, generated only for lanes still in
            // contention.
            prof.enter("prbs_gen");
            let prbs: Vec<Option<Vec<bool>>> = lanes
                .iter()
                .enumerate()
                .map(|(lane, (k, _))| {
                    run.is_contending(lane).then(|| {
                        let trial = ((first + k) % self.runs) as u64;
                        Prbs::prbs15_for_stream(self.seed, trial).take_bits(self.prbs_bits)
                    })
                })
                .collect();
            prof.exit();
            prof.enter("kernel");
            run.check_per_lane(&prbs, self.prbs_bits, prof);
            prof.exit();
        }
        for (lane, (k, _)) in lanes.iter().enumerate() {
            pass[*k] = run.verdicts()[lane];
        }
        prof.exit();
        pass
    }

    /// Runs the experiment for one design, returning the error
    /// probability over the sampled dice.
    pub fn error_probability(&self, design: &SrlrDesign) -> ErrorProbability {
        self.error_probability_observed(design, &mut Obs::none())
    }

    /// [`McExperiment::error_probability`] with observability: each die
    /// becomes a `trial` span (timestamped by its trial index, the
    /// experiment's logical clock), per-run totals land as `mc.*`
    /// metrics, and `obs.progress` ticks once per die.
    ///
    /// When `obs` is inactive this *is* the untraced path — same code,
    /// no allocation, bit-identical result. When active, workers record
    /// into per-item child collectors that are merged back in item
    /// order, so the telemetry bytes are identical at any thread count
    /// (and across both engines).
    pub fn error_probability_observed(
        &self,
        design: &SrlrDesign,
        obs: &mut Obs,
    ) -> ErrorProbability {
        obs.profiler.enter("mc.run");
        let passes = self.flat_passes(std::slice::from_ref(design), TrialSpanShape::Single, obs);
        obs.profiler.exit();
        let failures = passes.iter().filter(|&&ok| !ok).count();
        obs.collector.add("mc.trials", self.runs as u64);
        obs.collector.add("mc.failures", failures as u64);
        obs.collector.set_metric(
            "mc.error_probability",
            Value::F64(failures as f64 / self.runs as f64),
        );
        ErrorProbability {
            failures,
            trials: self.runs,
        }
    }

    /// The Fig. 6 sweep: error probability of a design across swing
    /// voltages.
    ///
    /// All `swings.len() * runs` dice are flattened into one parallel
    /// workload so small sweeps still saturate the worker pool.
    pub fn swing_sweep(
        &self,
        design: &SrlrDesign,
        swings: &[Voltage],
    ) -> Vec<(Voltage, ErrorProbability)> {
        self.swing_sweep_observed(design, swings, &mut Obs::none())
    }

    /// [`McExperiment::swing_sweep`] with observability (see
    /// [`McExperiment::error_probability_observed`]): each die becomes a
    /// `trial` span on the track of its sweep point, per-point tallies
    /// land as `mc.point.NNN.*` metrics (the prefix widens past 1000
    /// points so lexicographic order always matches numeric order), and
    /// `obs.progress` ticks once per die across the whole flattened
    /// workload.
    pub fn swing_sweep_observed(
        &self,
        design: &SrlrDesign,
        swings: &[Voltage],
        obs: &mut Obs,
    ) -> Vec<(Voltage, ErrorProbability)> {
        let designs: Vec<SrlrDesign> = swings
            .iter()
            .map(|&s| design.with_nominal_swing(s))
            .collect();
        obs.profiler.enter("mc.sweep");
        let passes = self.flat_passes(&designs, TrialSpanShape::Sweep, obs);
        obs.profiler.exit();
        let sweep: Vec<(Voltage, ErrorProbability)> = swings
            .iter()
            .zip(passes.chunks(self.runs))
            .map(|(&s, chunk)| {
                (
                    s,
                    ErrorProbability {
                        failures: chunk.iter().filter(|&&ok| !ok).count(),
                        trials: self.runs,
                    },
                )
            })
            .collect();
        if obs.collector.is_enabled() {
            obs.collector
                .add("mc.trials", (swings.len() * self.runs) as u64);
            for (point, (swing, p)) in sweep.iter().enumerate() {
                let prefix = point_metric_prefix(point, swings.len());
                obs.collector.set_metric(
                    &format!("{prefix}.swing_mv"),
                    Value::F64(swing.millivolts()),
                );
                obs.collector
                    .set_metric(&format!("{prefix}.failures"), Value::U64(p.failures as u64));
                obs.collector
                    .set_metric(&format!("{prefix}.trials"), Value::U64(p.trials as u64));
            }
        }
        sweep
    }

    /// The paper's headline robustness claim: the immunity ratio between
    /// the straightforward and the proposed design at the fabrication
    /// swing (the paper reports ≈3.7x).
    ///
    /// Returns `(proposed, straightforward, ratio)`; the ratio is
    /// `straightforward / proposed` failure probabilities. When either
    /// design recorded zero failures the raw estimate degenerates (0/0
    /// would read as infinite immunity even for two equally clean
    /// designs), so the ratio falls back to the Wilson 95% upper bounds
    /// — finite, conservative, and 1-ish when both designs are clean.
    // srlr-lint: allow(raw-f64-api, reason = "immunity ratio is a dimensionless quotient of probabilities")
    pub fn immunity_ratio(&self) -> (ErrorProbability, ErrorProbability, f64) {
        let proposed = self.error_probability(&SrlrDesign::paper_proposed(self.tech));
        let straightforward = self.error_probability(&SrlrDesign::straightforward(self.tech));
        let ratio = robustness_ratio(&straightforward, &proposed);
        (proposed, straightforward, ratio)
    }
}

/// The `straightforward / proposed` robustness ratio behind
/// [`McExperiment::immunity_ratio`].
///
/// With failures on both sides this is the plain quotient of estimates.
/// When either side observed zero failures, the quotient of Wilson 95%
/// upper bounds ([`ErrorProbability::upper_bound_95`]) stands in: both
/// bounds are strictly positive for any trial count, so the ratio stays
/// finite — in particular, two designs that never failed compare as ≈1,
/// not as infinitely different.
// srlr-lint: allow(raw-f64-api, reason = "robustness ratio is a dimensionless quotient of probabilities")
pub fn robustness_ratio(straightforward: &ErrorProbability, proposed: &ErrorProbability) -> f64 {
    if straightforward.failures == 0 || proposed.failures == 0 {
        straightforward.upper_bound_95() / proposed.upper_bound_95()
    } else {
        straightforward.estimate() / proposed.estimate()
    }
}

/// Metric-key prefix for sweep point `point` of `points`: zero-padded to
/// at least three digits, widening with the sweep so lexicographic order
/// matches numeric order at any point count.
fn point_metric_prefix(point: usize, points: usize) -> String {
    let width = decimal_digits(points.saturating_sub(1)).max(3);
    format!("mc.point.{point:0width$}")
}

/// Number of decimal digits of `n` (1 for 0).
fn decimal_digits(mut n: usize) -> usize {
    let mut digits = 1;
    while n >= 10 {
        n /= 10;
        digits += 1;
    }
    digits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_design_fails_rarely() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(200);
        let p = exp.error_probability(&SrlrDesign::paper_proposed(&tech));
        assert!(
            p.estimate() < 0.15,
            "proposed design failure probability too high: {p}"
        );
    }

    #[test]
    fn straightforward_fails_more_often_than_proposed() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(200);
        let (proposed, straightforward, ratio) = exp.immunity_ratio();
        assert!(
            straightforward.failures > proposed.failures,
            "proposed {proposed} vs straightforward {straightforward}"
        );
        assert!(ratio > 1.5, "immunity ratio {ratio} too small");
    }

    #[test]
    fn lower_swing_is_less_robust() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(150);
        let design = SrlrDesign::paper_proposed(&tech);
        let sweep = exp.swing_sweep(
            &design,
            &[
                Voltage::from_millivolts(300.0),
                Voltage::from_millivolts(450.0),
            ],
        );
        assert!(
            sweep[0].1.failures >= sweep[1].1.failures,
            "300 mV should fail at least as often as 450 mV: {:?}",
            sweep
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        let tech = Technology::soi45();
        let exp = McExperiment::paper_default(&tech).with_runs(60);
        let design = SrlrDesign::paper_proposed(&tech);
        assert_eq!(
            exp.error_probability(&design),
            exp.error_probability(&design)
        );
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        // The tentpole contract: the error probability over 200 dice is
        // identical at 1, 2, and 8 threads because each die is a pure
        // function of (seed, trial index).
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let base = McExperiment::paper_default(&tech).with_runs(200);
        let serial = base
            .clone()
            .with_threads(Some(1))
            .error_probability(&design);
        for threads in [2usize, 8] {
            let parallel = base
                .clone()
                .with_threads(Some(threads))
                .error_probability(&design);
            assert_eq!(
                serial, parallel,
                "threads={threads} diverged from the serial run"
            );
        }
    }

    #[test]
    fn batched_engine_matches_scalar_engine() {
        // The other half of the contract: the default batched engine
        // returns exactly what the scalar reference returns.
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let base = McExperiment::paper_default(&tech).with_runs(120);
        let scalar = base
            .clone()
            .with_engine(McEngine::Scalar)
            .error_probability(&design);
        for width in [1usize, 4, 32] {
            let batched = base
                .clone()
                .with_batch_width(width)
                .error_probability(&design);
            assert_eq!(scalar, batched, "batch width {width} diverged");
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let swings = [
            Voltage::from_millivolts(300.0),
            Voltage::from_millivolts(450.0),
        ];
        let base = McExperiment::paper_default(&tech).with_runs(50);
        let serial = base
            .clone()
            .with_threads(Some(1))
            .swing_sweep(&design, &swings);
        let parallel = base.with_threads(Some(8)).swing_sweep(&design, &swings);
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let tech = Technology::soi45();
        let _ = McExperiment::paper_default(&tech).with_runs(0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_batch_width_rejected() {
        let tech = Technology::soi45();
        let _ = McExperiment::paper_default(&tech).with_batch_width(0);
    }

    #[test]
    fn observed_run_matches_unobserved_bit_for_bit() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let exp = McExperiment::paper_default(&tech).with_runs(60);
        let plain = exp.error_probability(&design);
        let mut obs = Obs {
            collector: Collector::enabled("trial-index"),
            ..Obs::default()
        };
        let traced = exp.error_probability_observed(&design, &mut obs);
        assert_eq!(plain, traced, "telemetry must not perturb the result");
        assert_eq!(obs.collector.spans().len(), 60, "one span per die");
        assert_eq!(obs.collector.counter("mc.trials"), 60);
        assert_eq!(obs.collector.counter("mc.failures"), plain.failures as u64);
    }

    #[test]
    fn telemetry_is_bit_identical_across_thread_counts() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let swings = [
            Voltage::from_millivolts(300.0),
            Voltage::from_millivolts(450.0),
        ];
        let jsonl_at = |threads: usize| {
            let exp = McExperiment::paper_default(&tech)
                .with_runs(40)
                .with_threads(Some(threads));
            let mut obs = Obs {
                collector: Collector::enabled("trial-index"),
                ..Obs::default()
            };
            let sweep = exp.swing_sweep_observed(&design, &swings, &mut obs);
            let mut buf = Vec::new();
            obs.collector
                .write_events_jsonl(&mut buf)
                .expect("vec write");
            (sweep, buf, obs.collector.chrome_trace_json())
        };
        let (sweep1, jsonl1, chrome1) = jsonl_at(1);
        for threads in [2usize, 8] {
            let (sweep_n, jsonl_n, chrome_n) = jsonl_at(threads);
            assert_eq!(sweep1, sweep_n, "results diverged at {threads} threads");
            assert_eq!(jsonl1, jsonl_n, "JSONL diverged at {threads} threads");
            assert_eq!(chrome1, chrome_n, "trace diverged at {threads} threads");
        }
        // Spans arrive in flattened-index order regardless of threads.
        let text = String::from_utf8(jsonl1).expect("utf8");
        assert_eq!(text.lines().filter(|l| l.contains("\"span\"")).count(), 80);
    }

    #[test]
    fn profile_is_identical_across_thread_counts_with_tick_clock() {
        // The profiling determinism contract: with the tick clock, the
        // whole profile — structure, counts, AND timings — is a pure
        // function of the work, not of the worker count.
        use srlr_telemetry::{Clock, Profiler};
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let swings = [
            Voltage::from_millivolts(300.0),
            Voltage::from_millivolts(450.0),
        ];
        let profile_at = |threads: usize| {
            let exp = McExperiment::paper_default(&tech)
                .with_runs(60)
                .with_threads(Some(threads));
            let mut obs = Obs {
                profiler: Profiler::enabled(Clock::tick(1.0)),
                ..Obs::default()
            };
            let _ = exp.swing_sweep_observed(&design, &swings, &mut obs);
            obs.profiler.snapshot()
        };
        let p1 = profile_at(1);
        for threads in [2usize, 8] {
            assert_eq!(
                p1,
                profile_at(threads),
                "profile diverged at {threads} threads"
            );
        }
        assert!(!p1.nodes.is_empty());
    }

    #[test]
    fn profile_counts_cover_every_die_exactly_once() {
        // Deterministic accounting under the tick clock: the frame and
        // tally counts are a pure function of the workload.
        use srlr_telemetry::{Clock, Profiler};
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let swings = [
            Voltage::from_millivolts(300.0),
            Voltage::from_millivolts(450.0),
        ];
        let exp = McExperiment::paper_default(&tech).with_runs(60);
        let mut obs = Obs {
            profiler: Profiler::enabled(Clock::tick(1.0)),
            ..Obs::default()
        };
        let _ = exp.swing_sweep_observed(&design, &swings, &mut obs);
        let profile = obs.profiler.snapshot();
        let count_of = |name: &str| -> u64 {
            profile
                .nodes
                .iter()
                .filter(|n| n.name == name)
                .map(|n| n.count)
                .sum()
        };
        assert_eq!(count_of("cert_hit") + count_of("cert_miss"), 120);
        assert_eq!(count_of("elaborate"), 120, "one elaboration per die");
        // Kill-on-first-error retires every failing lane exactly once.
        assert!(count_of("lane_kill") <= count_of("cert_miss"));
        // 120 dice at batch width 32, two sweep points of 60: the
        // flattened workload splits into 4 batches.
        assert_eq!(count_of("mc.batch"), 4);
    }

    #[test]
    fn per_die_screen_owns_the_most_self_time() {
        // The hotspot-attribution contract behind `srlr fig6
        // --profile-out`: the certificate screen retires uncertified
        // lanes within their first corrupted slot, so the lockstep
        // kernel is nearly idle and the per-die screen (elaboration +
        // certification) dominates wall-clock self time — the profile
        // confirms ROADMAP's elaboration-headroom claim rather than
        // the naive guess that the bit-slot loop is hot. The margin in
        // practice is ~10x; assert a simple majority to stay robust to
        // scheduler noise.
        use srlr_telemetry::{Clock, Profiler};
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let swings = [
            Voltage::from_millivolts(350.0),
            Voltage::from_millivolts(450.0),
        ];
        let exp = McExperiment::paper_default(&tech).with_runs(400);
        let mut obs = Obs {
            profiler: Profiler::enabled(Clock::wall()),
            ..Obs::default()
        };
        let _ = exp.swing_sweep_observed(&design, &swings, &mut obs);
        let profile = obs.profiler.snapshot();
        let self_of = |name: &str| -> f64 {
            profile
                .nodes
                .iter()
                .filter(|n| n.name == name)
                .map(|n| n.self_s)
                .sum()
        };
        let screen = self_of("elaborate") + self_of("certify");
        let total: f64 = profile.nodes.iter().map(|n| n.self_s).sum();
        assert!(
            screen > total / 2.0,
            "expected the per-die screen to own most self time; got {screen} of {total} s"
        );
    }

    #[test]
    fn profiling_does_not_perturb_results_or_telemetry_bytes() {
        use srlr_telemetry::{Clock, Profiler};
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let exp = McExperiment::paper_default(&tech).with_runs(60);
        let run = |profiled: bool| {
            let mut obs = Obs {
                collector: Collector::enabled("trial-index"),
                profiler: if profiled {
                    Profiler::enabled(Clock::tick(1.0))
                } else {
                    Profiler::disabled()
                },
                ..Obs::default()
            };
            let p = exp.error_probability_observed(&design, &mut obs);
            let mut jsonl = Vec::new();
            obs.collector
                .write_events_jsonl(&mut jsonl)
                .expect("vec write");
            (p, jsonl)
        };
        let (p_off, bytes_off) = run(false);
        let (p_on, bytes_on) = run(true);
        assert_eq!(p_off, p_on, "profiling must not change the result");
        assert_eq!(
            bytes_off, bytes_on,
            "timing lives in its own sink; the event sink stays byte-identical"
        );
    }

    #[test]
    fn equally_clean_designs_report_finite_immunity() {
        // Regression: 0 failures / 0 failures used to read as infinite
        // immunity; the Wilson-bound fallback keeps it finite (and ~1
        // for identical evidence).
        let both_zero = ErrorProbability {
            failures: 0,
            trials: 1000,
        };
        let ratio = robustness_ratio(&both_zero, &both_zero);
        assert!(ratio.is_finite(), "0/0 must not read as infinite immunity");
        assert!((ratio - 1.0).abs() < 1e-12, "equal evidence ⇒ ratio 1");
    }

    #[test]
    fn one_sided_zero_failures_still_finite_and_ordered() {
        let clean = ErrorProbability {
            failures: 0,
            trials: 1000,
        };
        let dirty = ErrorProbability {
            failures: 100,
            trials: 1000,
        };
        let ratio = robustness_ratio(&dirty, &clean);
        assert!(ratio.is_finite() && ratio > 1.0, "ratio {ratio}");
        let inverse = robustness_ratio(&clean, &dirty);
        assert!(inverse.is_finite() && inverse < 1.0, "inverse {inverse}");
    }

    #[test]
    fn point_metric_prefixes_sort_lexicographically_at_any_count() {
        // Regression: the fixed {point:03} scheme interleaved past 999
        // points (mc.point.1000 < mc.point.999 lexicographically).
        for points in [1usize, 7, 1000, 1500, 12_000] {
            let keys: Vec<String> = (0..points)
                .map(|p| point_metric_prefix(p, points))
                .collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted, "keys interleave at {points} points");
        }
    }

    #[test]
    fn point_metric_prefix_keeps_the_legacy_shape_for_small_sweeps() {
        // ≤1000 points keep the three-digit keys PR 4's consumers parse.
        assert_eq!(point_metric_prefix(0, 7), "mc.point.000");
        assert_eq!(point_metric_prefix(999, 1000), "mc.point.999");
        assert_eq!(point_metric_prefix(0, 1500), "mc.point.0000");
        assert_eq!(point_metric_prefix(1499, 1500), "mc.point.1499");
    }
}
