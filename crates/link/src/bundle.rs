//! Multi-lane link bundles: the paper's "64-bit 10 mm link
//! implementation" whose shared bias generator dissipates just 0.6 % of
//! total link power.
//!
//! A bundle instantiates one SRLR lane per bit on the same die (shared
//! global corner, independent per-stage local mismatch per lane) plus a
//! single [`AdaptiveSwingBias`] generator serving every lane's drivers.

use crate::engine;
use crate::link::{LinkConfig, SrlrLink};
use crate::metrics::LinkMetrics;
use srlr_core::SrlrDesign;
use srlr_tech::{AdaptiveSwingBias, GlobalVariation, MonteCarlo, Technology};
use srlr_units::Power;

/// A bundle of parallel SRLR lanes with one shared bias generator.
#[derive(Debug, Clone)]
pub struct LinkBundle {
    lanes: Vec<SrlrLink>,
    bias: AdaptiveSwingBias,
    config: LinkConfig,
}

impl LinkBundle {
    /// Builds a `width`-lane bundle on one die: every lane shares the
    /// die's global variation and draws independent local mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn on_die(
        tech: &Technology,
        design: &SrlrDesign,
        config: LinkConfig,
        var: &GlobalVariation,
        width: usize,
        seed: u64,
    ) -> Self {
        Self::on_die_with_threads(tech, design, config, var, width, seed, None)
    }

    /// [`LinkBundle::on_die`] with an explicit worker-thread count
    /// (`None` defers to `SRLR_THREADS` / the machine). Lane `k` draws
    /// its mismatch from the counter-based stream `k` of the bundle seed,
    /// so the elaborated bundle is identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn on_die_with_threads(
        tech: &Technology,
        design: &SrlrDesign,
        config: LinkConfig,
        var: &GlobalVariation,
        width: usize,
        seed: u64,
        threads: Option<usize>,
    ) -> Self {
        assert!(width > 0, "bundle needs at least one lane");
        let mc = MonteCarlo::new(tech, seed);
        let n_threads = engine::resolve_threads(threads);
        let lanes = engine::par_map_indexed(width, n_threads, |lane| {
            let mut die = mc.die(lane as u64);
            SrlrLink::on_die_with_mismatch(tech, design, config, var, &mut die)
        });
        Self {
            lanes,
            bias: AdaptiveSwingBias::with_nominal_swing(tech, design.nominal_swing),
            config,
        }
    }

    /// The paper's 64-bit 10 mm bundle on a typical die.
    pub fn paper_64bit(tech: &Technology, seed: u64) -> Self {
        Self::on_die(
            tech,
            &SrlrDesign::paper_proposed(tech),
            LinkConfig::paper_default(),
            &GlobalVariation::nominal(),
            64,
            seed,
        )
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// The lanes.
    pub fn lanes(&self) -> &[SrlrLink] {
        &self.lanes
    }

    /// Transmits a sequence of words; bit `k` of each word rides lane `k`.
    /// Returns the received words.
    ///
    /// # Panics
    ///
    /// Panics if the bundle is wider than 64 lanes (words are `u64`).
    pub fn transmit_words(&self, words: &[u64]) -> Vec<u64> {
        assert!(self.width() <= 64, "u64 words carry at most 64 lanes");
        let mut received = vec![0u64; words.len()];
        for (lane_idx, lane) in self.lanes.iter().enumerate() {
            let bits: Vec<bool> = words.iter().map(|w| (w >> lane_idx) & 1 == 1).collect();
            let out = lane.transmit(&bits);
            for (word_idx, &bit) in out.received.iter().enumerate() {
                if bit {
                    received[word_idx] |= 1 << lane_idx;
                }
            }
        }
        received
    }

    /// Number of lanes that transmit the stress patterns cleanly. With
    /// per-stage local mismatch, wide bundles see real *lane yield*: the
    /// commanded swing buys margin against the worst lane, which is
    /// exactly the trade Fig. 6 sweeps.
    pub fn clean_lane_count(&self) -> usize {
        let patterns: [&[bool]; 2] = [
            &[true, true, true, true, false, true, false, true],
            &[true; 12],
        ];
        self.lanes
            .iter()
            .filter(|lane| patterns.iter().all(|p| lane.transmits_cleanly(p)))
            .count()
    }

    /// Whether every lane transmits the stress patterns cleanly.
    pub fn all_lanes_clean(&self) -> bool {
        self.clean_lane_count() == self.width()
    }

    /// Total bundle power at the configured rate (PRBS traffic): all lane
    /// dynamic power plus leakage plus the one shared bias generator.
    /// Lanes whose worst-mismatch stage cannot repeat the nominal pulse
    /// are charged at the healthy-lane average (their drivers still burn
    /// the energy; only the model's fixed point is undefined).
    ///
    /// # Panics
    ///
    /// Panics if no lane is functional at all.
    pub fn total_power(&self) -> Power {
        let live: Vec<Power> = self
            .lanes
            .iter()
            .filter(|l| {
                let c = l.chain();
                c.propagate(c.nominal_input_pulse()).is_valid()
            })
            .map(|l| LinkMetrics::measure(l).power + l.chain().total_leakage())
            .collect();
        assert!(!live.is_empty(), "bundle has no functional lane");
        let avg = live.iter().copied().sum::<Power>() / live.len() as f64;
        avg * self.width() as f64 + self.bias.power()
    }

    /// The bias generator's share of total bundle power — the paper
    /// quotes 0.6 % at 64 bits.
    // srlr-lint: allow(raw-f64-api, reason = "bias share is a dimensionless fraction")
    pub fn bias_share(&self) -> f64 {
        self.bias.power() / self.total_power()
    }

    /// Aggregate payload bandwidth.
    pub fn aggregate_bandwidth(&self) -> srlr_units::DataRate {
        self.config.data_rate * self.width() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bundle() -> LinkBundle {
        let tech = Technology::soi45();
        LinkBundle::on_die(
            &tech,
            &SrlrDesign::paper_proposed(&tech),
            LinkConfig::paper_default(),
            &GlobalVariation::nominal(),
            8,
            1,
        )
    }

    #[test]
    fn words_round_trip() {
        let b = small_bundle();
        let words = [0x00, 0xFF, 0xA5, 0x5A, 0x81, 0x18];
        assert_eq!(b.transmit_words(&words), words);
    }

    #[test]
    fn paper_bundle_bias_share_matches_claim() {
        let tech = Technology::soi45();
        let b = LinkBundle::paper_64bit(&tech, 7);
        let share = b.bias_share();
        // Paper: 0.6 % for the 64-bit 10 mm link.
        assert!(
            (share - 0.006).abs() < 0.002,
            "bias share {share} vs the paper's 0.006"
        );
        // 64 lanes x 4.1 Gb/s = 262.4 Gb/s of payload.
        assert!((b.aggregate_bandwidth().gigabits_per_second() - 262.4).abs() < 0.1);
    }

    #[test]
    fn lane_yield_improves_with_commanded_swing() {
        // A 64-lane bundle with per-stage mismatch sees a weak-lane tail
        // at the stock swing; +40 mV buys all-lane yield — the bundle's
        // version of the Fig. 6 swing/robustness trade.
        let tech = Technology::soi45();
        let stock = LinkBundle::paper_64bit(&tech, 7);
        let stock_clean = stock.clean_lane_count();
        assert!(
            stock_clean >= 56,
            "stock swing should lose at most a few of 64 lanes: {stock_clean}"
        );

        let boosted_design = SrlrDesign::paper_proposed(&tech)
            .with_nominal_swing(srlr_units::Voltage::from_millivolts(500.0));
        let boosted = LinkBundle::on_die(
            &tech,
            &boosted_design,
            LinkConfig::paper_default(),
            &GlobalVariation::nominal(),
            64,
            7,
        );
        assert!(
            boosted.clean_lane_count() >= stock_clean,
            "extra swing must not lose lanes"
        );
        assert!(
            boosted.all_lanes_clean(),
            "+40 mV should yield all 64 lanes"
        );
    }

    #[test]
    fn bundle_power_scales_with_width() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let build = |w| {
            LinkBundle::on_die(
                &tech,
                &design,
                LinkConfig::paper_default(),
                &GlobalVariation::nominal(),
                w,
                3,
            )
        };
        let p8 = build(8).total_power();
        let p16 = build(16).total_power();
        // Doubling lanes ~doubles lane power; the shared bias does not double.
        let ratio = p16 / p8;
        assert!(ratio > 1.8 && ratio < 2.0, "power ratio {ratio}");
    }

    #[test]
    fn parallel_bundle_matches_serial() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let build = |threads| {
            LinkBundle::on_die_with_threads(
                &tech,
                &design,
                LinkConfig::paper_default(),
                &GlobalVariation::nominal(),
                16,
                7,
                Some(threads),
            )
        };
        let serial = build(1);
        for threads in [2usize, 8] {
            let parallel = build(threads);
            assert_eq!(
                serial.lanes(),
                parallel.lanes(),
                "threads={threads} elaborated different lanes"
            );
        }
    }

    #[test]
    fn lanes_differ_by_local_mismatch() {
        let b = small_bundle();
        let first = &b.lanes()[0];
        assert!(
            b.lanes().iter().skip(1).any(|l| l != first),
            "lanes should carry independent mismatch"
        );
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_width_rejected() {
        let tech = Technology::soi45();
        let _ = LinkBundle::on_die(
            &tech,
            &SrlrDesign::paper_proposed(&tech),
            LinkConfig::paper_default(),
            &GlobalVariation::nominal(),
            0,
            1,
        );
    }
}
