//! SRLR-based on-chip links: the experiment harness of the paper's
//! Sec. IV.
//!
//! The fabricated test chip feeds a 1-bit 10 mm SRLR link with on-chip
//! PRBS data and counts errors. This crate is that measurement setup in
//! software:
//!
//! * [`prbs`] — LFSR pseudo-random binary sequences (PRBS-7/15/31),
//! * [`link`] — bit-exact link propagation with per-segment inter-symbol
//!   interference (residual-charge) tracking and energy accounting,
//! * [`ber`] — bit-error-rate measurement with confidence bounds and the
//!   max-data-rate search,
//! * [`error_model`] — aggregated effective-BER measurement over Monte
//!   Carlo dice, the number the `srlr-noc` fault injector consumes,
//! * [`engine`] — the deterministic parallel sweep engine (`SRLR_THREADS`)
//!   behind the Monte Carlo, shmoo, bathtub, and bundle experiments,
//! * [`metrics`] — the paper's headline metrics (bandwidth density,
//!   fJ/bit/mm, link power),
//! * [`baselines`] — behavioural models of the prior silicon-proven
//!   interconnects the paper compares against, plus the published-numbers
//!   registry behind Table I and Fig. 8,
//! * [`comparison`] — Table I assembly and rendering,
//! * [`multicast`] — the free 1-to-N multicast capability of Sec. II.
//!
//! # Examples
//!
//! ```
//! use srlr_link::{LinkConfig, SrlrLink};
//! use srlr_tech::Technology;
//! use srlr_units::DataRate;
//!
//! let tech = Technology::soi45();
//! let link = SrlrLink::paper_test_chip(&tech);
//! let report = link.ber_quick_check(10_000, 99);
//! assert_eq!(report.errors, 0, "nominal link must be error-free");
//! # let _ = LinkConfig::paper_default();
//! # let _ = DataRate::from_gigabits_per_second(4.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod bathtub;
pub mod ber;
pub mod bundle;
pub(crate) mod certify;
pub mod comparison;
pub mod crosstalk;
pub mod engine;
pub mod error_model;
pub mod eye;
pub mod link;
pub(crate) mod lockstep;
pub mod metrics;
pub mod montecarlo;
pub mod multicast;
pub mod prbs;
pub mod shmoo;
pub mod supply;

pub use baselines::{
    DifferentialClockedLink, EqualizedLink, FullSwingRepeatedLink, PublishedInterconnect,
};
pub use ber::{BerReport, BerTester};
pub use comparison::{ComparisonRow, ComparisonTable};
pub use error_model::LinkErrorModel;
pub use eye::{measure_eye, EyeReport};
pub use link::{LinkConfig, SrlrLink, TransmitOutcome};
pub use metrics::LinkMetrics;
pub use montecarlo::{robustness_ratio, McEngine, McExperiment};
pub use multicast::MulticastLink;
pub use prbs::Prbs;
