//! Supply-voltage scaling of the SRLR link.
//!
//! The paper reports one operating point (0.8 V); a natural question for
//! an adopter is how the link behaves under VDD scaling — dynamic energy
//! falls with the rail, but the repeater loses headroom (the adaptive
//! swing generator clamps below `VDD − 200 mV`) and the delay cells slow
//! down, dragging the maximum data rate with them. This module sweeps the
//! rail and reports the resulting energy/performance frontier.

use crate::ber::max_data_rate;
use crate::link::{LinkConfig, SrlrLink};
use crate::metrics::LinkMetrics;
use srlr_core::SrlrDesign;
use srlr_tech::{GlobalVariation, Technology};
use srlr_units::{DataRate, EnergyPerBitLength, Power, Voltage};

/// One point of the supply sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplyPoint {
    /// The rail.
    pub vdd: Voltage,
    /// Maximum error-free data rate at this rail (stress-pattern cliff).
    pub max_rate: DataRate,
    /// PRBS energy metric at the rated (0.7 x cliff) operating point.
    pub energy: EnergyPerBitLength,
    /// Link power at the rated point.
    pub power: Power,
}

/// Rating margin applied to the cliff rate (matches the Fig. 8 harness).
pub const RATE_MARGIN: f64 = 0.7;

/// Sweeps the supply rail, returning a point per working voltage (rails
/// where even 0.5 Gb/s fails are dropped).
///
/// # Panics
///
/// Panics if `vdds` is empty.
pub fn supply_sweep(
    base_tech: &Technology,
    design: &SrlrDesign,
    vdds: &[Voltage],
) -> Vec<SupplyPoint> {
    assert!(!vdds.is_empty(), "sweep needs at least one rail");
    let nominal = GlobalVariation::nominal();
    vdds.iter()
        .filter_map(|&vdd| {
            let tech = Technology {
                vdd,
                ..base_tech.clone()
            };
            let cliff = max_data_rate(
                &tech,
                design,
                LinkConfig::paper_default(),
                &nominal,
                DataRate::from_gigabits_per_second(0.5),
                DataRate::from_gigabits_per_second(12.0),
                DataRate::from_gigabits_per_second(0.1),
            )?;
            let rate = cliff * RATE_MARGIN;
            let config = LinkConfig::paper_default().with_data_rate(rate);
            let link = SrlrLink::on_die(&tech, design, config, &nominal);
            let metrics = LinkMetrics::measure(&link);
            Some(SupplyPoint {
                vdd,
                max_rate: cliff,
                energy: metrics.energy,
                power: metrics.power,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<SupplyPoint> {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let vdds: Vec<Voltage> = [0.7, 0.8, 0.9, 1.0]
            .iter()
            .map(|&v| Voltage::from_volts(v))
            .collect();
        supply_sweep(&tech, &design, &vdds)
    }

    #[test]
    fn paper_rail_is_a_working_point() {
        let points = sweep();
        assert!(
            points.iter().any(|p| (p.vdd.volts() - 0.8).abs() < 1e-9),
            "0.8 V must work"
        );
    }

    #[test]
    fn higher_rail_buys_rate_but_costs_energy() {
        let points = sweep();
        let at = |v: f64| {
            points
                .iter()
                .find(|p| (p.vdd.volts() - v).abs() < 1e-9)
                .copied()
        };
        let (Some(lo), Some(hi)) = (at(0.8), at(1.0)) else {
            panic!("sweep missing rails: {points:?}");
        };
        assert!(
            hi.max_rate >= lo.max_rate,
            "more headroom, same or more rate"
        );
        assert!(hi.energy > lo.energy, "higher rail must cost energy");
    }

    #[test]
    fn deep_scaling_eventually_fails() {
        // Far below the swing target the regulator clamps and the link
        // cannot signal at all: those rails drop out of the sweep.
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let points = supply_sweep(
            &tech,
            &design,
            &[Voltage::from_volts(0.35), Voltage::from_volts(0.8)],
        );
        assert_eq!(points.len(), 1, "0.35 V must fail: {points:?}");
        assert!((points[0].vdd.volts() - 0.8).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one rail")]
    fn empty_sweep_rejected() {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        let _ = supply_sweep(&tech, &design, &[]);
    }
}
