//! Crosstalk: how neighbouring-wire activity moves the link's energy and
//! maximum data rate.
//!
//! The paper notes that repeaterless equalized interconnects are
//! "vulnerable to wire capacitance/resistance variation and crosstalk
//! coupling noise" because they ride one long wire; the SRLR's 1 mm
//! regeneration confines each aggressor's influence to a single segment.
//! This module quantifies the SRLR link under the standard aggressor
//! scenarios (shielded / random / worst-case opposite-switching /
//! best-case correlated neighbours).

use crate::ber::max_data_rate;
use crate::link::{LinkConfig, SrlrLink};
use crate::metrics::LinkMetrics;
use srlr_core::SrlrDesign;
use srlr_tech::wire::NeighborActivity;
use srlr_tech::{GlobalVariation, Technology};
use srlr_units::{DataRate, EnergyPerBitLength};

/// The link under one aggressor scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrosstalkPoint {
    /// Neighbour scenario.
    pub activity: NeighborActivity,
    /// Stress-pattern cliff rate (`None` when the link cannot signal).
    pub max_rate: Option<DataRate>,
    /// PRBS energy metric at 4.1 Gb/s (meaningful when the link works
    /// there).
    pub energy: EnergyPerBitLength,
}

/// Evaluates the four aggressor scenarios on a nominal die.
pub fn crosstalk_sweep(tech: &Technology, design: &SrlrDesign) -> Vec<CrosstalkPoint> {
    let nominal = GlobalVariation::nominal();
    [
        NeighborActivity::BestCase,
        NeighborActivity::Shielded,
        NeighborActivity::Random,
        NeighborActivity::WorstCase,
    ]
    .into_iter()
    .map(|activity| {
        let d = SrlrDesign {
            wire: design.wire.with_neighbors(activity),
            ..design.clone()
        };
        let max_rate = max_data_rate(
            tech,
            &d,
            LinkConfig::paper_default(),
            &nominal,
            DataRate::from_gigabits_per_second(0.5),
            DataRate::from_gigabits_per_second(12.0),
            DataRate::from_gigabits_per_second(0.1),
        );
        let energy = {
            let link = SrlrLink::on_die(tech, &d, LinkConfig::paper_default(), &nominal);
            // Energy is defined whenever the nominal pulse propagates;
            // fall back to zero when the scenario kills the link.
            let chain = link.chain();
            if chain.propagate(chain.nominal_input_pulse()).is_valid() {
                LinkMetrics::measure(&link).energy
            } else {
                EnergyPerBitLength::zero()
            }
        };
        CrosstalkPoint {
            activity,
            max_rate,
            energy,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<CrosstalkPoint> {
        let tech = Technology::soi45();
        let design = SrlrDesign::paper_proposed(&tech);
        crosstalk_sweep(&tech, &design)
    }

    fn find(points: &[CrosstalkPoint], a: NeighborActivity) -> CrosstalkPoint {
        *points.iter().find(|p| p.activity == a).expect("present")
    }

    #[test]
    fn every_scenario_still_signals() {
        // The 1 mm regeneration keeps even worst-case aggressors
        // survivable (unlike a 10 mm repeaterless run).
        for p in sweep() {
            assert!(p.max_rate.is_some(), "{:?} cannot signal", p.activity);
        }
    }

    #[test]
    fn worst_case_aggressors_cost_energy() {
        let points = sweep();
        let worst = find(&points, NeighborActivity::WorstCase);
        let shielded = find(&points, NeighborActivity::Shielded);
        assert!(
            worst.energy > shielded.energy,
            "worst {} vs shielded {}",
            worst.energy,
            shielded.energy
        );
    }

    #[test]
    fn shielding_buys_rate_headroom() {
        let points = sweep();
        let worst = find(&points, NeighborActivity::WorstCase)
            .max_rate
            .expect("signals");
        let shielded = find(&points, NeighborActivity::Shielded)
            .max_rate
            .expect("signals");
        assert!(
            shielded >= worst,
            "shielded {shielded:?} should beat worst-case {worst:?}"
        );
    }

    #[test]
    fn calibration_scenario_matches_headline_energy() {
        let points = sweep();
        let random = find(&points, NeighborActivity::Random);
        let e = random.energy.femtojoules_per_bit_per_millimeter();
        assert!((e - 39.8).abs() < 3.0, "random-neighbour energy {e}");
    }
}
