//! Baseline interconnects: the published numbers behind Table I / Fig. 8
//! and first-order behavioural models of each prior approach.
//!
//! The paper compares against four silicon-proven designs:
//!
//! * Mensink et al. \[25\] — capacitively-driven repeaterless link,
//! * Kim & Stojanovic \[26\] — equalized transceiver (two operating
//!   points),
//! * Seo et al. \[27\] — adaptive pre-emphasis with 2 repeaters,
//! * Park et al. \[18\] — differential clocked low-swing mesh datapath
//!   with a dedicated second supply (10 repeaters).
//!
//! Their *published* numbers are carried verbatim in
//! [`PublishedInterconnect`]; the behavioural models reproduce the same
//! energy structure from first principles so the Fig. 8 sweeps can move
//! off the published points.

use srlr_tech::WireGeometry;
use srlr_units::{
    Area, BandwidthDensity, Capacitance, DataRate, EnergyPerBit, EnergyPerBitLength, Length,
    Voltage,
};

/// A row of published silicon results (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedInterconnect {
    /// Short label, e.g. `"[26] Kim (high)"`.
    pub label: &'static str,
    /// Signaling style as Table I prints it.
    pub signaling: &'static str,
    /// Reported data rate.
    pub data_rate: DataRate,
    /// Reported bandwidth density.
    pub bandwidth_density: BandwidthDensity,
    /// Reported 10 mm link-traversal energy (Table I's fJ/bit/cm).
    pub energy: EnergyPerBitLength,
    /// Repeater count over 10 mm, as reported.
    pub repeaters: &'static str,
    /// Process technology.
    pub process: &'static str,
}

impl PublishedInterconnect {
    /// All prior-work rows of Table I (this work's row is *measured*, not
    /// recorded — see [`ComparisonTable`]).
    ///
    /// [`ComparisonTable`]: crate::comparison::ComparisonTable
    pub fn prior_works() -> Vec<Self> {
        fn row(
            label: &'static str,
            signaling: &'static str,
            gbps: f64,
            gbps_um: f64,
            fj_cm: f64,
            repeaters: &'static str,
            process: &'static str,
        ) -> PublishedInterconnect {
            PublishedInterconnect {
                label,
                signaling,
                data_rate: DataRate::from_gigabits_per_second(gbps),
                bandwidth_density: BandwidthDensity::from_gigabits_per_second_per_micrometer(
                    gbps_um,
                ),
                energy: EnergyPerBitLength::from_femtojoules_per_bit_per_centimeter(fj_cm),
                repeaters,
                process,
            }
        }
        vec![
            row(
                "[25] Mensink JSSC'10",
                "fully differential",
                2.0,
                1.163,
                340.0,
                "repeaterless",
                "90nm bulk CMOS",
            ),
            row(
                "[26] Kim JSSC'10 (low)",
                "fully differential",
                4.0,
                2.0,
                370.0,
                "repeaterless",
                "90nm bulk CMOS",
            ),
            row(
                "[26] Kim JSSC'10 (high)",
                "fully differential",
                6.0,
                3.0,
                630.0,
                "repeaterless",
                "90nm bulk CMOS",
            ),
            row(
                "[27] Seo ISSCC'10",
                "fully differential",
                4.9,
                4.375,
                680.0,
                "2 repeaters",
                "90nm bulk CMOS",
            ),
            row(
                "[18] Park DAC'12",
                "fully differential",
                5.4,
                6.0,
                561.0,
                "10 repeaters",
                "45nm SOI CMOS",
            ),
        ]
    }

    /// The paper's own published row (for checking our measured row
    /// against it).
    pub fn this_work_published() -> Self {
        Self {
            label: "This Work (published)",
            signaling: "single-ended",
            data_rate: DataRate::from_gigabits_per_second(4.1),
            bandwidth_density: BandwidthDensity::from_gigabits_per_second_per_micrometer(6.83),
            energy: EnergyPerBitLength::from_femtojoules_per_bit_per_centimeter(404.0),
            repeaters: "10 repeaters",
            process: "45nm SOI CMOS",
        }
    }
}

/// A conventional full-swing repeated link: the reference every low-swing
/// design is trying to beat, and the datapath the NoC crate uses for its
/// full-swing comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FullSwingRepeatedLink {
    /// Wire geometry.
    pub wire: WireGeometry,
    /// Supply (and signal) voltage.
    pub vdd: Voltage,
    /// Switching activity per bit (0.5 for random level-coded data).
    // srlr-lint: allow(raw-f64-api, reason = "switching activity is a dimensionless fraction")
    pub activity: f64,
    /// Repeater insertion length.
    pub segment: Length,
    /// Repeater input+self capacitance per stage.
    pub repeater_capacitance: Capacitance,
}

impl FullSwingRepeatedLink {
    /// A minimum-pitch full-swing link in the workspace technology.
    pub fn paper_reference(vdd: Voltage) -> Self {
        Self {
            wire: WireGeometry::paper_default(),
            vdd,
            activity: 0.5,
            segment: Length::from_millimeters(1.0),
            repeater_capacitance: Capacitance::from_femtofarads(25.0),
        }
    }

    /// Dynamic energy per bit per unit length: `activity · C' · VDD²`
    /// for the wire plus the repeater overhead amortised per segment.
    pub fn energy_per_bit_length(&self) -> EnergyPerBitLength {
        let c_per_m = self.wire.capacitance_per_length().farads_per_meter();
        let wire = self.activity * c_per_m * self.vdd.volts() * self.vdd.volts();
        let repeater = self.activity
            * self.repeater_capacitance.farads()
            * self.vdd.volts()
            * self.vdd.volts()
            / self.segment.meters();
        EnergyPerBitLength::from_joules_per_bit_per_meter(wire + repeater)
    }

    /// Energy for a full traversal of `length`.
    pub fn energy_per_bit(&self, length: Length) -> EnergyPerBit {
        self.energy_per_bit_length() * length
    }

    /// Bandwidth density at a given achievable rate.
    pub fn bandwidth_density(&self, rate: DataRate) -> BandwidthDensity {
        rate / self.wire.pitch()
    }
}

/// A differential, clocked low-swing link in the style of \[18\]: two
/// wires per bit, swing generated from a dedicated low supply, plus
/// clocked sense-amplifier energy at every hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DifferentialClockedLink {
    /// Wire geometry of *each* of the pair.
    pub wire: WireGeometry,
    /// Signal swing on each wire.
    pub swing: Voltage,
    /// The dedicated low supply the swing is generated from.
    pub low_supply: Voltage,
    /// Clock + sense-amplifier energy per bit per repeater hop.
    pub clocked_overhead_per_hop: EnergyPerBit,
    /// Repeater insertion length.
    pub segment: Length,
}

impl DifferentialClockedLink {
    /// Parameters in the regime of \[18\] (56.1 fJ/bit per 1 mm hop).
    pub fn dac12_reference() -> Self {
        Self {
            wire: WireGeometry::paper_default(),
            swing: Voltage::from_millivolts(310.0),
            low_supply: Voltage::from_millivolts(650.0),
            clocked_overhead_per_hop: EnergyPerBit::from_femtojoules_per_bit(16.0),
            segment: Length::from_millimeters(1.0),
        }
    }

    /// Energy per bit per unit length: both wires of the pair charge to
    /// the swing from the low supply every bit (differential signaling
    /// toggles one of the pair per bit on average with activity 1), plus
    /// the clocked receiver overhead amortised per segment.
    pub fn energy_per_bit_length(&self) -> EnergyPerBitLength {
        let c_per_m = self.wire.capacitance_per_length().farads_per_meter();
        // One wire of the pair transitions per bit: C·Vswing·Vsupply.
        let wires = c_per_m * self.swing.volts() * self.low_supply.volts();
        let clocked = self.clocked_overhead_per_hop.value() / self.segment.meters();
        EnergyPerBitLength::from_joules_per_bit_per_meter(wires + clocked)
    }

    /// Bandwidth density: differential wiring spends two pitches per bit.
    pub fn bandwidth_density(&self, rate: DataRate) -> BandwidthDensity {
        rate / (self.wire.pitch() * 2.0)
    }
}

/// A repeaterless equalized link in the style of \[25\]–\[27\]: a
/// pre-emphasis transmitter drives the full length; low swing comes from
/// the channel attenuation, at the cost of a large, length-specialised
/// driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EqualizedLink {
    /// Wire geometry of each of the differential pair.
    pub wire: WireGeometry,
    /// Transmit swing at the driver.
    pub tx_swing: Voltage,
    /// Supply the driver charges from.
    pub supply: Voltage,
    /// Equalizer/receiver overhead per bit for the whole link.
    pub fixed_overhead: EnergyPerBit,
    /// Link length the equalizer is tuned for.
    pub length: Length,
    /// Reported driver area (the \[26\] 10 mm driver is 1760 um²/bit —
    /// the mesh-integration blocker the paper cites).
    pub driver_area: Area,
}

impl EqualizedLink {
    /// Parameters in the regime of \[26\]'s high-rate point. Equalized
    /// links run at relaxed wire spacing (their 3 Gb/s/um at 6 Gb/s
    /// implies ~1 um pitch per wire of the pair), which lowers coupling
    /// capacitance relative to the SRLR's minimum-pitch wires.
    pub fn jssc10_reference() -> Self {
        Self {
            wire: WireGeometry::paper_default()
                .with_space(srlr_units::Length::from_micrometers(0.7)),
            tx_swing: Voltage::from_millivolts(350.0),
            supply: Voltage::from_volts(1.0),
            fixed_overhead: EnergyPerBit::from_femtojoules_per_bit(120.0),
            length: Length::from_millimeters(10.0),
            driver_area: Area::from_square_micrometers(1760.0),
        }
    }

    /// Energy per bit per unit length over the tuned length.
    pub fn energy_per_bit_length(&self) -> EnergyPerBitLength {
        let c_per_m = self.wire.capacitance_per_length().farads_per_meter();
        let wires = c_per_m * self.tx_swing.volts() * self.supply.volts();
        let fixed = self.fixed_overhead.value() / self.length.meters();
        EnergyPerBitLength::from_joules_per_bit_per_meter(wires + fixed)
    }

    /// Bandwidth density (differential pair: two pitches per bit).
    pub fn bandwidth_density(&self, rate: DataRate) -> BandwidthDensity {
        rate / (self.wire.pitch() * 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_prior_rows() {
        let rows = PublishedInterconnect::prior_works();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.signaling == "fully differential"));
        // Only this work is single-ended.
        assert_eq!(
            PublishedInterconnect::this_work_published().signaling,
            "single-ended"
        );
    }

    #[test]
    fn this_work_beats_every_prior_on_bandwidth_density() {
        let us = PublishedInterconnect::this_work_published();
        for r in PublishedInterconnect::prior_works() {
            assert!(
                us.bandwidth_density > r.bandwidth_density,
                "{} should have lower density",
                r.label
            );
        }
    }

    #[test]
    fn this_work_beats_repeated_priors_on_energy() {
        // Against the repeated designs ([18], [27]) this work wins on
        // energy; the repeaterless links trade energy against density.
        let us = PublishedInterconnect::this_work_published();
        for r in PublishedInterconnect::prior_works() {
            if r.repeaters.contains("repeaters") {
                assert!(us.energy < r.energy, "{} energy", r.label);
            }
        }
    }

    #[test]
    fn full_swing_link_costs_much_more_than_the_paper() {
        let fs = FullSwingRepeatedLink::paper_reference(Voltage::from_volts(0.8));
        let e = fs
            .energy_per_bit_length()
            .femtojoules_per_bit_per_millimeter();
        // Full swing at 0.8 V on ~200 fF/mm: upwards of 60 fJ/bit/mm,
        // well above the 40.4 fJ/bit/mm of the SRLR.
        assert!(e > 60.0, "full-swing energy {e} fJ/bit/mm");
    }

    #[test]
    fn differential_clocked_link_matches_dac12_scale() {
        let d = DifferentialClockedLink::dac12_reference();
        let e = d
            .energy_per_bit_length()
            .femtojoules_per_bit_per_centimeter();
        // [18] reports 561 fJ/bit/cm.
        assert!(
            (e - 561.0).abs() < 120.0,
            "differential clocked energy {e} fJ/bit/cm"
        );
    }

    #[test]
    fn equalized_link_matches_jssc10_scale() {
        let q = EqualizedLink::jssc10_reference();
        let e = q
            .energy_per_bit_length()
            .femtojoules_per_bit_per_centimeter();
        // [26] high point reports 630 fJ/bit/cm.
        assert!((e - 630.0).abs() < 150.0, "equalized energy {e} fJ/bit/cm");
    }

    #[test]
    fn differential_links_halve_density_at_equal_pitch() {
        let d = DifferentialClockedLink::dac12_reference();
        let rate = DataRate::from_gigabits_per_second(4.0);
        let fs = FullSwingRepeatedLink::paper_reference(Voltage::from_volts(0.8));
        let single = fs.bandwidth_density(rate);
        let diff = d.bandwidth_density(rate);
        assert!((single.value() / diff.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equalized_driver_area_blocks_mesh_integration() {
        // The paper's area argument: 1760 um² per bit-driver vs 47.9 um²
        // per SRLR — over 35x.
        let q = EqualizedLink::jssc10_reference();
        assert!(q.driver_area.square_micrometers() / 47.9 > 35.0);
    }
}
