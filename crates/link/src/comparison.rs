//! Table I assembly: the measured row of this reproduction next to the
//! published prior-work rows.

use crate::baselines::PublishedInterconnect;
use crate::link::SrlrLink;
use srlr_tech::Technology;
use srlr_units::{BandwidthDensity, DataRate, EnergyPerBitLength};

/// One row of the comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Design label.
    pub label: String,
    /// Signaling style.
    pub signaling: String,
    /// Data rate.
    pub data_rate: DataRate,
    /// Bandwidth density.
    pub bandwidth_density: BandwidthDensity,
    /// 10 mm link-traversal energy.
    pub energy: EnergyPerBitLength,
    /// Repeater count description.
    pub repeaters: String,
    /// Process.
    pub process: String,
}

impl From<PublishedInterconnect> for ComparisonRow {
    fn from(p: PublishedInterconnect) -> Self {
        Self {
            label: p.label.to_owned(),
            signaling: p.signaling.to_owned(),
            data_rate: p.data_rate,
            bandwidth_density: p.bandwidth_density,
            energy: p.energy,
            repeaters: p.repeaters.to_owned(),
            process: p.process.to_owned(),
        }
    }
}

/// The assembled Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonTable {
    rows: Vec<ComparisonRow>,
}

impl ComparisonTable {
    /// Builds Table I: the five published prior-work rows, the paper's
    /// published row, and this reproduction's *measured* row (from the
    /// simulated test chip).
    pub fn paper_table1(tech: &Technology) -> Self {
        let mut rows: Vec<ComparisonRow> = PublishedInterconnect::prior_works()
            .into_iter()
            .map(ComparisonRow::from)
            .collect();
        rows.push(PublishedInterconnect::this_work_published().into());

        let metrics = SrlrLink::paper_test_chip(tech).metrics();
        rows.push(ComparisonRow {
            label: "This Work (measured)".to_owned(),
            signaling: "single-ended".to_owned(),
            data_rate: metrics.data_rate,
            bandwidth_density: metrics.bandwidth_density,
            energy: metrics.energy,
            repeaters: "10 repeaters".to_owned(),
            process: tech.name.to_owned(),
        });
        Self { rows }
    }

    /// The rows, prior works first.
    pub fn rows(&self) -> &[ComparisonRow] {
        &self.rows
    }

    /// The measured row (always last).
    ///
    /// # Panics
    ///
    /// Panics if the table is empty (cannot happen via
    /// [`Self::paper_table1`]).
    pub fn measured(&self) -> &ComparisonRow {
        // srlr-lint: allow(no-panic, reason = "documented panic: table construction always appends the measured row, see # Panics")
        self.rows.last().expect("table has rows")
    }

    /// Renders the table as aligned plain text (the bench harness output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<26} {:<19} {:>9} {:>12} {:>13} {:<14} {}\n",
            "Design", "Signaling", "Rate", "BW density", "10mm LT", "Repeaters", "Process"
        ));
        out.push_str(&format!(
            "{:<26} {:<19} {:>9} {:>12} {:>13} {:<14} {}\n",
            "", "", "[Gb/s]", "[Gb/s/um]", "[fJ/bit/cm]", "", ""
        ));
        out.push_str(&"-".repeat(110));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{:<26} {:<19} {:>9.2} {:>12.3} {:>13.1} {:<14} {}\n",
                r.label,
                r.signaling,
                r.data_rate.gigabits_per_second(),
                r.bandwidth_density.gigabits_per_second_per_micrometer(),
                r.energy.femtojoules_per_bit_per_centimeter(),
                r.repeaters,
                r.process,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ComparisonTable {
        ComparisonTable::paper_table1(&Technology::soi45())
    }

    #[test]
    fn table_has_seven_rows() {
        // 5 prior + published + measured.
        assert_eq!(table().rows().len(), 7);
    }

    #[test]
    fn measured_row_tracks_published_shape() {
        let t = table();
        let measured = t.measured();
        let published = &t.rows()[5];
        assert_eq!(published.label, "This Work (published)");
        // Same rate and density by construction; energy within the
        // calibration band (paper: 404 fJ/bit/cm).
        assert_eq!(measured.data_rate, published.data_rate);
        let e = measured.energy.femtojoules_per_bit_per_centimeter();
        assert!(e > 250.0 && e < 600.0, "measured {e} fJ/bit/cm");
    }

    #[test]
    fn measured_keeps_the_papers_win_on_density() {
        let t = table();
        let measured = t.measured();
        for r in &t.rows()[..5] {
            assert!(
                measured.bandwidth_density > r.bandwidth_density,
                "measured row loses density to {}",
                r.label
            );
        }
    }

    #[test]
    fn render_contains_headers_and_all_rows() {
        let s = table().render();
        assert!(s.contains("BW density"));
        assert!(s.contains("fJ/bit/cm"));
        assert!(s.contains("[25] Mensink"));
        assert!(s.contains("This Work (measured)"));
        assert_eq!(s.lines().count(), 3 + 7);
    }
}
